"""Minimal in-tree PEP 517/660 build backend (pure stdlib).

Exists so ``pip install -e .`` works in fully offline environments: the
``[build-system]`` table declares ``requires = []`` and points here via
``backend-path``, so pip's isolated build env needs nothing from the
network — not even the ``wheel`` package that setuptools' editable builds
require.

Produces spec-compliant wheels by hand: the editable wheel carries a
``.pth`` file pointing at ``src/``; the regular wheel packages the tree.
"""

from __future__ import annotations

import base64
import hashlib
import os
import tarfile
import zipfile
from pathlib import Path

NAME = "repro"
VERSION = "1.0.0"
_ROOT = Path(__file__).resolve().parent

_METADATA = f"""Metadata-Version: 2.1
Name: {NAME}
Version: {VERSION}
Summary: Reproduction of 'On Using Linux Kernel Huge Pages with FLASH' (CLUSTER 2022)
Requires-Python: >=3.10
Requires-Dist: numpy>=1.24
Requires-Dist: scipy>=1.10
"""

_WHEEL = """Wheel-Version: 1.0
Generator: repro-in-tree-backend
Root-Is-Purelib: true
Tag: py3-none-any
"""

_ENTRY_POINTS = """[console_scripts]
repro-experiments = repro.experiments.__main__:main
"""


def _dist_info() -> str:
    return f"{NAME}-{VERSION}.dist-info"


def _record_entry(name: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(
        hashlib.sha256(data).digest()).rstrip(b"=").decode()
    return f"{name},sha256={digest},{len(data)}"


def _write_wheel(wheel_directory: str, files: dict[str, bytes]) -> str:
    whl_name = f"{NAME}-{VERSION}-py3-none-any.whl"
    record_name = f"{_dist_info()}/RECORD"
    record = "\n".join(_record_entry(n, d) for n, d in files.items())
    record += f"\n{record_name},,\n"
    with zipfile.ZipFile(Path(wheel_directory) / whl_name, "w",
                         zipfile.ZIP_DEFLATED) as zf:
        for name, data in files.items():
            zf.writestr(name, data)
        zf.writestr(record_name, record)
    return whl_name


def _dist_info_files() -> dict[str, bytes]:
    return {
        f"{_dist_info()}/METADATA": _METADATA.encode(),
        f"{_dist_info()}/WHEEL": _WHEEL.encode(),
        f"{_dist_info()}/entry_points.txt": _ENTRY_POINTS.encode(),
    }


# --- PEP 660: editable install ------------------------------------------------
def build_editable(wheel_directory, config_settings=None,
                   metadata_directory=None) -> str:
    files = {f"_{NAME}_editable.pth": (str(_ROOT / "src") + "\n").encode()}
    files.update(_dist_info_files())
    return _write_wheel(wheel_directory, files)


def get_requires_for_build_editable(config_settings=None):
    return []


# --- PEP 517: regular wheel -----------------------------------------------------
def build_wheel(wheel_directory, config_settings=None,
                metadata_directory=None) -> str:
    files: dict[str, bytes] = {}
    src = _ROOT / "src"
    for path in sorted(src.rglob("*")):
        if not path.is_file() or "__pycache__" in path.parts:
            continue
        files[path.relative_to(src).as_posix()] = path.read_bytes()
    files.update(_dist_info_files())
    return _write_wheel(wheel_directory, files)


def get_requires_for_build_wheel(config_settings=None):
    return []


def build_sdist(sdist_directory, config_settings=None) -> str:
    sdist_name = f"{NAME}-{VERSION}.tar.gz"
    base = f"{NAME}-{VERSION}"
    with tarfile.open(Path(sdist_directory) / sdist_name, "w:gz") as tf:
        for rel in ("pyproject.toml", "_repro_build.py", "README.md",
                    "DESIGN.md", "EXPERIMENTS.md"):
            if (_ROOT / rel).exists():
                tf.add(_ROOT / rel, arcname=f"{base}/{rel}")
        tf.add(_ROOT / "src", arcname=f"{base}/src",
               filter=lambda ti: None if "__pycache__" in ti.name else ti)
    return sdist_name


def get_requires_for_build_sdist(config_settings=None):
    return []
