"""Benchmark the section II compiler comparison (E4).

Run:  pytest benchmarks/test_compiler_comparison.py --benchmark-only -s
"""

import pytest

from repro.experiments.compilers import compiler_comparison


def test_bench_compiler_comparison(benchmark, eos_log):
    result = benchmark.pedantic(
        lambda: compiler_comparison(eos_log, replication=2),
        rounds=2, iterations=1,
    )
    print("\n" + result.render())
    assert result.arm_vs_gcc == pytest.approx(2.5, rel=0.25)
    assert result.cray_vs_gcc == pytest.approx(1.0, abs=0.1)
    assert result.ookami_vs_xeon == pytest.approx(3.0, rel=0.4)
