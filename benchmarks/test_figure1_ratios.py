"""Benchmark regenerating Figure 1 — the with/without-HP ratio chart.

Run:  pytest benchmarks/test_figure1_ratios.py --benchmark-only -s
"""

import pytest

from repro.experiments.figure1 import FIGURE1_MEASURES, figure1_data, render_figure1
from repro.experiments.tables import run_table


def test_bench_figure1(benchmark, eos_log, hydro_log):
    def build():
        t1 = run_table("eos", eos_log, quick=True)
        t2 = run_table("hydro", hydro_log, quick=True)
        return figure1_data(t1, t2)

    data = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + render_figure1(data))

    # the figure's headline: all bars near one except the DTLB pair,
    # with the EOS bar far below the hydro bar
    for key in FIGURE1_MEASURES:
        if key == "dtlb_misses_per_s":
            continue
        assert 0.8 < data.eos[key] < 1.2
        assert 0.9 < data.hydro[key] < 1.1
    assert data.eos["dtlb_misses_per_s"] < 0.12
    assert 0.15 < data.hydro["dtlb_misses_per_s"] < 0.6
    assert data.eos["dtlb_misses_per_s"] < data.hydro["dtlb_misses_per_s"]
