"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation flips one modelled mechanism and shows the paper's result
depends on it:

* **page geometry** — on an x86-64-style 4 KiB/2 MiB kernel, FLASH-sized
  mappings *would* get THP and the "mystery" disappears;
* **TLB level reported** — the 21x collapse is an L1-DTLB phenomenon;
  L2 walk counts move far less;
* **table sub-array count** — the with-HP residual rate is set by how
  many Helmholtz coefficient arrays stay hot;
* **flux matching** — conservation at refinement jumps costs little.

Run:  pytest benchmarks/test_ablations.py --benchmark-only -s
"""

import numpy as np
import pytest

from repro.perfmodel.pipeline import PerformancePipeline
from repro.toolchain.compiler import FUJITSU, GNU


def test_bench_ablation_page_geometry(benchmark):
    """With an x86-64 4 KiB/2 MiB geometry, GNU-compiled FLASH huge-pages
    via plain THP — no Fujitsu runtime needed — localising the paper's
    mystery to the 64 KiB-granule kernel."""
    from repro.kernel.page import X86_64_4K
    from repro.kernel.params import BootParams, KernelConfig
    from repro.kernel.thp import THPMode
    from repro.kernel.vmm import Kernel
    from repro.util import MiB

    def run():
        results = {}
        for name, geometry, boot in (
            ("aarch64-64k", None, None),  # defaults: the Ookami node
            ("x86_64-4k", X86_64_4K,
             BootParams(hugepagesz=(2 * MiB,), default_hugepagesz=2 * MiB)),
        ):
            if geometry is None:
                from repro.kernel.params import ookami_config

                kernel = Kernel(ookami_config(thp_mode=THPMode.ALWAYS))
            else:
                kernel = Kernel(KernelConfig(geometry=geometry, boot=boot,
                                             thp_mode=THPMode.ALWAYS))
            proc = GNU.compile("flash4").launch(kernel)
            proc.allocate(96 * MiB, "unk")
            proc.first_touch("unk")
            results[name] = proc.uses_huge_pages()
        return results

    results = benchmark(run)
    assert results["aarch64-64k"] is False  # the paper's observation
    assert results["x86_64-4k"] is True  # the ablation: mystery gone


def test_bench_ablation_tlb_level(benchmark, eos_log):
    """PAPI_TLB_DM counts L1 refills; the huge-page collapse is much
    stronger there than in full page walks (L2 misses)."""
    def run():
        out = {}
        for flags, label in (((), "with"), (("-Knolargepage",), "without")):
            report = PerformancePipeline(eos_log, FUJITSU, flags=flags,
                                         replication=2).run()
            tot = report.units["eos"].tlb
            out[label] = (tot.l1_misses, tot.l2_misses)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    l1_ratio = out["with"][0] / max(out["without"][0], 1)
    assert l1_ratio < 0.12  # the paper's headline collapse


def test_bench_ablation_table_subarrays(benchmark, eos_log):
    """The with-HP residual miss rate rises with the number of hot
    coefficient arrays (their huge pages compete for the 16 L1 entries)."""
    import repro.perfmodel.patterns as patterns

    def rate_for(nsub):
        old = patterns.TraceBuilder.N_TABLE_SUBARRAYS
        patterns.TraceBuilder.N_TABLE_SUBARRAYS = nsub
        try:
            report = PerformancePipeline(eos_log, FUJITSU,
                                         replication=2).run()
            return report.region("eos")["dtlb_misses_per_s"]
        finally:
            patterns.TraceBuilder.N_TABLE_SUBARRAYS = old

    def run():
        return [rate_for(n) for n in (6, 12, 18)]

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rates[0] < rates[1] < rates[2]


def test_bench_ablation_flux_matching_cost(benchmark):
    """Conservative flux matching at refinement jumps: measure its cost
    against the unmatched sweep (it must be small — and the matched run
    is the only one that conserves)."""
    import time

    from repro.mesh.block import BlockId
    from repro.mesh.grid import Grid, MeshSpec
    from repro.mesh.refine import refine_block
    from repro.mesh.tree import AMRTree
    from repro.physics.eos import GammaLawEOS
    from repro.physics.hydro.unit import HydroUnit
    from repro.setups.sedov import sedov_setup

    def build():
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=2,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=2, nxb=16, nyb=16, nzb=1, nguard=4,
                        maxblocks=64)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(1.4)
        refine_block(grid, BlockId(0, 1, 0))
        sedov_setup(grid, eos, center=(0.5, 0.5, 0.0))
        return grid, eos

    def run():
        out = {}
        for conserve in (True, False):
            grid, eos = build()
            hydro = HydroUnit(eos, conserve_fluxes=conserve)
            t0 = time.perf_counter()
            for _ in range(5):
                hydro.step(grid, 1e-4)
            out[conserve] = (time.perf_counter() - t0,
                             grid.total("dens", weight=None))
        return out

    out = benchmark.pedantic(run, rounds=2, iterations=1)
    t_on, mass_on = out[True]
    t_off, mass_off = out[False]
    assert t_on < 3.0 * t_off  # matching is not the dominant cost
    assert mass_on == pytest.approx(1.0, rel=1e-12)
