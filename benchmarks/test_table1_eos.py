"""Benchmark regenerating Table I — the EOS problem, with/without HPs.

Run:  pytest benchmarks/test_table1_eos.py --benchmark-only -s
"""

import pytest

from repro.experiments.tables import render_table, run_table


@pytest.fixture(scope="module")
def table1(eos_log):
    return run_table("eos", eos_log, quick=True)


def test_bench_table1(benchmark, eos_log, table1):
    """Times one full Table-I regeneration (both columns)."""
    result = benchmark.pedantic(
        lambda: run_table("eos", eos_log, replication=table1.replication),
        rounds=2, iterations=1,
    )
    print("\n" + render_table(result))
    # the paper's shape must hold on every regeneration
    assert result.ratio("dtlb_misses_per_s") < 0.12
    assert 0.85 < result.ratio("time_s") < 1.0
    assert result.reports["with"].uses_huge_pages
    assert not result.reports["without"].uses_huge_pages


def test_bench_table1_without_hp_column(benchmark, eos_log, table1):
    """Times the without-huge-pages measurement alone."""
    from repro.perfmodel.pipeline import PerformancePipeline
    from repro.toolchain.compiler import FUJITSU

    report = benchmark.pedantic(
        lambda: PerformancePipeline(eos_log, FUJITSU,
                                    flags=("-Knolargepage",),
                                    replication=table1.replication).run(),
        rounds=2, iterations=1,
    )
    m = report.region("eos")
    assert m["dtlb_misses_per_s"] == pytest.approx(2.34e7, rel=0.6)
