"""Shared fixtures for the benchmark harness.

The numeric workloads are recorded once per session (and cached on disk
across sessions); the benchmarks then measure the *replay* — the part the
paper's experiments vary — plus microbenchmarks of the library's hot
components.
"""

import pytest

from repro.experiments.workloads import eos_problem_worklog, hydro_problem_worklog


@pytest.fixture(scope="session")
def eos_log():
    """The 2-d supernova work log (quick variant: 8 steps)."""
    return eos_problem_worklog(quick=True)


@pytest.fixture(scope="session")
def hydro_log():
    """The 3-d Sedov work log (quick variant: 5 steps)."""
    return hydro_problem_worklog(quick=True)
