"""Benchmark the section III/IV allocation experiments (E5/E6).

Run:  pytest benchmarks/test_hugepage_usage.py --benchmark-only -s
"""

import pytest

from repro.experiments.testprograms import (
    hugepage_usage_matrix,
    render_outcomes,
    static_vs_dynamic,
)


def test_bench_usage_matrix(benchmark):
    outcomes = benchmark.pedantic(hugepage_usage_matrix, rounds=2, iterations=1)
    print("\n" + render_outcomes(outcomes, "HUGE-PAGE USAGE MATRIX"))
    by_label = {o.label: o for o in outcomes}
    for label, o in by_label.items():
        if label.startswith(("FLASH/gnu", "FLASH/cray")):
            assert not o.uses_huge_pages, label
    assert by_label["FLASH/fujitsu (default)"].uses_huge_pages
    assert not by_label["FLASH/fujitsu (-Knolargepage)"].uses_huge_pages


def test_bench_static_vs_dynamic(benchmark):
    outcomes = benchmark.pedantic(
        lambda: static_vs_dynamic("gnu") + static_vs_dynamic("cray"),
        rounds=3, iterations=1,
    )
    print("\n" + render_outcomes(outcomes, "STATIC VS DYNAMIC TOY PROGRAMS"))
    dyn_gnu, stat_gnu, dyn_cray, stat_cray = outcomes
    assert dyn_gnu.uses_huge_pages and dyn_cray.uses_huge_pages
    assert not stat_gnu.uses_huge_pages and not stat_cray.uses_huge_pages
