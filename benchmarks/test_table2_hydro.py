"""Benchmark regenerating Table II — the 3-d Hydro (Sedov) problem.

Run:  pytest benchmarks/test_table2_hydro.py --benchmark-only -s
"""

import pytest

from repro.experiments.tables import render_table, run_table


@pytest.fixture(scope="module")
def table2(hydro_log):
    return run_table("hydro", hydro_log, quick=True)


def test_bench_table2(benchmark, hydro_log, table2):
    result = benchmark.pedantic(
        lambda: run_table("hydro", hydro_log, replication=table2.replication),
        rounds=2, iterations=1,
    )
    print("\n" + render_table(result))
    # hydro's reduction is modest (paper: 0.324) and time is unchanged
    assert 0.15 < result.ratio("dtlb_misses_per_s") < 0.6
    assert 0.95 < result.ratio("time_s") < 1.02


def test_bench_sedov_numerics(benchmark):
    """Times the underlying 3-d hydro numerics (2 steps, small mesh) —
    the substrate whose work the tables replay."""
    from repro.driver.simulation import Simulation
    from repro.mesh.grid import Grid, MeshSpec
    from repro.mesh.tree import AMRTree
    from repro.physics.eos import GammaLawEOS
    from repro.physics.hydro.unit import HydroUnit
    from repro.setups.sedov import sedov_setup

    def run():
        tree = AMRTree(ndim=3, nblockx=2, nblocky=2, nblockz=2, max_level=1,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=3, nxb=8, nyb=8, nzb=8, nguard=4, maxblocks=64)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        sedov_setup(grid, eos, center=(0.5, 0.5, 0.5))
        sim = Simulation(grid, HydroUnit(eos, cfl=0.4), nrefs=0, dtinit=1e-5)
        sim.evolve(nend=2)
        return grid

    grid = benchmark.pedantic(run, rounds=2, iterations=1)
    assert grid.total("dens", weight=None) == pytest.approx(1.0, rel=1e-10)
