"""Microbenchmarks of the library's hot components.

These track the performance of the substrates themselves (the TLB
simulator, the EOS, the hydro kernels, guard-cell machinery) so
regressions in the simulation engine are visible independently of the
paper-table results.

Run:  pytest benchmarks/test_components.py --benchmark-only
"""

import numpy as np
import pytest

from repro.hw.a64fx import A64FX
from repro.hw.tlb import TLBSimulator
from repro.hw.trace import PageTrace
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.guardcell import fill_guardcells
from repro.mesh.tree import AMRTree
from repro.physics.eos import CO_WD, HelmholtzEOS
from repro.physics.eos.fermi import fermi_dirac_all
from repro.physics.eos.invert import invert_dens_eint
from repro.physics.hydro.sweep import sweep_blocks
from repro.setups.sod import SodProblem


def test_bench_tlb_simulator(benchmark):
    """Exact LRU TLB replay throughput (events/s govern table runtimes)."""
    rng = np.random.default_rng(0)
    pages = (rng.integers(0, 600, size=200_000) * 65536).astype(np.int64)
    trace = PageTrace.from_accesses(pages, np.full(pages.size, 65536, np.int64))

    def run():
        sim = TLBSimulator(A64FX.tlb)
        return sim.run(trace)

    stats = benchmark(run)
    assert stats.l1_misses > 0


def test_bench_fermi_dirac(benchmark):
    """Vectorised relativistic Fermi-Dirac integrals (table building)."""
    eta = np.linspace(-20.0, 2000.0, 20_000)
    beta = np.full_like(eta, 0.3)
    f12, f32, f52 = benchmark(lambda: fermi_dirac_all(eta, beta))
    assert (f12 > 0).all()


def test_bench_eos_dt(benchmark):
    """Helmholtz EOS forward evaluation over 50k zones."""
    eos = HelmholtzEOS()
    dens = np.logspace(3, 9, 50_000)
    temp = np.full_like(dens, 3e8)
    result = benchmark(lambda: eos.eos_dt(dens, temp, CO_WD.abar, CO_WD.zbar))
    assert (result.pres > 0).all()


def test_bench_eos_inversion(benchmark):
    """The branchy Newton inversion the paper profiles, 20k zones."""
    eos = HelmholtzEOS()
    dens = np.logspace(3, 9, 20_000)
    temp = np.full_like(dens, 3e8)
    eint = eos.eos_dt(dens, temp, CO_WD.abar, CO_WD.zbar).eint

    def run():
        t, iters = invert_dens_eint(eos, dens, eint, CO_WD.abar, CO_WD.zbar,
                                    temp_guess=temp * 1.1)
        return t

    t = benchmark(run)
    np.testing.assert_allclose(t, temp, rtol=1e-5)


@pytest.fixture()
def sod_grid():
    tree = AMRTree(ndim=2, nblockx=4, nblocky=4, max_level=0,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=2, nxb=16, nyb=16, nzb=1, nguard=4, maxblocks=32)
    grid = Grid(tree, spec)
    from repro.physics.eos import GammaLawEOS

    SodProblem().initialize(grid, GammaLawEOS(1.4))
    fill_guardcells(grid)
    return grid


def test_bench_hydro_sweep(benchmark, sod_grid):
    """One block-vectorised MUSCL-Hancock sweep over 16 blocks."""
    benchmark(lambda: sweep_blocks(sod_grid, 1e-4, 0))


def test_bench_guardcell_fill(benchmark, sod_grid):
    """Guard-cell fill over the whole mesh (PARAMESH amr_guardcell)."""
    benchmark(lambda: fill_guardcells(sod_grid))


def test_bench_vmm_fault_path(benchmark):
    """Demand-faulting a FLASH-sized mapping (THP promotion checks)."""
    from repro.kernel.params import ookami_config
    from repro.kernel.vmm import Kernel

    def run():
        k = Kernel(ookami_config())
        s = k.new_address_space()
        vma = s.mmap(256 << 20)
        s.touch_range(vma, 0, vma.length)
        return vma

    vma = benchmark(run)
    assert vma.resident_bytes == vma.length
