"""Shim so `pip install -e .` / `setup.py develop` work on environments
without the `wheel` package (PEP 660 editable installs require it)."""

from setuptools import setup

setup()
