"""Exception hierarchy for :mod:`repro`."""


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A runtime parameter or machine configuration is invalid."""


class KernelError(ReproError):
    """The simulated kernel rejected an operation (EINVAL-style)."""


class AllocationError(KernelError):
    """An allocation could not be satisfied (ENOMEM-style)."""


class MeshError(ReproError):
    """The AMR mesh is in an inconsistent state."""


class ArtifactError(ReproError):
    """A cached/persisted artifact is missing, corrupt, or stale.

    Raised by :mod:`repro.util.artifacts` when an on-disk artifact fails
    integrity validation (bad zip magic, checksum mismatch, wrong
    version, incomplete schema) and no builder is available to
    regenerate it."""


class FabricTimeout(ReproError):
    """A collective (barrier or simulated communication) missed its
    deadline.

    Carries the ranks that never arrived (``missing_ranks``) and, when
    raised by the fabric's barrier watchdog, a per-rank stack dump
    (``rank_stacks``: rank -> formatted traceback) so a deadlocked or
    straggling run report shows *where* every rank was stuck.
    """

    def __init__(self, message: str, *,
                 missing_ranks: tuple[int, ...] = (),
                 rank_stacks: dict[int, str] | None = None) -> None:
        super().__init__(message)
        self.missing_ranks = tuple(missing_ranks)
        self.rank_stacks = dict(rank_stacks or {})


class RankKilled(ReproError):
    """A simulated rank died mid-step (the chaos ``kill_rank`` fault)."""

    def __init__(self, rank: int, message: str | None = None) -> None:
        super().__init__(message or f"rank {rank} killed")
        self.rank = rank


class PhysicsError(ReproError):
    """A physics module received unphysical input."""


class ConvergenceError(PhysicsError):
    """An iterative solver (EOS inversion, hydrostatic model) failed to converge."""
