"""Exception hierarchy for :mod:`repro`."""


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A runtime parameter or machine configuration is invalid."""


class KernelError(ReproError):
    """The simulated kernel rejected an operation (EINVAL-style)."""


class AllocationError(KernelError):
    """An allocation could not be satisfied (ENOMEM-style)."""


class MeshError(ReproError):
    """The AMR mesh is in an inconsistent state."""


class ArtifactError(ReproError):
    """A cached/persisted artifact is missing, corrupt, or stale.

    Raised by :mod:`repro.util.artifacts` when an on-disk artifact fails
    integrity validation (bad zip magic, checksum mismatch, wrong
    version, incomplete schema) and no builder is available to
    regenerate it."""


class PhysicsError(ReproError):
    """A physics module received unphysical input."""


class ConvergenceError(PhysicsError):
    """An iterative solver (EOS inversion, hydrostatic model) failed to converge."""
