"""Physical constants (CGS) and memory-size constants (bytes).

The physics side of the library follows the FLASH convention of CGS
units throughout: lengths in cm, masses in g, times in s, temperatures
in K, energies in erg.
"""

# --- memory sizes -----------------------------------------------------------
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

# --- fundamental constants (CODATA-ish, CGS) --------------------------------
C_LIGHT: float = 2.99792458e10  # speed of light [cm/s]
G_NEWTON: float = 6.67430e-8  # gravitational constant [cm^3/g/s^2]
H_PLANCK: float = 6.62607015e-27  # Planck constant [erg s]
BOLTZMANN: float = 1.380649e-16  # Boltzmann constant [erg/K]
AVOGADRO: float = 6.02214076e23  # Avogadro number [1/mol]
ELECTRON_MASS: float = 9.1093837015e-28  # electron rest mass [g]
PROTON_MASS: float = 1.67262192369e-24  # proton rest mass [g]
AMU: float = 1.66053906660e-24  # atomic mass unit [g]

# --- derived ----------------------------------------------------------------
#: radiation constant a = 8 pi^5 k^4 / (15 h^3 c^3)  [erg/cm^3/K^4]
RADIATION_A: float = 7.565723e-15
#: electron rest-mass energy [erg]
ME_C2: float = ELECTRON_MASS * C_LIGHT**2
#: gas constant per mole [erg/mol/K]
GAS_CONSTANT: float = AVOGADRO * BOLTZMANN

# --- astronomy --------------------------------------------------------------
M_SUN: float = 1.98892e33  # solar mass [g]
R_SUN: float = 6.957e10  # solar radius [cm]

# --- nuclear ----------------------------------------------------------------
MEV_TO_ERG: float = 1.602176634e-6
#: specific binding-energy release for 12C+12C -> ~Si-group ash [erg/g].
#: Roughly 0.8 MeV per 12-amu nucleon pair burned; FLASH's paper models use
#: a staged release summing to ~ 9e17 erg/g from C/O to NSE.
Q_CARBON_BURN: float = 2.8e17
#: additional release relaxing Si-group ash to NSE (iron group) [erg/g]
Q_NSE_RELAX: float = 6.2e17

__all__ = [n for n in dir() if n[0].isupper()]
