"""Corruption-safe artifact store.

Every cached artifact in :mod:`repro` — the tabulated electron EOS, the
pickled experiment work logs, simulation checkpoints — goes through this
module.  The design goal is that *no* on-disk corruption is ever fatal
when the artifact can be regenerated, and that corruption of an artifact
that cannot be regenerated (a checkpoint) produces a clear
:class:`~repro.util.errors.ArtifactError` instead of a raw
``zipfile.BadZipFile``/``EOFError`` from deep inside numpy or pickle.

Guarantees:

* **Atomic writes** — artifacts are written to a ``*.tmp`` file in the
  destination directory, fsynced, then moved into place with
  :func:`os.replace`, so a crash or ``kill -9`` mid-write can never leave
  a half-written file under the final name.
* **Integrity validation on read** — ``.npz`` artifacts must pass the
  zip magic/end-of-central-directory check, carry the expected embedded
  version (the :data:`VERSION_KEY` array), contain every required key,
  and match their sidecar SHA-256 checksum when one is present.  Pickle
  artifacts are wrapped in a small versioned envelope and every
  unpickling failure mode (truncation, garbage, stale class layouts) is
  translated into :class:`ArtifactError`.
* **Load-or-rebuild** — :func:`load_or_rebuild` quarantines any invalid
  artifact (renames it ``*.corrupt``), logs a warning, and calls the
  builder to regenerate and re-save it.  Without a builder the
  :class:`ArtifactError` propagates with the validation failure attached.

Versioning is carried *inside* the artifact (``version=`` argument),
replacing the older convention of ``_v3``/``_v4`` filename suffixes.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
import zipfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.util.errors import ArtifactError

logger = logging.getLogger(__name__)

#: name of the embedded version array inside ``.npz`` artifacts
VERSION_KEY = "__artifact_version__"
#: suffix appended (to the full filename) for the checksum sidecar
CHECKSUM_SUFFIX = ".sha256"
#: suffix appended to quarantined (corrupt) artifacts
QUARANTINE_SUFFIX = ".corrupt"

#: the exception types a hostile pickle byte-stream can raise on load
_PICKLE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,  # stale class layout / renamed class
    ImportError,  # module moved since the pickle was written
    IndexError,  # truncated opcode stream
    ValueError,
    TypeError,
    MemoryError,  # absurd length prefix in a corrupted frame
    OSError,
)


# --- low-level helpers -------------------------------------------------------

def checksum_path(path: str | Path) -> Path:
    """The sidecar checksum file for *path* (``foo.npz.sha256``)."""
    path = Path(path)
    return path.with_name(path.name + CHECKSUM_SUFFIX)


def file_sha256(path: str | Path) -> str:
    """Streaming SHA-256 of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry so a rename survives power loss (best effort
    — not all filesystems/platforms allow opening a directory)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: str | Path) -> Iterator[Path]:
    """Yield a temporary path in *path*'s directory; on clean exit the temp
    file is fsynced and atomically renamed onto *path*.

    Readers either see the old complete file or the new complete file —
    never a partial write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmpname = tempfile.mkstemp(dir=path.parent,
                                   prefix=path.name + ".", suffix=".tmp")
    os.close(fd)
    tmp = Path(tmpname)
    try:
        yield tmp
        # mkstemp creates 0600 files; restore normal umask-based permissions
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp, 0o666 & ~umask)
        with open(tmp, "rb") as f:
            os.fsync(f.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    finally:
        tmp.unlink(missing_ok=True)


def write_checksum(path: str | Path) -> Path:
    """Write (atomically) the SHA-256 sidecar for an existing artifact."""
    path = Path(path)
    sidecar = checksum_path(path)
    line = f"{file_sha256(path)}  {path.name}\n"
    with atomic_write(sidecar) as tmp:
        tmp.write_text(line)
    return sidecar


def verify_checksum(path: str | Path) -> bool | None:
    """Check *path* against its sidecar.

    Returns ``True`` on match, ``False`` on mismatch (or unreadable
    sidecar), ``None`` when no sidecar exists (legacy or user-supplied
    artifacts are not required to carry one).
    """
    path = Path(path)
    sidecar = checksum_path(path)
    if not sidecar.exists():
        return None
    try:
        expected = sidecar.read_text().split()[0].strip().lower()
    except (OSError, IndexError):
        return False
    if len(expected) != 64:
        return False
    return file_sha256(path) == expected


def quarantine(path: str | Path) -> Path:
    """Move a corrupt artifact (and its sidecar) aside as ``*.corrupt``.

    An earlier quarantined file under the same name is overwritten — only
    the most recent corpse is kept for post-mortems.
    """
    path = Path(path)
    target = path.with_name(path.name + QUARANTINE_SUFFIX)
    try:
        os.replace(path, target)
    except OSError:
        # cannot rename (permissions, already gone) — best-effort delete so
        # the rebuild's save is not blocked by the corrupt file
        path.unlink(missing_ok=True)
    sidecar = checksum_path(path)
    try:
        os.replace(sidecar, target.with_name(target.name + CHECKSUM_SUFFIX))
    except OSError:
        sidecar.unlink(missing_ok=True)
    return target


# --- npz artifacts -----------------------------------------------------------

def save_npz(path: str | Path, arrays: dict[str, np.ndarray], *,
             version: int | None = None) -> Path:
    """Atomically write a ``.npz`` artifact plus its checksum sidecar.

    *version* (when given) is embedded as the :data:`VERSION_KEY` array so
    readers can reject stale formats without parsing filenames.
    """
    path = Path(path)
    payload = dict(arrays)
    if version is not None:
        payload[VERSION_KEY] = np.array(int(version))
    with atomic_write(path) as tmp:
        # pass a file object: np.savez would append ".npz" to a bare path
        with open(tmp, "wb") as f:
            np.savez_compressed(f, **payload)
    write_checksum(path)
    return path


def load_npz(path: str | Path, *, required_keys: Iterable[str] = (),
             version: int | None = None,
             allow_missing_version: bool = False) -> dict[str, np.ndarray]:
    """Validate and load a ``.npz`` artifact into a dict of arrays.

    Raises :class:`ArtifactError` describing the first failed check:
    missing file, failed zip magic/EOCD check, checksum mismatch,
    version mismatch, missing required keys, or an undecodable payload.
    ``allow_missing_version`` accepts legacy artifacts that predate the
    embedded version field (still rejecting a *wrong* version).
    """
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"artifact not found: {path}")
    if not zipfile.is_zipfile(path):
        raise ArtifactError(
            f"artifact {path} is not a valid zip/npz (truncated or corrupt)")
    if verify_checksum(path) is False:
        raise ArtifactError(f"artifact {path} fails its SHA-256 sidecar check")
    try:
        with np.load(path, allow_pickle=False) as f:
            data = {k: f[k] for k in f.files}
    except (zipfile.BadZipFile, KeyError, ValueError, EOFError, OSError) as exc:
        raise ArtifactError(f"artifact {path} is undecodable: {exc}") from exc
    if version is not None:
        stored = data.pop(VERSION_KEY, None)
        if stored is None:
            if not allow_missing_version:
                raise ArtifactError(
                    f"artifact {path} carries no version field "
                    f"(expected version {version})")
        elif int(stored) != int(version):
            raise ArtifactError(
                f"artifact {path} has version {int(stored)}, "
                f"expected {version}")
    else:
        data.pop(VERSION_KEY, None)
    missing = [k for k in required_keys if k not in data]
    if missing:
        raise ArtifactError(
            f"artifact {path} is schema-incomplete: missing {missing}")
    return data


# --- pickle artifacts --------------------------------------------------------

_PICKLE_FORMAT = "repro-artifact-v1"


def save_pickle(path: str | Path, obj: Any, *, version: int | None = None) -> Path:
    """Atomically pickle *obj* inside a versioned envelope, with sidecar."""
    path = Path(path)
    envelope = {"format": _PICKLE_FORMAT, "version": version, "payload": obj}
    with atomic_write(path) as tmp:
        with open(tmp, "wb") as f:
            pickle.dump(envelope, f, protocol=pickle.HIGHEST_PROTOCOL)
    write_checksum(path)
    return path


def load_pickle(path: str | Path, *, version: int | None = None) -> Any:
    """Validate and unpickle an artifact written by :func:`save_pickle`.

    Every way a truncated, zeroed, or stale pickle can blow up —
    ``EOFError``, ``UnpicklingError``, ``AttributeError`` from a class
    that no longer exists, garbage length prefixes — is mapped to
    :class:`ArtifactError` so callers have exactly one failure mode.
    """
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"artifact not found: {path}")
    if verify_checksum(path) is False:
        raise ArtifactError(f"artifact {path} fails its SHA-256 sidecar check")
    try:
        with open(path, "rb") as f:
            envelope = pickle.load(f)
    except _PICKLE_ERRORS as exc:
        raise ArtifactError(
            f"artifact {path} is not a readable pickle: {exc!r}") from exc
    if not (isinstance(envelope, dict)
            and envelope.get("format") == _PICKLE_FORMAT
            and "payload" in envelope):
        raise ArtifactError(
            f"artifact {path} is not a {_PICKLE_FORMAT} envelope")
    if version is not None and envelope.get("version") != version:
        raise ArtifactError(
            f"artifact {path} has version {envelope.get('version')}, "
            f"expected {version}")
    return envelope["payload"]


# --- the load-or-rebuild protocol -------------------------------------------

def load_or_rebuild(path: str | Path, *,
                    loader: Callable[[Path], Any],
                    builder: Callable[[], Any] | None = None,
                    saver: Callable[[Any, Path], Any] | None = None,
                    description: str = "artifact") -> Any:
    """Load an artifact, regenerating it when absent or invalid.

    ``loader(path)`` must raise :class:`ArtifactError` for any invalid
    artifact (the :func:`load_npz`/:func:`load_pickle` helpers do).  When
    it does and a *builder* exists, the bad file is quarantined as
    ``*.corrupt``, a warning is logged, and ``builder()`` regenerates the
    object, which ``saver(obj, path)`` re-caches.  A failing *saver* is
    downgraded to a warning — an unwritable cache slows the next run down
    but never breaks this one.  Without a builder the error propagates.
    """
    path = Path(path)
    if path.exists():
        try:
            return loader(path)
        except ArtifactError as exc:
            if builder is None:
                raise
            quarantined = quarantine(path)
            logger.warning(
                "%s at %s failed validation (%s); quarantined to %s and "
                "rebuilding", description, path, exc, quarantined)
    elif builder is None:
        raise ArtifactError(f"{description} not found at {path}")
    obj = builder()
    if saver is not None:
        try:
            saver(obj, path)
        except OSError as exc:
            logger.warning("could not re-cache %s at %s: %s",
                           description, path, exc)
    return obj


__all__ = [
    "VERSION_KEY",
    "CHECKSUM_SUFFIX",
    "QUARANTINE_SUFFIX",
    "atomic_write",
    "checksum_path",
    "file_sha256",
    "write_checksum",
    "verify_checksum",
    "quarantine",
    "save_npz",
    "load_npz",
    "save_pickle",
    "load_pickle",
    "load_or_rebuild",
]
