"""Shared utilities: physical constants, memory-size constants, errors.

Everything in :mod:`repro` uses CGS units for physics (FLASH convention)
and bytes for memory quantities.
"""

from repro.util.constants import (
    KiB,
    MiB,
    GiB,
    AVOGADRO,
    BOLTZMANN,
    C_LIGHT,
    ELECTRON_MASS,
    G_NEWTON,
    H_PLANCK,
    M_SUN,
    MEV_TO_ERG,
    PROTON_MASS,
    RADIATION_A,
)
from repro.util.errors import (
    ReproError,
    ConfigurationError,
    KernelError,
    AllocationError,
    ArtifactError,
    MeshError,
    PhysicsError,
    ConvergenceError,
)

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "AVOGADRO",
    "BOLTZMANN",
    "C_LIGHT",
    "ELECTRON_MASS",
    "G_NEWTON",
    "H_PLANCK",
    "M_SUN",
    "MEV_TO_ERG",
    "PROTON_MASS",
    "RADIATION_A",
    "ReproError",
    "ConfigurationError",
    "KernelError",
    "AllocationError",
    "ArtifactError",
    "MeshError",
    "PhysicsError",
    "ConvergenceError",
]
