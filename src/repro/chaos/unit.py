"""The chaos unit's declarations.

Fault injection is just another registered unit: phase 5 puts its step
hook *before* hydro (phase 10), so injected corruption flows through the
whole physics step and is caught by the supervisor's post-step guards —
exactly the order in which real corruption (a cosmic-ray bit flip, a
truncated MPI message) would meet FLASH's own sanity checks.
"""

from __future__ import annotations

from repro.chaos.injector import FAULT_KINDS, ChaosUnit
from repro.core import ParameterSpec, UnitSpec, unit_registry

CHAOS_UNIT = unit_registry.register(UnitSpec(
    name="chaos",
    description="deterministic scheduled fault injection (NaN zones, bad "
                "timesteps, counter flips, pool drains, signals) for "
                "resilience soak testing",
    phase=5,
    timer="chaos",
    implements=(ChaosUnit,),
    step=lambda sim, unit, dt: unit.step(sim, dt),
    timestep=lambda sim, unit: unit.timestep(sim),
    parameters=(
        ParameterSpec("chaos_enable", False,
                      doc="master switch for fault injection"),
        ParameterSpec("chaos_seed", 42,
                      doc="RNG seed for injection-target choices"),
        ParameterSpec("chaos_start", 2,
                      doc="first step a fault fires on",
                      validator=lambda v: v >= 1),
        ParameterSpec("chaos_every", 3,
                      doc="steps between scheduled faults",
                      validator=lambda v: v >= 1),
        ParameterSpec("chaos_faults", ",".join(FAULT_KINDS),
                      doc="comma-separated fault kinds, cycled in order"),
    ),
))

__all__ = ["CHAOS_UNIT"]
