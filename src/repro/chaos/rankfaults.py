"""Rank-targeted fault injection for the simulation fabric.

:class:`~repro.chaos.injector.ChaosUnit` corrupts *one simulation*;
under a rank decomposition the interesting failures are per-rank: a
rank thread dying mid-step, a straggler stalling everyone at the
barrier, corruption flowing across a halo exchange, a node's hugetlb
pool drained out from under a respawning rank.  :class:`RankChaos`
schedules exactly those, on the same deterministic ``start``/``every``
cycle the serial injector uses, with the target rank derived from the
seed and step number — two runs with one configuration inject
identically, which is what lets the resilience experiment compare a
faulted run bit-for-bit against its unfaulted reference.

Faults fire **once** per scheduled step (the ``fired`` set is shared
across rank threads under a lock and deliberately survives the
coordinated rollback): recovery replays the step clean, modelling
transient failures the way the serial injector does.

Delivery points:

``kill_rank``
    the target rank raises :class:`~repro.util.errors.RankKilled` at
    step start → the barrier aborts, survivors unwind, and the fabric's
    recovery loop restores the last coordinated snapshot and respawns
    the rank from its checkpoint;
``stall_rank``
    the target rank sleeps ``stall_s`` before stepping → with a barrier
    timeout configured the watchdog raises
    :class:`~repro.util.errors.FabricTimeout` naming the straggler;
``corrupt_halo``
    one interior density zone of an owned block of the target rank is
    poisoned at step start → the NaN crosses the halo exchange into the
    neighbour's surrogate and trips the post-step guards on *both*
    sides, exercising multi-rank rollback;
``drain_pool_at_rank``
    delivered in the main thread at the step boundary: the node
    kernel's hugetlb pools are drained, so a later respawn's
    re-admission degrades to base pages on the
    :class:`~repro.kernel.vmm.DegradationLog` instead of dying.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.util.errors import ConfigurationError, RankKilled

#: every rank-targeted fault kind, in default schedule order
RANK_FAULT_KINDS = ("kill_rank", "stall_rank", "corrupt_halo",
                    "drain_pool_at_rank")


@dataclass(frozen=True)
class RankInjection:
    """One rank-targeted fault as it was actually delivered."""

    step: int
    kind: str
    rank: int
    detail: str

    def to_json(self) -> dict:
        return {"step": self.step, "kind": self.kind, "rank": self.rank,
                "detail": self.detail}


class RankChaos:
    """Scheduled rank-targeted faults on a deterministic cycle.

    Faults fire on steps ``start, start + every, ...``, cycling through
    ``faults`` in order.  The target rank is ``target_rank`` when given,
    else a seeded hash of the step number — deterministic without any
    RNG state, so concurrent rank threads need no draw ordering.
    """

    def __init__(self, *, faults: tuple[str, ...] = RANK_FAULT_KINDS,
                 start: int = 2, every: int = 3, seed: int = 0,
                 target_rank: int | None = None, stall_s: float = 0.05,
                 kernel=None, enabled: bool = True) -> None:
        unknown = set(faults) - set(RANK_FAULT_KINDS)
        if unknown:
            raise ConfigurationError(
                f"unknown rank fault kind(s): {sorted(unknown)} "
                f"(known: {', '.join(RANK_FAULT_KINDS)})")
        if start < 1 or every < 1:
            raise ConfigurationError("rank chaos start/every must be >= 1")
        if stall_s < 0.0:
            raise ConfigurationError("stall_s cannot be negative")
        self.faults = tuple(faults)
        self.start = start
        self.every = every
        self.seed = seed
        self.target_rank = target_rank
        self.stall_s = stall_s
        #: optional simulated node kernel (drain_pool_at_rank target and
        #: the respawn re-admission pool)
        self.kernel = kernel
        self.enabled = enabled
        #: steps whose fault already fired — shared across rank threads,
        #: survives the coordinated rollback so recovery replays clean
        self.fired: set[int] = set()
        self.injections: list[RankInjection] = []
        self._lock = threading.Lock()

    # --- schedule -----------------------------------------------------------
    def fault_for(self, n: int) -> str | None:
        """The fault scheduled for step ``n`` (None: step is clean)."""
        if not self.enabled or not self.faults or n < self.start:
            return None
        if (n - self.start) % self.every:
            return None
        return self.faults[((n - self.start) // self.every)
                           % len(self.faults)]

    def target_for(self, n: int, n_ranks: int) -> int:
        """The deterministic target rank for step ``n``."""
        if self.target_rank is not None:
            return self.target_rank % n_ranks
        # a seeded multiplicative hash: deterministic, RNG-free (rank
        # threads deliver concurrently, so draws could not be ordered)
        return ((self.seed * 2654435761 + n * 40503) >> 7) % n_ranks

    def _claim(self, n: int) -> bool:
        """Atomically claim step ``n``'s fault (False: already fired)."""
        with self._lock:
            if n in self.fired:
                return False
            self.fired.add(n)
            return True

    def _log(self, n: int, kind: str, rank: int, detail: str) -> None:
        with self._lock:
            self.injections.append(
                RankInjection(step=n, kind=kind, rank=rank, detail=detail))

    # --- delivery (called by the fabric) ------------------------------------
    def deliver_rank(self, fabric, ctx, n: int) -> None:
        """Rank-thread delivery point, at the start of step ``n``."""
        kind = self.fault_for(n)
        if kind in (None, "drain_pool_at_rank"):
            return
        target = self.target_for(n, fabric.n_ranks)
        if ctx.rank != target or not self._claim(n):
            return
        if kind == "kill_rank":
            self._log(n, kind, ctx.rank, "rank thread killed at step start")
            raise RankKilled(ctx.rank,
                             f"chaos: rank {ctx.rank} killed at step {n}")
        if kind == "stall_rank":
            self._log(n, kind, ctx.rank,
                      f"rank stalled {self.stall_s:.3f} s before stepping")
            time.sleep(self.stall_s)
            return
        # corrupt_halo: poison an owned interior zone; the halo exchange
        # carries the NaN into the neighbour's surrogate copy
        blocks = ctx.grid.leaf_blocks()
        block = blocks[((self.seed + n * 131) % len(blocks))]
        ctx.grid.interior(block, "dens")[0, 0, 0] = float("nan")
        self._log(n, kind, ctx.rank,
                  f"dens[0,0,0] of owned block {block.bid} <- NaN "
                  f"(crosses the halo exchange into neighbour guards)")

    def deliver_main(self, fabric, n: int) -> None:
        """Main-thread delivery point, before step ``n``'s threads spawn
        (kernel pool mutation must not race the rank threads)."""
        if self.fault_for(n) != "drain_pool_at_rank":
            return
        target = self.target_for(n, fabric.n_ranks)
        if not self._claim(n):
            return
        if self.kernel is None:
            self._log(n, "drain_pool_at_rank", target,
                      "skipped: no kernel attached")
            return
        drained = []
        for size, pool in sorted(self.kernel.pools.items()):
            pages = pool.available_for_reservation
            if pages > 0:
                pool.reserve(pages)
                drained.append(f"{pages} x {size} B")
        self._log(n, "drain_pool_at_rank", target,
                  "node pool drained: "
                  + (", ".join(drained) if drained
                     else "nothing (already empty)")
                  + f" (rank {target}'s next re-admission must degrade)")


__all__ = ["RankChaos", "RankInjection", "RANK_FAULT_KINDS"]
