"""The fault injector: scheduled, deterministic, supervisor-recoverable.

Each fault kind exercises one of the supervisor's recovery paths:

``nan``
    poisons one interior density zone → the post-step state guard trips,
    the step rolls back, and the retry (no re-injection) succeeds;
``guardcell``
    corrupts a guard-layer zone → self-heals when the next sweep refills
    guard cells, proving the guards don't false-positive on guard zones;
``bad_dt``
    the unit's timestep contributor returns ``-1.0`` → the supervisor's
    pre-step dt validation trips and retries from the last good dt;
``raise``
    raises :class:`~repro.util.errors.PhysicsError` mid-step → rollback;
``counter_flip``
    writes NaN into a PAPI counter total → the counter guard trips;
``pool_drain``
    reserves every remaining hugetlb page (static + overcommit) → later
    ``MAP_HUGETLB`` requests degrade to base pages, counted by the
    kernel's :class:`~repro.kernel.vmm.DegradationLog`;
``signal``
    delivers SIGTERM to the running process → the supervisor finishes
    the in-flight step, writes a final checkpoint, and stops cleanly.

A fault fires **once** per scheduled step (the ``fired`` set): when the
supervisor rolls a poisoned step back and retries it, the injection does
not repeat — faults model transient corruption, and re-injecting on
retry would turn every recoverable fault into an unrecoverable one.
The unit deliberately registers no ``save_state``, so a rollback never
resets ``fired``.
"""

from __future__ import annotations

import math
import signal as signal_module
from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError, PhysicsError

#: every fault kind the injector knows, in default schedule order
FAULT_KINDS = ("nan", "guardcell", "bad_dt", "raise", "counter_flip",
               "pool_drain", "signal")


@dataclass(frozen=True)
class Injection:
    """One fault as it was actually delivered."""

    step: int
    kind: str
    detail: str


class ChaosUnit:
    """Scheduled fault injection, composed like any physics unit.

    Faults fire on steps ``start, start + every, start + 2*every, ...``,
    cycling through ``faults`` in order; ``seed`` feeds a private RNG
    used to pick injection targets (which block, which counter), so two
    runs with the same configuration inject identically.
    """

    def __init__(self, *, faults: tuple[str, ...] = FAULT_KINDS,
                 start: int = 2, every: int = 3, seed: int = 0,
                 kernel=None, raise_signal: int = signal_module.SIGTERM,
                 enabled: bool = True) -> None:
        unknown = set(faults) - set(FAULT_KINDS)
        if unknown:
            raise ConfigurationError(
                f"unknown chaos fault kind(s): {sorted(unknown)} "
                f"(known: {', '.join(FAULT_KINDS)})")
        if start < 1 or every < 1:
            raise ConfigurationError("chaos start/every must be >= 1")
        self.faults = tuple(faults)
        self.start = start
        self.every = every
        self.rng = np.random.default_rng(seed)
        #: optional simulated kernel (pool_drain target)
        self.kernel = kernel
        self.raise_signal = raise_signal
        self.enabled = enabled
        #: optional zero-argument callable the ``signal`` fault invokes
        #: *instead of* raising a real OS signal.  ``signal.signal`` is
        #: illegal off the main thread, so the fabric routes rank-level
        #: interruption through this stop flag (checked at the next
        #: barrier point) when it composes chaos into rank simulations.
        self.stop_flag = None
        #: steps whose fault already fired — survives step rollback, so a
        #: retried step is not poisoned again
        self.fired: set[int] = set()
        self.injections: list[Injection] = []

    @classmethod
    def from_params(cls, params, **overrides) -> "ChaosUnit":
        kwargs = dict(
            enabled=params.get("chaos_enable"),
            seed=params.get("chaos_seed"),
            start=params.get("chaos_start"),
            every=params.get("chaos_every"),
            faults=tuple(f.strip() for f in
                         params.get("chaos_faults").split(",") if f.strip()),
        )
        kwargs.update(overrides)
        return cls(**kwargs)

    # --- schedule -----------------------------------------------------------
    def fault_for(self, n: int) -> str | None:
        """The fault scheduled for step ``n`` (None: step is clean)."""
        if not self.enabled or not self.faults or n < self.start:
            return None
        if (n - self.start) % self.every:
            return None
        return self.faults[((n - self.start) // self.every)
                           % len(self.faults)]

    def _log(self, n: int, kind: str, detail: str) -> None:
        self.injections.append(Injection(step=n, kind=kind, detail=detail))

    # --- hooks (wired up by repro.chaos.unit) ----------------------------------
    def timestep(self, sim) -> float:
        """Timestep contributor: the ``bad_dt`` fault's delivery point."""
        n = sim.n_step + 1
        if self.fault_for(n) == "bad_dt" and n not in self.fired:
            self.fired.add(n)
            self._log(n, "bad_dt", "timestep contributor returned -1.0")
            return -1.0
        return math.inf

    def step(self, sim, dt: float) -> None:
        """Deliver the scheduled fault for the step now being taken."""
        n = sim.n_step + 1
        kind = self.fault_for(n)
        if kind is None or kind == "bad_dt" or n in self.fired:
            return
        self.fired.add(n)
        getattr(self, f"_inject_{kind}")(sim, n)

    # --- the faults ---------------------------------------------------------
    def _pick_block(self, sim):
        blocks = sim.grid.leaf_blocks()
        return blocks[int(self.rng.integers(len(blocks)))]

    def _inject_nan(self, sim, n: int) -> None:
        block = self._pick_block(sim)
        sim.grid.interior(block, "dens")[0, 0, 0] = np.nan
        self._log(n, "nan", f"dens[0,0,0] of block {block.bid} <- NaN")

    def _inject_guardcell(self, sim, n: int) -> None:
        block = self._pick_block(sim)
        # zone (0,0,0) of the padded array is a guard zone (nguard > 0)
        iv = sim.grid.var("dens")
        sim.grid.unk[iv, 0, 0, 0, block.slot] = np.nan
        self._log(n, "guardcell",
                  f"guard zone of block {block.bid} <- NaN (self-heals on "
                  f"the next guard-cell fill)")

    def _inject_raise(self, sim, n: int) -> None:
        self._log(n, "raise", "PhysicsError raised from the step hook")
        raise PhysicsError(f"chaos: injected unit failure at step {n}")

    def _inject_counter_flip(self, sim, n: int) -> None:
        events = sorted(sim.bank.totals, key=lambda e: e.name)
        event = events[int(self.rng.integers(len(events)))]
        sim.bank.totals[event] = float("nan")
        self._log(n, "counter_flip", f"counter {event.name} <- NaN")

    def _inject_pool_drain(self, sim, n: int) -> None:
        if self.kernel is None:
            self._log(n, "pool_drain", "skipped: no kernel attached")
            return
        drained = []
        for size, pool in sorted(self.kernel.pools.items()):
            pages = pool.available_for_reservation
            if pages > 0:
                pool.reserve(pages)
                drained.append(f"{pages} x {size} B")
        self._log(n, "pool_drain",
                  "reserved " + (", ".join(drained) if drained
                                 else "nothing (already empty)"))

    def _inject_signal(self, sim, n: int) -> None:
        name = signal_module.Signals(self.raise_signal).name
        if self.stop_flag is not None:
            self._log(n, "signal",
                      f"{name} routed to the fabric stop flag (rank "
                      f"thread: raise_signal would need the main thread)")
            self.stop_flag()
            return
        self._log(n, "signal", f"{name} delivered to self")
        signal_module.raise_signal(self.raise_signal)


__all__ = ["ChaosUnit", "Injection", "FAULT_KINDS"]
