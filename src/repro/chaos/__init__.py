"""Deterministic fault injection for the run supervisor.

The chaos unit is a registered :class:`~repro.core.UnitSpec` like any
physics unit: composed into a :class:`~repro.driver.simulation.Simulation`
it injects scheduled faults — NaN zones, corrupted guard cells, bad
timesteps, mid-step exceptions, counter flips, hugetlb pool drains,
signals — that the supervisor must survive.  The schedule is a pure
function of the step number and the configured seed, so a soak run is
exactly reproducible.
"""

from repro.chaos.injector import FAULT_KINDS, ChaosUnit, Injection
from repro.chaos.rankfaults import RANK_FAULT_KINDS, RankChaos, RankInjection

__all__ = ["ChaosUnit", "Injection", "FAULT_KINDS",
           "RankChaos", "RankInjection", "RANK_FAULT_KINDS"]
