"""The chaos soak: a supervised run under scheduled fault injection.

Registered as the ``soak`` experiment (``python -m repro.experiments
soak``) and runnable directly (``python -m repro.chaos.soak``) as the
subprocess target of the signal-handling test.  One Sod shock tube
evolves under the :class:`~repro.driver.supervisor.RunSupervisor` while
the :class:`~repro.chaos.injector.ChaosUnit` cycles through its fault
kinds; a delivered signal ends the run with a final checkpoint, from
which the soak resumes — like a re-submitted cluster job — until the
step budget is done.  Everything lands in ``RUN_REPORT.json``.

Environment knobs (all optional; the CI chaos-soak job sets them):

``REPRO_SOAK_STEPS``   total steps to evolve (default 24)
``REPRO_SOAK_SEED``    chaos schedule/target seed (default 42)
``REPRO_SOAK_FAULTS``  comma-separated fault kinds; ``none`` disables
                       injection entirely (default: every kind)
``REPRO_SOAK_OUT``     directory for checkpoints + RUN_REPORT.json
                       (default: no files written)
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path

from repro.chaos.injector import FAULT_KINDS, ChaosUnit
from repro.driver.io import restart_simulation
from repro.driver.simulation import Simulation
from repro.driver.supervisor import RunReport, RunSupervisor
from repro.kernel.params import ookami_config
from repro.kernel.vmm import Kernel
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sod import SodProblem
from repro.toolchain.allocator import FujitsuLargePage
from repro.util import artifacts

#: the soak workload's driver keywords (shared by fresh build and resume)
_SIM_KWARGS = dict(nrefs=4, refine_var="pres", refine_cutoff=0.6,
                   derefine_cutoff=0.1, rng_seed=7)


def _units(chaos: ChaosUnit | None) -> list:
    eos = GammaLawEOS(gamma=1.4)
    units: list = [HydroUnit(eos, cfl=0.6)]
    if chaos is not None:
        units.append(chaos)
    return units


def build_sim(chaos: ChaosUnit | None = None) -> Simulation:
    """The soak workload: the 1-d Sod shock tube (cheap, deterministic)."""
    tree = AMRTree(ndim=1, nblockx=2, max_level=2,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=1, nxb=16, nyb=1, nzb=1, nguard=4, maxblocks=64)
    grid = Grid(tree, spec)
    eos = GammaLawEOS(gamma=1.4)
    SodProblem().initialize(grid, eos)
    units = _units(chaos)
    return Simulation(grid, *units, **_SIM_KWARGS)


def _supervisor(sim: Simulation, out_dir, kernel) -> RunSupervisor:
    return RunSupervisor(sim, checkpoint_dir=out_dir, basenm="soak_",
                         checkpoint_interval_step=4, checkpoint_keep=3,
                         dtmin=1.0e-12, retry_factor=0.5, max_retries=4,
                         kernel=kernel)


def run_soak(*, steps: int = 24, seed: int = 42,
             faults: tuple[str, ...] | None = None,
             out_dir: str | Path | None = None,
             quiet: bool = True) -> dict:
    """Run the soak; returns the JSON-ready result payload.

    ``faults=()`` runs the supervisor with no injection at all (the
    control case the continuity tests compare against).
    """
    kernel = Kernel(ookami_config())
    # a modest static pool (128 MiB of 2 MiB pages): enough that the
    # pool_drain fault has something to drain and the post-run probe gets
    # huge pages when chaos leaves the pool alone
    kernel.pool().set_pool_size(64)
    faults = FAULT_KINDS if faults is None else tuple(faults)
    chaos = (ChaosUnit(faults=faults, start=2, every=3, seed=seed,
                       kernel=kernel) if faults else None)
    sim = build_sim(chaos)
    # the soak always checkpoints (the signal fault's recovery IS the
    # resume-from-checkpoint path); without an out_dir they go to a
    # scratch directory that dies with the run
    scratch = None
    if out_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-soak-")
        chk_dir = Path(scratch.name)
    else:
        out_dir = Path(out_dir)
        chk_dir = out_dir

    reports: list[RunReport] = []
    resumes = 0
    while True:
        report = _supervisor(sim, chk_dir, kernel).run(nend=steps,
                                                       quiet=quiet)
        reports.append(report)
        injected_signal = (chaos is not None and
                           any(i.kind == "signal" and i.step > sim.n_step - 2
                               for i in chaos.injections))
        if (report.interrupted and report.final_checkpoint
                and sim.n_step < steps and injected_signal):
            # the chaos signal fault ended the run cleanly: resume from
            # the final checkpoint, exactly like a re-submitted job (an
            # *external* signal instead ends the soak with the resumable
            # checkpoint in hand)
            sim = restart_simulation(report.final_checkpoint,
                                     *_units(chaos), **_SIM_KWARGS)
            resumes += 1
            continue
        break

    # prove the pool_drain degradation path end to end: a large-page
    # allocation on the (possibly drained) kernel must never fail — it
    # degrades to base pages and the kernel counts the downgrade
    space = kernel.new_address_space("soak-probe")
    FujitsuLargePage().allocate(space, 8 << 20, "soak-probe")

    injections = list(chaos.injections) if chaos else []
    payload = {
        "workload": "sod",
        "steps_requested": steps,
        "steps_completed": sim.n_step,
        "t_final": sim.t,
        "seed": seed,
        "faults_scheduled": list(faults),
        "faults_exercised": sorted({i.kind for i in injections}),
        "injections": [asdict(i) for i in injections],
        "resumes": resumes,
        "runs": [asdict(r) for r in reports],
        "degradations": {
            "counts": dict(kernel.degradations.counts),
            "details": dict(kernel.degradations.details),
        },
    }
    if out_dir is not None:
        path = out_dir / "RUN_REPORT.json"
        out_dir.mkdir(parents=True, exist_ok=True)
        with artifacts.atomic_write(path) as tmp:
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True)
                           + "\n")
        payload["report_path"] = str(path)
    if scratch is not None:
        scratch.cleanup()
    return payload


def render_soak(payload: dict) -> str:
    """Human-readable soak summary (the experiment's rendered artefact)."""
    lines = ["CHAOS SOAK", "=" * 54]
    lines.append(f"workload          {payload['workload']}  "
                 f"(seed {payload['seed']})")
    lines.append(f"steps             {payload['steps_completed']}"
                 f"/{payload['steps_requested']}"
                 f"  (t_final {payload['t_final']:.6e})")
    lines.append(f"resumes           {payload['resumes']}")
    total_trips = sum(r["guard_trips"] for r in payload["runs"])
    total_retried = sum(len(r["retries"]) for r in payload["runs"])
    total_chk = sum(len(r["checkpoints"]) for r in payload["runs"])
    lines.append(f"guard trips       {total_trips}"
                 f"  (retried steps: {total_retried})")
    lines.append(f"checkpoints       {total_chk} rotated"
                 + (f", report {payload['report_path']}"
                    if "report_path" in payload else ""))
    lines.append("injections:")
    if payload["injections"]:
        for inj in payload["injections"]:
            lines.append(f"  step {inj['step']:4d}  {inj['kind']:<13}"
                         f" {inj['detail']}")
    else:
        lines.append("  (none — chaos disabled)")
    lines.append("degradations:")
    counts = payload["degradations"]["counts"]
    if counts:
        for kind in sorted(counts):
            lines.append(f"  {kind:<28} x{counts[kind]}")
    else:
        lines.append("  (none)")
    failed = [r for r in payload["runs"] if r["failure"]]
    interrupted = payload["runs"] and payload["runs"][-1]["interrupted"]
    if failed:
        outcome = "FAILED (retry budget exhausted)"
    elif interrupted:
        outcome = (f"interrupted by {interrupted} "
                   f"(resumable checkpoint written)")
    elif payload["steps_completed"] < payload["steps_requested"]:
        outcome = "FAILED (stopped short)"
    else:
        outcome = "survived every injected fault"
    lines.append("outcome           " + outcome)
    return "\n".join(lines)


def _env_faults() -> tuple[str, ...] | None:
    raw = os.environ.get("REPRO_SOAK_FAULTS")
    if raw is None:
        return None
    if raw.strip().lower() in ("", "none"):
        return ()
    return tuple(f.strip() for f in raw.split(",") if f.strip())


def soak_experiment(*, quick: bool = False) -> str:
    """The ``soak`` experiment runner (env-configured, see module doc)."""
    steps = int(os.environ.get("REPRO_SOAK_STEPS", "12" if quick else "24"))
    seed = int(os.environ.get("REPRO_SOAK_SEED", "42"))
    out = os.environ.get("REPRO_SOAK_OUT")
    payload = run_soak(steps=steps, seed=seed, faults=_env_faults(),
                       out_dir=out)
    return render_soak(payload)


def main() -> int:
    """Entry point for ``python -m repro.chaos.soak`` (subprocess target
    of the signal-handling test: step lines go to stdout so the parent
    knows when the run is mid-flight, and the exit code reports the
    outcome)."""
    steps = int(os.environ.get("REPRO_SOAK_STEPS", "500"))
    seed = int(os.environ.get("REPRO_SOAK_SEED", "42"))
    out = os.environ.get("REPRO_SOAK_OUT")
    faults = _env_faults()
    payload = run_soak(steps=steps, seed=seed,
                       faults=() if faults is None else faults,
                       out_dir=out, quiet=False)
    print(render_soak(payload), flush=True)
    failed = any(r["failure"] for r in payload["runs"])
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
