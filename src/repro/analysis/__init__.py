"""Post-processing utilities: flattening AMR data for analysis."""

from repro.analysis.profiles import (
    scatter_variable,
    radial_profile,
    peak_location,
    line_profile,
)

__all__ = ["scatter_variable", "radial_profile", "peak_location",
           "line_profile"]
