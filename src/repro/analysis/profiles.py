"""Flattening AMR block data into analysis-friendly arrays.

The AMR mesh stores data block-by-block at mixed resolutions; analysis
and verification usually want flat coordinate/value arrays, radial
averages about a blast or stellar centre, or 1-d cuts.  These helpers
are what the examples and the verification tests build on.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.grid import Grid
from repro.util.errors import MeshError


def scatter_variable(grid: Grid, name: str):
    """All leaf interior zones as flat arrays: (x, y, z, value, cell_volume).

    Coordinates are cell centres; mixed-resolution data simply yields
    points at different spacings (weight by the returned volumes for
    integrals).
    """
    xs, ys, zs, vals, vols = [], [], [], [], []
    for block in grid.leaf_blocks():
        x, y, z = grid.cell_centers(block)
        q = grid.interior(block, name)
        shape = q.shape
        xs.append(np.broadcast_to(x, shape).ravel())
        ys.append(np.broadcast_to(y, shape).ravel())
        zs.append(np.broadcast_to(z, shape).ravel())
        vals.append(q.ravel())
        vols.append(np.full(q.size, grid.cell_volume(block)))
    if not xs:
        raise MeshError("no leaf blocks to scatter")
    return (np.concatenate(xs), np.concatenate(ys), np.concatenate(zs),
            np.concatenate(vals), np.concatenate(vols))


def _radii(grid: Grid, x, y, z, center):
    ndim = grid.spec.ndim
    r2 = (x - center[0]) ** 2
    if ndim > 1:
        r2 = r2 + (y - center[1]) ** 2
    if ndim > 2:
        r2 = r2 + (z - center[2]) ** 2
    return np.sqrt(r2)


def radial_profile(grid: Grid, name: str,
                   center: tuple[float, float, float] = (0.0, 0.0, 0.0),
                   n_bins: int = 64, r_max: float | None = None,
                   volume_weighted: bool = True):
    """Volume-weighted radial average about ``center``.

    Returns ``(bin_centers, mean_values)``; empty bins carry NaN.
    """
    x, y, z, vals, vols = scatter_variable(grid, name)
    r = _radii(grid, x, y, z, center)
    if r_max is None:
        r_max = float(r.max())
    edges = np.linspace(0.0, r_max, n_bins + 1)
    idx = np.clip(np.searchsorted(edges, r) - 1, 0, n_bins - 1)
    w = vols if volume_weighted else np.ones_like(vols)
    num = np.bincount(idx, weights=vals * w, minlength=n_bins)
    den = np.bincount(idx, weights=w, minlength=n_bins)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = np.where(den > 0.0, num / den, np.nan)
    return 0.5 * (edges[:-1] + edges[1:]), mean


def peak_location(grid: Grid, name: str,
                  center: tuple[float, float, float] = (0.0, 0.0, 0.0)):
    """(radius, value) of the variable's maximum — e.g. a shock position."""
    x, y, z, vals, _ = scatter_variable(grid, name)
    i = int(np.argmax(vals))
    r = _radii(grid, x[i:i + 1], y[i:i + 1], z[i:i + 1], center)
    return float(r[0]), float(vals[i])


def line_profile(grid: Grid, name: str, axis: int = 0):
    """A sorted 1-d cut: coordinates along ``axis`` and values, for every
    zone (useful for planar problems like Sod)."""
    x, y, z, vals, _ = scatter_variable(grid, name)
    coord = (x, y, z)[axis]
    order = np.argsort(coord, kind="stable")
    return coord[order], vals[order]


__all__ = ["scatter_variable", "radial_profile", "peak_location",
           "line_profile"]
