"""Counters and latency histograms for the experiment service.

A deliberately small, stdlib-only metrics layer in the Prometheus
idiom: named counters with label sets, and histograms with fixed
log-spaced latency buckets.  Two render targets:

* :meth:`MetricsRegistry.render_prometheus` — the ``/metrics`` text
  exposition format (counters as ``name{labels} value``, histograms as
  cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``);
* :meth:`MetricsRegistry.render_dict` — a JSON-ready snapshot embedded
  in ``SERVICE_REPORT.json`` and served on ``/v1/stats``, with p50/p90/
  p99 estimates per histogram.

Thread-safe: request handling runs on the event loop but computations
(and their cache-op accounting) run in worker threads, so every mutation
holds one lock.  Percentiles come from the retained samples while they
fit in memory (exact for any soak this repo runs) and degrade to bucket
upper-bound interpolation beyond the retention cap.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left, insort
from dataclasses import dataclass, field

#: histogram bucket upper bounds, in milliseconds (log-spaced 1-2-5)
DEFAULT_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                      500.0, 1000.0, 2000.0, 5000.0, 10000.0, 30000.0,
                      60000.0, math.inf)

#: exact-percentile retention cap per histogram; beyond it percentiles
#: fall back to bucket interpolation (counters and buckets never cap)
SAMPLE_CAP = 100_000


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def _format_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"


@dataclass
class Histogram:
    """One latency distribution: buckets + retained samples."""

    buckets_ms: tuple[float, ...] = DEFAULT_BUCKETS_MS
    counts: list[int] = field(default_factory=list)
    sum_ms: float = 0.0
    count: int = 0
    min_ms: float = math.inf
    max_ms: float = 0.0
    _samples: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * len(self.buckets_ms)

    def observe(self, value_ms: float) -> None:
        value_ms = max(0.0, float(value_ms))
        self.counts[bisect_left(self.buckets_ms, value_ms)] += 1
        self.sum_ms += value_ms
        self.count += 1
        self.min_ms = min(self.min_ms, value_ms)
        self.max_ms = max(self.max_ms, value_ms)
        if len(self._samples) < SAMPLE_CAP:
            insort(self._samples, value_ms)

    def percentile(self, p: float) -> float | None:
        """The *p*-th percentile (0-100); ``None`` before any sample."""
        if self.count == 0:
            return None
        if self._samples and len(self._samples) == self.count:
            rank = max(0, math.ceil(p / 100.0 * self.count) - 1)
            return self._samples[min(rank, self.count - 1)]
        # retention overflowed: answer from the cumulative buckets
        target = p / 100.0 * self.count
        seen = 0
        for bound, n in zip(self.buckets_ms, self.counts):
            seen += n
            if seen >= target:
                return self.max_ms if math.isinf(bound) else bound
        return self.max_ms

    def snapshot(self) -> dict[str, float | int | None]:
        return {
            "count": self.count,
            "sum_ms": self.sum_ms,
            "min_ms": None if self.count == 0 else self.min_ms,
            "max_ms": None if self.count == 0 else self.max_ms,
            "mean_ms": self.sum_ms / self.count if self.count else None,
            "p50_ms": self.percentile(50),
            "p90_ms": self.percentile(90),
            "p99_ms": self.percentile(99),
        }


class MetricsRegistry:
    """Process-wide named counters and histograms with label sets."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, dict[tuple, float]] = {}
        self._histograms: dict[str, dict[tuple, Histogram]] = {}

    # --- recording --------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + value

    def set(self, name: str, value: float, **labels: str) -> None:
        """Set a counter to an absolute value (for mirroring externally
        accumulated totals like ``SessionStats`` into the exposition)."""
        with self._lock:
            self._counters.setdefault(name, {})[_label_key(labels)] = value

    def observe(self, name: str, value_ms: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._histograms.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = series[key] = Histogram()
            hist.observe(value_ms)

    def counter_value(self, name: str, **labels: str) -> float:
        with self._lock:
            return self._counters.get(name, {}).get(_label_key(labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all label sets."""
        with self._lock:
            return sum(self._counters.get(name, {}).values())

    def histogram(self, name: str, **labels: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name, {}).get(_label_key(labels))

    # --- rendering --------------------------------------------------------
    def render_prometheus(self) -> str:
        """The ``/metrics`` payload (text exposition format, version 0.0.4)."""
        with self._lock:
            lines: list[str] = []
            for name in sorted(self._counters):
                lines.append(f"# TYPE {name} counter")
                for key, value in sorted(self._counters[name].items()):
                    value_text = (str(int(value))
                                  if float(value).is_integer() else
                                  repr(value))
                    lines.append(f"{name}{_format_labels(key)} {value_text}")
            for name in sorted(self._histograms):
                lines.append(f"# TYPE {name} histogram")
                for key, hist in sorted(self._histograms[name].items()):
                    cumulative = 0
                    for bound, n in zip(hist.buckets_ms, hist.counts):
                        cumulative += n
                        le = "+Inf" if math.isinf(bound) else repr(bound)
                        labels = dict(key)
                        labels["le"] = le
                        lines.append(
                            f"{name}_bucket{_format_labels(_label_key(labels))}"
                            f" {cumulative}")
                    lines.append(
                        f"{name}_sum{_format_labels(key)} {hist.sum_ms!r}")
                    lines.append(
                        f"{name}_count{_format_labels(key)} {hist.count}")
            return "\n".join(lines) + "\n"

    def render_dict(self) -> dict:
        """JSON-ready snapshot for ``SERVICE_REPORT.json`` / ``/v1/stats``."""
        with self._lock:
            counters = {
                name: {(",".join(f"{k}={v}" for k, v in key) or "_"): value
                       for key, value in series.items()}
                for name, series in sorted(self._counters.items())}
            histograms = {
                name: {(",".join(f"{k}={v}" for k, v in key) or "_"):
                       hist.snapshot()
                       for key, hist in series.items()}
                for name, series in sorted(self._histograms.items())}
        return {"counters": counters, "histograms": histograms}


__all__ = ["MetricsRegistry", "Histogram", "DEFAULT_BUCKETS_MS", "SAMPLE_CAP"]
