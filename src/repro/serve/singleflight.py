"""Coalesce concurrent identical computations (the singleflight pattern).

The experiment service's workload is many near-identical requests: N
clients asking for the same table at once.  The replay cache makes the
*second* request cheap, but only once the first has finished — without
coalescing, N concurrent cold requests each start the same replay and
the cache dedupes none of them (they all miss before any of them
writes).  :class:`Singleflight` closes that window: requests sharing a
key join the in-flight leader's future, so N concurrent requests for
one configuration cost exactly one computation.

Keys are content digests (the same PR 5 digest discipline the replay
cache uses — see :meth:`ExperimentService.request_key`), so "identical
request" means identical *inputs*, never just an equal URL string.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, TypeVar

T = TypeVar("T")


@dataclass
class SingleflightStats:
    """Counters surfaced on ``/metrics``."""

    #: calls that started a computation (one per distinct in-flight key)
    leaders: int = 0
    #: calls that joined an already-in-flight leader instead of computing
    coalesced: int = 0
    #: leader computations that raised (waiters see the same exception)
    failures: int = 0


@dataclass
class Singleflight:
    """Per-key coalescing of concurrent awaitable computations.

    Single-event-loop discipline: all bookkeeping happens between
    awaits, so no locks are needed.  The leader's result (or exception)
    is shared with every waiter that arrived while it was in flight;
    once it resolves, the key is live again — later requests start a
    fresh computation (and normally hit the cache the leader warmed).
    """

    stats: SingleflightStats = field(default_factory=SingleflightStats)

    def __post_init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}

    def inflight(self) -> tuple[str, ...]:
        """Keys currently being computed (eviction pins these)."""
        return tuple(self._inflight)

    async def do(self, key: str,
                 thunk: Callable[[], Awaitable[T]]) -> tuple[T, bool]:
        """Run ``thunk`` unless *key* is already in flight.

        Returns ``(result, coalesced)`` where ``coalesced`` tells the
        caller whether it waited on another request's computation (the
        service labels such responses and counts them).  A waiter being
        cancelled never cancels the leader — the future is shielded, so
        one impatient client cannot fail the N-1 others.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.stats.coalesced += 1
            return await asyncio.shield(existing), True
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.stats.leaders += 1
        try:
            result = await thunk()
        except BaseException as exc:
            self.stats.failures += 1
            if not future.cancelled():
                future.set_exception(exc)
                # mark retrieved: with zero waiters nobody else reads it
                future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(result)
            return result, False
        finally:
            self._inflight.pop(key, None)


__all__ = ["Singleflight", "SingleflightStats"]
