"""Soak the experiment service: hundreds of clients, one cache story.

``python -m repro.serve.soak`` stands up an in-process server over a
throwaway replay store and fires two bursts of concurrent HTTP clients
at it — a **cold** burst (empty store: every distinct request must
coalesce onto one computation) and a **warm** burst (every request must
be answered from response memory in milliseconds).  It then checks the
contracts the serving layer advertises:

* every response is 200 and its ``sha256`` matches the offline
  pipeline's output for the same experiment (byte-identity);
* the session performed at most
  :data:`~repro.experiments.report.QUICK_REPORT_REPLAY_BUDGET` distinct
  TLB replays for the whole burst (singleflight + content-addressed
  dedup did their job);
* ``coalesced >= cold_clients - replay_budget`` — concurrent identical
  requests joined in-flight leaders instead of recomputing;
* warm-burst p50 latency is under the advertised bound (50 ms).

The structured service report — plus a ``soak`` section recording every
check — is written to ``--out`` (default ``SERVICE_REPORT.json``); the
exit code is 0 iff all checks pass.  CI's ``serve-smoke`` job runs this
with ``--clients 200`` and uploads the report.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.experiments.registry import experiment
from repro.experiments.report import QUICK_REPORT_REPLAY_BUDGET
from repro.perfmodel.session import ReplaySession, session_scope
from repro.serve.http import HttpServer
from repro.serve.service import ExperimentService
from repro.util.errors import ConfigurationError

#: the serving latency contract checked against the warm burst
WARM_P50_BOUND_MS = 50.0

#: every deterministic registry target (the chaos-soak experiment is
#: excluded: it reads REPRO_SOAK_* from the environment, so it is not a
#: pure function of (name, quick) the way the cache key assumes)
DEFAULT_TARGETS = ("all", "table1", "table2", "figure1", "compilers",
                   "toys", "matrix", "geometry", "porting")


def offline_reference(targets: tuple[str, ...], *,
                      quick: bool) -> dict[str, str]:
    """SHA-256 of each target's offline (CLI-equivalent) rendering.

    Runs under a fresh memory-only session, exactly like
    ``REPRO_REPLAY_CACHE=off python -m repro.experiments <name>`` — the
    independent ground truth the served bytes must match.
    """
    shas: dict[str, str] = {}
    with session_scope(ReplaySession(persist=False)) as session:
        for name in targets:
            text = experiment(name).run(quick=quick)
            shas[name] = hashlib.sha256(text.encode()).hexdigest()
        session.close()
    return shas


#: client retry window for shed (503) responses — the service drains
#: monotonically (every completed leader lands in response memory and
#: bypasses admission), so a deadline, not an attempt count, is the
#: right bound
CLIENT_RETRY_DEADLINE_S = 300.0
#: floor/ceiling on the honoured Retry-After sleep (seconds)
MIN_BACKOFF_S, MAX_BACKOFF_S = 0.02, 2.0


async def _request_once(host: str, port: int, name: str, *, quick: bool,
                        reader=None, writer=None) -> dict[str, Any]:
    """One raw HTTP exchange; opens a fresh connection unless given one."""
    if reader is None:
        reader, writer = await asyncio.open_connection(host, port)
    try:
        request = (f"GET /v1/report/{name}?quick={int(quick)} HTTP/1.1\r\n"
                   f"Host: {host}\r\nConnection: close\r\n\r\n")
        writer.write(request.encode())
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        if value:
            headers[key.strip().lower()] = value.strip()
    doc = json.loads(body.decode()) if body else {}
    return {"status": status, "headers": headers, "doc": doc}


async def _client(host: str, port: int, name: str, *, quick: bool,
                  go: asyncio.Event) -> dict[str, Any]:
    """One raw-socket client: connect, wait for the barrier, request.

    Connecting first and writing only once *every* client is connected
    makes the burst genuinely concurrent — the server sees all N
    requests before the fastest computation can finish, which is what
    exercises the singleflight layer rather than the response memory.

    A shed response (503) is retried with backoff honouring the
    server's ``Retry-After`` hint, up to a wall-clock deadline — the
    client half of the overload contract: every client converges on a
    200 eventually, the server just controls *when* the work is
    admitted.
    """
    reader, writer = await asyncio.open_connection(host, port)
    await go.wait()
    t0 = time.perf_counter()
    sheds = 0
    retry_after_ok = True
    exchange = await _request_once(host, port, name, quick=quick,
                                   reader=reader, writer=writer)
    while (exchange["status"] == 503
           and time.perf_counter() - t0 < CLIENT_RETRY_DEADLINE_S):
        sheds += 1
        hint = exchange["headers"].get("retry-after")
        if hint is None:
            retry_after_ok = False
        try:
            backoff = float(hint) if hint is not None else MIN_BACKOFF_S
        except ValueError:
            retry_after_ok = False
            backoff = MIN_BACKOFF_S
        # grow past the hint while shed repeatedly, capped: the herd
        # thins itself instead of re-stampeding every retry_after
        backoff = backoff * min(1.0 + 0.25 * sheds, 4.0)
        await asyncio.sleep(min(max(backoff, MIN_BACKOFF_S), MAX_BACKOFF_S))
        exchange = await _request_once(host, port, name, quick=quick)
    elapsed_ms = (time.perf_counter() - t0) * 1e3
    doc = exchange["doc"]
    return {"name": name, "status": exchange["status"],
            "elapsed_ms": elapsed_ms, "sha256": doc.get("sha256"),
            "cache": doc.get("cache"), "error": doc.get("error"),
            "sheds": sheds, "retry_after_ok": retry_after_ok}


async def _burst(host: str, port: int, targets: tuple[str, ...],
                 clients: int, *, quick: bool) -> list[dict[str, Any]]:
    go = asyncio.Event()
    tasks = [asyncio.create_task(
        _client(host, port, targets[i % len(targets)], quick=quick, go=go))
        for i in range(clients)]
    await asyncio.sleep(0.05)  # let every client connect
    go.set()
    return list(await asyncio.gather(*tasks))


def _percentile(samples: list[float], p: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(p / 100 * (len(ordered) - 1))))
    return ordered[rank]


async def soak(*, clients: int, quick: bool, targets: tuple[str, ...],
               store_dir: Path, out: Path,
               admission_limit: int | None = None,
               request_timeout_s: float | None = None) -> int:
    print(f"soak: computing offline reference for {len(targets)} targets "
          f"(quick={quick}) ...", flush=True)
    reference = offline_reference(targets, quick=quick)

    service = ExperimentService(session=ReplaySession(store_dir=store_dir),
                                admission_limit=admission_limit,
                                request_timeout_s=request_timeout_s)
    server = HttpServer(service)
    await server.start()
    print(f"soak: server up at {server.url}; "
          f"cold burst of {clients} clients ...", flush=True)

    try:
        cold = await _burst(server.host, server.port, targets, clients,
                            quick=quick)
        print("soak: warm burst ...", flush=True)
        warm = await _burst(server.host, server.port, targets, clients,
                            quick=quick)
    finally:
        await server.close()

    checks: list[dict[str, Any]] = []

    def check(name: str, ok: bool, detail: str) -> None:
        checks.append({"name": name, "ok": bool(ok), "detail": detail})
        print(f"soak: [{'ok' if ok else 'FAIL'}] {name}: {detail}",
              flush=True)

    responses = cold + warm
    bad = [r for r in responses if r["status"] != 200]
    check("all_responses_200", not bad,
          f"{len(responses) - len(bad)}/{len(responses)} OK"
          + (f"; first failure: {bad[0]}" if bad else ""))

    mismatched = [r for r in responses
                  if r["status"] == 200 and r["sha256"] != reference[r["name"]]]
    check("byte_identical_to_offline", not mismatched,
          f"{len(responses) - len(mismatched)}/{len(responses)} responses "
          "match the offline pipeline's SHA-256"
          + (f"; first mismatch: {mismatched[0]['name']}" if mismatched
             else ""))

    replays = service.session.stats.replays
    budget = QUICK_REPORT_REPLAY_BUDGET if quick else None
    if budget is not None:
        check("replays_within_budget", replays <= budget,
              f"{replays} distinct TLB replays <= budget {budget}")

    sf = service.singleflight.stats
    if admission_limit is None:
        floor = len(cold) - (budget if budget is not None else len(targets))
        check("coalescing_effective", sf.coalesced >= floor,
              f"coalesced={sf.coalesced} >= cold_clients({len(cold)}) - "
              f"budget({budget if budget is not None else len(targets)})"
              f" = {floor} (leaders={sf.leaders})")
    else:
        # shedding defers would-be leaders to their retry, so the
        # cold-burst coalescing floor no longer applies; check the
        # overload contract instead
        shed_total = int(service.metrics.counter_total("serve_shed_total"))
        check("sheds_observed", shed_total >= 1,
              f"serve_shed_total={shed_total} with admission_limit="
              f"{admission_limit} and {len(targets)} distinct targets "
              "bursting concurrently")
        check("sheds_carry_retry_after",
              all(r["retry_after_ok"] for r in responses),
              "every 503 carried a parseable Retry-After header "
              f"({sum(r['sheds'] for r in responses)} shed responses "
              "seen by clients)")
        check("retries_converged",
              all(r["status"] == 200 for r in responses),
              "every shed client converged on a 200 within the "
              f"{CLIENT_RETRY_DEADLINE_S:.0f} s retry deadline")

    warm_latencies = [r["elapsed_ms"] for r in warm if r["status"] == 200]
    warm_p50 = _percentile(warm_latencies, 50)
    check("warm_p50_under_bound", warm_p50 < WARM_P50_BOUND_MS,
          f"warm p50 {warm_p50:.2f} ms < {WARM_P50_BOUND_MS:.0f} ms "
          f"(p99 {_percentile(warm_latencies, 99):.2f} ms)")

    report = service.service_report()
    report["soak"] = {
        "clients": clients,
        "quick": quick,
        "targets": list(targets),
        "replay_budget": budget,
        "admission_limit": admission_limit,
        "request_timeout_s": request_timeout_s,
        "client_sheds": sum(r["sheds"] for r in responses),
        "warm_p50_ms": warm_p50,
        "warm_p99_ms": _percentile(warm_latencies, 99),
        "cold_p50_ms": _percentile(
            [r["elapsed_ms"] for r in cold if r["status"] == 200], 50),
        "checks": checks,
        "passed": all(c["ok"] for c in checks),
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"soak: wrote {out}", flush=True)

    service.close()
    ok = all(c["ok"] for c in checks)
    print(f"soak: {'PASS' if ok else 'FAIL'} "
          f"({sum(c['ok'] for c in checks)}/{len(checks)} checks)",
          flush=True)
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.soak",
        description="Concurrency soak for the experiment service.")
    parser.add_argument("--clients", type=int, default=200,
                        help="concurrent clients per burst (default: 200)")
    parser.add_argument("--quick", action="store_true",
                        help="quick experiment matrix (the CI setting)")
    parser.add_argument("--targets", nargs="+", default=None,
                        metavar="NAME", help="experiments to round-robin "
                        f"(default: {' '.join(DEFAULT_TARGETS)})")
    parser.add_argument("--store-dir", type=Path, default=None,
                        help="replay store for the service under test "
                             "(default: a throwaway temp dir)")
    parser.add_argument("--admission-limit", type=int, default=None,
                        metavar="N", help="shed would-be-new-leader "
                        "requests beyond N concurrent computations "
                        "(503 + Retry-After; default: admit all)")
    parser.add_argument("--request-timeout", type=float, default=None,
                        metavar="SECONDS", help="per-request deadline on "
                        "the compute leg (504 on miss; default: none)")
    parser.add_argument("--out", type=Path,
                        default=Path("SERVICE_REPORT.json"),
                        help="where to write the service report")
    args = parser.parse_args(argv)

    targets = tuple(args.targets) if args.targets else DEFAULT_TARGETS
    for name in targets:
        try:
            experiment(name)  # fail fast on a typo
        except ConfigurationError as exc:
            parser.error(str(exc))

    kwargs = dict(clients=args.clients, quick=args.quick, targets=targets,
                  out=args.out, admission_limit=args.admission_limit,
                  request_timeout_s=args.request_timeout)
    if args.store_dir is not None:
        return asyncio.run(soak(store_dir=args.store_dir, **kwargs))
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        return asyncio.run(soak(store_dir=Path(tmp), **kwargs))


if __name__ == "__main__":
    sys.exit(main())
