"""Soak the experiment service: hundreds of clients, one cache story.

``python -m repro.serve.soak`` stands up an in-process server over a
throwaway replay store and fires two bursts of concurrent HTTP clients
at it — a **cold** burst (empty store: every distinct request must
coalesce onto one computation) and a **warm** burst (every request must
be answered from response memory in milliseconds).  It then checks the
contracts the serving layer advertises:

* every response is 200 and its ``sha256`` matches the offline
  pipeline's output for the same experiment (byte-identity);
* the session performed at most
  :data:`~repro.experiments.report.QUICK_REPORT_REPLAY_BUDGET` distinct
  TLB replays for the whole burst (singleflight + content-addressed
  dedup did their job);
* ``coalesced >= cold_clients - replay_budget`` — concurrent identical
  requests joined in-flight leaders instead of recomputing;
* warm-burst p50 latency is under the advertised bound (50 ms).

The structured service report — plus a ``soak`` section recording every
check — is written to ``--out`` (default ``SERVICE_REPORT.json``); the
exit code is 0 iff all checks pass.  CI's ``serve-smoke`` job runs this
with ``--clients 200`` and uploads the report.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.experiments.registry import experiment
from repro.experiments.report import QUICK_REPORT_REPLAY_BUDGET
from repro.perfmodel.session import ReplaySession, session_scope
from repro.serve.http import HttpServer
from repro.serve.service import ExperimentService
from repro.util.errors import ConfigurationError

#: the serving latency contract checked against the warm burst
WARM_P50_BOUND_MS = 50.0

#: every deterministic registry target (the chaos-soak experiment is
#: excluded: it reads REPRO_SOAK_* from the environment, so it is not a
#: pure function of (name, quick) the way the cache key assumes)
DEFAULT_TARGETS = ("all", "table1", "table2", "figure1", "compilers",
                   "toys", "matrix", "geometry", "porting")


def offline_reference(targets: tuple[str, ...], *,
                      quick: bool) -> dict[str, str]:
    """SHA-256 of each target's offline (CLI-equivalent) rendering.

    Runs under a fresh memory-only session, exactly like
    ``REPRO_REPLAY_CACHE=off python -m repro.experiments <name>`` — the
    independent ground truth the served bytes must match.
    """
    shas: dict[str, str] = {}
    with session_scope(ReplaySession(persist=False)) as session:
        for name in targets:
            text = experiment(name).run(quick=quick)
            shas[name] = hashlib.sha256(text.encode()).hexdigest()
        session.close()
    return shas


async def _client(host: str, port: int, name: str, *, quick: bool,
                  go: asyncio.Event) -> dict[str, Any]:
    """One raw-socket client: connect, wait for the barrier, request.

    Connecting first and writing only once *every* client is connected
    makes the burst genuinely concurrent — the server sees all N
    requests before the fastest computation can finish, which is what
    exercises the singleflight layer rather than the response memory.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await go.wait()
        t0 = time.perf_counter()
        request = (f"GET /v1/report/{name}?quick={int(quick)} HTTP/1.1\r\n"
                   f"Host: {host}\r\nConnection: close\r\n\r\n")
        writer.write(request.encode())
        await writer.drain()
        raw = await reader.read()
        elapsed_ms = (time.perf_counter() - t0) * 1e3
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    doc = json.loads(body.decode()) if body else {}
    return {"name": name, "status": status, "elapsed_ms": elapsed_ms,
            "sha256": doc.get("sha256"), "cache": doc.get("cache"),
            "error": doc.get("error")}


async def _burst(host: str, port: int, targets: tuple[str, ...],
                 clients: int, *, quick: bool) -> list[dict[str, Any]]:
    go = asyncio.Event()
    tasks = [asyncio.create_task(
        _client(host, port, targets[i % len(targets)], quick=quick, go=go))
        for i in range(clients)]
    await asyncio.sleep(0.05)  # let every client connect
    go.set()
    return list(await asyncio.gather(*tasks))


def _percentile(samples: list[float], p: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(p / 100 * (len(ordered) - 1))))
    return ordered[rank]


async def soak(*, clients: int, quick: bool, targets: tuple[str, ...],
               store_dir: Path, out: Path) -> int:
    print(f"soak: computing offline reference for {len(targets)} targets "
          f"(quick={quick}) ...", flush=True)
    reference = offline_reference(targets, quick=quick)

    service = ExperimentService(session=ReplaySession(store_dir=store_dir))
    server = HttpServer(service)
    await server.start()
    print(f"soak: server up at {server.url}; "
          f"cold burst of {clients} clients ...", flush=True)

    try:
        cold = await _burst(server.host, server.port, targets, clients,
                            quick=quick)
        print("soak: warm burst ...", flush=True)
        warm = await _burst(server.host, server.port, targets, clients,
                            quick=quick)
    finally:
        await server.close()

    checks: list[dict[str, Any]] = []

    def check(name: str, ok: bool, detail: str) -> None:
        checks.append({"name": name, "ok": bool(ok), "detail": detail})
        print(f"soak: [{'ok' if ok else 'FAIL'}] {name}: {detail}",
              flush=True)

    responses = cold + warm
    bad = [r for r in responses if r["status"] != 200]
    check("all_responses_200", not bad,
          f"{len(responses) - len(bad)}/{len(responses)} OK"
          + (f"; first failure: {bad[0]}" if bad else ""))

    mismatched = [r for r in responses
                  if r["status"] == 200 and r["sha256"] != reference[r["name"]]]
    check("byte_identical_to_offline", not mismatched,
          f"{len(responses) - len(mismatched)}/{len(responses)} responses "
          "match the offline pipeline's SHA-256"
          + (f"; first mismatch: {mismatched[0]['name']}" if mismatched
             else ""))

    replays = service.session.stats.replays
    budget = QUICK_REPORT_REPLAY_BUDGET if quick else None
    if budget is not None:
        check("replays_within_budget", replays <= budget,
              f"{replays} distinct TLB replays <= budget {budget}")

    sf = service.singleflight.stats
    floor = len(cold) - (budget if budget is not None else len(targets))
    check("coalescing_effective", sf.coalesced >= floor,
          f"coalesced={sf.coalesced} >= cold_clients({len(cold)}) - "
          f"budget({budget if budget is not None else len(targets)})"
          f" = {floor} (leaders={sf.leaders})")

    warm_latencies = [r["elapsed_ms"] for r in warm if r["status"] == 200]
    warm_p50 = _percentile(warm_latencies, 50)
    check("warm_p50_under_bound", warm_p50 < WARM_P50_BOUND_MS,
          f"warm p50 {warm_p50:.2f} ms < {WARM_P50_BOUND_MS:.0f} ms "
          f"(p99 {_percentile(warm_latencies, 99):.2f} ms)")

    report = service.service_report()
    report["soak"] = {
        "clients": clients,
        "quick": quick,
        "targets": list(targets),
        "replay_budget": budget,
        "warm_p50_ms": warm_p50,
        "warm_p99_ms": _percentile(warm_latencies, 99),
        "cold_p50_ms": _percentile(
            [r["elapsed_ms"] for r in cold if r["status"] == 200], 50),
        "checks": checks,
        "passed": all(c["ok"] for c in checks),
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"soak: wrote {out}", flush=True)

    service.close()
    ok = all(c["ok"] for c in checks)
    print(f"soak: {'PASS' if ok else 'FAIL'} "
          f"({sum(c['ok'] for c in checks)}/{len(checks)} checks)",
          flush=True)
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.soak",
        description="Concurrency soak for the experiment service.")
    parser.add_argument("--clients", type=int, default=200,
                        help="concurrent clients per burst (default: 200)")
    parser.add_argument("--quick", action="store_true",
                        help="quick experiment matrix (the CI setting)")
    parser.add_argument("--targets", nargs="+", default=None,
                        metavar="NAME", help="experiments to round-robin "
                        f"(default: {' '.join(DEFAULT_TARGETS)})")
    parser.add_argument("--store-dir", type=Path, default=None,
                        help="replay store for the service under test "
                             "(default: a throwaway temp dir)")
    parser.add_argument("--out", type=Path,
                        default=Path("SERVICE_REPORT.json"),
                        help="where to write the service report")
    args = parser.parse_args(argv)

    targets = tuple(args.targets) if args.targets else DEFAULT_TARGETS
    for name in targets:
        try:
            experiment(name)  # fail fast on a typo
        except ConfigurationError as exc:
            parser.error(str(exc))

    if args.store_dir is not None:
        return asyncio.run(soak(clients=args.clients, quick=args.quick,
                                targets=targets, store_dir=args.store_dir,
                                out=args.out))
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        return asyncio.run(soak(clients=args.clients, quick=args.quick,
                                targets=targets, store_dir=Path(tmp),
                                out=args.out))


if __name__ == "__main__":
    sys.exit(main())
