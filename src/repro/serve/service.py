"""The experiment service: rendered reports served off the replay cache.

:class:`ExperimentService` is the transport-independent core of
``python -m repro.serve`` (the HTTP front end wraps it; the soak
harness drives it).  A request names a registered experiment (the same
registry ``python -m repro.experiments`` dispatches from) plus a
``quick`` flag; the response is the experiment's rendered text —
byte-identical to the offline CLI, because it *is* the same runner —
plus cache/timing metadata.

Three layers keep N concurrent clients from costing N replays:

1. **Response memory** — a completed request's rendered text is kept
   in-process keyed by its content digest, so repeat requests are
   answered on the event loop in microseconds.
2. **Singleflight** — concurrent requests sharing a digest join the
   in-flight leader (:mod:`repro.serve.singleflight`); N cold requests
   for one configuration run one computation.
3. **The replay session** — the leader's computation runs under the
   service's shared :class:`ReplaySession`, so *different* experiments
   still share synthesis and TLB replays through the PR 5
   content-addressed cache, and the rendered text itself persists as a
   session memo (``memo-<digest>``) — a service restarted over a warm
   store serves its first request from disk in milliseconds, without
   replaying anything.

The request digest is :meth:`ReplaySession.memo_key` over
``(experiment, quick, engine)`` — the same key the persisted memo files
under, which is what lets a singleflight leader pin its store entry
against LRU eviction for the duration of the computation.

Computations are synchronous CPU-bound model code, so they run on a
small thread pool; the session's internal lock serialises cache
mutations, which preserves the sequential ``SessionStats`` accounting
(`replays` stays the "distinct TLB replays" number the budget tests
gate on).
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import asdict, dataclass
from typing import Any

from repro.experiments.registry import experiment, experiments
from repro.perfmodel.pipeline import resolve_engine
from repro.perfmodel.session import (
    ReplaySession,
    default_session,
    session_scope,
)
from repro.serve.metrics import MetricsRegistry
from repro.serve.singleflight import Singleflight
from repro.util.errors import ConfigurationError

#: schema of the structured service report (SERVICE_REPORT.json, /v1/stats)
REPORT_SCHEMA = "repro.serve/1"

#: memo kind under which rendered reports persist in the replay store
MEMO_KIND = "serve-report"


class UnknownExperimentError(ConfigurationError):
    """Request named an experiment the registry does not know (HTTP 404)."""


class ServiceOverloaded(Exception):
    """Admission control shed this request (HTTP 503 + Retry-After).

    Raised *before* any computation starts: only a request that would
    have to become a new singleflight leader is shed — joining an
    in-flight leader or reading the response memory costs microseconds
    and is always admitted, so a shed never wastes work already paid
    for.
    """

    def __init__(self, message: str, *, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DeadlineExceeded(Exception):
    """The per-request deadline elapsed first (HTTP 504).

    The leader's computation is *shielded*: it keeps running and lands
    in the response memory, so the client's retry (or a coalesced
    waiter with a longer deadline) gets the answer without recomputing.
    """


@dataclass
class ReportResponse:
    """One served report: the text plus its provenance."""

    name: str
    quick: bool
    engine: str
    #: request/content digest (the singleflight and memo key)
    key: str
    #: the rendered experiment text, byte-identical to the offline CLI
    text: str
    #: SHA-256 of ``text`` (clients comparing against offline output can
    #: skip transferring the body)
    sha256: str
    #: how this response was produced: ``memory`` (service response
    #: cache), ``coalesced`` (joined an in-flight computation), ``warm``
    #: (session memo — a prior run or a restarted service's store),
    #: ``cold`` (computed now)
    cache: str
    elapsed_ms: float

    def to_json(self) -> dict[str, Any]:
        return asdict(self)


class ExperimentService:
    """Serves experiment reports off a shared replay session."""

    def __init__(self, *, session: ReplaySession | None = None,
                 max_workers: int = 2,
                 metrics: MetricsRegistry | None = None,
                 request_timeout_s: float | None = None,
                 admission_limit: int | None = None,
                 retry_after_s: float = 0.5) -> None:
        if request_timeout_s is not None and request_timeout_s <= 0.0:
            raise ConfigurationError("request_timeout_s must be positive")
        if admission_limit is not None and admission_limit < 1:
            raise ConfigurationError("admission_limit must be >= 1")
        if retry_after_s <= 0.0:
            raise ConfigurationError("retry_after_s must be positive")
        self.session = session if session is not None else default_session()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: per-request deadline on the compute leg (None: no deadline)
        self.request_timeout_s = request_timeout_s
        #: would-be singleflight leaders admitted concurrently (None: all)
        self.admission_limit = admission_limit
        #: the Retry-After hint a shed response carries
        self.retry_after_s = retry_after_s
        self.singleflight = Singleflight()
        self.started_at = time.time()
        self._responses: dict[str, ReportResponse] = {}
        # admission bookkeeping must be synchronous with the admission
        # check (singleflight only learns a key once its task first
        # runs, one loop tick later): key -> requests riding it now
        self._admitted: dict[str, int] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve")
        # one compute at a time may own the default-session scope; warm
        # memo reads queue behind cold replays here, never interleave
        self._scope_lock = threading.Lock()

    # --- request resolution ----------------------------------------------
    @staticmethod
    def request_key(name: str, quick: bool, engine: str) -> str:
        """The content digest identifying one request's inputs.

        Exactly the session's memo key for the persisted rendered text,
        so the singleflight layer, the response memory, and the on-disk
        ``memo-<key>`` entry all agree on what "the same request" means.
        """
        return ReplaySession.memo_key(MEMO_KIND, (name, bool(quick), engine))

    def resolve(self, name: str, quick: bool) -> tuple[str, str]:
        """Validate *name* against the registry; returns (engine, key)."""
        try:
            experiment(name)
        except ConfigurationError as exc:
            raise UnknownExperimentError(str(exc)) from None
        engine = resolve_engine()
        return engine, self.request_key(name, quick, engine)

    def list_experiments(self) -> list[dict[str, str]]:
        return [{"name": spec.name, "description": spec.description}
                for spec in experiments()]

    # --- serving ----------------------------------------------------------
    async def report(self, name: str, *, quick: bool = False) -> ReportResponse:
        """Serve one experiment report (the HTTP handlers await this)."""
        import asyncio

        t0 = time.perf_counter()
        engine, key = self.resolve(name, quick)

        cached = self._responses.get(key)
        if cached is not None:
            response = self._respond(cached, "memory", t0)
            self._record(response)
            return response

        # admission control: shed only a request that would become a NEW
        # leader — joining an in-flight computation or reading memory is
        # (nearly) free and always admitted, so load shedding protects
        # the compute pool without throwing away work already in flight
        if (self.admission_limit is not None
                and key not in self._admitted
                and len(self._admitted) >= self.admission_limit):
            self.metrics.inc("serve_shed_total", experiment=name)
            self._mirror_backends()
            raise ServiceOverloaded(
                f"admission queue full ({len(self._admitted)} "
                f"computation(s) in flight, limit {self.admission_limit})",
                retry_after_s=self.retry_after_s)

        # the computation task is shielded from the deadline: on timeout
        # the leader keeps running and its response lands in memory, so
        # the client's retry is served instantly instead of recomputing
        self._admitted[key] = self._admitted.get(key, 0) + 1
        task = asyncio.ensure_future(
            self._compute_response(key, name, quick, engine, t0))
        task.add_done_callback(lambda _t, k=key: self._release(k))
        if self.request_timeout_s is None:
            response = await task
        else:
            try:
                response = await asyncio.wait_for(
                    asyncio.shield(task), self.request_timeout_s)
            except asyncio.TimeoutError:
                # the abandoned task still resolves (and may raise);
                # consume its outcome so the loop never logs an
                # unretrieved-exception warning
                task.add_done_callback(
                    lambda t: t.cancelled() or t.exception())
                self.metrics.inc("serve_timeout_total", experiment=name)
                self._mirror_backends()
                raise DeadlineExceeded(
                    f"report {name!r} missed the "
                    f"{self.request_timeout_s:.3f} s deadline (the "
                    f"computation continues; retry for the cached "
                    f"result)") from None
        self._record(response)
        return response

    def _release(self, key: str) -> None:
        n = self._admitted.get(key, 0) - 1
        if n <= 0:
            self._admitted.pop(key, None)
        else:
            self._admitted[key] = n

    async def _compute_response(self, key: str, name: str, quick: bool,
                                engine: str, t0: float) -> ReportResponse:
        import asyncio

        loop = asyncio.get_running_loop()
        (text, compute_cache), coalesced = await self.singleflight.do(
            key, lambda: loop.run_in_executor(
                self._pool, self._compute, key, name, quick, engine))
        response = ReportResponse(
            name=name, quick=bool(quick), engine=engine, key=key, text=text,
            sha256=hashlib.sha256(text.encode()).hexdigest(),
            cache="coalesced" if coalesced else compute_cache,
            elapsed_ms=(time.perf_counter() - t0) * 1e3)
        self._responses.setdefault(key, response)
        return response

    def _respond(self, base: ReportResponse, cache: str,
                 t0: float) -> ReportResponse:
        return ReportResponse(
            name=base.name, quick=base.quick, engine=base.engine,
            key=base.key, text=base.text, sha256=base.sha256, cache=cache,
            elapsed_ms=(time.perf_counter() - t0) * 1e3)

    def _compute(self, key: str, name: str, quick: bool,
                 engine: str) -> tuple[str, str]:
        """Run (or recall) one experiment under the service session.

        Executes on a worker thread.  The rendered text is memoised in
        the session store under ``memo-<key>``; while this computation
        is in flight that entry is pinned, so a concurrent LRU eviction
        pass can never delete what the leader is about to read or has
        just written.
        """
        computed = False

        def build() -> str:
            nonlocal computed
            computed = True
            return experiment(name).run(quick=quick)

        with ExitStack() as stack:
            stack.enter_context(self._scope_lock)
            stack.enter_context(session_scope(self.session))
            store = self.session.store
            if store is not None:
                stack.enter_context(store.pinned(f"memo-{key}"))
            text = self.session.memo(
                MEMO_KIND, (name, bool(quick), engine), build,
                validate=lambda v: isinstance(v, str) and bool(v))
        return text, ("cold" if computed else "warm")

    def _record(self, response: ReportResponse) -> None:
        self.metrics.inc("serve_requests_total",
                         experiment=response.name, cache=response.cache)
        self.metrics.observe("serve_request_ms", response.elapsed_ms,
                             cache=response.cache)
        self._mirror_backends()

    def _mirror_backends(self) -> None:
        """Mirror session/store/singleflight counters into the registry
        so one ``/metrics`` scrape carries the whole story."""
        m = self.metrics
        sf = self.singleflight.stats
        m.set("serve_singleflight_leaders_total", sf.leaders)
        m.set("serve_singleflight_coalesced_total", sf.coalesced)
        m.set("serve_singleflight_failures_total", sf.failures)
        s = self.session.stats
        m.set("serve_replay_configs_total", s.configs)
        m.set("serve_replays_total", s.replays)
        m.set("serve_replay_hits_total", s.memory_hits, layer="memory")
        m.set("serve_replay_hits_total", s.disk_hits, layer="disk")
        m.set("serve_replay_hits_total", s.trace_hits, layer="trace")
        m.set("serve_replay_hits_total", s.trace_store_hits,
              layer="trace-store")
        m.set("serve_replay_memo_hits_total", s.memo_hits)
        m.set("serve_synthesis_total", s.synthesis_count)
        store = self.session.store
        if store is not None:
            m.set("serve_store_evictions_total", store.stats.evictions)
            m.set("serve_store_evicted_bytes_total",
                  store.stats.evicted_bytes)
            m.set("serve_store_migrated_total", store.stats.migrated)
            m.set("serve_store_corrupt_total", store.stats.corrupt)
        tstore = self.session.trace_store
        if tstore is not None:
            m.set("serve_trace_store_mapped_bytes_total",
                  tstore.stats.mapped_bytes)
            m.set("serve_trace_store_thp_advised_total",
                  tstore.stats.thp_advised)
            m.set("serve_trace_store_corrupt_total", tstore.stats.corrupt)
        # the resilience experiment's last fabric run, when one has run
        # in this process: rank recoveries are service-level events (a
        # recovering backend is why requests shed or miss deadlines)
        from repro.experiments import resilience as _resilience
        last = _resilience.LAST_RUN_STATS
        if last:
            m.set("serve_rank_restarts_total",
                  last.get("rank_restarts", 0))
            m.set("serve_recovery_wall_seconds",
                  last.get("recovery_wall_s", 0.0))

    # --- observability ----------------------------------------------------
    def service_report(self) -> dict[str, Any]:
        """The structured report (``SERVICE_REPORT.json`` / ``/v1/stats``)."""
        self._mirror_backends()
        store = self.session.store
        sf = self.singleflight.stats
        session = self.session.stats
        return {
            "schema": REPORT_SCHEMA,
            "uptime_s": time.time() - self.started_at,
            "requests": {
                "total": int(self.metrics.counter_total(
                    "serve_requests_total")),
                "distinct": len(self._responses),
                "shed": int(self.metrics.counter_total(
                    "serve_shed_total")),
                "timeouts": int(self.metrics.counter_total(
                    "serve_timeout_total")),
            },
            "overload": {
                "request_timeout_s": self.request_timeout_s,
                "admission_limit": self.admission_limit,
                "retry_after_s": self.retry_after_s,
            },
            "singleflight": {
                "leaders": sf.leaders,
                "coalesced": sf.coalesced,
                "failures": sf.failures,
            },
            "session": asdict(session),
            "store": store.describe() if store is not None else None,
            "trace_store": (self.session.trace_store.describe()
                            if self.session.trace_store is not None
                            else None),
            "metrics": self.metrics.render_dict(),
        }

    def close(self) -> None:
        """Shut the compute pool and the session's replay workers down.

        Idempotent — the SIGTERM path and an enclosing ``with`` block
        may both call it.  This is what keeps forked replay workers from
        outliving the service process.
        """
        self._pool.shutdown(wait=True, cancel_futures=True)
        self.session.close()

    def __enter__(self) -> "ExperimentService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["ExperimentService", "ReportResponse", "UnknownExperimentError",
           "ServiceOverloaded", "DeadlineExceeded",
           "REPORT_SCHEMA", "MEMO_KIND"]
