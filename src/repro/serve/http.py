"""A stdlib-asyncio HTTP/1.1 front end for the experiment service.

No web framework, no new dependencies: ``asyncio.start_server`` plus a
minimal, strict request parser covering exactly what the service needs
(GET/POST, small JSON bodies, keep-alive).  Endpoints — full schemas
and a worked session live in ``docs/serving.md``:

====================  =======================================================
``GET /healthz``      liveness: ``{"status": "ok"}``
``GET /metrics``      Prometheus text exposition (counters + histograms)
``GET /v1/stats``     the structured service report (JSON)
``GET /v1/experiments``  the experiment registry, names + one-liners
``GET /v1/report/<name>?quick=1``  one rendered experiment report
``POST /v1/report``   same, body ``{"name": ..., "quick": ...}``
====================  =======================================================

Report responses carry the rendered text, its SHA-256, and cache
provenance (``cold`` / ``warm`` / ``memory`` / ``coalesced``).  Unknown
experiments are 404 with the registry's did-you-mean suggestion; bad
requests are 400; a computation failure is 500 with the exception type
(the traceback stays in the server log, not the wire).  Under overload
the service sheds would-be-new-leader requests as 503 with a
``Retry-After`` header, and a request missing its configured deadline
is 504 (the shielded computation finishes and warms the cache for the
retry) — the contract is specified in ``docs/resilience.md``.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any
from urllib.parse import parse_qs, unquote, urlsplit

from repro.serve.service import (
    DeadlineExceeded,
    ExperimentService,
    ServiceOverloaded,
    UnknownExperimentError,
)

logger = logging.getLogger(__name__)

#: request-line + headers ceiling; this is a report service, not a proxy
MAX_HEADER_BYTES = 16 * 1024
#: JSON body ceiling
MAX_BODY_BYTES = 64 * 1024

_TRUE = {"1", "true", "yes", "on"}
_FALSE = {"0", "false", "no", "off", ""}


class HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 413: "Payload Too Large",
                500: "Internal Server Error", 503: "Service Unavailable",
                504: "Gateway Timeout"}


def _parse_bool(raw: str, *, name: str) -> bool:
    low = raw.strip().lower()
    if low in _TRUE:
        return True
    if low in _FALSE:
        return False
    raise HttpError(400, f"{name} must be a boolean, got {raw!r}")


class HttpServer:
    """Binds an :class:`ExperimentService` to a TCP port."""

    def __init__(self, service: ExperimentService, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=512)
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("repro.serve listening on http://%s:%d",
                    self.host, self.port)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # --- connection handling ---------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError):
            pass  # client went away or overflowed the line buffer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_one(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> bool:
        """Serve one request; returns whether to keep the connection."""
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > MAX_HEADER_BYTES:
            await self._send(writer, 413, {"error": "headers too large"})
            return False
        try:
            request_line, *header_lines = head.decode(
                "latin-1").split("\r\n")
            method, target, version = request_line.split(" ", 2)
        except ValueError:
            await self._send(writer, 400, {"error": "malformed request line"})
            return False
        headers = {}
        for line in header_lines:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()

        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                await self._send(writer, 400,
                                 {"error": "bad Content-Length"})
                return False
            if n > MAX_BODY_BYTES:
                await self._send(writer, 413, {"error": "body too large"})
                return False
            body = await reader.readexactly(n)

        keep_alive = (version == "HTTP/1.1"
                      and headers.get("connection", "").lower() != "close")
        extra_headers: dict[str, str] = {}
        try:
            status, payload, content_type = await self._route(
                method.upper(), target, body)
        except HttpError as exc:
            status, payload, content_type = (
                exc.status, {"error": exc.message}, "application/json")
        except UnknownExperimentError as exc:
            status, payload, content_type = (
                404, {"error": str(exc)}, "application/json")
        except ServiceOverloaded as exc:  # load shed -> 503 + Retry-After
            extra_headers["Retry-After"] = (
                f"{max(exc.retry_after_s, 0.001):.3f}")
            status, payload, content_type = (
                503, {"error": str(exc),
                      "retry_after_s": exc.retry_after_s},
                "application/json")
        except DeadlineExceeded as exc:  # deadline missed -> 504
            status, payload, content_type = (
                504, {"error": str(exc)}, "application/json")
        except Exception as exc:  # computation failure -> 500, keep serving
            logger.exception("request %s %s failed", method, target)
            status, payload, content_type = (
                500, {"error": f"{type(exc).__name__}: {exc}"},
                "application/json")
        await self._send(writer, status, payload,
                         content_type=content_type, keep_alive=keep_alive,
                         headers=extra_headers)
        return keep_alive

    async def _route(self, method: str, target: str,
                     body: bytes) -> tuple[int, Any, str]:
        parts = urlsplit(target)
        path = unquote(parts.path)
        query = parse_qs(parts.query)

        if path == "/healthz":
            return 200, {"status": "ok"}, "application/json"
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, "GET only")
            return (200, self.service.metrics.render_prometheus(),
                    "text/plain; version=0.0.4")
        if path == "/v1/stats":
            return 200, self.service.service_report(), "application/json"
        if path == "/v1/experiments":
            return (200, {"experiments": self.service.list_experiments()},
                    "application/json")
        if path.startswith("/v1/report/") and method == "GET":
            name = path[len("/v1/report/"):]
            if not name or "/" in name:
                raise HttpError(400, "expected /v1/report/<experiment>")
            quick = _parse_bool(query.get("quick", ["0"])[-1], name="quick")
            response = await self.service.report(name, quick=quick)
            return 200, response.to_json(), "application/json"
        if path == "/v1/report" and method == "POST":
            try:
                doc = json.loads(body.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise HttpError(400, f"bad JSON body: {exc}") from None
            if not isinstance(doc, dict) or "name" not in doc:
                raise HttpError(400, 'body must be {"name": ..., "quick": ...}')
            quick = doc.get("quick", False)
            if not isinstance(quick, bool):
                quick = _parse_bool(str(quick), name="quick")
            response = await self.service.report(str(doc["name"]),
                                                 quick=quick)
            return 200, response.to_json(), "application/json"
        if path in ("/v1/report", "/metrics") or path.startswith("/v1/"):
            raise HttpError(405 if method not in ("GET", "POST") else 404,
                            f"no route for {method} {path}")
        raise HttpError(404, f"no route for {method} {path}")

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, status: int, payload: Any,
                    *, content_type: str = "application/json",
                    keep_alive: bool = False,
                    headers: dict[str, str] | None = None) -> None:
        if isinstance(payload, str):
            body = payload.encode()
        else:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                "\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


__all__ = ["HttpServer", "HttpError", "MAX_HEADER_BYTES", "MAX_BODY_BYTES"]
