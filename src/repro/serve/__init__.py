"""``repro.serve`` — the async experiment service.

A long-running front end over the PR 5/6 replay machinery: clients
request rendered reports/tables/figures over HTTP (``python -m
repro.serve``), identical in-flight computations coalesce through a
singleflight layer, completed ones persist in the sharded, size-bounded
replay store, and everything is observable via ``/metrics`` and a
structured ``SERVICE_REPORT.json``.  ``python -m repro.serve.soak``
drives hundreds of concurrent clients against an in-process server and
asserts the cache-budget and latency contracts.

See ``docs/serving.md`` for endpoints, schemas, cache layout, and the
operational story.
"""

from repro.serve.metrics import MetricsRegistry
from repro.serve.service import (
    ExperimentService,
    ReportResponse,
    UnknownExperimentError,
)
from repro.serve.singleflight import Singleflight, SingleflightStats

__all__ = ["ExperimentService", "ReportResponse", "UnknownExperimentError",
           "MetricsRegistry", "Singleflight", "SingleflightStats"]
