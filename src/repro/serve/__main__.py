"""CLI: run the experiment service.

Usage::

    python -m repro.serve [--host 127.0.0.1] [--port 8077]
                          [--cache-dir DIR] [--cache-bytes 256M]
                          [--workers 2] [--report SERVICE_REPORT.json]

``--port 0`` binds an ephemeral port (printed on startup).  The service
shuts down gracefully on SIGTERM/SIGINT — in-flight requests finish,
and ``--report`` writes the structured service report on the way out.
The replay cache honours ``REPRO_REPLAY_CACHE`` (``off|auto|<dir>``)
and ``REPRO_REPLAY_CACHE_BYTES`` unless overridden by the flags above.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import signal
import sys
from pathlib import Path

from repro.perfmodel.session import ReplaySession
from repro.perfmodel.store import resolve_cache_bytes
from repro.serve.http import HttpServer
from repro.serve.service import ExperimentService


def build_service(*, cache_dir: str | None = None,
                  cache_bytes: str | None = None,
                  workers: int = 2,
                  request_timeout_s: float | None = None,
                  admission_limit: int | None = None) -> ExperimentService:
    """Construct the service with an optionally overridden cache."""
    max_bytes = (resolve_cache_bytes(cache_bytes)
                 if cache_bytes is not None else None)
    if cache_dir is not None or max_bytes is not None:
        session = ReplaySession(store_dir=cache_dir, max_bytes=max_bytes)
    else:
        session = None  # the process-wide default session
    return ExperimentService(session=session, max_workers=workers,
                             request_timeout_s=request_timeout_s,
                             admission_limit=admission_limit)


async def run_server(service: ExperimentService, *, host: str, port: int,
                     report_path: Path | None = None) -> int:
    server = HttpServer(service, host=host, port=port)
    await server.start()
    print(f"repro.serve listening on {server.url}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread / platform without signal support
    try:
        await stop.wait()
        await server.close()
        if report_path is not None:
            report_path.parent.mkdir(parents=True, exist_ok=True)
            report_path.write_text(
                json.dumps(service.service_report(), indent=2, sort_keys=True)
                + "\n")
            print(f"wrote {report_path}", flush=True)
    finally:
        # every exit path — clean SIGTERM, a failing report write, a
        # cancelled loop — must tear the compute pool and the session's
        # forked replay workers down; anything else leaks worker
        # processes past the service's own lifetime
        service.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve experiment reports off the replay cache.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077,
                        help="TCP port (0 = ephemeral, printed on startup)")
    parser.add_argument("--cache-dir", default=None,
                        help="replay store directory (default: "
                             "REPRO_REPLAY_CACHE / the XDG location)")
    parser.add_argument("--cache-bytes", default=None, metavar="N[K|M|G]",
                        help="LRU size bound for the store (default: "
                             "REPRO_REPLAY_CACHE_BYTES / unbounded)")
    parser.add_argument("--workers", type=int, default=2,
                        help="computation worker threads (default: 2)")
    parser.add_argument("--request-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-request deadline on the compute leg "
                             "(504 on miss; default: none)")
    parser.add_argument("--admission-limit", type=int, default=None,
                        metavar="N",
                        help="shed would-be-new-leader requests beyond N "
                             "concurrent computations (503 + Retry-After; "
                             "default: admit all)")
    parser.add_argument("--report", type=Path, default=None,
                        help="write SERVICE_REPORT.json here on shutdown")
    args = parser.parse_args(argv)

    logging.basicConfig(level=logging.INFO,
                        format="%(asctime)s %(name)s %(message)s")
    # the context manager (close() is idempotent) covers what run_server
    # cannot: a KeyboardInterrupt unwinding out of asyncio.run on
    # platforms where the signal handler could not be installed used to
    # leak the session's forked replay workers past service exit
    with build_service(cache_dir=args.cache_dir,
                       cache_bytes=args.cache_bytes,
                       workers=args.workers,
                       request_timeout_s=args.request_timeout,
                       admission_limit=args.admission_limit) as service:
        try:
            return asyncio.run(run_server(service, host=args.host,
                                          port=args.port,
                                          report_path=args.report))
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    sys.exit(main())
