"""Compiler and runtime-allocator models.

The paper's central finding — FLASH huge-pages only under the Fujitsu
compiler — is a property of the *runtime*, not of code generation.  This
subpackage models:

* the four compilers the paper tried (:mod:`repro.toolchain.compiler`)
  with their performance traits (the Arm compiler's 2.5x slowdown, the
  Fujitsu finalizer bug that broke the PAPI Fortran wrapper) and their
  allocator runtimes;
* the runtime allocators (:mod:`repro.toolchain.allocator`): glibc malloc
  with its mmap threshold, the libhugetlbfs ``LD_PRELOAD`` morecore hook,
  and Fujitsu's XOS_MMM_L large-page library;
* process environment handling (:mod:`repro.toolchain.env`):
  ``LD_PRELOAD``, ``HUGETLB_MORECORE``, ``XOS_MMM_L_HPAGE_TYPE``;
* executables and simulated processes (:mod:`repro.toolchain.executable`).
"""

from repro.toolchain.env import ProcessEnv
from repro.toolchain.allocator import (
    Allocation,
    AllocatorModel,
    GlibcMalloc,
    FujitsuLargePage,
    build_allocator,
)
from repro.toolchain.compiler import (
    Compiler,
    CompilerPerf,
    GNU,
    CRAY,
    ARM,
    FUJITSU,
    COMPILERS,
)
from repro.toolchain.executable import Executable, Process

__all__ = [
    "ProcessEnv",
    "Allocation",
    "AllocatorModel",
    "GlibcMalloc",
    "FujitsuLargePage",
    "build_allocator",
    "Compiler",
    "CompilerPerf",
    "GNU",
    "CRAY",
    "ARM",
    "FUJITSU",
    "COMPILERS",
    "Executable",
    "Process",
]
