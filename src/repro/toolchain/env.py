"""Process environment variables relevant to huge-page behaviour.

The paper manipulates three mechanisms through the environment:

* ``LD_PRELOAD=libhugetlbfs.so`` with ``HUGETLB_MORECORE`` — the
  libhugetlbfs heap hook (set by ``hugectl --heap`` / ``--thp``);
* ``HUGETLB_SHM`` — SysV shared-memory backing (``hugectl --shm``);
* ``XOS_MMM_L_HPAGE_TYPE`` — the Fujitsu runtime's large-page mode, with
  documented values ``none`` and ``hugetlbfs`` plus the ``thp`` value the
  Fugaku co-design report mentions (accepted on FX700 too).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util import MiB
from repro.util.errors import ConfigurationError


@dataclass
class ProcessEnv:
    """A thin, typed view over a process's environment variables."""

    variables: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, env: dict[str, str] | None) -> "ProcessEnv":
        return cls(dict(env or {}))

    def merged(self, extra: dict[str, str]) -> "ProcessEnv":
        out = dict(self.variables)
        out.update(extra)
        return ProcessEnv(out)

    def get(self, key: str, default: str | None = None) -> str | None:
        return self.variables.get(key, default)

    # --- libhugetlbfs ---------------------------------------------------------
    @property
    def libhugetlbfs_preloaded(self) -> bool:
        preload = self.variables.get("LD_PRELOAD", "")
        return "libhugetlbfs" in preload

    @property
    def hugetlb_morecore(self) -> str | int | None:
        """``None`` (off), ``'thp'``, or a huge-page size in bytes.

        Only honoured when libhugetlbfs is actually preloaded.
        """
        if not self.libhugetlbfs_preloaded:
            return None
        value = self.variables.get("HUGETLB_MORECORE")
        if value is None:
            return None
        if value == "thp":
            return "thp"
        if value in ("yes", "y", "1", "true"):
            return "default"
        try:
            return int(value)
        except ValueError:
            raise ConfigurationError(f"bad HUGETLB_MORECORE value {value!r}")

    @property
    def hugetlb_shm(self) -> bool:
        return (
            self.libhugetlbfs_preloaded
            and self.variables.get("HUGETLB_SHM", "") in ("yes", "y", "1", "true")
        )

    # --- Fujitsu XOS_MMM_L ------------------------------------------------------
    @property
    def xos_hpage_type(self) -> str:
        """Value of ``XOS_MMM_L_HPAGE_TYPE`` (default ``hugetlbfs``)."""
        value = self.variables.get("XOS_MMM_L_HPAGE_TYPE", "hugetlbfs")
        if value not in ("none", "hugetlbfs", "thp"):
            raise ConfigurationError(
                f"XOS_MMM_L_HPAGE_TYPE={value!r}: accepted values are "
                "none, hugetlbfs, thp"
            )
        return value


__all__ = ["ProcessEnv"]
