"""Compiler models: GNU, Cray, Arm, Fujitsu.

Each compiler contributes two things to the simulation:

* **runtime behaviour** — which allocator the produced executable links
  (glibc for GNU/Cray/Arm; the XOS_MMM_L large-page library for Fujitsu
  unless ``-Knolargepage`` is given), and whether Fortran ``final``
  procedures work (the Fujitsu 4.5 bug that broke the paper's PAPI OOP
  wrapper);
* **performance traits** — a scalar-efficiency multiplier (the Arm
  compiler produced executables ~2.5x slower than GCC/Cray on the same
  problem) and the fraction of floating-point work each physics unit's
  loops get auto-vectorised to SVE (small for everyone: the paper's
  section II explains the EOS loops' "vast scope and branching" defeats
  vectorisation; the nonzero SVE rates in Tables I/II come from the
  fraction the Fujitsu compiler manages anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util import GiB, MiB
from repro.util.errors import ConfigurationError
from repro.kernel.vmm import Kernel
from repro.toolchain.env import ProcessEnv


@dataclass(frozen=True)
class CompilerPerf:
    """Code-generation quality knobs consumed by the performance model."""

    #: multiplier on scalar issue cost relative to GCC-quality codegen
    scalar_multiplier: float = 1.0
    #: fraction of each unit's flops emitted as SVE vector *instructions*
    vector_fraction: dict = field(default_factory=dict)
    default_vector_fraction: float = 0.0
    #: useful elements per SVE instruction.  A fully vectorised loop gets
    #: all 8 double lanes; the paper's *un-tuned* FLASH gets SVE
    #: instructions from the Fujitsu compiler without real vectorisation
    #: (gather loads, predicated scalar-in-vector) — barely more than one
    #: useful lane, so plenty of SVE instructions retire per cycle with no
    #: speedup, exactly the 0.47/0.11 SVE-per-cycle rates of Tables I/II.
    sve_lane_efficiency: float = 8.0

    def unit_vector_fraction(self, unit: str) -> float:
        return self.vector_fraction.get(unit, self.default_vector_fraction)


@dataclass(frozen=True)
class Compiler:
    """A Fortran toolchain as the paper exercised it."""

    name: str
    version: str
    #: links the XOS_MMM_L large-page runtime by default
    largepage_runtime: bool = False
    #: Fortran 2003 final procedures callable without miscompiling
    finalizers_work: bool = True
    perf: CompilerPerf = field(default_factory=CompilerPerf)

    def compile(self, program: str, flags: tuple[str, ...] = ()) -> "Executable":
        """Produce an executable; flags model the paper's usage.

        ``-Knolargepage`` (Fujitsu only) removes the large-page runtime,
        the paper's mechanism for the "without huge pages" columns.
        """
        from repro.toolchain.executable import Executable  # cycle-free import

        largepage = self.largepage_runtime
        for flag in flags:
            if flag == "-Knolargepage":
                if not self.largepage_runtime:
                    raise ConfigurationError(
                        f"{self.name}: -K flags are Fujitsu-specific"
                    )
                largepage = False
            elif flag.startswith("-K") and not self.largepage_runtime:
                raise ConfigurationError(f"{self.name}: unknown flag {flag}")
        return Executable(
            program=program,
            compiler=self,
            flags=flags,
            largepage_runtime=largepage,
        )

    def node_setup(self, kernel: Kernel) -> None:
        """Model installing this toolchain's runtime environment on a node.

        The Fujitsu install raises the 2 MiB overcommit ceiling so the
        XOS_MMM_L library can draw surplus hugetlbfs pages on any node —
        which is why the paper found the *unmodified* Ookami nodes
        huge-paged just as readily as the two modified ones.
        """
        if self.largepage_runtime:
            pool = kernel.pool()
            budget = (kernel.config.mem_total - kernel.config.os_reserved)
            pages = budget // pool.page_size
            pool.nr_overcommit = max(pool.nr_overcommit, pages)
            kernel.config.sysctl.perf_event_paranoid = min(
                kernel.config.sysctl.perf_event_paranoid, 1
            )


#: GCC 11.2 (the paper also used 10.3.0 for early porting)
GNU = Compiler(
    name="gnu",
    version="11.2.0",
    perf=CompilerPerf(
        scalar_multiplier=1.0,
        vector_fraction={"eos": 0.04, "hydro": 0.02},
        default_vector_fraction=0.01,
    ),
)

#: Cray CCE 10.0.3
CRAY = Compiler(
    name="cray",
    version="10.0.3",
    perf=CompilerPerf(
        scalar_multiplier=1.02,  # "negligible" difference from GCC (section II)
        vector_fraction={"eos": 0.06, "hydro": 0.03},
        default_vector_fraction=0.02,
    ),
)

#: Arm 21.0 — produced executables ~2.5x slower than GCC/Cray (section II)
ARM = Compiler(
    name="arm",
    version="21.0",
    perf=CompilerPerf(
        scalar_multiplier=2.5,
        vector_fraction={"eos": 0.03, "hydro": 0.02},
        default_vector_fraction=0.01,
    ),
)

#: Fujitsu 4.5 — large-page runtime on by default; final procedures broken
FUJITSU = Compiler(
    name="fujitsu",
    version="4.5",
    largepage_runtime=True,
    finalizers_work=False,
    perf=CompilerPerf(
        scalar_multiplier=1.0,
        # chosen so the modelled un-tuned SVE rates land near the paper's
        # 0.47 (EOS) and 0.11 (3-d Hydro) instructions/cycle
        vector_fraction={"eos": 0.45, "hydro": 0.165},
        default_vector_fraction=0.05,
        sve_lane_efficiency=1.15,
    ),
)

COMPILERS: dict[str, Compiler] = {c.name: c for c in (GNU, CRAY, ARM, FUJITSU)}

__all__ = ["Compiler", "CompilerPerf", "GNU", "CRAY", "ARM", "FUJITSU", "COMPILERS"]
