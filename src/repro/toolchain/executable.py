"""Executables and simulated processes.

An :class:`Executable` binds a program name to the compiler that built it
(and hence its allocator runtime).  ``launch`` creates a :class:`Process`
on a simulated kernel with a given environment — the point where
``LD_PRELOAD=libhugetlbfs.so``, ``hugectl`` wrappers, and
``XOS_MMM_L_HPAGE_TYPE`` take effect.

A :class:`Process` exposes the two allocation paths a Fortran program has:

* :meth:`Process.allocate` — dynamic allocation (``ALLOCATE``), routed
  through the toolchain's allocator model;
* :meth:`Process.static_array` — static allocation (a saved array in the
  data/BSS segment), which lives in the file-backed image mapping and can
  therefore never receive transparent huge pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util import MiB
from repro.kernel.vmm import AddressSpace, Kernel
from repro.kernel.page import align_up
from repro.toolchain.allocator import Allocation, AllocatorModel, build_allocator
from repro.toolchain.compiler import Compiler
from repro.toolchain.env import ProcessEnv


@dataclass(frozen=True)
class Executable:
    """A compiled program."""

    program: str
    compiler: Compiler
    flags: tuple[str, ...] = ()
    largepage_runtime: bool = False
    #: statically declared data (data/BSS segment size)
    static_bytes: int = 8 * MiB

    def launch(
        self,
        kernel: Kernel,
        env: dict[str, str] | ProcessEnv | None = None,
        *,
        node_setup: bool = True,
    ) -> "Process":
        """Start a simulated process.

        ``node_setup`` applies the toolchain's node-level runtime
        prerequisites first (for Fujitsu: the surplus-pool overcommit its
        installer configures).
        """
        if node_setup:
            self.compiler.node_setup(kernel)
        penv = env if isinstance(env, ProcessEnv) else ProcessEnv.from_dict(env)
        return Process(kernel=kernel, executable=self, env=penv)


class Process:
    """A running instance of an executable on a simulated kernel."""

    def __init__(self, kernel: Kernel, executable: Executable, env: ProcessEnv) -> None:
        self.kernel = kernel
        self.executable = executable
        self.env = env
        self.space: AddressSpace = kernel.new_address_space(executable.program)
        self.allocator: AllocatorModel = build_allocator(
            env, fujitsu_largepage=executable.largepage_runtime
        )
        self._image = self.space.map_image(executable.static_bytes,
                                           name=executable.program)
        self._static_cursor = 0
        self.allocations: dict[str, Allocation] = {}

    # --- allocation paths -------------------------------------------------------
    def allocate(self, nbytes: int, name: str) -> Allocation:
        """Dynamic allocation (Fortran ``ALLOCATE``)."""
        allocation = self.allocator.allocate(self.space, nbytes, name)
        self.allocations[name] = allocation
        return allocation

    def static_array(self, nbytes: int, name: str) -> Allocation:
        """Static allocation in the executable's data/BSS segment."""
        offset = align_up(self._static_cursor, 64)
        if offset + nbytes > self._image.length:
            # grow the modelled image (relinking with a bigger BSS)
            raise MemoryError(
                f"static segment too small for {name}: relink with "
                f"static_bytes >= {offset + nbytes}"
            )
        self._static_cursor = offset + nbytes
        allocation = Allocation(vma=self._image, offset=offset,
                                nbytes=nbytes, name=name)
        self.allocations[name] = allocation
        return allocation

    def free(self, name: str) -> None:
        allocation = self.allocations.pop(name)
        if allocation.vma is not self._image:
            self.allocator.free(self.space, allocation)

    # --- convenience ----------------------------------------------------------------
    def first_touch(self, name: str, order: str = "sequential",
                    stride: int | None = None) -> None:
        """Fault in an allocation the way an initialisation loop would.

        ``sequential`` touches pages front to back (contiguous loop);
        ``strided`` touches with the given byte stride first, then fills —
        modelling per-variable initialisation of a Fortran-order array.
        """
        allocation = self.allocations[name]
        if order == "sequential":
            allocation.touch_all(self.space)
        elif order == "strided":
            step = stride or (1 << 20)
            probes = np.arange(0, allocation.nbytes, step, dtype=np.int64)
            allocation.touch(self.space, probes)
            allocation.touch_all(self.space)
        else:
            raise ValueError(f"unknown touch order {order!r}")

    def uses_huge_pages(self) -> bool:
        """The paper's /proc/meminfo criterion, scoped to this process."""
        return any(a.vma.uses_huge_pages() for a in self.allocations.values())

    def exit(self) -> None:
        self.kernel.exit_process(self.space)
        self.allocations.clear()


__all__ = ["Executable", "Process"]
