"""Runtime allocator models: where do Fortran ``ALLOCATE``s actually land?

Three behaviours decide the paper's entire huge-page story:

:class:`GlibcMalloc`
    gfortran and the Cray runtime allocate through glibc malloc.  Requests
    above ``mmap_threshold`` (128 KiB) are served by a **plain anonymous
    mmap**.  On the 64 KiB-granule kernel such mappings only receive THP if
    they contain a whole 512 MiB-aligned extent — which FLASH's arrays do
    not — and the libhugetlbfs preload **only hooks the morecore (sbrk)
    heap path**, not mmap.  Hence "try as we might ... all to no avail".

:class:`GlibcMalloc` + ``HUGETLB_MORECORE``
    the libhugetlbfs preload replaces the heap with hugetlbfs-backed
    memory; requests *below* the mmap threshold benefit, large arrays do
    not.

:class:`FujitsuLargePage`
    the Fujitsu runtime links its XOS_MMM_L large-page allocator, which
    intercepts **large allocations on the mmap path** and backs them with
    2 MiB hugetlbfs pages (``XOS_MMM_L_HPAGE_TYPE=hugetlbfs``, the default)
    or THP-advised memory (``thp``) or nothing (``none``).  Compiling with
    ``-Knolargepage`` removes the library — the paper's only way to turn
    huge pages *off* with the Fujitsu compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util import KiB, MiB
from repro.util.errors import AllocationError
from repro.kernel.page import align_up
from repro.kernel.vmm import AddressSpace, MapFlags, VMA
from repro.toolchain.env import ProcessEnv


@dataclass
class Allocation:
    """A live allocation: a VMA plus the payload offset within it."""

    vma: VMA
    offset: int
    nbytes: int
    name: str = ""

    def translate(self, space: AddressSpace, offsets: np.ndarray):
        """Map payload-relative byte offsets to (page base, page size)."""
        return space.translate(self.vma, self.offset + np.asarray(offsets, np.int64))

    def touch(self, space: AddressSpace, offsets: np.ndarray) -> None:
        space.touch(self.vma, self.offset + np.asarray(offsets, np.int64))

    def touch_all(self, space: AddressSpace) -> None:
        space.touch_range(self.vma, self.offset, self.nbytes)


class AllocatorModel:
    """Base class: allocators turn byte requests into VMAs."""

    name = "abstract"

    def allocate(self, space: AddressSpace, nbytes: int, name: str = "") -> Allocation:
        raise NotImplementedError

    def free(self, space: AddressSpace, allocation: Allocation) -> None:
        """Return memory; mmap-backed allocations are unmapped eagerly."""
        if allocation.vma.name != "[heap]":
            space.munmap(allocation.vma)
        # heap sub-allocations are retained by the arena (glibc behaviour)


@dataclass
class GlibcMalloc(AllocatorModel):
    """glibc malloc: brk heap below the threshold, anonymous mmap above.

    ``morecore`` mirrors libhugetlbfs' ``HUGETLB_MORECORE``: ``None`` for a
    normal heap, a huge-page size for a hugetlbfs-backed heap, or ``'thp'``
    for an madvised heap.
    """

    mmap_threshold: int = 128 * KiB
    morecore: str | int | None = None
    #: glibc's bookkeeping header before the payload
    header_bytes: int = 16
    _heap_cursor: int = field(default=0, repr=False)

    name = "glibc"

    def _heap(self, space: AddressSpace) -> VMA:
        morecore = self.morecore
        if morecore is None:
            return space.brk_heap()
        if morecore == "thp":
            heap = space.brk_heap()
            if not heap.madv_hugepage:
                space.madvise(heap, "MADV_HUGEPAGE")
            return heap
        size = (space.kernel.config.boot.default_hugepagesz
                if morecore == "default" else int(morecore))
        return space.brk_heap(hugetlb_size=size)

    def allocate(self, space: AddressSpace, nbytes: int, name: str = "") -> Allocation:
        if nbytes <= 0:
            raise AllocationError("allocation size must be positive")
        if nbytes + self.header_bytes < self.mmap_threshold:
            heap = self._heap(space)
            offset = self._heap_cursor + self.header_bytes
            end = align_up(offset + nbytes, 16)
            if end > heap.length:
                raise AllocationError("simulated heap arena exhausted")
            self._heap_cursor = end
            return Allocation(vma=heap, offset=offset, nbytes=nbytes, name=name)
        vma = space.mmap(nbytes + self.header_bytes,
                         flags=MapFlags.ANONYMOUS, name=name or "malloc-mmap")
        return Allocation(vma=vma, offset=self.header_bytes, nbytes=nbytes, name=name)


@dataclass
class FujitsuLargePage(AllocatorModel):
    """The XOS_MMM_L large-page allocator linked by the Fujitsu runtime.

    Large requests bypass glibc entirely: the library mmaps hugetlbfs
    memory (drawing surplus pool pages on demand — the Fujitsu install
    raises ``nr_overcommit_hugepages``, which is how *unmodified* Ookami
    nodes huge-paged just as well as the modified ones) and suballocates
    from it.  Small requests fall through to glibc.
    """

    hpage_type: str = "hugetlbfs"  # none | hugetlbfs | thp
    large_threshold: int = 256 * KiB
    huge_size: int | None = None  # default: kernel's default_hugepagesz
    fallthrough: GlibcMalloc = field(default_factory=GlibcMalloc)

    name = "fujitsu-xos-mmm-l"

    def allocate(self, space: AddressSpace, nbytes: int, name: str = "") -> Allocation:
        if nbytes <= 0:
            raise AllocationError("allocation size must be positive")
        if self.hpage_type == "none" or nbytes < self.large_threshold:
            return self.fallthrough.allocate(space, nbytes, name)
        if self.hpage_type == "thp":
            # align and advise; still subject to the kernel's THP granule
            vma = space.mmap(
                nbytes,
                flags=MapFlags.ANONYMOUS,
                name=name or "xos-thp",
                align=space.kernel.config.geometry.thp_page,
            )
            space.madvise(vma, "MADV_HUGEPAGE")
            return Allocation(vma=vma, offset=0, nbytes=nbytes, name=name)
        size = self.huge_size or space.kernel.config.boot.default_hugepagesz
        # pool and overcommit exhausted: fall back to normal memory rather
        # than kill the job, as the library does; the kernel counts the
        # downgrade in its degradation log
        vma = space.mmap(nbytes, hugetlb_size=size, hugetlb_fallback=True,
                         name=name or "xos-hugetlb")
        return Allocation(vma=vma, offset=0, nbytes=nbytes, name=name)


def build_allocator(env: ProcessEnv, *, fujitsu_largepage: bool) -> AllocatorModel:
    """Choose the allocator a process gets from its toolchain + environment."""
    if fujitsu_largepage:
        return FujitsuLargePage(hpage_type=env.xos_hpage_type)
    return GlibcMalloc(morecore=env.hugetlb_morecore)


__all__ = [
    "Allocation",
    "AllocatorModel",
    "GlibcMalloc",
    "FujitsuLargePage",
    "build_allocator",
]
