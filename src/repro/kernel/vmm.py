"""Virtual memory: VMAs, demand faulting, THP promotion, translation.

This is the heart of the simulated kernel.  A :class:`Kernel` owns physical
memory accounting, the THP policy state, and the hugetlbfs pools; each
simulated process gets an :class:`AddressSpace` in which allocator models
(:mod:`repro.toolchain.allocator`) create :class:`VMA` mappings.

Two operations drive everything the paper measures:

``touch``
    Simulates demand faulting in a given order.  The 4.18 fault path
    installs a PMD-sized transparent huge page only when the faulting
    PMD *extent* is entirely contained in one anonymous VMA and is still
    empty (``pmd_none``), the THP mode (or ``MADV_HUGEPAGE``) allows it,
    and physical memory is available.  With the 64 KiB granule the extent
    is **512 MiB**, which is why FLASH's ~100 MB arrays never get THP
    while a multi-GiB toy array does (DESIGN.md section 5).

``translate``
    Vectorised virtual-address-to-page mapping used by the performance
    pipeline to feed the TLB simulator: for each byte offset it returns
    the base address and size of the backing page.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import AllocationError, KernelError
from repro.kernel.hugetlbfs import HugePool
from repro.kernel.page import align_down, align_up, pages_spanned
from repro.kernel.params import KernelConfig
from repro.kernel.thp import THPState


class MapFlags(enum.Flag):
    """The mmap flags the model distinguishes."""

    NONE = 0
    ANONYMOUS = enum.auto()
    HUGETLB = enum.auto()
    SHARED = enum.auto()
    #: file-backed image segment (text/data/BSS) — never THP-eligible
    IMAGE = enum.auto()
    POPULATE = enum.auto()


@dataclass
class DegradationLog:
    """Counted graceful degradations (the run survived, but worse).

    The kernel records every time it silently served a request with a
    lesser resource — e.g. a ``MAP_HUGETLB`` mapping degraded to base
    pages because the pool was exhausted — so the run report can surface
    what a production job would only whisper into dmesg.
    """

    counts: dict[str, int] = field(default_factory=dict)
    #: first-seen human-readable detail per kind
    details: dict[str, str] = field(default_factory=dict)

    def record(self, kind: str, detail: str = "") -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if detail and kind not in self.details:
            self.details[kind] = detail


@dataclass
class VMA:
    """One virtual memory area.

    Backing state is stored at two granularities: a base-page "populated"
    bitmap and a per-PMD-extent THP flag plus populated-PTE count.
    """

    start: int
    length: int
    flags: MapFlags
    name: str = ""
    hugetlb_size: int | None = None
    madv_hugepage: bool = False
    madv_nohugepage: bool = False

    # populated internals (set by AddressSpace)
    _base_shift: int = 0
    _ext_shift: int = 0
    _base_pop: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _ext_thp: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _ext_base_count: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _huge_pop: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    @property
    def end(self) -> int:
        return self.start + self.length

    @property
    def anonymous(self) -> bool:
        return bool(self.flags & MapFlags.ANONYMOUS) and not bool(self.flags & MapFlags.IMAGE)

    @property
    def is_hugetlb(self) -> bool:
        return self.hugetlb_size is not None

    # --- derived geometry ---------------------------------------------------
    def _init_backing(self, base_page: int, ext_size: int) -> None:
        self._base_shift = base_page.bit_length() - 1
        self._ext_shift = ext_size.bit_length() - 1
        if self.is_hugetlb:
            n_huge = pages_spanned(self.start, self.length, self.hugetlb_size)
            self._huge_pop = np.zeros(n_huge, dtype=bool)
        else:
            n_base = pages_spanned(self.start, self.length, base_page)
            n_ext = pages_spanned(self.start, self.length, ext_size)
            self._base_pop = np.zeros(n_base, dtype=bool)
            self._ext_thp = np.zeros(n_ext, dtype=bool)
            self._ext_base_count = np.zeros(n_ext, dtype=np.int64)

    def _ext_contained(self, ext_local: int) -> bool:
        """Whether local extent ``ext_local`` lies entirely inside the VMA."""
        ext_size = 1 << self._ext_shift
        ext_abs = (align_down(self.start, ext_size)) + ext_local * ext_size
        return ext_abs >= self.start and ext_abs + ext_size <= self.end

    # --- statistics ----------------------------------------------------------
    @property
    def thp_bytes(self) -> int:
        """Bytes of this VMA backed by transparent huge pages."""
        if self.is_hugetlb or self._ext_thp is None:
            return 0
        return int(self._ext_thp.sum()) << self._ext_shift

    @property
    def base_bytes(self) -> int:
        """Bytes of this VMA backed by base pages."""
        if self.is_hugetlb or self._base_pop is None:
            return 0
        return int(self._base_pop.sum()) << self._base_shift

    @property
    def hugetlb_pages_faulted(self) -> int:
        if not self.is_hugetlb:
            return 0
        return int(self._huge_pop.sum())

    @property
    def resident_bytes(self) -> int:
        if self.is_hugetlb:
            return self.hugetlb_pages_faulted * self.hugetlb_size
        return self.thp_bytes + self.base_bytes

    def uses_huge_pages(self) -> bool:
        """Whether any part of this VMA is currently huge-page backed."""
        return self.is_hugetlb and self.hugetlb_pages_faulted > 0 or self.thp_bytes > 0


class AddressSpace:
    """A process address space: mmap/brk/munmap/madvise/touch/translate."""

    #: canonical layout anchors (arbitrary but deterministic)
    _MMAP_BASE = 0x7F00_0000_0000
    _BRK_BASE = 0x5600_0000_0000
    _IMAGE_BASE = 0x4000_0000_0000
    _STACK_TOP = 0x7FFF_FFFF_0000

    def __init__(self, kernel: "Kernel", name: str = "proc") -> None:
        self.kernel = kernel
        self.name = name
        self.vmas: list[VMA] = []
        self._mmap_cursor = self._MMAP_BASE
        self._brk = self._BRK_BASE
        self._heap_vma: VMA | None = None

    # --- mapping management ---------------------------------------------------
    def mmap(
        self,
        length: int,
        *,
        flags: MapFlags = MapFlags.ANONYMOUS,
        hugetlb_size: int | None = None,
        hugetlb_fallback: bool = False,
        name: str = "",
        align: int | None = None,
    ) -> VMA:
        """Create a new mapping; hugetlb mappings reserve pool pages up front.

        An exhausted pool (static pages and overcommit headroom both spent)
        raises an ENOMEM-style :class:`~repro.util.errors.AllocationError`
        naming the request and the pool state — unless ``hugetlb_fallback``
        is set, in which case the mapping degrades to base pages and the
        kernel's :class:`DegradationLog` counts the downgrade.
        """
        geo = self.kernel.config.geometry
        if length <= 0:
            raise KernelError("mmap length must be positive")
        if hugetlb_size is not None:
            geo.validate_huge_size(hugetlb_size)
            pool = self.kernel.pool(hugetlb_size)
            pages = align_up(length, hugetlb_size) // hugetlb_size
            try:
                pool.reserve(pages)
            except AllocationError as exc:
                if not hugetlb_fallback:
                    raise AllocationError(
                        f"mmap(MAP_HUGETLB) of {length} B "
                        f"({name or 'anonymous'}) failed with ENOMEM: "
                        f"{exc}") from exc
                self.kernel.degradations.record(
                    "hugetlb_base_page_fallback",
                    f"{name or 'anonymous'} ({length} B): {exc}")
                hugetlb_size = None
        if hugetlb_size is not None:
            flags |= MapFlags.HUGETLB
            length = align_up(length, hugetlb_size)
            align = max(align or 0, hugetlb_size)
        else:
            flags &= ~MapFlags.HUGETLB
            length = align_up(length, geo.base_page)
        align = max(align or 0, geo.base_page)

        start = align_up(self._mmap_cursor, align)
        self._mmap_cursor = start + length + geo.base_page  # guard gap
        vma = VMA(start=start, length=length, flags=flags, name=name,
                  hugetlb_size=hugetlb_size)
        vma._init_backing(geo.base_page, geo.thp_page)
        self.vmas.append(vma)
        if flags & MapFlags.POPULATE:
            self.touch_range(vma, 0, length)
        return vma

    def munmap(self, vma: VMA) -> None:
        """Remove a mapping, releasing pool pages and physical memory."""
        if vma not in self.vmas:
            raise KernelError("munmap of unknown VMA")
        if vma.is_hugetlb:
            pool = self.kernel.pool(vma.hugetlb_size)
            faulted = vma.hugetlb_pages_faulted
            reserved_left = vma.length // vma.hugetlb_size - faulted
            pool.release(faulted)
            pool.unreserve(reserved_left)
        else:
            self.kernel._uncharge(vma.resident_bytes, anonymous=vma.anonymous,
                                  thp_bytes=vma.thp_bytes)
        self.vmas.remove(vma)
        if vma is self._heap_vma:
            self._heap_vma = None

    def brk_heap(self, *, hugetlb_size: int | None = None) -> VMA:
        """Return (creating on demand) the brk heap VMA.

        ``hugetlb_size`` models libhugetlbfs' ``HUGETLB_MORECORE``, which
        replaces the morecore path with hugetlbfs-backed memory.  It must be
        chosen before the heap is first used.
        """
        if self._heap_vma is None:
            # a generous fixed-size arena stands in for a growable segment
            self._heap_vma = self.mmap(
                256 << 20,
                flags=MapFlags.ANONYMOUS,
                hugetlb_size=hugetlb_size,
                name="[heap]",
            )
        elif hugetlb_size is not None and self._heap_vma.hugetlb_size != hugetlb_size:
            raise KernelError("heap already created with a different backing")
        return self._heap_vma

    def map_image(self, data_bytes: int, name: str = "a.out") -> VMA:
        """Map an executable's data/BSS segment.

        Image segments are file-backed mappings: the fault path never gives
        them transparent huge pages, which is why the paper's *statically*
        allocated test program could not use THP.
        """
        geo = self.kernel.config.geometry
        length = align_up(max(data_bytes, geo.base_page), geo.base_page)
        start = align_up(self._IMAGE_BASE, geo.base_page)
        self._IMAGE_BASE = start + length + geo.base_page
        vma = VMA(start=start, length=length,
                  flags=MapFlags.IMAGE, name=name)
        vma._init_backing(geo.base_page, geo.thp_page)
        self.vmas.append(vma)
        return vma

    def madvise(self, vma: VMA, advice: str) -> None:
        """``MADV_HUGEPAGE`` / ``MADV_NOHUGEPAGE`` at whole-VMA granularity."""
        if advice == "MADV_HUGEPAGE":
            vma.madv_hugepage, vma.madv_nohugepage = True, False
        elif advice == "MADV_NOHUGEPAGE":
            vma.madv_hugepage, vma.madv_nohugepage = False, True
        else:
            raise KernelError(f"unsupported madvise advice {advice!r}")

    # --- faulting --------------------------------------------------------------
    def touch(self, vma: VMA, offsets: np.ndarray) -> None:
        """Fault in pages for byte ``offsets`` (relative to the VMA start),
        in order.  Ordering matters only for THP promotion edge cases; the
        dominant effect is the extent-containment rule."""
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size == 0:
            return
        if offsets.min() < 0 or offsets.max() >= vma.length:
            raise KernelError("touch outside VMA")
        if vma.is_hugetlb:
            self._touch_hugetlb(vma, offsets)
        else:
            self._touch_anon(vma, offsets)

    def touch_range(self, vma: VMA, offset: int, length: int) -> None:
        """Sequentially fault a byte range (one representative touch/page)."""
        geo = self.kernel.config.geometry
        step = vma.hugetlb_size or geo.base_page
        first = align_down(offset, step)
        last = offset + length - 1
        probes = np.arange(first, last + 1, step, dtype=np.int64)
        probes = np.clip(probes, 0, vma.length - 1)
        self.touch(vma, probes)

    def _touch_hugetlb(self, vma: VMA, offsets: np.ndarray) -> None:
        hp = vma.hugetlb_size
        idx = np.unique((vma.start + offsets - align_down(vma.start, hp)) // hp)
        new = idx[~vma._huge_pop[idx]]
        if new.size:
            self.kernel.pool(hp).fault(int(new.size), reserved=True)
            vma._huge_pop[new] = True

    def _touch_anon(self, vma: VMA, offsets: np.ndarray) -> None:
        kernel = self.kernel
        geo = kernel.config.geometry
        bp_shift = vma._base_shift
        ext_shift = vma._ext_shift
        va = vma.start + offsets
        bp_idx = (va >> bp_shift) - (vma.start >> bp_shift)
        ext_idx = (va >> ext_shift) - (vma.start >> ext_shift)

        faulting = ~(vma._base_pop[bp_idx] | vma._ext_thp[ext_idx])
        if not faulting.any():
            return
        f_bp = bp_idx[faulting]
        f_ext = ext_idx[faulting]

        thp_ok = kernel.thp.fault_allows_huge(
            anonymous=vma.anonymous,
            madv_hugepage=vma.madv_hugepage,
            madv_nohugepage=vma.madv_nohugepage,
        ) and not bool(vma.flags & MapFlags.IMAGE)

        uniq_ext, first_pos = np.unique(f_ext, return_index=True)
        for e in uniq_ext[np.argsort(first_pos)]:
            e = int(e)
            promoted = False
            if (
                thp_ok
                and vma._ext_contained(e)
                and vma._ext_base_count[e] == 0
                and kernel._try_charge(geo.thp_page, anonymous=True, thp=True)
            ):
                vma._ext_thp[e] = True
                kernel.thp.thp_fault_alloc += 1
                promoted = True
            elif thp_ok and vma._ext_contained(e) and vma._ext_base_count[e] == 0:
                kernel.thp.thp_fault_fallback += 1
            if not promoted:
                bps = np.unique(f_bp[f_ext == e])
                new = bps[~vma._base_pop[bps]]
                if new.size:
                    if not kernel._try_charge(int(new.size) << bp_shift,
                                              anonymous=vma.anonymous, thp=False):
                        raise AllocationError("out of memory faulting base pages")
                    vma._base_pop[new] = True
                    vma._ext_base_count[e] += int(new.size)

    # --- khugepaged --------------------------------------------------------------
    def khugepaged_scan(self, max_extents: int | None = None) -> int:
        """Collapse eligible partially populated extents into huge pages.

        Returns the number of collapses performed.  Not run automatically:
        at the 4.18 defaults the daemon is far too slow to matter within a
        benchmark run, matching the paper's observations.
        """
        kernel = self.kernel
        geo = kernel.config.geometry
        ptes_per_extent = geo.thp_page // geo.base_page
        budget = max_extents if max_extents is not None else np.inf
        collapsed = 0
        for vma in self.vmas:
            if vma.is_hugetlb or vma._ext_thp is None:
                continue
            for e in np.flatnonzero(~vma._ext_thp):
                e = int(e)
                if collapsed >= budget:
                    return collapsed
                count = int(vma._ext_base_count[e])
                if not vma._ext_contained(e):
                    continue
                if not kernel.thp.collapse_allows_huge(
                    anonymous=vma.anonymous,
                    madv_hugepage=vma.madv_hugepage,
                    madv_nohugepage=vma.madv_nohugepage,
                    populated_ptes=count,
                    ptes_per_extent=ptes_per_extent,
                ):
                    continue
                freed = count << vma._base_shift
                if not kernel._try_charge(geo.thp_page - freed, anonymous=True, thp=True):
                    continue
                # re-classify the freed base bytes as THP bytes
                kernel._uncharge(freed, anonymous=True, thp_bytes=0)
                kernel.anon_thp_bytes += freed
                ext_size = 1 << vma._ext_shift
                ext_abs = align_down(vma.start, ext_size) + e * ext_size
                lo = (ext_abs >> vma._base_shift) - (vma.start >> vma._base_shift)
                hi = lo + ptes_per_extent
                lo = max(lo, 0)
                vma._base_pop[lo:hi] = False
                vma._ext_base_count[e] = 0
                vma._ext_thp[e] = True
                kernel.thp.thp_collapse_alloc += 1
                collapsed += 1
        return collapsed

    # --- translation ------------------------------------------------------------
    def translate(self, vma: VMA, offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map byte offsets to ``(page_base_va, page_size)`` arrays.

        Pages are assumed present (the performance pipeline touches first);
        unpopulated addresses translate as base pages, which is also what a
        fresh fault would install for them in steady state.
        """
        geo = self.kernel.config.geometry
        offsets = np.asarray(offsets, dtype=np.int64)
        va = vma.start + offsets
        if vma.is_hugetlb:
            size = np.full(va.shape, vma.hugetlb_size, dtype=np.int64)
            base = va & ~(vma.hugetlb_size - 1)
            return base, size
        # homogeneous VMAs (no THP extents, or all-THP) skip the
        # per-access extent gather — the common case for the batched
        # whole-mesh translate calls of the fast replay engine
        n_thp = int(vma._ext_thp.sum())
        if n_thp == 0 or n_thp == vma._ext_thp.size:
            psize = geo.thp_page if n_thp else geo.base_page
            size = np.full(va.shape, psize, dtype=np.int64)
            base = va & np.int64(~(psize - 1))
            return base, size
        ext_idx = (va >> vma._ext_shift) - (vma.start >> vma._ext_shift)
        is_thp = vma._ext_thp[ext_idx]
        size = np.where(is_thp, geo.thp_page, geo.base_page).astype(np.int64)
        base = va & ~(size - 1)
        return base, size

    # --- statistics ---------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        return sum(v.resident_bytes for v in self.vmas)

    def anon_huge_bytes(self) -> int:
        """This address space's contribution to AnonHugePages."""
        return sum(v.thp_bytes for v in self.vmas)

    def hugetlb_bytes(self) -> int:
        return sum(v.hugetlb_pages_faulted * v.hugetlb_size
                   for v in self.vmas if v.is_hugetlb)


class Kernel:
    """The simulated kernel: physical memory, THP state, hugetlbfs pools."""

    def __init__(self, config: KernelConfig | None = None) -> None:
        self.config = config or KernelConfig()
        self.thp = THPState(mode=self.config.thp_mode)
        self.pools: dict[int, HugePool] = {}
        for size in self.config.boot.hugepagesz:
            pool = HugePool(page_size=size,
                            nr_hugepages=self.config.boot.hugepages.get(size, 0))
            overc = self.config.sysctl.nr_overcommit_hugepages.get(size, 0)
            pool.nr_overcommit = overc
            self.pools[size] = pool
        self.anon_base_bytes = 0
        self.anon_thp_bytes = 0
        self.file_bytes = 0
        self.address_spaces: list[AddressSpace] = []
        #: counted graceful degradations (surfaced in run reports)
        self.degradations = DegradationLog()

    # --- pools -------------------------------------------------------------------
    def pool(self, size: int | None = None) -> HugePool:
        """The hugetlb pool for ``size`` (default: default_hugepagesz)."""
        size = size or self.config.boot.default_hugepagesz
        if size not in self.pools:
            raise KernelError(
                f"no hugetlb pool of size {size}; boot with hugepagesz={size}"
            )
        return self.pools[size]

    @property
    def hugetlb_total_bytes(self) -> int:
        return sum(p.total * p.page_size for p in self.pools.values())

    # --- memory accounting ----------------------------------------------------------
    @property
    def mem_used(self) -> int:
        return (self.config.os_reserved + self.anon_base_bytes +
                self.anon_thp_bytes + self.file_bytes + self.hugetlb_total_bytes)

    @property
    def mem_free(self) -> int:
        return self.config.mem_total - self.mem_used

    def _try_charge(self, nbytes: int, *, anonymous: bool, thp: bool) -> bool:
        if nbytes > self.mem_free:
            return False
        if thp:
            self.anon_thp_bytes += nbytes
        elif anonymous:
            self.anon_base_bytes += nbytes
        else:
            self.file_bytes += nbytes
        return True

    def _uncharge(self, nbytes: int, *, anonymous: bool, thp_bytes: int) -> None:
        if anonymous:
            self.anon_thp_bytes -= thp_bytes
            self.anon_base_bytes -= nbytes - thp_bytes
        else:
            self.file_bytes -= nbytes

    # --- processes --------------------------------------------------------------------
    def new_address_space(self, name: str = "proc") -> AddressSpace:
        space = AddressSpace(self, name)
        self.address_spaces.append(space)
        return space

    def exit_process(self, space: AddressSpace) -> None:
        """Tear down an address space, releasing all its memory."""
        for vma in list(space.vmas):
            space.munmap(vma)
        self.address_spaces.remove(space)

    # --- sysfs front door ---------------------------------------------------------------
    def write_sysfs_thp_enabled(self, text: str) -> None:
        """``echo <word> > /sys/kernel/mm/transparent_hugepage/enabled``."""
        self.thp.write_enabled(text)

    def read_sysfs_thp_enabled(self) -> str:
        return self.thp.read_enabled()


__all__ = ["Kernel", "AddressSpace", "VMA", "MapFlags", "DegradationLog"]
