"""The hugetlbfs reserved pool.

Models the per-size pools reported by ``/proc/meminfo`` as
``HugePages_Total / Free / Rsvd / Surp``:

* a **static pool** sized via boot parameters, ``vm.nr_hugepages``, or the
  ``hugeadm --pool-pages-min`` tool used on the modified Ookami nodes;
* a **surplus** mechanism (``vm.nr_overcommit_hugepages``) allowing
  temporary pages beyond the static pool;
* **reservation** semantics: a successful ``mmap(MAP_HUGETLB)`` reserves
  pages up front (so later faults cannot fail), and faulting converts
  reserved pages to allocated ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import AllocationError, KernelError


@dataclass
class HugePool:
    """One huge-page pool (there is one per supported page size)."""

    page_size: int
    #: persistent pool pages configured by the administrator
    nr_hugepages: int = 0
    #: ceiling on surplus pages allocatable beyond the static pool
    nr_overcommit: int = 0
    #: currently materialised surplus pages
    surplus: int = 0
    #: pages backing faulted-in mappings
    allocated: int = 0
    #: pages promised to mappings but not yet faulted
    reserved: int = 0

    @property
    def total(self) -> int:
        """``HugePages_Total``: static pool plus live surplus pages."""
        return self.nr_hugepages + self.surplus

    @property
    def free(self) -> int:
        """``HugePages_Free``: pool pages not yet backing any mapping.

        Reserved-but-unfaulted pages still count as free (as in Linux),
        which is why ``HugePages_Rsvd`` exists as a separate field.
        """
        return self.total - self.allocated

    @property
    def available_for_reservation(self) -> int:
        """Pages a new mapping could still reserve (incl. potential surplus)."""
        headroom = self.nr_overcommit - self.surplus
        return self.free - self.reserved + max(headroom, 0)

    def set_pool_size(self, pages: int) -> None:
        """Model ``hugeadm --pool-pages-min`` / ``vm.nr_hugepages``.

        Shrinking below the number of in-use pages converts the excess to
        surplus, as the kernel does.
        """
        if pages < 0:
            raise KernelError("pool size cannot be negative")
        in_use = self.allocated + self.reserved
        if pages < in_use - self.surplus:
            self.surplus += (in_use - self.surplus) - pages
        self.nr_hugepages = pages

    def reserve(self, pages: int) -> None:
        """Reserve pages at ``mmap`` time; raises ENOMEM-style on exhaustion."""
        if pages < 0:
            raise KernelError("cannot reserve a negative page count")
        shortfall = pages - (self.free - self.reserved)
        if shortfall > 0:
            if self.surplus + shortfall > self.nr_overcommit:
                raise AllocationError(
                    f"hugetlb pool ({self.page_size} B) exhausted: "
                    f"need {pages}, free {self.free - self.reserved}, "
                    f"overcommit headroom {self.nr_overcommit - self.surplus}"
                )
            self.surplus += shortfall
        self.reserved += pages

    def unreserve(self, pages: int) -> None:
        """Return unfaulted reservations (munmap of an untouched mapping)."""
        if pages > self.reserved:
            raise KernelError("unreserving more pages than are reserved")
        self.reserved -= pages
        self._shrink_surplus()

    def fault(self, pages: int, reserved: bool = True) -> None:
        """Convert reservations to allocations at fault time."""
        if reserved:
            if pages > self.reserved:
                raise KernelError("faulting more pages than were reserved")
            self.reserved -= pages
        elif pages > self.free - self.reserved:
            raise AllocationError("hugetlb fault with no reservation and empty pool")
        self.allocated += pages

    def release(self, pages: int) -> None:
        """Free allocated pages back to the pool (munmap / exit)."""
        if pages > self.allocated:
            raise KernelError("releasing more pages than are allocated")
        self.allocated -= pages
        self._shrink_surplus()

    def _shrink_surplus(self) -> None:
        """Surplus pages are returned to the buddy allocator once idle."""
        idle = self.total - self.allocated - self.reserved
        give_back = min(self.surplus, idle)
        if give_back > 0:
            self.surplus -= give_back

    def check_invariants(self) -> None:
        """Raise if the accounting ever goes inconsistent (used by tests)."""
        if min(self.nr_hugepages, self.surplus, self.allocated, self.reserved) < 0:
            raise KernelError(f"negative hugetlb accounting: {self}")
        if self.allocated + self.reserved > self.total:
            raise KernelError(f"hugetlb pool oversubscribed: {self}")


__all__ = ["HugePool"]
