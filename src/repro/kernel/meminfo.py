"""``/proc/meminfo`` rendering.

The paper's section III monitors these fields to confirm huge pages are in
use: ``AnonHugePages``, ``ShmemHugePages``, ``HugePages_Total``,
``HugePages_Free``, ``HugePages_Rsvd``, ``HugePages_Surp``,
``Hugepagesize``, ``Hugetlb``.  This module renders the same fields from
the simulated kernel state, in the same units (kB).
"""

from __future__ import annotations

from repro.util import KiB
from repro.kernel.vmm import Kernel


def meminfo(kernel: Kernel) -> dict[str, int]:
    """Return the meminfo fields as a dict of kB (counts for HugePages_*)."""
    anon_base = kernel.anon_base_bytes
    anon_thp = kernel.anon_thp_bytes
    default_pool = kernel.pool()
    fields = {
        "MemTotal": kernel.config.mem_total // KiB,
        "MemFree": kernel.mem_free // KiB,
        "AnonPages": (anon_base + anon_thp) // KiB,
        "AnonHugePages": anon_thp // KiB,
        "ShmemHugePages": 0,
        "FilePages": kernel.file_bytes // KiB,
        "HugePages_Total": default_pool.total,
        "HugePages_Free": default_pool.free,
        "HugePages_Rsvd": default_pool.reserved,
        "HugePages_Surp": default_pool.surplus,
        "Hugepagesize": default_pool.page_size // KiB,
        "Hugetlb": kernel.hugetlb_total_bytes // KiB,
    }
    return fields


def render_meminfo(kernel: Kernel) -> str:
    """Render the fields in the familiar ``/proc/meminfo`` text format."""
    counts = {"HugePages_Total", "HugePages_Free", "HugePages_Rsvd", "HugePages_Surp"}
    lines = []
    for key, value in meminfo(kernel).items():
        if key in counts:
            lines.append(f"{key + ':':<16}{value:>12}")
        else:
            lines.append(f"{key + ':':<16}{value:>12} kB")
    return "\n".join(lines)


def hugepages_in_use(kernel: Kernel) -> bool:
    """The paper's monitoring criterion: any meminfo huge-page signal nonzero.

    True when either transparent huge pages back anonymous memory
    (``AnonHugePages > 0``) or hugetlbfs pages are faulted in
    (``HugePages_Total - HugePages_Free > 0`` for any pool).
    """
    if kernel.anon_thp_bytes > 0:
        return True
    return any(p.allocated > 0 for p in kernel.pools.values())


__all__ = ["meminfo", "render_meminfo", "hugepages_in_use"]
