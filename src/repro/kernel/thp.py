"""Transparent huge pages: policy, fault-path promotion, khugepaged.

Models the THP implementation of the 4.18-era kernel the paper ran:

* THP exists **only at PMD granularity** (512 MiB with the 64 KiB granule,
  2 MiB with the 4 KiB granule).  There is no multi-size THP on 4.18.
* The global mode lives in
  ``/sys/kernel/mm/transparent_hugepage/enabled`` and is one of
  ``always``, ``madvise``, ``never`` — the file the paper toggles with
  ``echo always > .../enabled``.
* The fault path installs a huge page only when the faulting PMD extent is
  (a) entirely inside one anonymous VMA, (b) currently empty (``pmd_none``),
  and (c) the mode (or a ``MADV_HUGEPAGE`` hint) allows it.
* ``khugepaged`` may later *collapse* an extent of populated base pages into
  a huge page when at most ``max_ptes_none`` of its PTEs are empty.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class THPMode(enum.Enum):
    """Contents of ``/sys/kernel/mm/transparent_hugepage/enabled``."""

    ALWAYS = "always"
    MADVISE = "madvise"
    NEVER = "never"

    @classmethod
    def parse(cls, text: str) -> "THPMode":
        """Parse either a bare word or the bracketed sysfs form."""
        text = text.strip()
        if "[" in text:
            text = text[text.index("[") + 1 : text.index("]")]
        return cls(text)

    def sysfs(self) -> str:
        """Render the sysfs file contents with the active mode bracketed."""
        words = []
        for mode in THPMode:
            word = mode.value
            words.append(f"[{word}]" if mode is self else word)
        return " ".join(words)


@dataclass
class KhugepagedConfig:
    """Tunables under ``/sys/kernel/mm/transparent_hugepage/khugepaged``."""

    #: maximum number of empty PTEs tolerated when collapsing an extent;
    #: the 4.18 default is 511 of 512 PTEs — i.e. almost any partially
    #: populated extent is collapsible *eventually*.
    max_ptes_none: int = 511
    #: pages scanned per wakeup and the wakeup period; at the defaults the
    #: daemon needs many minutes to chew through a multi-GiB address space,
    #: which is why short benchmark runs never see collapses.
    pages_to_scan: int = 4096
    scan_sleep_millisecs: int = 10000
    #: whether the daemon runs at all (mode ``never`` stops it).
    defrag: bool = True


@dataclass
class THPState:
    """Runtime THP policy state for a simulated kernel."""

    mode: THPMode = THPMode.ALWAYS
    khugepaged: KhugepagedConfig = field(default_factory=KhugepagedConfig)
    #: counters mirroring /proc/vmstat
    thp_fault_alloc: int = 0
    thp_fault_fallback: int = 0
    thp_collapse_alloc: int = 0

    def write_enabled(self, text: str) -> None:
        """Model ``echo <word> > /sys/kernel/mm/transparent_hugepage/enabled``."""
        self.mode = THPMode.parse(text)

    def read_enabled(self) -> str:
        """Model reading the ``enabled`` sysfs file."""
        return self.mode.sysfs()

    def fault_allows_huge(self, *, anonymous: bool, madv_hugepage: bool,
                          madv_nohugepage: bool) -> bool:
        """Whether the fault path may try a PMD-sized allocation."""
        if not anonymous or madv_nohugepage:
            return False
        if self.mode is THPMode.NEVER:
            return False
        if self.mode is THPMode.MADVISE:
            return madv_hugepage
        return True

    def collapse_allows_huge(self, *, anonymous: bool, madv_hugepage: bool,
                             madv_nohugepage: bool, populated_ptes: int,
                             ptes_per_extent: int) -> bool:
        """Whether khugepaged may collapse an extent with the given population."""
        if not self.fault_allows_huge(
            anonymous=anonymous,
            madv_hugepage=madv_hugepage,
            madv_nohugepage=madv_nohugepage,
        ):
            return False
        empty = ptes_per_extent - populated_ptes
        return empty <= self.khugepaged.max_ptes_none and populated_ptes > 0


__all__ = ["THPMode", "THPState", "KhugepagedConfig"]
