"""Models of the libhugetlbfs administration tools the paper used.

* ``hugeadm`` (from ``libhugetlbfs-utils``) configures the hugetlb pools
  and THP mode — what the admins ran on the two modified Ookami nodes.
* ``hugectl`` wraps a *command* with an environment that asks libhugetlbfs
  to back parts of the process with huge pages (``--heap``, ``--shm``,
  ``--thp``...).  Crucially, the heap remapping works through the glibc
  *morecore* hook only — allocations that glibc serves via ``mmap`` (i.e.
  anything above ``mmap_threshold``) are untouched, which is the mechanism
  behind the paper's failed attempts with GNU/Cray FLASH.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.vmm import Kernel
from repro.util.errors import KernelError


@dataclass
class Hugeadm:
    """The subset of ``hugeadm`` used in the paper's node setup."""

    kernel: Kernel

    def pool_pages_min(self, pages: int, page_size: int | None = None) -> None:
        """``hugeadm --pool-pages-min <size>:<pages>``."""
        self.kernel.pool(page_size).set_pool_size(pages)

    def pool_pages_max(self, pages: int, page_size: int | None = None) -> None:
        """``hugeadm --pool-pages-max <size>:<pages>`` (overcommit ceiling)."""
        pool = self.kernel.pool(page_size)
        if pages < pool.nr_hugepages:
            raise KernelError("pool-pages-max below pool-pages-min")
        pool.nr_overcommit = pages - pool.nr_hugepages

    def thp_always(self) -> None:
        """``hugeadm --thp-always``."""
        self.kernel.write_sysfs_thp_enabled("always")

    def thp_madvise(self) -> None:
        """``hugeadm --thp-madvise``."""
        self.kernel.write_sysfs_thp_enabled("madvise")

    def thp_never(self) -> None:
        """``hugeadm --thp-never``."""
        self.kernel.write_sysfs_thp_enabled("never")

    def pool_list(self) -> list[dict[str, int]]:
        """``hugeadm --pool-list``: per-size pool status."""
        return [
            {
                "size": pool.page_size,
                "minimum": pool.nr_hugepages,
                "current": pool.total,
                "maximum": pool.nr_hugepages + pool.nr_overcommit,
            }
            for pool in self.kernel.pools.values()
        ]


def hugectl(
    *,
    heap: bool = False,
    shm: bool = False,
    thp: bool = False,
    heap_page_size: int | None = None,
) -> dict[str, str]:
    """Return the environment ``hugectl`` would set for the wrapped command.

    The returned dict is merged into a
    :class:`repro.toolchain.env.ProcessEnv`.  ``--heap`` sets
    ``HUGETLB_MORECORE`` (morecore-path interception only); ``--shm`` sets
    ``HUGETLB_SHM`` (SysV shared memory only — irrelevant to FLASH, which
    the paper's experiments confirmed); ``--thp`` aligns the heap so THP
    *could* engage (``HUGETLB_MORECORE=thp``).
    """
    env: dict[str, str] = {}
    if heap:
        env["HUGETLB_MORECORE"] = "yes"
        if heap_page_size is not None:
            env["HUGETLB_MORECORE"] = str(heap_page_size)
    if thp:
        env["HUGETLB_MORECORE"] = "thp"
    if shm:
        env["HUGETLB_SHM"] = "yes"
    if env:
        env["LD_PRELOAD"] = "libhugetlbfs.so"
    return env


__all__ = ["Hugeadm", "hugectl"]
