"""Simulated Linux kernel memory management.

This subpackage models the pieces of the Linux memory subsystem the paper
interacts with, faithfully enough that every huge-page observation in the
paper emerges from documented mechanisms:

* base pages and huge pages on an aarch64 64 KiB-granule kernel
  (:mod:`repro.kernel.page`): 64 KiB base, 2 MiB CONT_PTE hugetlbfs pages,
  512 MiB PMD pages — matching the paper's boot parameters
  ``hugepagesz=2M hugepagesz=512M default_hugepagesz=2M``;
* boot parameters and sysctl state (:mod:`repro.kernel.params`);
* transparent huge pages with the 4.18-era PMD-only fault-path promotion
  rule (:mod:`repro.kernel.thp`) plus a khugepaged model;
* the hugetlbfs reserved pool (:mod:`repro.kernel.hugetlbfs`);
* virtual memory areas with demand faulting (:mod:`repro.kernel.vmm`);
* ``/proc/meminfo`` rendering (:mod:`repro.kernel.meminfo`);
* the ``hugeadm`` and ``hugectl`` administration tools
  (:mod:`repro.kernel.tools`).
"""

from repro.kernel.page import PageGeometry, AARCH64_64K, X86_64_4K
from repro.kernel.params import BootParams, Sysctl, KernelConfig
from repro.kernel.thp import THPMode, THPState
from repro.kernel.hugetlbfs import HugePool
from repro.kernel.vmm import Kernel, AddressSpace, VMA, MapFlags
from repro.kernel.meminfo import meminfo, render_meminfo
from repro.kernel.tools import Hugeadm, hugectl

__all__ = [
    "PageGeometry",
    "AARCH64_64K",
    "X86_64_4K",
    "BootParams",
    "Sysctl",
    "KernelConfig",
    "THPMode",
    "THPState",
    "HugePool",
    "Kernel",
    "AddressSpace",
    "VMA",
    "MapFlags",
    "meminfo",
    "render_meminfo",
    "Hugeadm",
    "hugectl",
]
