"""Page-size geometry and alignment arithmetic.

On aarch64 the kernel may be built with a 4 KiB, 16 KiB, or 64 KiB
translation granule.  CentOS / RHEL 8 aarch64 kernels (the 4.18 kernel the
paper used on Ookami) are built with the **64 KiB granule**, which yields:

=================  ==============  =========================
level              page size       Linux role
=================  ==============  =========================
PTE (base)         64 KiB          base page
CONT_PTE (32x)     2 MiB           hugetlbfs huge page
PMD                512 MiB         THP granule + hugetlbfs
CONT_PMD (32x)     16 GiB          hugetlbfs (rarely used)
=================  ==============  =========================

This explains the paper's kernel boot parameters
``hugepagesz=2M hugepagesz=512M default_hugepagesz=2M`` and — because
4.18-era transparent huge pages exist *only* at PMD level — it is the load
bearing fact behind the paper's "mystery" (see DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util import KiB, MiB, GiB
from repro.util.errors import ConfigurationError


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def align_down(addr: int, alignment: int) -> int:
    """Round ``addr`` down to a multiple of ``alignment`` (a power of two)."""
    return addr & ~(alignment - 1)


def align_up(addr: int, alignment: int) -> int:
    """Round ``addr`` up to a multiple of ``alignment`` (a power of two)."""
    return (addr + alignment - 1) & ~(alignment - 1)


def is_aligned(addr: int, alignment: int) -> bool:
    """True when ``addr`` is a multiple of ``alignment`` (a power of two)."""
    return (addr & (alignment - 1)) == 0


def pages_spanned(start: int, length: int, page_size: int) -> int:
    """Number of ``page_size`` pages touched by ``[start, start+length)``."""
    if length <= 0:
        return 0
    first = align_down(start, page_size)
    last = align_down(start + length - 1, page_size)
    return (last - first) // page_size + 1


@dataclass(frozen=True)
class PageGeometry:
    """Page sizes offered by a kernel build.

    Parameters
    ----------
    base_page:
        The translation granule (PTE-level page) in bytes.
    cont_pte_page:
        The contiguous-PTE huge page (hugetlbfs only), or ``None`` when the
        architecture has no such level (x86-64).
    pmd_page:
        The PMD-level huge page.  This is the *only* size transparent huge
        pages come in on a 4.18-era kernel.
    """

    base_page: int
    pmd_page: int
    cont_pte_page: int | None = None
    name: str = "custom"

    def __post_init__(self) -> None:
        for size in (self.base_page, self.pmd_page):
            if not is_power_of_two(size):
                raise ConfigurationError(f"page size {size} is not a power of two")
        if self.cont_pte_page is not None and not is_power_of_two(self.cont_pte_page):
            raise ConfigurationError(
                f"cont-PTE page size {self.cont_pte_page} is not a power of two"
            )
        if self.pmd_page <= self.base_page:
            raise ConfigurationError("PMD page must be larger than the base page")

    @property
    def thp_page(self) -> int:
        """The THP granule: PMD-only on the kernels we model."""
        return self.pmd_page

    @property
    def hugetlb_sizes(self) -> tuple[int, ...]:
        """Huge-page sizes hugetlbfs can serve, smallest first."""
        sizes = [self.pmd_page]
        if self.cont_pte_page is not None:
            sizes.insert(0, self.cont_pte_page)
        return tuple(sizes)

    def validate_huge_size(self, size: int) -> int:
        """Return ``size`` if hugetlbfs supports it, else raise."""
        if size not in self.hugetlb_sizes:
            raise ConfigurationError(
                f"{self.name}: hugepagesz={size} unsupported; "
                f"supported: {self.hugetlb_sizes}"
            )
        return size


#: The Ookami configuration: CentOS 8 aarch64, 64 KiB granule.
AARCH64_64K = PageGeometry(
    base_page=64 * KiB,
    cont_pte_page=2 * MiB,
    pmd_page=512 * MiB,
    name="aarch64-64k",
)

#: A familiar x86-64 configuration, for contrast in tests and examples.
X86_64_4K = PageGeometry(
    base_page=4 * KiB,
    cont_pte_page=None,
    pmd_page=2 * MiB,
    name="x86_64-4k",
)

#: aarch64 built with the 4 KiB granule (not what Ookami ran, but valid).
AARCH64_4K = PageGeometry(
    base_page=4 * KiB,
    cont_pte_page=64 * KiB,
    pmd_page=2 * MiB,
    name="aarch64-4k",
)

__all__ = [
    "PageGeometry",
    "AARCH64_64K",
    "AARCH64_4K",
    "X86_64_4K",
    "align_down",
    "align_up",
    "is_aligned",
    "is_power_of_two",
    "pages_spanned",
]
