"""Kernel boot parameters, sysctl state, and the overall kernel configuration.

Models the knobs the paper's system administration section manipulates:

* boot-time ``hugepagesz=... default_hugepagesz=...`` parameters, which
  select the hugetlbfs pool sizes that exist at all;
* ``kernel.perf_event_paranoid`` (required by the Fujitsu toolchain install);
* the ``hugetlb_shm_group`` gid allowing unprivileged SysV-SHM huge pages;
* ``vm.nr_hugepages`` / ``vm.nr_overcommit_hugepages``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util import GiB, KiB, MiB
from repro.util.errors import ConfigurationError
from repro.kernel.page import AARCH64_64K, PageGeometry
from repro.kernel.thp import THPMode


def _parse_size(text: str) -> int:
    """Parse a kernel-style size string such as ``2M`` or ``512M``."""
    text = text.strip()
    multipliers = {"K": KiB, "M": MiB, "G": GiB}
    if text and text[-1].upper() in multipliers:
        return int(text[:-1]) * multipliers[text[-1].upper()]
    return int(text)


@dataclass
class BootParams:
    """Kernel command-line parameters relevant to huge pages.

    The defaults replicate the modified Ookami nodes from the paper:
    ``hugepagesz=2M hugepagesz=512M default_hugepagesz=2M``.
    """

    hugepagesz: tuple[int, ...] = (2 * MiB, 512 * MiB)
    default_hugepagesz: int = 2 * MiB
    #: pages preallocated at boot per size (``hugepages=N`` after a
    #: ``hugepagesz=`` selects that size)
    hugepages: dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_cmdline(cls, cmdline: str, geometry: PageGeometry = AARCH64_64K) -> "BootParams":
        """Parse a kernel command line, honouring parameter ordering.

        ``hugepages=N`` applies to the most recent ``hugepagesz=`` (or the
        architecture default size if none was given yet), as the real kernel
        does.
        """
        sizes: list[int] = []
        default = None
        counts: dict[int, int] = {}
        current = geometry.hugetlb_sizes[0]
        for token in cmdline.split():
            if "=" not in token:
                continue
            key, _, value = token.partition("=")
            if key == "hugepagesz":
                current = geometry.validate_huge_size(_parse_size(value))
                if current not in sizes:
                    sizes.append(current)
            elif key == "default_hugepagesz":
                default = geometry.validate_huge_size(_parse_size(value))
            elif key == "hugepages":
                counts[current] = int(value)
        if not sizes:
            sizes = [geometry.hugetlb_sizes[0]]
        if default is None:
            default = sizes[0]
        if default not in sizes:
            sizes.append(default)
        return cls(hugepagesz=tuple(sorted(sizes)), default_hugepagesz=default, hugepages=counts)

    def validate(self, geometry: PageGeometry) -> None:
        for size in self.hugepagesz:
            geometry.validate_huge_size(size)
        if self.default_hugepagesz not in self.hugepagesz:
            raise ConfigurationError(
                "default_hugepagesz must be one of the configured hugepagesz values"
            )


@dataclass
class Sysctl:
    """The small subset of sysctl state the paper touches."""

    #: ``kernel.perf_event_paranoid`` — the Fujitsu compiler install on the
    #: modified nodes set this to 1 so PAPI could read PMU counters.
    perf_event_paranoid: int = 2
    #: ``vm.hugetlb_shm_group`` — gid allowed to create SysV SHM huge pages.
    hugetlb_shm_group: int = -1
    #: ``vm.nr_overcommit_hugepages`` per size (surplus pool ceiling).
    nr_overcommit_hugepages: dict[int, int] = field(default_factory=dict)

    def allows_pmu_access(self, privileged: bool = False) -> bool:
        """Whether PAPI-style PMU access works for an unprivileged user."""
        return privileged or self.perf_event_paranoid <= 2

    def allows_full_pmu(self, privileged: bool = False) -> bool:
        """Whether *system-wide* counter access works (paranoid <= 0)."""
        return privileged or self.perf_event_paranoid <= 0


@dataclass
class KernelConfig:
    """Everything needed to boot a :class:`repro.kernel.vmm.Kernel`.

    The defaults replicate the Ookami nodes of the paper: a CentOS 8
    aarch64 kernel (64 KiB granule), 32 GiB of node memory, THP compiled in
    and set to ``always``.
    """

    geometry: PageGeometry = AARCH64_64K
    mem_total: int = 32 * GiB
    boot: BootParams = field(default_factory=BootParams)
    sysctl: Sysctl = field(default_factory=Sysctl)
    thp_mode: THPMode = THPMode.ALWAYS
    #: bytes reserved for the kernel image, OS daemons, filesystem cache...
    os_reserved: int = 2 * GiB

    def __post_init__(self) -> None:
        self.boot.validate(self.geometry)
        if self.os_reserved >= self.mem_total:
            raise ConfigurationError("os_reserved must be smaller than mem_total")


def ookami_config(
    thp_mode: THPMode = THPMode.MADVISE,
    modified_node: bool = True,
) -> KernelConfig:
    """The Ookami node configuration from the paper's section III.

    ``modified_node=True`` replicates the two specially configured nodes:
    huge-page boot parameters, ``kernel.perf_event_paranoid=1`` (from
    ``98-fujitsucompilersettings.conf``), and the ``hugetlb_shm_group``.
    Unmodified nodes keep stock settings (and, as the paper observed, behave
    identically for the Fujitsu runtime because it allocates its huge pages
    through its own library).

    The default THP mode is ``madvise`` — the HPC-site-standard setting
    (512 MiB PMD THP under the 64 KiB granule is considered hazardous;
    cf. the Percona reference the paper cites), and the only mode
    consistent with *all* of the paper's observations: with ``always``,
    multi-GB FLASH meshes would have shown nonzero ``AnonHugePages`` under
    GNU/Cray.  The modified nodes let the authors ``echo always`` for the
    toy-program experiments (:mod:`repro.experiments.testprograms`).
    """
    if modified_node:
        boot = BootParams.from_cmdline(
            "hugepagesz=2M hugepagesz=512M default_hugepagesz=2M"
        )
        sysctl = Sysctl(perf_event_paranoid=1, hugetlb_shm_group=1001)
    else:
        boot = BootParams(hugepagesz=(2 * MiB, 512 * MiB), default_hugepagesz=2 * MiB)
        sysctl = Sysctl(perf_event_paranoid=2)
    return KernelConfig(boot=boot, sysctl=sysctl, thp_mode=thp_mode)


__all__ = ["BootParams", "Sysctl", "KernelConfig", "ookami_config"]
