"""Instrumented regions: the Fortran-OOP wrapper and the hard-coded API.

The paper instrumented FLASH two ways:

1. A Fortran object (after Vanpoucke's "Constructors and Destructors"
   OOP tutorial) whose *constructor* starts PAPI and whose *finalizer*
   stops it, instantiated inside a Fortran ``block`` construct.  This is
   :class:`FortranPerfObject`, used as a context manager (the ``block``).
   It worked under GNU 11.2 and (slightly modified) Cray 10.0.3 — but not
   under Fujitsu 4.5, whose final-procedure support is unreliable: the
   finalizer misbehaves and the measurement is lost.  We model that bug
   faithfully: exiting the block under a compiler with
   ``finalizers_work=False`` raises :class:`PapiFinalizerError`.

2. The fallback that worked everywhere: "hard coding" the PAPI calls —
   :func:`hardcoded_begin` / :func:`hardcoded_end` on a
   :class:`RegionStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.papi.counters import CounterBank, EventSet
from repro.toolchain.compiler import Compiler
from repro.util.errors import ReproError


class PapiFinalizerError(ReproError):
    """The compiler's Fortran ``final`` support corrupted the measurement."""


@dataclass
class RegionStore:
    """Per-region accumulated event sets (the module-level storage the
    paper's instrumentation module kept region identifiers in)."""

    bank: CounterBank
    regions: dict[str, EventSet] = field(default_factory=dict)

    def event_set(self, region: str) -> EventSet:
        if region not in self.regions:
            self.regions[region] = EventSet(bank=self.bank)
        return self.regions[region]

    def measures(self, region: str) -> dict[str, float]:
        return self.event_set(region).measures()


class FortranPerfObject:
    """The OOP wrapper: constructor = PAPI begin, finalizer = PAPI end.

    Use as a context manager — entering models instantiating the object
    inside a Fortran ``block`` construct; exiting models the finalizer
    running when the block ends.
    """

    def __init__(self, store: RegionStore, region: str, compiler: Compiler) -> None:
        self.store = store
        self.region = region
        self.compiler = compiler
        self._es: EventSet | None = None

    def __enter__(self) -> "FortranPerfObject":
        # "use a Fortran module to initialize the object and allocate
        # member variables, call the PAPI begin function"
        self._es = self.store.event_set(self.region)
        self._es.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            return False
        if not self.compiler.finalizers_work:
            # the Fujitsu 4.5 behaviour: the finalizer is called at the
            # wrong time / not reliably — the interval never lands
            self._es._start = None  # measurement lost
            raise PapiFinalizerError(
                f"{self.compiler.name} {self.compiler.version}: Fortran "
                "final procedures are unreliable; fall back to "
                "hardcoded_begin/hardcoded_end (paper, section II)"
            )
        self._es.stop()
        return False


def hardcoded_begin(store: RegionStore, region: str) -> None:
    """The fallback that works with every compiler: explicit PAPI begin."""
    store.event_set(region).start()


def hardcoded_end(store: RegionStore, region: str) -> None:
    """Explicit PAPI end; accumulates into the region's event set."""
    store.event_set(region).stop()


__all__ = [
    "FortranPerfObject",
    "PapiFinalizerError",
    "RegionStore",
    "hardcoded_begin",
    "hardcoded_end",
]
