"""PAPI-style instrumentation and FLASH-style timers.

The simulated PMU is a :class:`~repro.papi.counters.CounterBank` that the
performance pipeline advances as the application executes.  On top of it:

* :class:`~repro.papi.counters.EventSet` — PAPI event sets with
  start/stop/read semantics;
* :class:`~repro.papi.region.FortranPerfObject` — the paper's Fortran-OOP
  instrumentation wrapper (constructor/finalizer pattern), including the
  Fujitsu 4.5 finalizer bug that forced the authors to fall back to the
  "hard-coded" API (:func:`~repro.papi.region.hardcoded_begin` /
  :func:`~repro.papi.region.hardcoded_end`);
* :class:`~repro.papi.timers.Timers` — FLASH's internal hierarchical
  timers, used in the paper as a consistency check.
"""

from repro.papi.events import Event, DERIVED_MEASURES, derive_measures
from repro.papi.counters import CounterBank, EventSet, PmuPermissionError
from repro.papi.region import (
    FortranPerfObject,
    PapiFinalizerError,
    RegionStore,
    hardcoded_begin,
    hardcoded_end,
)
from repro.papi.timers import Timers

__all__ = [
    "Event",
    "DERIVED_MEASURES",
    "derive_measures",
    "CounterBank",
    "EventSet",
    "PmuPermissionError",
    "FortranPerfObject",
    "PapiFinalizerError",
    "RegionStore",
    "hardcoded_begin",
    "hardcoded_end",
    "Timers",
]
