"""The simulated PMU (CounterBank) and PAPI event sets.

The performance pipeline (:mod:`repro.perfmodel.pipeline`) is the
"hardware": after modelling each unit's execution it advances the bank's
monotonic counters.  Instrumentation reads the bank exactly the way PAPI
reads MSRs — snapshot at start, delta at stop — so nested/overlapping
regions behave correctly by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.papi.events import Event, derive_measures
from repro.kernel.params import Sysctl
from repro.util.errors import ReproError


class PmuPermissionError(ReproError):
    """PMU access denied (``kernel.perf_event_paranoid`` too strict)."""


class CounterBank:
    """Monotonic event totals plus a simulated wall clock."""

    def __init__(self, sysctl: Sysctl | None = None) -> None:
        self._sysctl = sysctl
        self.totals: dict[Event, float] = {e: 0.0 for e in Event}
        self.time_s: float = 0.0

    def check_access(self, privileged: bool = False) -> None:
        if self._sysctl is not None and not self._sysctl.allows_pmu_access(privileged):
            raise PmuPermissionError(
                "perf_event_paranoid forbids PMU access; the Fujitsu install "
                "sets kernel.perf_event_paranoid=1 (see section III)"
            )

    def advance(self, seconds: float, increments: dict[Event, float] | None = None) -> None:
        """Advance the clock and the counters by one executed chunk."""
        if not math.isfinite(seconds):
            # NaN slips past a bare `< 0` check and would silently poison
            # every later snapshot/delta; reject it at the source.
            raise ValueError(f"time increment must be finite, got {seconds!r}")
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        for event, value in (increments or {}).items():
            if not math.isfinite(value):
                raise ValueError(
                    f"counter {event} increment must be finite, got {value!r}")
            if value < 0:
                raise ValueError(f"counter {event} cannot decrease")
        self.time_s += seconds
        for event, value in (increments or {}).items():
            self.totals[event] += value

    def snapshot(self) -> tuple[float, dict[Event, float]]:
        return self.time_s, dict(self.totals)


@dataclass
class EventSet:
    """A PAPI event set: start/stop/read with delta semantics."""

    bank: CounterBank
    events: tuple[Event, ...] = tuple(Event)
    _start: tuple[float, dict[Event, float]] | None = field(default=None, repr=False)
    accumulated: dict[Event, float] = field(default_factory=dict)
    elapsed_s: float = 0.0
    n_intervals: int = 0

    def start(self) -> None:
        self.bank.check_access()
        if self._start is not None:
            raise ReproError("event set already started")
        self._start = self.bank.snapshot()

    def stop(self) -> None:
        if self._start is None:
            raise ReproError("event set not started")
        t0, c0 = self._start
        t1, c1 = self.bank.snapshot()
        self.elapsed_s += t1 - t0
        for event in self.events:
            delta = c1[event] - c0[event]
            self.accumulated[event] = self.accumulated.get(event, 0.0) + delta
        self._start = None
        self.n_intervals += 1

    def read(self) -> dict[Event, float]:
        """Accumulated counts over all completed start/stop intervals."""
        return dict(self.accumulated)

    def measures(self) -> dict[str, float]:
        """The paper's derived measures for the accumulated region."""
        return derive_measures(self.accumulated, self.elapsed_s)

    def reset(self) -> None:
        self.accumulated.clear()
        self.elapsed_s = 0.0
        self.n_intervals = 0
        self._start = None


__all__ = ["CounterBank", "EventSet", "PmuPermissionError"]
