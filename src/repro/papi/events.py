"""PAPI event definitions and the paper's derived measures.

The paper instruments a subset of events "that can characterize overall
performance — use of SVE measured as SVE instructions per cycle, memory
bandwidth, DTLB misses, and the number of hardware cycles."
"""

from __future__ import annotations

import enum


class Event(enum.Enum):
    """Raw (simulated) PMU events."""

    #: hardware cycles — PAPI_TOT_CYC
    TOT_CYC = "PAPI_TOT_CYC"
    #: data TLB misses — PAPI_TLB_DM (L1 DTLB refills on the A64FX)
    TLB_DM = "PAPI_TLB_DM"
    #: retired SVE vector instructions (native event)
    SVE_INST = "SVE_INST_RETIRED"
    #: bytes moved to/from memory (derived from the CMG traffic counters)
    MEM_BYTES = "MEM_BYTES"
    #: retired scalar floating-point operations
    FP_OPS = "PAPI_FP_OPS"


#: the five measures of Tables I/II (plus the FLASH timer, kept elsewhere)
DERIVED_MEASURES = (
    "hardware_cycles",
    "time_s",
    "sve_per_cycle",
    "mem_gbytes_per_s",
    "dtlb_misses_per_s",
)


def derive_measures(counts: dict[Event, float], elapsed_s: float) -> dict[str, float]:
    """Turn raw event counts + elapsed time into the paper's measures."""
    cycles = counts.get(Event.TOT_CYC, 0.0)
    return {
        "hardware_cycles": cycles,
        "time_s": elapsed_s,
        "sve_per_cycle": counts.get(Event.SVE_INST, 0.0) / cycles if cycles else 0.0,
        "mem_gbytes_per_s": (
            counts.get(Event.MEM_BYTES, 0.0) / elapsed_s / 1e9 if elapsed_s else 0.0
        ),
        "dtlb_misses_per_s": (
            counts.get(Event.TLB_DM, 0.0) / elapsed_s if elapsed_s else 0.0
        ),
    }


__all__ = ["Event", "DERIVED_MEASURES", "derive_measures"]
