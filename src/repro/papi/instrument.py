"""Wiring PAPI instrumentation into a running simulation — the paper's way.

Section II: the authors first wrapped regions with a Fortran *object*
whose constructor starts PAPI and whose finalizer stops it; that worked
under GNU and Cray but not under Fujitsu 4.5 (unreliable ``final``
procedures), so they "fell back to just 'hard coding' the PAPI calls ...
to work with all compilers".

:class:`PapiInstrumentation` reproduces exactly that protocol: in ``auto``
style it *tries* the OOP wrapper first and, on the first
:class:`~repro.papi.region.PapiFinalizerError`, permanently switches to
the hard-coded begin/end calls (recording that it did, so experiments can
assert the story).  Units accept an instrumentation object and bracket
their regions with :meth:`begin`/:meth:`end`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.papi.counters import CounterBank, EventSet
from repro.papi.region import (
    FortranPerfObject,
    PapiFinalizerError,
    RegionStore,
    hardcoded_begin,
    hardcoded_end,
)
from repro.toolchain.compiler import Compiler
from repro.util.errors import ConfigurationError


@dataclass
class PapiInstrumentation:
    """Region instrumentation with the paper's OOP-then-fallback protocol.

    Styles:

    * ``"oop"`` — always use the Fortran-object wrapper (raises under a
      compiler with broken finalizers, i.e. Fujitsu 4.5);
    * ``"hardcoded"`` — always use explicit begin/end calls;
    * ``"auto"`` — the paper's experience: try OOP, fall back to
      hard-coded on the first finalizer failure.
    """

    compiler: Compiler
    bank: CounterBank = field(default_factory=CounterBank)
    style: str = "auto"

    def __post_init__(self) -> None:
        if self.style not in ("oop", "hardcoded", "auto"):
            raise ConfigurationError(f"unknown instrumentation style {self.style!r}")
        self.store = RegionStore(self.bank)
        self.fell_back = False
        self._lost_measurements = 0
        self._open: dict[str, FortranPerfObject] = {}

    # --- region protocol -----------------------------------------------------
    def _use_oop(self) -> bool:
        if self.style == "oop":
            return True
        if self.style == "hardcoded":
            return False
        return not self.fell_back

    def begin(self, region: str) -> None:
        if self._use_oop():
            obj = FortranPerfObject(self.store, region, self.compiler)
            obj.__enter__()
            self._open[region] = obj
        else:
            hardcoded_begin(self.store, region)

    def end(self, region: str) -> None:
        obj = self._open.pop(region, None)
        if obj is not None:
            try:
                obj.__exit__(None, None, None)
            except PapiFinalizerError:
                # the Fujitsu experience: measurement lost; switch styles
                self._lost_measurements += 1
                if self.style == "oop":
                    raise
                self.fell_back = True
            return
        hardcoded_end(self.store, region)

    class _Scope:
        def __init__(self, inst: "PapiInstrumentation", region: str) -> None:
            self.inst, self.region = inst, region

        def __enter__(self):
            self.inst.begin(self.region)
            return self

        def __exit__(self, exc_type, exc, tb):
            if exc_type is None:
                self.inst.end(self.region)
            return False

    def scope(self, region: str) -> "PapiInstrumentation._Scope":
        return PapiInstrumentation._Scope(self, region)

    # --- results -----------------------------------------------------------------
    def event_set(self, region: str) -> EventSet:
        return self.store.event_set(region)

    def measures(self, region: str) -> dict[str, float]:
        return self.store.measures(region)

    @property
    def lost_measurements(self) -> int:
        """Intervals destroyed by the finalizer bug before the fallback."""
        return self._lost_measurements


__all__ = ["PapiInstrumentation"]
