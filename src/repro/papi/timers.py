"""FLASH-style hierarchical timers.

FLASH's internal timers record elapsed time per named code section with
arbitrary nesting; the paper reports the top-level "evolution" timer as a
consistency check against the PAPI measurements.  Our timers read the same
simulated clock as the PMU, so the consistency holds by construction —
and tests assert it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.papi.counters import CounterBank
from repro.util.errors import ReproError


@dataclass
class _TimerNode:
    name: str
    total_s: float = 0.0
    calls: int = 0
    children: dict[str, "_TimerNode"] = field(default_factory=dict)
    _started_at: float | None = None


class Timers:
    """Nested named timers over a simulated clock (FLASH's Timers unit)."""

    def __init__(self, bank: CounterBank) -> None:
        self.bank = bank
        self.root = _TimerNode(name="")
        self._stack: list[_TimerNode] = [self.root]

    def start(self, name: str) -> None:
        parent = self._stack[-1]
        node = parent.children.setdefault(name, _TimerNode(name=name))
        if node._started_at is not None:
            raise ReproError(f"timer {name!r} already running")
        node._started_at = self.bank.time_s
        self._stack.append(node)

    def stop(self, name: str) -> None:
        node = self._stack[-1]
        if node.name != name:
            raise ReproError(
                f"timer stop mismatch: stopping {name!r} but {node.name!r} is open"
            )
        node.total_s += self.bank.time_s - node._started_at
        node.calls += 1
        node._started_at = None
        self._stack.pop()

    class _Scope:
        def __init__(self, timers: "Timers", name: str) -> None:
            self.timers, self.name = timers, name

        def __enter__(self):
            self.timers.start(self.name)
            return self

        def __exit__(self, *exc):
            self.timers.stop(self.name)
            return False

    def scope(self, name: str) -> "Timers._Scope":
        """``with timers.scope("hydro"): ...``"""
        return Timers._Scope(self, name)

    def get(self, path: str) -> float:
        """Total seconds for a slash-separated timer path."""
        node = self.root
        for part in path.split("/"):
            if part not in node.children:
                raise KeyError(path)
            node = node.children[part]
        return node.total_s

    def summary(self) -> str:
        """Render the familiar FLASH timer summary block."""
        lines = [f"{'accounting unit':<34}{'time (s)':>12}{'calls':>8}"]

        def walk(node: _TimerNode, depth: int) -> None:
            for child in node.children.values():
                lines.append(
                    f"{'  ' * depth + child.name:<34}{child.total_s:>12.3f}"
                    f"{child.calls:>8}"
                )
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


__all__ = ["Timers"]
