"""The PAPI instrumentation unit's declarations.

Instrumentation is not scheduled — units bracket their own regions with
:class:`~repro.papi.instrument.PapiInstrumentation` — but the unit owns
the runtime parameter selecting the paper's region-wrapping style
(Fortran-OOP wrapper, hard-coded calls, or the auto fallback the
authors ended up with under Fujitsu 4.5).
"""

from __future__ import annotations

from repro.core import ParameterSpec, UnitSpec, unit_registry
from repro.papi.instrument import PapiInstrumentation

PAPI_UNIT = unit_registry.register(UnitSpec(
    name="papi",
    description="PAPI-style region instrumentation and counters",
    phase=90,
    implements=(PapiInstrumentation,),
    parameters=(
        ParameterSpec("papi_style", "auto",
                      doc="region wrapping: Fortran-OOP object, hard-coded "
                          "begin/end, or OOP-with-fallback",
                      choices=("auto", "oop", "hardcoded")),
    ),
))

__all__ = ["PAPI_UNIT"]
