"""Declarative unit specifications — the FLASH "Config file" analogue.

FLASH composes a simulation out of *units*: each unit ships a Config
file declaring its runtime parameters, and the setup tool stitches the
declarations into one namespace the driver reads from ``flash.par``
(Calder et al., CLUSTER 2022 instrumented "the expensive units" exactly
because the unit boundaries are first-class).  This module defines the
declaration vocabulary for the reproduction:

* :class:`ParameterSpec` — one typed runtime parameter with its default,
  documentation, and optional validation;
* :class:`WorkKind` — one work-record kind a unit emits (the
  ``UnitInvocation.unit`` tag), carrying its per-zone work model, its
  compiler vectorisation key, its trace granularity (``fine`` units get
  the zone-resolution TLB pass), and its PAPI region name;
* :class:`UnitSpec` — one unit: parameters, work kinds, and the step
  hooks the generic :class:`~repro.driver.simulation.Simulation`
  scheduler calls in declared phase order;
* :class:`WorkloadSpec` — one recordable workload (problem setup +
  instrumented region), so experiments and benchmarks enumerate
  scenarios instead of hard-coding them.

Specs are plain frozen data; the registries live in
:mod:`repro.core.registry` and the declarations themselves live with
their units (``repro/<layer>/unit.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.util.errors import ConfigurationError

#: trace granularities for :attr:`WorkKind.granularity`
FINE = "fine"
COARSE = "coarse"


@dataclass(frozen=True)
class ParameterSpec:
    """One runtime parameter as a unit declares it.

    The value type is the type of ``default`` (bool before int, as in the
    flash.par grammar); ``choices`` and ``validator`` both raise
    :class:`~repro.util.errors.ConfigurationError` on bad values.
    """

    name: str
    default: object
    doc: str = ""
    choices: tuple = ()
    #: called with the typed value; must raise ConfigurationError on
    #: rejection (or return False, which is converted to one)
    validator: Callable[[object], object] | None = None

    @property
    def type(self) -> type:
        return type(self.default)

    def validate(self, value) -> None:
        """Check a *typed* value against choices and the validator."""
        if self.choices and value not in self.choices:
            allowed = ", ".join(repr(c) for c in self.choices)
            raise ConfigurationError(
                f"invalid value {value!r} for runtime parameter "
                f"{self.name!r} (expected one of: {allowed})")
        if self.validator is not None and self.validator(value) is False:
            raise ConfigurationError(
                f"invalid value {value!r} for runtime parameter {self.name!r}")


@dataclass(frozen=True)
class WorkKind:
    """One work-record kind (``UnitInvocation.unit``) a unit emits."""

    name: str
    #: per-zone work densities (:class:`repro.hw.calibration.UnitWorkModel`)
    model: object
    #: compiler vector-fraction key (``CompilerPerf.unit_vector_fraction``)
    vector_key: str
    #: ``fine`` kinds get the zone-resolution TLB pass on sampled blocks;
    #: ``coarse`` kinds only appear in the panel-granularity stream pass
    granularity: str = COARSE
    #: PAPI region this kind's work is attributed to (None: uninstrumented)
    region: str | None = None

    @property
    def fine(self) -> bool:
        return self.granularity == FINE


@dataclass(frozen=True)
class UnitSpec:
    """One unit's declarations: parameters, work kinds, and step hooks.

    Scheduled units (those with a ``step`` hook) are run by the generic
    :class:`~repro.driver.simulation.Simulation` scheduler in ascending
    ``phase`` order; ``implements`` names the runtime classes whose
    instances the scheduler maps onto this spec.  Units without hooks
    (EOS, PAPI, perfmodel) still own parameters and work kinds.
    """

    name: str
    description: str
    #: scheduler order; lower phases run earlier within a step
    phase: int = 100
    #: FLASH timer label bracketing the step hook
    timer: str | None = None
    #: runtime classes this spec schedules (isinstance lookup)
    implements: tuple[type, ...] = ()
    parameters: tuple[ParameterSpec, ...] = ()
    work_kinds: tuple[WorkKind, ...] = ()
    #: advance hook: ``step(sim, unit, dt) -> StepContribution | None``
    step: Callable | None = None
    #: gate for the advance hook: ``should_run(sim, unit) -> bool``
    should_run: Callable | None = None
    #: timestep contributor: ``timestep(sim, unit) -> float``
    timestep: Callable | None = None
    #: work recorder: ``record(sim, unit, ctx) -> list[UnitInvocation]``
    record: Callable | None = None
    #: this unit's instance supplies the grid boundary conditions
    provides_bc: bool = False
    #: evolving-state snapshot for checkpoint/rollback:
    #: ``save_state(sim, unit) -> dict[str, float]`` (flat, numeric);
    #: the supervisor's step rollback and the checkpoint writer both use
    #: it, so a unit that declares one resumes bit-identically
    save_state: Callable | None = None
    #: inverse of ``save_state``: ``restore_state(sim, unit, state)``
    restore_state: Callable | None = None


@dataclass(frozen=True)
class StepContribution:
    """What a step hook reports back into the :class:`StepInfo` summary."""

    n_refined: int = 0
    n_derefined: int = 0


@dataclass(frozen=True)
class RecordContext:
    """Per-step facts recorders need (assembled by the WorkLog hook)."""

    zones: int
    ndim: int
    eos_calls: int = 0
    eos_iters: int = 0
    helmholtz_eos: bool = True


@dataclass(frozen=True)
class WorkloadSpec:
    """One recordable workload: a problem setup plus its instrumentation.

    ``builder(quick=..., steps=..., use_cache=...)`` returns the recorded
    :class:`~repro.perfmodel.workrecord.WorkLog`; ``region_kinds`` are
    the work kinds the paper's instrumented region covers for this
    problem; ``gate`` marks the workloads the committed bench baselines
    regression-gate in CI.
    """

    name: str
    description: str
    builder: Callable
    region_kinds: tuple[str, ...] = ()
    #: step count of the paper's corresponding run (extrapolation anchor)
    paper_steps: int | None = None
    #: which paper table this workload reproduces ("table1"/"table2")
    paper_table: str | None = None
    gate: bool = False


__all__ = [
    "FINE",
    "COARSE",
    "ParameterSpec",
    "WorkKind",
    "UnitSpec",
    "StepContribution",
    "RecordContext",
    "WorkloadSpec",
]
