"""The unit and parameter registries — one declarative spine.

Units declare themselves (``repro/<layer>/unit.py`` modules) into the
module-level :data:`unit_registry`; their parameter declarations are
mirrored into :data:`parameter_registry`, which
:class:`~repro.driver.config.RuntimeParameters` exposes as a flash.par
view.  Downstream layers *derive* what the seed hard-coded:

* the :class:`~repro.driver.simulation.Simulation` scheduler iterates
  :meth:`UnitRegistry.scheduled` specs in phase order;
* the performance pipeline derives its work models and its fine-pass set
  from :meth:`UnitRegistry.work_models` / :meth:`fine_work_kinds`;
* experiments and benchmarks enumerate :meth:`UnitRegistry.workloads`.

Declaration modules are imported lazily on first registry use
(:func:`load_all`), so importing any single ``repro`` module never drags
in the whole stack or trips import cycles.
"""

from __future__ import annotations

import difflib
import importlib
from collections.abc import Mapping

from repro.core.unit import ParameterSpec, UnitSpec, WorkloadSpec
from repro.util.errors import ConfigurationError

#: the modules that register unit declarations (FLASH's "Config files");
#: adding a unit means adding a module here and declaring it there
UNIT_MODULES = (
    "repro.driver.unit",
    "repro.mesh.unit",
    "repro.mpisim.unit",
    "repro.physics.hydro.unit",
    "repro.physics.eos.unit",
    "repro.physics.flame.unit",
    "repro.physics.gravity.unit",
    "repro.papi.unit",
    "repro.perfmodel.unit",
    "repro.chaos.unit",
)

#: modules that register workload declarations (need the full stack)
WORKLOAD_MODULES = ("repro.experiments.workloads",)


def _suggest(name: str, candidates) -> str:
    """A did-you-mean suffix for unknown-name errors (empty if hopeless)."""
    close = difflib.get_close_matches(name, list(candidates), n=1, cutoff=0.6)
    return f" (did you mean {close[0]!r}?)" if close else ""


class ParameterRegistry:
    """All registered runtime parameters, keyed by flash.par name."""

    def __init__(self) -> None:
        self._specs: dict[str, ParameterSpec] = {}
        self._owners: dict[str, str] = {}

    def register(self, unit_name: str, specs) -> None:
        for spec in specs:
            prior = self._owners.get(spec.name)
            if prior is not None and prior != unit_name:
                raise ConfigurationError(
                    f"runtime parameter {spec.name!r} declared by both "
                    f"{prior!r} and {unit_name!r}")
            self._specs[spec.name] = spec
            self._owners[spec.name] = unit_name

    # --- lookup ------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        load_all()
        return name in self._specs

    def names(self) -> tuple[str, ...]:
        load_all()
        return tuple(self._specs)

    def spec(self, name: str) -> ParameterSpec:
        load_all()
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown runtime parameter {name!r}"
                + _suggest(name, self._specs)) from None

    def owner(self, name: str) -> str:
        self.spec(name)
        return self._owners[name]

    def by_unit(self) -> dict[str, tuple[ParameterSpec, ...]]:
        load_all()
        out: dict[str, list[ParameterSpec]] = {}
        for name, spec in self._specs.items():
            out.setdefault(self._owners[name], []).append(spec)
        return {unit: tuple(specs) for unit, specs in out.items()}

    def defaults(self) -> dict[str, object]:
        load_all()
        return {name: spec.default for name, spec in self._specs.items()}

    def default(self, name: str):
        return self.spec(name).default


class _DefaultsView(Mapping):
    """Read-only mapping of every registered parameter's default.

    Kept as :data:`repro.driver.config.DEFAULTS` for compatibility; it
    resolves lazily so importing the config module does not import every
    unit in the library.
    """

    def __init__(self, registry: ParameterRegistry) -> None:
        self._registry = registry

    def __getitem__(self, name: str):
        return self._registry.default(name)

    def __iter__(self):
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry.names())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DefaultsView({dict(self)!r})"


class UnitRegistry:
    """All registered units and workloads."""

    def __init__(self, parameters: ParameterRegistry) -> None:
        self._units: dict[str, UnitSpec] = {}
        self._workloads: dict[str, WorkloadSpec] = {}
        self.parameters = parameters

    # --- registration (import-time, no lazy loading here) -------------------
    def register(self, spec: UnitSpec) -> UnitSpec:
        if spec.name in self._units:
            raise ConfigurationError(f"unit {spec.name!r} registered twice")
        kinds = [k.name for k in spec.work_kinds]
        for other in self._units.values():
            dup = set(kinds) & {k.name for k in other.work_kinds}
            if dup:
                raise ConfigurationError(
                    f"work kind(s) {sorted(dup)} declared by both "
                    f"{other.name!r} and {spec.name!r}")
        self._units[spec.name] = spec
        self.parameters.register(spec.name, spec.parameters)
        return spec

    def register_workload(self, spec: WorkloadSpec) -> WorkloadSpec:
        if spec.name in self._workloads:
            raise ConfigurationError(f"workload {spec.name!r} registered twice")
        self._workloads[spec.name] = spec
        return spec

    # --- units --------------------------------------------------------------
    def unit(self, name: str) -> UnitSpec:
        load_all()
        try:
            return self._units[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown unit {name!r}" + _suggest(name, self._units)) from None

    def units(self) -> tuple[UnitSpec, ...]:
        """Every registered unit, in phase order (stable by name)."""
        load_all()
        return tuple(sorted(self._units.values(),
                            key=lambda s: (s.phase, s.name)))

    def scheduled(self) -> tuple[UnitSpec, ...]:
        """Units the Simulation scheduler advances (those with a hook)."""
        return tuple(s for s in self.units() if s.step is not None)

    def spec_for(self, obj) -> UnitSpec | None:
        """The spec whose ``implements`` classes match an instance."""
        load_all()
        for spec in self.units():
            if spec.implements and isinstance(obj, spec.implements):
                return spec
        return None

    # --- work kinds (the performance pipeline's view) -----------------------
    def work_kinds(self) -> dict[str, "WorkKind"]:
        load_all()
        return {k.name: k for spec in self.units() for k in spec.work_kinds}

    def work_models(self) -> dict[str, tuple[object, str]]:
        """Map work-record kind -> (work model, vectorisation key)."""
        return {name: (k.model, k.vector_key)
                for name, k in self.work_kinds().items()}

    def fine_work_kinds(self) -> frozenset[str]:
        """Kinds whose units declare fine (zone-resolution) TLB traces."""
        return frozenset(name for name, k in self.work_kinds().items()
                         if k.fine)

    def region_kinds(self, region: str) -> tuple[str, ...]:
        """Work kinds attributed to one PAPI region, in declaration order."""
        return tuple(name for name, k in self.work_kinds().items()
                     if k.region == region)

    # --- workloads ------------------------------------------------------------
    def workload(self, name: str) -> WorkloadSpec:
        load_workloads()
        try:
            return self._workloads[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown workload {name!r}"
                + _suggest(name, self._workloads)) from None

    def workloads(self) -> tuple[WorkloadSpec, ...]:
        load_workloads()
        return tuple(self._workloads[name]
                     for name in sorted(self._workloads))

    def gated_workloads(self) -> tuple[WorkloadSpec, ...]:
        """Workloads the committed bench baselines regression-gate."""
        return tuple(w for w in self.workloads() if w.gate)


#: the module-level registries every layer shares
parameter_registry = ParameterRegistry()
unit_registry = UnitRegistry(parameter_registry)

_loaded = False
_workloads_loaded = False


def load_all() -> None:
    """Import every unit declaration module exactly once."""
    global _loaded
    if _loaded:
        return
    _loaded = True  # set first: declaration modules use the registries
    try:
        for module in UNIT_MODULES:
            importlib.import_module(module)
    except Exception:
        _loaded = False
        raise


def load_workloads() -> None:
    """Import the workload declaration modules (pulls the full stack)."""
    global _workloads_loaded
    load_all()
    if _workloads_loaded:
        return
    _workloads_loaded = True
    try:
        for module in WORKLOAD_MODULES:
            importlib.import_module(module)
    except Exception:
        _workloads_loaded = False
        raise


__all__ = [
    "UNIT_MODULES",
    "WORKLOAD_MODULES",
    "ParameterRegistry",
    "UnitRegistry",
    "parameter_registry",
    "unit_registry",
    "load_all",
    "load_workloads",
]
