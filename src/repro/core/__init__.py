"""repro.core — the declarative unit spine.

Every unit of the reproduction (hydro, EOS, flame, gravity, mesh
refinement, PAPI instrumentation, performance replay, driver) registers
here what the rest of the system needs to know about it:

* its **runtime parameters** (types, defaults, validators) — surfaced as
  the flash.par namespace by
  :class:`~repro.driver.config.RuntimeParameters`;
* its **step hooks** in declared phase order — iterated by the generic
  :class:`~repro.driver.simulation.Simulation` scheduler;
* its **instrumentation contract** (work kinds with per-zone work
  models, trace granularity, PAPI region) — from which the performance
  pipeline derives its fine-pass set and work pricing;
* its **workloads** — enumerated by ``repro.experiments`` and
  ``repro.bench``.

See ``docs/architecture.md`` for the layer map and the "how to add a
unit" walkthrough.
"""

from repro.core.registry import (
    UNIT_MODULES,
    WORKLOAD_MODULES,
    ParameterRegistry,
    UnitRegistry,
    load_all,
    load_workloads,
    parameter_registry,
    unit_registry,
)
from repro.core.unit import (
    COARSE,
    FINE,
    ParameterSpec,
    RecordContext,
    StepContribution,
    UnitSpec,
    WorkKind,
    WorkloadSpec,
)

__all__ = [
    "UNIT_MODULES",
    "WORKLOAD_MODULES",
    "ParameterRegistry",
    "UnitRegistry",
    "parameter_registry",
    "unit_registry",
    "load_all",
    "load_workloads",
    "COARSE",
    "FINE",
    "ParameterSpec",
    "RecordContext",
    "StepContribution",
    "UnitSpec",
    "WorkKind",
    "WorkloadSpec",
]
