"""The resilience study: what fault tolerance costs, and what it buys.

Production FLASH campaigns take the paper's runs (50-step EOS,
200-step Sedov) through node loss and wall-clock limits by
checkpointing; the interesting engineering numbers are the ones this
study measures on the rank-decomposed fabric:

* **checkpoint overhead** — wall-clock cost of coordinated snapshots
  (plus their on-disk checkpoints) at each cadence, against the same
  run with no supervision at all;
* **recovery cost** — with a rank killed mid-run, the wall time spent
  inside coordinated recovery (restore + respawn — the MTTR numerator)
  and the steps replayed from the last checkpoint (the part the
  checkpoint *interval* buys down: cheaper cadence, longer replay);
* **bit-identity** — the properties the whole fabric design rests on,
  gated as booleans: a fault-free supervised run must match the
  unsupervised reference exactly, and a killed-and-recovered run must
  match it too (counters and per-rank :meth:`WorkLog.digest`), because
  faults fire once and recovery replays clean.

``LAST_RUN_STATS`` mirrors the most recent study's recovery numbers so
the experiment service can expose ``serve_rank_restarts_total`` and
``serve_recovery_wall_seconds`` on ``/metrics`` — a recovering backend
is *why* a service sheds load or misses deadlines.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.chaos.rankfaults import RankChaos
from repro.experiments.scaling import sedov_fabric_builder
from repro.mpisim.fabric import Fabric

#: the most recent study's recovery numbers (the serve layer mirrors
#: these onto /metrics); empty until a study has run in this process
LAST_RUN_STATS: dict = {}

#: strong-scaling mesh shared with the scaling sweep
_SHAPE = (4, 4)


@dataclass
class ResilienceStudy:
    """The study's numbers, ready to render or gate on."""

    steps: int
    kill_step: int
    #: (n_ranks, interval) -> point dict
    points: dict[tuple[int, int], dict] = field(default_factory=dict)

    def render(self) -> str:
        lines = ["FABRIC RESILIENCE STUDY (2-d Sedov, coordinated "
                 "checkpoint/restart)",
                 "-----------------------------------------------------"
                 "-------------",
                 f"  {self.steps} lockstep steps; rank killed at step "
                 f"{self.kill_step}, recovered from the last coordinated "
                 "checkpoint",
                 "",
                 f"  {'ranks':>7}{'interval':>10}{'ckpt overhead':>15}"
                 f"{'recovery':>12}{'replayed':>10}{'restarts':>10}"
                 f"{'ff-ident':>10}{'rec-ident':>11}"]
        for (ranks, interval), p in sorted(self.points.items()):
            lines.append(
                f"  {ranks:>7}{interval:>10}"
                f"{p['overhead_pct']:>14.1f}%"
                f"{p['recovery_wall_s'] * 1e3:>9.2f} ms"
                f"{p['replayed_steps']:>10}"
                f"{p['rank_restarts']:>10}"
                f"{str(p['faultfree_identical']):>10}"
                f"{str(p['recovered_identical']):>11}")
        lines += [
            "",
            "  ckpt overhead: supervised fault-free wall vs unsupervised "
            "evolve",
            "  recovery: wall inside coordinated restore + rank respawn "
            "(MTTR numerator)",
            "  replayed: steps recomputed between the restored checkpoint "
            "and the kill",
            "  ff-ident / rec-ident: fault-free and killed-and-recovered "
            "runs finish",
            "  bit-identical to the reference (counters and per-rank "
            "WorkLog digests)",
        ]
        return "\n".join(lines)


def _fingerprint(fabric: Fabric) -> tuple:
    """What bit-identity means here: deterministic counter totals and
    the per-rank work digests (wall-time fields excluded)."""
    return (
        tuple(tuple(sorted((e.name, v) for e, v in
                           ctx.sim.bank.totals.items()))
              for ctx in fabric.ranks),
        tuple(ctx.log.digest() for ctx in fabric.ranks),
        tuple(ctx.sim.t for ctx in fabric.ranks),
    )


def _point(n_ranks: int, interval: int, steps: int, kill_step: int,
           reference: tuple, plain_wall: float) -> dict:
    builder = sedov_fabric_builder(*_SHAPE)

    # fault-free supervised run at this cadence: the overhead leg
    with tempfile.TemporaryDirectory() as d:
        fabric = Fabric(builder, n_ranks)
        fabric.attach_worklogs(helmholtz_eos=False)
        t0 = time.perf_counter()
        fabric.run_supervised(nend=steps, checkpoint_interval=interval,
                              checkpoint_dir=d)
        supervised_wall = time.perf_counter() - t0
        faultfree_identical = _fingerprint(fabric) == reference

    # killed-and-recovered run: the MTTR leg
    with tempfile.TemporaryDirectory() as d:
        fabric = Fabric(builder, n_ranks)
        fabric.attach_worklogs(helmholtz_eos=False)
        chaos = RankChaos(faults=("kill_rank",), start=kill_step,
                          every=steps + 1, seed=n_ranks)
        report = fabric.run_supervised(nend=steps,
                                       checkpoint_interval=interval,
                                       checkpoint_dir=d, rank_chaos=chaos)
        recovered_identical = _fingerprint(fabric) == reference

    last_ckpt = ((kill_step - 1) // interval) * interval
    return {
        "plain_wall_s": plain_wall,
        "supervised_wall_s": supervised_wall,
        "overhead_pct": (supervised_wall - plain_wall) / plain_wall * 100.0,
        "recovery_wall_s": report.recovery_wall_s,
        "rank_restarts": report.rank_restarts,
        "replayed_steps": (kill_step - 1) - last_ckpt,
        "faultfree_identical": faultfree_identical,
        "recovered_identical": recovered_identical,
    }


def resilience_study(*, quick: bool = False,
                     rank_counts: tuple[int, ...] = (2, 4),
                     intervals: tuple[int, ...] | None = None,
                     steps: int | None = None) -> ResilienceStudy:
    """Sweep checkpoint cadence and rank count through a forced kill."""
    if intervals is None:
        intervals = (1, 2) if quick else (1, 2, 4)
    if steps is None:
        steps = 6 if quick else 10
    kill_step = steps // 2 + 1
    study = ResilienceStudy(steps=steps, kill_step=kill_step)
    builder = sedov_fabric_builder(*_SHAPE)
    for n_ranks in rank_counts:
        # the unsupervised reference: no snapshots, no disk, no chaos
        ref = Fabric(builder, n_ranks)
        ref.attach_worklogs(helmholtz_eos=False)
        t0 = time.perf_counter()
        ref.evolve(nend=steps)
        plain_wall = time.perf_counter() - t0
        reference = _fingerprint(ref)
        for interval in intervals:
            study.points[(n_ranks, interval)] = _point(
                n_ranks, interval, steps, kill_step, reference, plain_wall)
    LAST_RUN_STATS.clear()
    LAST_RUN_STATS.update(
        rank_restarts=sum(p["rank_restarts"]
                          for p in study.points.values()),
        recovery_wall_s=sum(p["recovery_wall_s"]
                            for p in study.points.values()))
    return study


__all__ = ["ResilienceStudy", "resilience_study", "LAST_RUN_STATS"]
