"""Tables I and II: the with/without-huge-pages comparison.

The measurement protocol mirrors the paper exactly: the same workload is
"compiled with the Fujitsu compiler" twice — once as-is (huge pages on by
default through the XOS_MMM_L runtime) and once with ``-Knolargepage`` —
and the PAPI measures of the instrumented region plus the FLASH timer are
reported side by side.

Two documented anchors tie the absolute scale to the paper's testbed
(see EXPERIMENTS.md):

* **mesh scale** — our laptop-scale mesh is replicated until the
  without-HP instrumented-region time matches the paper's (the paper
  does not state its block count; replication preserves per-zone
  behaviour exactly);
* **work mix** — the FLASH timer (whole run) is the region time divided
  by the paper's observed region share, because the uninstrumented units
  of real FLASH (multipole gravity, 19-isotope burning, I/O, MPI) have
  no counterpart of equal cost here.

All *ratios* and intensive rates are genuine model outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import WorkloadSpec, unit_registry
from repro.experiments.measures import MEASURE_LABELS, PAPER_TABLE1, PAPER_TABLE2
from repro.perfmodel.pipeline import PerfReport, run_batch
from repro.perfmodel.session import ReplaySession, default_session
from repro.perfmodel.workrecord import WorkLog
from repro.toolchain.compiler import FUJITSU
from repro.util.errors import ConfigurationError

#: the paper's published measures, by the workload's declared table tag
_PAPER_TABLES = {"table1": PAPER_TABLE1, "table2": PAPER_TABLE2}


def _workload(problem: str) -> WorkloadSpec:
    """The registered workload for a paper table (instrumented region and
    step count both come from its declaration, not from tables here)."""
    spec = unit_registry.workload(problem)
    if spec.paper_table is None or spec.paper_steps is None:
        raise ConfigurationError(
            f"workload {problem!r} does not reproduce a paper table")
    return spec


@dataclass
class TableResult:
    """One reproduced table: measured values + the paper's."""

    problem: str  # "eos" | "hydro"
    measured: dict[str, dict[str, float]]  # "with"/"without" -> measures
    paper: dict[str, dict[str, float]]
    replication: int
    reports: dict[str, PerfReport] = field(default_factory=dict)

    def ratio(self, key: str) -> float:
        return self.measured["with"][key] / self.measured["without"][key]

    def paper_ratio(self, key: str) -> float:
        return self.paper["with"][key] / self.paper["without"][key]


def _measure(report: PerfReport, problem: str, steps_scale: float,
             flash_anchor: float) -> dict[str, float]:
    m = report.region(_workload(problem).region_kinds)
    out = {k: v * (steps_scale if k in ("hardware_cycles", "time_s") else 1.0)
           for k, v in m.items()}
    region_share = flash_anchor
    out["flash_timer_s"] = out["time_s"] / region_share
    return out


#: quick mode caps the mesh-scale replication here (and probes at the
#: cap, so the probe's replay is shared — see run_table)
_QUICK_REPLICATION_CAP = 4


def run_table(problem: str, log: WorkLog, *,
              replication: int | None = None,
              quick: bool = False,
              session: ReplaySession | None = None) -> TableResult:
    """Reproduce Table I (problem="eos") or Table II (problem="hydro").

    All replays go through the (default, process-wide) replay session:
    the replication probe's full replay — formerly run once and thrown
    away — lands in the session cache, where the measurement runs (and
    any later experiment sharing its page traces) pick it up.
    """
    session = session if session is not None else default_session()
    spec = _workload(problem)
    paper = _PAPER_TABLES[spec.paper_table]
    # per-step extrapolation: the recorded steps stand in for the paper's
    steps_scale = spec.paper_steps / max(log.n_steps, 1)

    # region share of the whole run (the work-mix anchor)
    flash_anchor = paper["without"]["time_s"] / paper["without"]["flash_timer_s"]

    if replication is None:
        # mesh-scale anchor: replicate until the without-HP region time
        # matches the paper's; time is linear in the replication factor,
        # so any probe replication estimates it.  Full runs probe at 1
        # (cheapest); quick runs probe at the quick cap so the probe's
        # replay *is* the without-HP cell's replay whenever the cap wins
        # (our two problems both hit it) — a pure cache hit, not a probe
        # tax on top of the measurement.
        probe_rep = _QUICK_REPLICATION_CAP if quick else 1
        probe = session.pipeline(log, FUJITSU, flags=("-Knolargepage",),
                                 replication=probe_rep).run()
        t1 = _measure(probe, problem, steps_scale,
                      flash_anchor)["time_s"] / probe_rep
        replication = max(1, round(paper["without"]["time_s"] / t1))
        if quick:
            replication = min(replication, _QUICK_REPLICATION_CAP)

    # both cells ride one session batch: with REPRO_REPLAY_JOBS > 1 their
    # distinct replays run on worker processes, and either way the
    # results are bit-identical to running the cells one at a time
    measured = {}
    reports = {}
    cells = (((), "with"), (("-Knolargepage",), "without"))
    pipelines = [session.pipeline(log, FUJITSU, flags=flags,
                                  replication=replication)
                 for flags, _ in cells]
    for (_, label), report in zip(cells, run_batch(pipelines)):
        measured[label] = _measure(report, problem, steps_scale, flash_anchor)
        reports[label] = report
    return TableResult(problem=problem, measured=measured, paper=paper,
                       replication=replication, reports=reports)


def render_table(result: TableResult) -> str:
    """Render in the paper's layout, with the paper's values alongside."""
    title = ("TABLE I — EOS problem (Fujitsu compiler)"
             if result.problem == "eos"
             else "TABLE II — 3-d Hydro problem (Fujitsu compiler)")
    lines = [title, "=" * len(title)]
    header = (f"{'Measure':<26}{'Without HPs':>14}{'With HPs':>14}"
              f"{'Paper w/o':>14}{'Paper w/':>14}")
    lines.append(header)
    lines.append("-" * len(header))
    for key, label in MEASURE_LABELS.items():
        mw = result.measured["without"][key]
        mh = result.measured["with"][key]
        pw = result.paper["without"][key]
        ph = result.paper["with"][key]
        fmt = (lambda v: f"{v:14.3e}") if abs(pw) >= 1e4 else (
            lambda v: f"{v:14.3f}")
        lines.append(f"{label:<26}{fmt(mw)}{fmt(mh)}{fmt(pw)}{fmt(ph)}")
    lines.append(f"(mesh replication x{result.replication}; huge pages in "
                 f"use: with={result.reports['with'].uses_huge_pages}, "
                 f"without={result.reports['without'].uses_huge_pages})")
    return "\n".join(lines)


__all__ = ["run_table", "render_table", "TableResult"]
