"""The experiment registry: every ``python -m repro.experiments`` target.

Each paper artefact (a table, a figure, a study) is declared as an
:class:`ExperimentSpec` whose runner returns the rendered text; the CLI
dispatches from this registry instead of an if-chain, so a new
experiment is one ``register`` call away from ``python -m
repro.experiments <name>`` and from the ``list`` output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.registry import _suggest
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: a name, a one-liner, and its runner."""

    name: str
    description: str
    #: ``run(quick=...) -> str`` — the rendered artefact
    run: Callable[..., str]


_EXPERIMENTS: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    if spec.name in _EXPERIMENTS:
        raise ConfigurationError(f"experiment {spec.name!r} registered twice")
    _EXPERIMENTS[spec.name] = spec
    return spec


def experiments() -> tuple[ExperimentSpec, ...]:
    """Every registered experiment, in registration order."""
    return tuple(_EXPERIMENTS.values())


def experiment(name: str) -> ExperimentSpec:
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}"
            + _suggest(name, _EXPERIMENTS)) from None


# --- the paper's artefacts ---------------------------------------------------
# runners import lazily so `list` stays fast and dependency-light

def _run_all(*, quick: bool = False) -> str:
    from repro.experiments.report import full_report
    return full_report(quick=quick)


def _run_table(problem: str, *, quick: bool = False) -> str:
    from repro.core import unit_registry
    from repro.experiments.tables import render_table, run_table
    log = unit_registry.workload(problem).builder(quick=quick)
    return render_table(run_table(problem, log, quick=quick))


def _run_figure1(*, quick: bool = False) -> str:
    from repro.core import unit_registry
    from repro.experiments.figure1 import figure1_data, render_figure1
    from repro.experiments.tables import run_table
    results = [
        run_table(problem,
                  unit_registry.workload(problem).builder(quick=quick),
                  quick=quick)
        for problem in ("eos", "hydro")]
    return render_figure1(figure1_data(*results))


def _run_compilers(*, quick: bool = False) -> str:
    from repro.core import unit_registry
    from repro.experiments.compilers import compiler_comparison
    log = unit_registry.workload("eos").builder(quick=quick)
    return compiler_comparison(log, replication=2 if quick else 4).render()


def _run_toys(*, quick: bool = False) -> str:
    from repro.experiments.testprograms import render_outcomes, static_vs_dynamic
    return render_outcomes(static_vs_dynamic("gnu") + static_vs_dynamic("cray"),
                           "STATIC VS DYNAMIC TOY PROGRAMS")


def _run_matrix(*, quick: bool = False) -> str:
    from repro.experiments.testprograms import (hugepage_usage_matrix,
                                                render_outcomes)
    return render_outcomes(hugepage_usage_matrix(), "HUGE-PAGE USAGE MATRIX")


def _run_porting(*, quick: bool = False) -> str:
    from repro.core import unit_registry
    from repro.experiments.porting import porting_study
    log = unit_registry.workload("eos").builder(quick=quick)
    return porting_study(log).render()


def _run_soak(*, quick: bool = False) -> str:
    from repro.chaos.soak import soak_experiment
    return soak_experiment(quick=quick)


def _run_scaling(*, quick: bool = False) -> str:
    from repro.experiments.scaling import scaling_study
    return scaling_study(quick=quick).render()


def _run_resilience(*, quick: bool = False) -> str:
    from repro.experiments.resilience import resilience_study
    return resilience_study(quick=quick).render()


def _run_geometry(*, quick: bool = False) -> str:
    from repro.core import unit_registry
    from repro.experiments.geometry import geometry_study
    log = unit_registry.workload("eos").builder(quick=quick)
    return geometry_study(log, replication=1 if quick else 2).render()


register(ExperimentSpec(
    "all", "every table, figure, and study in one report", _run_all))
register(ExperimentSpec(
    "table1", "Table I: EOS problem, with/without huge pages",
    lambda *, quick=False: _run_table("eos", quick=quick)))
register(ExperimentSpec(
    "table2", "Table II: 3-d Hydro problem, with/without huge pages",
    lambda *, quick=False: _run_table("hydro", quick=quick)))
register(ExperimentSpec(
    "figure1", "Figure 1: normalised with/without-HP measures",
    _run_figure1))
register(ExperimentSpec(
    "compilers", "huge-page behaviour across the Ookami toolchains",
    _run_compilers))
register(ExperimentSpec(
    "toys", "static vs dynamic linking toy-program study", _run_toys))
register(ExperimentSpec(
    "matrix", "huge-page usage matrix across allocators and kernels",
    _run_matrix))
register(ExperimentSpec(
    "porting", "porting study: replaying the workload on other nodes",
    _run_porting))
register(ExperimentSpec(
    "soak", "chaos soak: supervised run under scheduled fault injection "
            "(env: REPRO_SOAK_STEPS/SEED/FAULTS/OUT)",
    _run_soak))
register(ExperimentSpec(
    "geometry", "DTLB geometry sensitivity: L1 entry sweep, both page "
                "regimes, via the batched replay kernel",
    _run_geometry))
register(ExperimentSpec(
    "scaling", "rank-decomposed weak/strong scaling sweep: per-rank "
               "replays, both page regimes, node hugetlb contention",
    _run_scaling))
register(ExperimentSpec(
    "resilience", "fabric fault tolerance: checkpoint overhead vs "
                  "cadence, forced rank kill, recovery bit-identity",
    _run_resilience))


__all__ = ["ExperimentSpec", "register", "experiments", "experiment"]
