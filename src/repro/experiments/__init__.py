"""Paper-experiment harness.

One module per artefact of the paper (see DESIGN.md section 4):

* :mod:`repro.experiments.workloads` — the two instrumented workloads
  ("EOS" = 2-d Type Iax supernova; "3-d Hydro" = Sedov), run once and
  cached as WorkLogs;
* :mod:`repro.experiments.tables` — **Table I** and **Table II**;
* :mod:`repro.experiments.figure1` — **Figure 1** (the ratio bar chart);
* :mod:`repro.experiments.compilers` — the section II compiler
  comparison (Arm 2.5x slower; GCC ~ Cray; Xeon ~ 3x faster);
* :mod:`repro.experiments.testprograms` — the section IV toy programs
  and the huge-page usage matrix;
* :mod:`repro.experiments.report` — text rendering.

``python -m repro.experiments all`` regenerates everything.
"""

from repro.experiments.measures import PAPER_TABLE1, PAPER_TABLE2, MEASURE_LABELS
from repro.experiments.workloads import eos_problem_worklog, hydro_problem_worklog
from repro.experiments.tables import run_table, render_table
from repro.experiments.figure1 import figure1_data, render_figure1
from repro.experiments.compilers import compiler_comparison
from repro.experiments.testprograms import (
    hugepage_usage_matrix,
    static_vs_dynamic,
)

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "MEASURE_LABELS",
    "eos_problem_worklog",
    "hydro_problem_worklog",
    "run_table",
    "render_table",
    "figure1_data",
    "render_figure1",
    "compiler_comparison",
    "hugepage_usage_matrix",
    "static_vs_dynamic",
]
