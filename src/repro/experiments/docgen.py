"""Keep the docs in lockstep with the registries.

Two jobs, both run by the CI ``docs`` job:

* **Generated CLI reference.**  ``docs/architecture.md`` embeds the
  output of ``python -m repro.experiments list`` between marker
  comments; this module regenerates that block from the live
  registries (``--write``) or verifies it is current (``--check``), so
  registering a new experiment/workload/unit cannot silently leave the
  documentation behind.

* **Link check.**  ``--links`` walks every markdown file in ``docs/``
  plus the top-level ``README.md``/``DESIGN.md`` and verifies that
  every *relative* link target exists in the repository.  External
  URLs and pure anchors are skipped — this is a repo-consistency
  check, not a crawler.

Usage::

    python -m repro.experiments.docgen --check          # CI
    python -m repro.experiments.docgen --write          # after edits
    python -m repro.experiments.docgen --links          # link check only
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

BEGIN_MARK = "<!-- BEGIN generated: repro.experiments list -->"
END_MARK = "<!-- END generated: repro.experiments list -->"

#: files the link checker walks (relative to the repo root)
LINKED_DOCS = ("README.md", "DESIGN.md", "ROADMAP.md")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def repo_root() -> Path:
    """The repository root (three levels above this module's package)."""
    return Path(__file__).resolve().parents[3]


def generated_block() -> str:
    """The registry-derived reference block, markers included."""
    from repro.experiments.__main__ import _render_list
    return (f"{BEGIN_MARK}\n```\n{_render_list()}\n```\n{END_MARK}")


def render_doc(text: str) -> str:
    """*text* with its generated block replaced by the current one."""
    try:
        head, rest = text.split(BEGIN_MARK, 1)
        _, tail = rest.split(END_MARK, 1)
    except ValueError:
        raise SystemExit(
            f"marker pair {BEGIN_MARK!r} .. {END_MARK!r} not found in the "
            "target document — re-add both markers before regenerating")
    return head + generated_block() + tail


def check_links(root: Path) -> list[str]:
    """Every broken relative link in the documentation set."""
    files = sorted((root / "docs").glob("*.md"))
    files += [root / name for name in LINKED_DOCS if (root / name).exists()]
    problems: list[str] = []
    for path in files:
        for match in _LINK.finditer(path.read_text()):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: broken link -> {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.docgen",
        description="Regenerate/verify registry-derived documentation.")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="rewrite the generated block in place")
    mode.add_argument("--check", action="store_true",
                      help="fail (exit 1) if the block or links are stale")
    mode.add_argument("--links", action="store_true",
                      help="check documentation links only")
    parser.add_argument("--doc", type=Path, default=None,
                        help="document holding the generated block "
                             "(default: docs/architecture.md)")
    args = parser.parse_args(argv)

    root = repo_root()
    doc = args.doc if args.doc is not None else root / "docs/architecture.md"

    if args.links or args.check:
        problems = check_links(root)
        for p in problems:
            print(p, file=sys.stderr)
        if args.links:
            print(f"docgen: links {'BROKEN' if problems else 'ok'}")
            return 1 if problems else 0
        if problems:
            return 1

    current = doc.read_text()
    rendered = render_doc(current)
    if args.write:
        if rendered != current:
            doc.write_text(rendered)
            print(f"docgen: rewrote generated block in {doc}")
        else:
            print(f"docgen: {doc} already current")
        return 0
    if rendered != current:
        print(f"docgen: {doc} is stale — run "
              "`python -m repro.experiments.docgen --write`",
              file=sys.stderr)
        return 1
    print("docgen: ok (generated block current, links resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
