"""Section IV's allocation experiments.

* :func:`static_vs_dynamic` — "we wrote two simple Fortran test programs,
  one statically allocating memory for a 2-d array and one dynamically
  allocating memory ... As expected, the program with the dynamically
  allocated array was able to use huge pages with the GNU compiler while
  the statically allocated array version could not."
* :func:`hugepage_usage_matrix` — the full compiler x mechanism matrix:
  FLASH never huge-pages under GNU/Cray whatever is tried, huge-pages
  naturally under Fujitsu, and ``-Knolargepage`` turns that off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util import GiB, MiB
from repro.kernel.meminfo import meminfo
from repro.kernel.params import ookami_config
from repro.kernel.tools import Hugeadm, hugectl
from repro.kernel.vmm import Kernel
from repro.perfmodel.session import ReplaySession, default_session
from repro.toolchain.compiler import COMPILERS, CRAY, FUJITSU, GNU

#: the toy programs sum over a big 2-d array
TOY_ARRAY_BYTES = 2 * GiB
#: FLASH's main containers at the 2-d supernova scale
FLASH_UNK_BYTES = 96 * MiB

#: bump when the experiment *rows* change (new mechanisms, new labels);
#: model-constant changes are captured by the dataclass reprs in the key
_EXPERIMENT_VERSION = 1


@dataclass
class AllocationOutcome:
    """One experiment cell: did huge pages back the allocation?"""

    label: str
    uses_huge_pages: bool
    anon_huge_kb: int
    hugetlb_pages: int

    def render(self) -> str:
        verdict = "HUGE PAGES" if self.uses_huge_pages else "no huge pages"
        return (f"  {self.label:<44} {verdict:<14} "
                f"AnonHugePages={self.anon_huge_kb} kB  "
                f"HugePages in use={self.hugetlb_pages}")


def _outcome(label: str, kernel: Kernel, proc) -> AllocationOutcome:
    info = meminfo(kernel)
    in_use = info["HugePages_Total"] - info["HugePages_Free"]
    return AllocationOutcome(
        label=label,
        uses_huge_pages=proc.uses_huge_pages(),
        anon_huge_kb=info["AnonHugePages"],
        hugetlb_pages=in_use,
    )


def _valid_outcomes(stored) -> bool:
    return (isinstance(stored, list) and len(stored) > 0
            and all(isinstance(o, AllocationOutcome) for o in stored))


def static_vs_dynamic(compiler_name: str = "gnu",
                      session: ReplaySession | None = None,
                      ) -> list[AllocationOutcome]:
    """The two toy programs, on a modified node with THP enabled.

    A pure function of the compiler and kernel models, so the outcome
    list is memoised in the session store, keyed by their reprs.
    """
    session = session if session is not None else default_session()
    return session.memo(
        "static-vs-dynamic",
        (_EXPERIMENT_VERSION, compiler_name, repr(COMPILERS[compiler_name]),
         repr(ookami_config()), TOY_ARRAY_BYTES),
        lambda: _static_vs_dynamic(compiler_name),
        validate=_valid_outcomes,
    )


def _static_vs_dynamic(compiler_name: str) -> list[AllocationOutcome]:
    compiler = COMPILERS[compiler_name]
    out = []

    kernel = Kernel(ookami_config())
    Hugeadm(kernel).thp_always()  # the modified nodes' `echo always`
    proc = compiler.compile("toy_dynamic").launch(kernel)
    proc.allocate(TOY_ARRAY_BYTES, "array")
    proc.first_touch("array", order="sequential")
    out.append(_outcome(f"{compiler_name}: dynamic ALLOCATE (2 GiB array)",
                        kernel, proc))

    kernel = Kernel(ookami_config())
    Hugeadm(kernel).thp_always()
    exe = compiler.compile("toy_static")
    exe = type(exe)(**{**exe.__dict__, "static_bytes": TOY_ARRAY_BYTES + MiB})
    proc = exe.launch(kernel)
    proc.static_array(TOY_ARRAY_BYTES, "array")
    proc.first_touch("array", order="sequential")
    out.append(_outcome(f"{compiler_name}: static array (2 GiB, data/BSS)",
                        kernel, proc))
    return out


def _run_flash_like(kernel: Kernel, compiler, flags=(), env=None):
    exe = compiler.compile("flash4", flags=flags)
    proc = exe.launch(kernel, env=env)
    proc.allocate(FLASH_UNK_BYTES, "unk")
    proc.allocate(FLASH_UNK_BYTES // 8, "facevar")
    proc.first_touch("unk", order="strided", stride=2 * MiB)
    proc.first_touch("facevar", order="strided", stride=2 * MiB)
    return proc


def hugepage_usage_matrix(session: ReplaySession | None = None,
                          ) -> list[AllocationOutcome]:
    """Every FLASH x mechanism combination the paper tried (memoised)."""
    session = session if session is not None else default_session()
    return session.memo(
        "hugepage-usage-matrix",
        (_EXPERIMENT_VERSION,
         tuple(sorted((n, repr(c)) for n, c in COMPILERS.items())),
         repr(ookami_config()), repr(ookami_config(modified_node=False)),
         FLASH_UNK_BYTES),
        _hugepage_usage_matrix,
        validate=_valid_outcomes,
    )


def _hugepage_usage_matrix() -> list[AllocationOutcome]:
    out: list[AllocationOutcome] = []

    for compiler in (GNU, CRAY):
        for env, env_label in (
            (None, "plain"),
            (hugectl(heap=True), "hugectl --heap"),
            (hugectl(shm=True), "hugectl --shm"),
            (hugectl(shm=True, thp=True), "hugectl --shm --thp"),
            ({"LD_PRELOAD": "libhugetlbfs.so"}, "LD_PRELOAD=libhugetlbfs"),
        ):
            kernel = Kernel(ookami_config())
            Hugeadm(kernel).thp_always()
            Hugeadm(kernel).pool_pages_min(4096)  # generous modified-node pool
            proc = _run_flash_like(kernel, compiler, env=env)
            out.append(_outcome(f"FLASH/{compiler.name} ({env_label})",
                                kernel, proc))

    for flags, env, label in (
        ((), None, "default"),
        (("-Knolargepage",), None, "-Knolargepage"),
        ((), {"XOS_MMM_L_HPAGE_TYPE": "none"}, "XOS_MMM_L_HPAGE_TYPE=none"),
        ((), {"XOS_MMM_L_HPAGE_TYPE": "hugetlbfs"},
         "XOS_MMM_L_HPAGE_TYPE=hugetlbfs"),
    ):
        kernel = Kernel(ookami_config())
        proc = _run_flash_like(kernel, FUJITSU, flags=flags, env=env)
        out.append(_outcome(f"FLASH/fujitsu ({label})", kernel, proc))

    # the unmodified-node check
    kernel = Kernel(ookami_config(modified_node=False))
    proc = _run_flash_like(kernel, FUJITSU)
    out.append(_outcome("FLASH/fujitsu (unmodified node)", kernel, proc))
    return out


def render_outcomes(outcomes: list[AllocationOutcome], title: str) -> str:
    lines = [title, "-" * len(title)]
    lines += [o.render() for o in outcomes]
    return "\n".join(lines)


__all__ = ["static_vs_dynamic", "hugepage_usage_matrix", "render_outcomes",
           "AllocationOutcome", "TOY_ARRAY_BYTES", "FLASH_UNK_BYTES"]
