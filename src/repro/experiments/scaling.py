"""Rank-count x page-size scaling sweep over the simulated fabric.

The paper's tables are single-node, but its porting section leans on
FLASH "scaling reasonably well" — and the huge-page story changes shape
under decomposition: every rank is its own process with its own address
space, so TLB behaviour is per rank, while the hugetlb pool is a *node*
resource shared by every resident rank.  This sweep runs the real
rank-decomposed pipeline end to end:

* a 2-d Sedov :class:`~repro.mpisim.fabric.Fabric` evolves at each rank
  count (strong: fixed mesh; weak: fixed blocks per rank), with halo
  traffic and dt allreduces charged on the Ookami HDR100 model;
* every rank's :class:`~repro.perfmodel.workrecord.WorkLog` replays
  through its own :class:`PerformancePipeline` process — per-rank
  address spaces over *shared node kernels* (``ranks_per_node`` ranks
  per :class:`~repro.kernel.vmm.Kernel`) — under both page regimes,
  batched through :func:`~repro.perfmodel.pipeline.run_batch`;
* a node-contention study sizes a static hugetlb pool below the
  residents' demand and shows ``MAP_HUGETLB`` semantics per process:
  exhaustion degrades *only the ranks that hit the empty pool* (counted
  on the kernel's :class:`~repro.kernel.vmm.DegradationLog`), earlier
  residents keep their huge pages.

Replay-cache safety: per-rank logs almost always have distinct digests,
but the pipeline's ``rank_signature`` tag is set regardless, so a cached
replay can never be served across different rank decompositions even
when shard contents coincide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.driver.simulation import Simulation
from repro.kernel.params import ookami_config
from repro.kernel.vmm import Kernel
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.mpisim.fabric import Fabric
from repro.perfmodel.pipeline import run_batch
from repro.perfmodel.session import ReplaySession, default_session
from repro.perfmodel.workrecord import WorkLog
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sedov import sedov_setup
from repro.toolchain.compiler import FUJITSU
from repro.util import MiB

#: the two page regimes of every paper table, as Fujitsu flags
REGIMES = (((), "with"), (("-Knolargepage",), "without"))
#: strong-scaling mesh (blocks); weak scaling keeps 4 blocks per rank
STRONG_SHAPE = (4, 4)
WEAK_SHAPES = {1: (2, 2), 2: (4, 2), 4: (4, 4), 8: (8, 4), 16: (8, 8)}


def sedov_fabric_builder(nblockx: int, nblocky: int):
    """A deterministic 2-d Sedov Simulation factory for the fabric.

    Uniform (``max_level=0``) so the Morton split has no cross-rank
    refinement jumps at any power-of-two rank count, ``nrefs=0`` as the
    fabric's static decomposition requires.
    """
    def build():
        tree = AMRTree(ndim=2, nblockx=nblockx, nblocky=nblocky,
                       max_level=0, domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=2,
                        maxblocks=nblockx * nblocky + 4)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        sedov_setup(grid, eos)
        return Simulation(grid, HydroUnit(eos, cfl=0.4), nrefs=0,
                          dtinit=1e-5)
    return build


@dataclass
class ScalingStudy:
    """The sweep's numbers, ready to render or gate on."""

    ranks_per_node: int
    steps: int
    #: n_ranks -> point dict (time_s / per_rank_dtlb / huge_pages per
    #: regime, plus nodes / halo_bytes / comm_s), per sweep mode
    strong: dict[int, dict] = field(default_factory=dict)
    weak: dict[int, dict] = field(default_factory=dict)
    #: node hugetlb pool contention outcome (see :func:`node_contention`)
    contention: dict = field(default_factory=dict)

    def times(self, mode: str, regime: str) -> dict[int, float]:
        points = self.strong if mode == "strong" else self.weak
        return {p: point["time_s"][regime] for p, point in points.items()}

    def speedup(self, mode: str, regime: str, ranks: int) -> float:
        """Relative to the smallest measured rank count (cf. porting)."""
        times = self.times(mode, regime)
        base = min(times)
        return times[base] / times[ranks]

    def efficiency(self, mode: str, regime: str, ranks: int) -> float:
        base = min(self.times(mode, regime))
        if mode == "weak":
            # fixed work per rank: ideal is constant time
            return self.speedup(mode, regime, ranks)
        return self.speedup(mode, regime, ranks) / (ranks / base)

    # --- rendering -------------------------------------------------------
    def _mode_lines(self, mode: str, points: dict[int, dict],
                    caption: str) -> list[str]:
        lines = [f"  {mode} scaling ({caption}):",
                 f"  {'ranks':>7}{'nodes':>7}{'with HPs':>14}{'eff':>9}"
                 f"{'without HPs':>14}{'eff':>9}{'wo/w dTLB':>11}"]
        for p, point in sorted(points.items()):
            w = point["time_s"]["with"]
            wo = point["time_s"]["without"]
            dtlb_w = sum(point["per_rank_dtlb"]["with"])
            dtlb_wo = sum(point["per_rank_dtlb"]["without"])
            ratio = dtlb_wo / dtlb_w if dtlb_w else float("inf")
            eff_w = self.efficiency(mode, "with", p)
            eff_wo = self.efficiency(mode, "without", p)
            lines.append(
                f"  {p:>7}{point['nodes']:>7}{w:>12.4e} s{eff_w:>8.1%}"
                f"{wo:>12.4e} s{eff_wo:>8.1%}{ratio:>11.3f}")
        return lines

    def render(self) -> str:
        lines = ["RANK-DECOMPOSED SCALING SWEEP (2-d Sedov fabric, Fujitsu "
                 "compiler)",
                 "-----------------------------------------------------------"
                 "------",
                 f"  {self.steps} lockstep steps per run; up to "
                 f"{self.ranks_per_node} ranks share each node's kernel "
                 "(hugetlb pool) and HDR100 injection"]
        nx, ny = STRONG_SHAPE
        lines += self._mode_lines("strong", self.strong,
                                  f"{nx * ny} blocks total")
        lines += self._mode_lines("weak", self.weak, "4 blocks per rank")
        big = max(self.strong)
        point = self.strong[big]
        lines.append(f"  per-rank L1 DTLB misses at {big} ranks (strong):")
        for r in range(big):
            w = point["per_rank_dtlb"]["with"][r]
            wo = point["per_rank_dtlb"]["without"][r]
            lines.append(f"    rank {r}:  with {w:>12.4e}   "
                         f"without {wo:>12.4e}")
        halo = point["halo_bytes"] / MiB
        lines.append(f"  halo traffic at {big} ranks: {halo:.2f} MiB "
                     f"received over {self.steps} steps "
                     f"(comm {point['comm_s']:.2e} s)")
        c = self.contention
        if c:
            lines.append(
                f"  node hugetlb pool contention ({c['pool_pages']} x 2 MiB "
                f"static pages, {len(c['ranks'])} residents x "
                f"{c['arena_mib']} MiB):")
            for entry in c["ranks"]:
                backing = ("hugetlbfs" if entry["hugetlb"]
                           else f"base pages ({entry['fallbacks']} fallback)")
                lines.append(f"    rank {entry['rank']}: {backing}")
            lines.append("    -> exhaustion degrades only the ranks that "
                         "hit the empty pool; earlier residents keep "
                         "their huge pages")
        return "\n".join(lines)


def node_contention(*, ranks_per_node: int = 4, pool_pages: int = 48,
                    arena_mib: int = 40) -> dict:
    """Resident ranks racing one node's static hugetlb pool.

    Each rank is its own process (address space) mapping one
    ``MAP_HUGETLB`` arena with the Fujitsu runtime's fallback semantics:
    once the static pool (no overcommit) runs dry, *that* rank's mapping
    degrades to base pages and the kernel counts the downgrade — the
    per-process degradation story the paper's single-node tables cannot
    show.
    """
    kernel = Kernel(ookami_config())
    kernel.pool(2 * MiB).set_pool_size(pool_pages)
    ranks = []
    for rank in range(ranks_per_node):
        space = kernel.new_address_space(f"rank{rank}")
        before = kernel.degradations.counts.get(
            "hugetlb_base_page_fallback", 0)
        vma = space.mmap(arena_mib * MiB, hugetlb_size=2 * MiB,
                         hugetlb_fallback=True, name=f"rank{rank}-unk")
        space.touch_range(vma, 0, vma.length)
        after = kernel.degradations.counts.get(
            "hugetlb_base_page_fallback", 0)
        ranks.append({"rank": rank, "hugetlb": bool(vma.is_hugetlb),
                      "fallbacks": after - before})
    return {"pool_pages": pool_pages, "arena_mib": arena_mib,
            "ranks": ranks,
            "degraded": [r["rank"] for r in ranks if not r["hugetlb"]],
            "fallback_total": kernel.degradations.counts.get(
                "hugetlb_base_page_fallback", 0)}


#: replication inflates each rank's unk allocation to production size —
#: without it the toy mesh fits in a handful of 64 KiB base pages and
#: both page regimes replay identically (no TLB pressure to relieve)
REPLICATION = 64


def _run_point(builder, n_ranks: int, ranks_per_node: int, steps: int,
               session: ReplaySession) -> dict:
    """Evolve one fabric and replay every rank under both regimes."""
    rpn = min(ranks_per_node, n_ranks)
    fabric = Fabric(builder, n_ranks, ranks_per_node=rpn)
    fabric.attach_worklogs(helmholtz_eos=False)
    fabric.evolve(nend=steps)
    n_nodes = -(-n_ranks // rpn)
    point: dict = {
        "nodes": n_nodes,
        "halo_bytes": sum(ctx.bytes_received for ctx in fabric.ranks),
        "comm_s": fabric.comm.elapsed_s,
        "time_s": {}, "per_rank_dtlb": {}, "huge_pages": {},
    }
    for flags, label in REGIMES:
        # one kernel per node: resident ranks share its hugetlb pools,
        # each pipeline launch is its own process/address space on it
        kernels = [Kernel(ookami_config()) for _ in range(n_nodes)]
        pipelines = [
            session.pipeline(
                ctx.log, FUJITSU, flags=flags, replication=REPLICATION,
                kernel=kernels[ctx.rank // rpn],
                rank_signature=f"rank{ctx.rank}/{n_ranks}@rpn{rpn}")
            for ctx in fabric.ranks]
        reports = run_batch(pipelines)
        point["time_s"][label] = (
            max(r.flash_timer_s for r in reports) + fabric.comm.elapsed_s)
        point["per_rank_dtlb"][label] = [
            float(sum(t.tlb.l1_misses for t in r.units.values()))
            for r in reports]
        point["huge_pages"][label] = [r.uses_huge_pages for r in reports]
    return point


def scaling_study(*, quick: bool = False,
                  rank_counts: tuple[int, ...] | None = None,
                  steps: int | None = None,
                  ranks_per_node: int = 4,
                  session: ReplaySession | None = None) -> ScalingStudy:
    """The full sweep: strong + weak modes, both regimes, contention."""
    session = session if session is not None else default_session()
    if rank_counts is None:
        rank_counts = (1, 2, 4) if quick else (1, 2, 4, 8)
    if steps is None:
        steps = 2 if quick else 3
    study = ScalingStudy(ranks_per_node=ranks_per_node, steps=steps)
    for p in rank_counts:
        study.strong[p] = _run_point(sedov_fabric_builder(*STRONG_SHAPE),
                                     p, ranks_per_node, steps, session)
        study.weak[p] = _run_point(sedov_fabric_builder(*WEAK_SHAPES[p]),
                                   p, ranks_per_node, steps, session)
    study.contention = node_contention(ranks_per_node=ranks_per_node)
    return study


def serial_identity(*, steps: int = 2,
                    session: ReplaySession | None = None) -> dict:
    """The n_ranks=1 bit-identity probe the bench gates on.

    A one-rank fabric installs no ownership filter and no halo hook —
    it *is* the serial spine — so its WorkLog digest, replayed counters,
    and timer must equal a plain Simulation's exactly (not approximately).
    """
    session = session if session is not None else default_session()
    builder = sedov_fabric_builder(*STRONG_SHAPE)
    fabric = Fabric(builder, 1)
    fabric_log = fabric.attach_worklogs(helmholtz_eos=False)[0]
    fabric.evolve(nend=steps)
    sim = builder()
    serial_log = WorkLog.attach(sim, helmholtz_eos=False)
    sim.evolve(nend=steps)
    reports = {}
    for log, tag in ((fabric_log, "fabric"), (serial_log, "serial")):
        r = session.run(log, FUJITSU, replication=1)
        reports[tag] = {
            "flash_timer_s": r.flash_timer_s,
            "dtlb_misses": float(sum(t.tlb.l1_misses
                                     for t in r.units.values())),
        }
    return {
        "digest_identical": fabric_log.digest() == serial_log.digest(),
        "counters_identical": reports["fabric"] == reports["serial"],
        "fabric": reports["fabric"],
        "serial": reports["serial"],
    }


__all__ = ["ScalingStudy", "scaling_study", "node_contention",
           "serial_identity", "sedov_fabric_builder", "REGIMES",
           "STRONG_SHAPE", "WEAK_SHAPES"]
