"""The paper's reported values and measure bookkeeping."""

from __future__ import annotations

#: row labels in table order
MEASURE_LABELS = {
    "hardware_cycles": "Hardware (cycles)",
    "time_s": "Time (s)",
    "sve_per_cycle": "SVE Instructions/cycle",
    "mem_gbytes_per_s": "Memory (Gbytes/s)",
    "dtlb_misses_per_s": "DTLB misses (1/s)",
    "flash_timer_s": "FLASH Timer (s)",
}

#: Table I — results with the Fujitsu compiler for the EOS problem
PAPER_TABLE1 = {
    "without": {
        "hardware_cycles": 1.25e11,
        "time_s": 6.97e1,
        "sve_per_cycle": 0.47,
        "mem_gbytes_per_s": 4.19,
        "dtlb_misses_per_s": 2.34e7,
        "flash_timer_s": 339.032,
    },
    "with": {
        "hardware_cycles": 1.17e11,
        "time_s": 6.52e1,
        "sve_per_cycle": 0.51,
        "mem_gbytes_per_s": 4.45,
        "dtlb_misses_per_s": 1.10e6,
        "flash_timer_s": 333.150,
    },
}

#: Table II — results with the Fujitsu compiler for the 3-d Hydro problem
PAPER_TABLE2 = {
    "without": {
        "hardware_cycles": 1.21e12,
        "time_s": 6.70e2,
        "sve_per_cycle": 0.11,
        "mem_gbytes_per_s": 10.10,
        "dtlb_misses_per_s": 2.42e6,
        "flash_timer_s": 1203.616,
    },
    "with": {
        "hardware_cycles": 1.20e12,
        "time_s": 6.69e2,
        "sve_per_cycle": 0.11,
        "mem_gbytes_per_s": 10.09,
        "dtlb_misses_per_s": 7.83e5,
        "flash_timer_s": 1176.312,
    },
}


def paper_ratios(paper_table: dict) -> dict[str, float]:
    """Figure 1's with/without ratios for one problem."""
    return {
        key: paper_table["with"][key] / paper_table["without"][key]
        for key in paper_table["without"]
    }


#: section II narrative numbers
PAPER_COMPILER_FINDINGS = {
    # runtime relative to the GCC executable on Ookami
    "arm_vs_gcc": 2.5,
    "cray_vs_gcc": 1.0,
    # the same problem on Intel Xeon E5-2683v3 ran ~3x faster than the
    # fastest Ookami runs
    "ookami_vs_xeon": 3.0,
}

__all__ = [
    "MEASURE_LABELS",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_COMPILER_FINDINGS",
    "paper_ratios",
]
