"""The porting narrative (section II): out of the box, and scaling.

"This effort showed that FLASH ran 'right out of the box' with these
[compilers] and scaled reasonably well with no tuning."

Two experiments:

* :func:`out_of_the_box` — the same supernova workload replayed under
  every toolchain completes and produces sane counters (no compiler-
  specific failures — the paper's porting table stakes);
* :func:`strong_scaling` — the simulated-MPI strong-scaling curve on the
  Ookami interconnect model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.mpisim.comm import DomainDecomposition, scaling_model
from repro.perfmodel.session import ReplaySession, default_session
from repro.perfmodel.workrecord import WorkLog
from repro.toolchain.compiler import COMPILERS


@dataclass
class PortingResult:
    """Per-compiler whole-run times plus the scaling curve."""

    compiler_times_s: dict[str, float]
    scaling_times_s: dict[int, float]

    def speedup(self, ranks: int) -> float:
        """Speedup relative to the smallest measured rank count — a
        sweep need not start at 1 rank (large problems often can't)."""
        base = min(self.scaling_times_s)
        return self.scaling_times_s[base] / self.scaling_times_s[ranks]

    def efficiency(self, ranks: int) -> float:
        base = min(self.scaling_times_s)
        return self.speedup(ranks) / (ranks / base)

    def render(self) -> str:
        lines = ["PORTING STUDY (section II): out of the box + scaling",
                 "-----------------------------------------------------"]
        for name, t in sorted(self.compiler_times_s.items()):
            lines.append(f"  {name:<10} {t:10.2f} s  (ran out of the box)")
        lines.append("  strong scaling (simulated MPI):")
        for p, t in sorted(self.scaling_times_s.items()):
            lines.append(f"    {p:>4} ranks  {t:10.3f} s  "
                         f"speedup {self.speedup(p):6.2f}  "
                         f"efficiency {self.efficiency(p):6.1%}")
        return "\n".join(lines)


def out_of_the_box(log: WorkLog, replication: int = 2,
                   session: ReplaySession | None = None) -> dict[str, float]:
    """Replay the workload under all four toolchains; return run times.

    Through the session the three glibc toolchains share one replay (and
    the compiler comparison's rows, when it ran first); only the Fujitsu
    row — whose huge-page layout is unique — replays fresh.
    """
    session = session if session is not None else default_session()
    times = {}
    for name, compiler in COMPILERS.items():
        report = session.run(log, compiler, replication=replication)
        times[name] = report.flash_timer_s
    return times


def strong_scaling(rank_counts=(1, 2, 4, 8, 16, 32, 48),
                   nblock: int = 16) -> dict[int, float]:
    """Predicted strong-scaling times for a uniform supernova-like mesh."""
    tree = AMRTree(ndim=2, nblockx=nblock, nblocky=nblock, max_level=0,
                   domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=2, nxb=16, nyb=16, nzb=1, nguard=4,
                    maxblocks=nblock * nblock + 4)
    grid = Grid(tree, spec)
    seconds_per_block_step = 256 * 6000 / 1.8e9  # calibrated zone cost
    bytes_per_face = 4 * 16 * 12 * 8
    return scaling_model(grid, list(rank_counts),
                         seconds_per_block_step=seconds_per_block_step,
                         bytes_per_face=bytes_per_face, steps=100)


def porting_study(log: WorkLog,
                  session: ReplaySession | None = None) -> PortingResult:
    return PortingResult(
        compiler_times_s=out_of_the_box(log, session=session),
        scaling_times_s=strong_scaling(),
    )


__all__ = ["porting_study", "out_of_the_box", "strong_scaling",
           "PortingResult"]
