"""The section II compiler comparison.

"We found that the ARM compiler produced an executable that ran almost
2.5 times slower than those created with the Cray and GCC compilers; the
runtime differences between the latter were negligible.  However, the
same executable compiled using GCC ... on Intel Xeon E5-2683v3 CPUs ran
three times quicker as the fastest runs on Ookami."

The comparison replays the supernova workload under each toolchain (same
kernel, no huge pages anywhere — this predates the huge-page study) and,
for the Xeon row, under the Haswell machine model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.a64fx import A64FX, XEON_E5_2683V3
from repro.perfmodel.pipeline import run_batch
from repro.perfmodel.session import ReplaySession, default_session
from repro.perfmodel.workrecord import WorkLog
from repro.toolchain.compiler import ARM, CRAY, GNU


@dataclass
class CompilerComparison:
    """Whole-run times per toolchain plus the paper's headline ratios."""

    times_s: dict[str, float]

    @property
    def arm_vs_gcc(self) -> float:
        return self.times_s["arm/A64FX"] / self.times_s["gnu/A64FX"]

    @property
    def cray_vs_gcc(self) -> float:
        return self.times_s["cray/A64FX"] / self.times_s["gnu/A64FX"]

    @property
    def ookami_vs_xeon(self) -> float:
        """Fastest Ookami run over the Xeon run (paper: ~3)."""
        fastest = min(self.times_s["gnu/A64FX"], self.times_s["cray/A64FX"])
        return fastest / self.times_s["gnu/Xeon"]

    def render(self) -> str:
        lines = ["COMPILER COMPARISON (section II, supernova problem)",
                 "----------------------------------------------------"]
        base = self.times_s["gnu/A64FX"]
        for name, t in sorted(self.times_s.items()):
            lines.append(f"  {name:<14} {t:10.2f} s   ({t / base:4.2f}x GCC/A64FX)")
        lines.append(f"  Arm vs GCC:    {self.arm_vs_gcc:.2f}x slower (paper ~2.5x)")
        lines.append(f"  Cray vs GCC:   {self.cray_vs_gcc:.2f}x (paper ~1.0x)")
        lines.append(f"  Ookami vs Xeon: {self.ookami_vs_xeon:.2f}x slower "
                     f"(paper ~3x)")
        return "\n".join(lines)


def compiler_comparison(log: WorkLog, replication: int = 4,
                        session: ReplaySession | None = None,
                        ) -> CompilerComparison:
    """Replay the workload under GNU/Cray/Arm on A64FX and GNU on Xeon.

    All three A64FX toolchains allocate through glibc, so their page
    traces are byte-identical: through the session the TLB replays once
    and only the cycle pricing differs per row.  The Xeon row shares the
    traces too but replays against its own TLB geometry.
    """
    session = session if session is not None else default_session()
    rows = [(f"{c.name}/A64FX", c, A64FX) for c in (GNU, CRAY, ARM)]
    rows.append(("gnu/Xeon", GNU, XEON_E5_2683V3))
    # one session batch for all four rows: the shared-trace dedup happens
    # inside replay_batch, and REPRO_REPLAY_JOBS > 1 runs the distinct
    # replays (A64FX vs Xeon TLB geometry) on worker processes
    pipelines = [session.pipeline(log, compiler, machine=machine,
                                  replication=replication)
                 for _, compiler, machine in rows]
    reports = run_batch(pipelines)
    times = {label: report.flash_timer_s
             for (label, _, _), report in zip(rows, reports)}
    return CompilerComparison(times_s=times)


__all__ = ["compiler_comparison", "CompilerComparison"]
