"""The paper's two instrumented workloads, run once and cached.

* **EOS problem**: the 2-d Type Iax supernova (hybrid CONe white dwarf,
  single-bubble deflagration) "run ... for 50 time steps", instrumenting
  the EOS routines;
* **3-d Hydro problem**: the Sedov explosion "run ... for 200 time
  steps", instrumenting the hydrodynamics routines.

The numerics run at laptop scale (the performance replay rescales to the
paper's mesh size via block replication — see tables.py); full-scale step
counts take minutes, so WorkLogs are pickled into a cache directory and
reused.  ``quick=True`` variants (fewer steps) serve tests and CI.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core import WorkloadSpec, unit_registry
from repro.driver.simulation import Simulation
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.refine import refine_pass
from repro.mesh.tree import AMRTree
from repro.perfmodel.workrecord import WorkLog
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sedov import sedov_setup
from repro.setups.sod import SodProblem
from repro.setups.supernova import supernova_setup
from repro.util import artifacts

#: envelope **schema** guard only (bumped when the cached payload layout
#: changes, as in the v5 digest envelope) — *content* staleness is caught
#: by the ``WorkLog.digest()`` stored alongside the log, which downstream
#: replay caches also key on, so a changed recording self-invalidates
#: everything derived from it without a manual bump
_CACHE_VERSION = 5


def _cache_dir() -> Path:
    base = Path(os.environ.get("XDG_CACHE_HOME", Path.home() / ".cache"))
    path = base / "repro" / "worklogs"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _load_verified(path) -> WorkLog:
    """Load a digest-carrying worklog envelope, verifying its content.

    The stored digest must match a fresh ``WorkLog.digest()`` of the
    loaded log: a payload that deserialises but no longer hashes the
    same (schema drift that survives unpickling, partial corruption)
    is rejected — and therefore quarantined and rebuilt by the caller.
    """
    payload = artifacts.load_pickle(path, version=_CACHE_VERSION)
    if not isinstance(payload, dict) or "log" not in payload:
        raise artifacts.ArtifactError(
            f"worklog cache {path} is not a digest envelope")
    log = payload["log"]
    try:
        fresh = log.digest()
    except Exception as exc:  # stale class layout that survived unpickling
        raise artifacts.ArtifactError(
            f"worklog cache {path} is undigestable: {exc}") from exc
    if fresh != payload.get("digest"):
        raise artifacts.ArtifactError(
            f"worklog cache {path} failed digest verification")
    return log


def _cached(name: str, builder):
    """Load a pickled WorkLog cache, rebuilding on any corruption.

    A truncated/garbage pickle (interrupted benchmark run), a stale
    class layout (``AttributeError`` from an old cache after a
    refactor), or a digest mismatch is quarantined and the workload
    rerun — never fatal.  Writes are atomic, so an interrupted run
    cannot poison later ones.
    """
    path = _cache_dir() / f"{name}.pkl"
    return artifacts.load_or_rebuild(
        path,
        loader=_load_verified,
        builder=builder,
        saver=lambda log, p: artifacts.save_pickle(
            p, {"log": log, "digest": log.digest()},
            version=_CACHE_VERSION),
        description=f"worklog cache '{name}'",
    )


def eos_problem_worklog(*, steps: int = 50, quick: bool = False,
                        use_cache: bool = True) -> WorkLog:
    """Run the 2-d supernova and record its work (the "EOS" test)."""
    if quick:
        steps = min(steps, 8)

    def build() -> WorkLog:
        prob = supernova_setup(nblock=3, nxb=16, max_level=2, maxblocks=512)
        sim = Simulation(prob.grid, prob.hydro, prob.flame, prob.gravity,
                         nrefs=4, refine_var="dens", refine_cutoff=0.75,
                         derefine_cutoff=0.05)
        log = WorkLog.attach(sim, helmholtz_eos=True)
        sim.evolve(nend=steps)
        return log

    if not use_cache:
        return build()
    return _cached(f"eos_problem_{steps}", build)


def hydro_problem_worklog(*, steps: int = 20, quick: bool = False,
                          use_cache: bool = True) -> WorkLog:
    """Run the 3-d Sedov explosion and record its work (the "3-d Hydro"
    test).  The paper ran 200 steps; the default here runs 20 (the
    steady-state per-step work is what the replay scales — see
    EXPERIMENTS.md for the step-count substitution)."""
    if quick:
        steps = min(steps, 5)

    def build() -> WorkLog:
        tree = AMRTree(ndim=3, nblockx=2, nblocky=2, nblockz=2, max_level=2,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=3, nxb=16, nyb=16, nzb=16, nguard=4,
                        maxblocks=512)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        sedov_setup(grid, eos, center=(0.5, 0.5, 0.5))
        for _ in range(2):
            refine_pass(grid, "pres", refine_cutoff=0.6, derefine_cutoff=0.1)
            sedov_setup(grid, eos, center=(0.5, 0.5, 0.5))
        hydro = HydroUnit(eos, cfl=0.4)
        sim = Simulation(grid, hydro, nrefs=4, refine_var="pres",
                         refine_cutoff=0.6, derefine_cutoff=0.15,
                         dtinit=1e-5)
        log = WorkLog.attach(sim, helmholtz_eos=False)
        sim.evolve(nend=steps)
        return log

    if not use_cache:
        return build()
    return _cached(f"hydro_problem_{steps}", build)


def sod_problem_worklog(*, steps: int = 40, quick: bool = False,
                        use_cache: bool = True) -> WorkLog:
    """Run the 1-d Sod shock tube and record its work.

    Not one of the paper's instrumented problems — it exists to exercise
    the registry path for workloads beyond the paper's two (a new setup
    lights up in ``repro.experiments list`` and ``repro.bench
    --problems`` by registering a spec, with no harness edits)."""
    if quick:
        steps = min(steps, 5)

    def build() -> WorkLog:
        tree = AMRTree(ndim=1, nblockx=2, max_level=2,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=1, nxb=16, nyb=1, nzb=1, nguard=4, maxblocks=64)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        SodProblem().initialize(grid, eos)
        sim = Simulation(grid, HydroUnit(eos, cfl=0.6), nrefs=4,
                         refine_var="pres", refine_cutoff=0.6,
                         derefine_cutoff=0.1)
        log = WorkLog.attach(sim, helmholtz_eos=False)
        sim.evolve(nend=steps)
        return log

    if not use_cache:
        return build()
    return _cached(f"sod_problem_{steps}", build)


# --- workload declarations ---------------------------------------------------
# the two instrumented problems of the paper (regression-gated by the
# committed bench baselines) plus the sod demonstration workload
unit_registry.register_workload(WorkloadSpec(
    name="eos",
    description="2-d Type Iax supernova deflagration, EOS routines "
                "instrumented (paper Table I)",
    builder=eos_problem_worklog,
    region_kinds=("eos",),
    paper_steps=50,
    paper_table="table1",
    gate=True,
))
unit_registry.register_workload(WorkloadSpec(
    name="hydro",
    description="3-d Sedov explosion, hydrodynamics routines "
                "instrumented (paper Table II)",
    builder=hydro_problem_worklog,
    region_kinds=("hydro_sweep", "guardcell"),
    paper_steps=200,
    paper_table="table2",
    gate=True,
))
unit_registry.register_workload(WorkloadSpec(
    name="sod",
    description="1-d Sod shock tube, hydrodynamics routines instrumented "
                "(not in the paper; registry demonstration)",
    builder=sod_problem_worklog,
    region_kinds=("hydro_sweep", "guardcell"),
))


__all__ = ["eos_problem_worklog", "hydro_problem_worklog",
           "sod_problem_worklog"]
