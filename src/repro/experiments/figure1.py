"""Figure 1: the with/without-huge-pages ratio bar chart.

"Shown is a bar chart with the ratio of each performance measure using
huge pages to the measure without use of huge pages for the two test
simulations.  All measures but DTLB misses are close to one ... The low
ratios for DTLB misses (0.047 and 0.324 for the EOS and 3-d Hydro tests,
respectively) show that use of huge pages drastically reduces these
misses."

Rendered as an ASCII bar chart (and as plain data for plotting).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.measures import (
    MEASURE_LABELS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    paper_ratios,
)
from repro.experiments.tables import TableResult

#: the measures Figure 1 plots, in its order
FIGURE1_MEASURES = (
    "hardware_cycles",
    "time_s",
    "sve_per_cycle",
    "mem_gbytes_per_s",
    "dtlb_misses_per_s",
    "flash_timer_s",
)


@dataclass
class Figure1Data:
    """Ratios (with HP / without HP) per measure for both problems."""

    eos: dict[str, float]
    hydro: dict[str, float]
    paper_eos: dict[str, float]
    paper_hydro: dict[str, float]


def figure1_data(eos_table: TableResult, hydro_table: TableResult) -> Figure1Data:
    return Figure1Data(
        eos={k: eos_table.ratio(k) for k in FIGURE1_MEASURES},
        hydro={k: hydro_table.ratio(k) for k in FIGURE1_MEASURES},
        paper_eos=paper_ratios(PAPER_TABLE1),
        paper_hydro=paper_ratios(PAPER_TABLE2),
    )


def figure1_from_logs(eos_log, hydro_log, *, quick: bool = False,
                      session=None) -> Figure1Data:
    """Standalone Figure 1: rerun both tables through the replay session.

    On a warm session store this costs only the pricing — the table
    replays (probes included) are cache hits — so regenerating just the
    figure no longer pays for two tables' worth of TLB simulation.
    """
    from repro.experiments.tables import run_table

    return figure1_data(
        run_table("eos", eos_log, quick=quick, session=session),
        run_table("hydro", hydro_log, quick=quick, session=session),
    )


def render_figure1(data: Figure1Data, width: int = 48) -> str:
    """ASCII bar chart: EOS bars (#, blue in the paper) and 3-d Hydro
    bars (=, red in the paper), one pair per measure."""
    lines = [
        "FIGURE 1 — ratio of each measure with HPs to without HPs",
        "(#: EOS problem, =: 3-d Hydro problem; | marks the paper's value)",
        "",
    ]
    for key in FIGURE1_MEASURES:
        label = MEASURE_LABELS[key]
        for sym, ours, paper in (("#", data.eos[key], data.paper_eos[key]),
                                 ("=", data.hydro[key], data.paper_hydro[key])):
            bar_n = max(0, min(width, int(round(ours * width))))
            mark = max(0, min(width, int(round(paper * width))))
            bar = list(sym * bar_n + " " * (width - bar_n))
            if mark < len(bar):
                bar[mark] = "|"
            row_label = label if sym == "#" else ""
            lines.append(f"{row_label:<26}{sym} {''.join(bar)} {ours:6.3f} "
                         f"(paper {paper:.3f})")
        lines.append("")
    return "\n".join(lines)


__all__ = ["figure1_data", "figure1_from_logs", "render_figure1",
           "Figure1Data", "FIGURE1_MEASURES"]
