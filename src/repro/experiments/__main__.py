"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments list
    python -m repro.experiments all [--quick]
    python -m repro.experiments table1 | table2 | figure1 | compilers |
                                 toys | matrix | porting

Targets come from the experiment registry
(:mod:`repro.experiments.registry`); ``list`` prints every registered
experiment, workload, and unit with a one-line description.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import experiment, experiments


def _render_list() -> str:
    """Everything the registries know, one line per entry."""
    from repro.core import unit_registry

    lines = ["experiments (python -m repro.experiments <name>):"]
    for spec in experiments():
        lines.append(f"  {spec.name:<12}{spec.description}")
    lines.append("")
    lines.append("workloads (python -m repro.bench --problems <name>):")
    for wl in unit_registry.workloads():
        tag = " [baseline-gated]" if wl.gate else ""
        lines.append(f"  {wl.name:<12}{wl.description}{tag}")
    lines.append("")
    lines.append("units:")
    for unit in unit_registry.units():
        lines.append(f"  {unit.name:<12}{unit.description}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    choices = ["list"] + [spec.name for spec in experiments()]
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("what", choices=choices)
    parser.add_argument("--quick", action="store_true",
                        help="few steps / small replication (for smoke runs)")
    args = parser.parse_args(argv)

    if args.what == "list":
        print(_render_list())
        return 0
    print(experiment(args.what).run(quick=args.quick))
    return 0


if __name__ == "__main__":
    sys.exit(main())
