"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments all [--quick]
    python -m repro.experiments table1 | table2 | figure1 | compilers |
                                 toys | matrix
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("what", choices=["all", "table1", "table2", "figure1",
                                         "compilers", "toys", "matrix",
                                         "porting"])
    parser.add_argument("--quick", action="store_true",
                        help="few steps / small replication (for smoke runs)")
    args = parser.parse_args(argv)

    from repro.experiments.compilers import compiler_comparison
    from repro.experiments.figure1 import figure1_data, render_figure1
    from repro.experiments.report import full_report
    from repro.experiments.tables import render_table, run_table
    from repro.experiments.testprograms import (
        hugepage_usage_matrix,
        render_outcomes,
        static_vs_dynamic,
    )
    from repro.experiments.workloads import (
        eos_problem_worklog,
        hydro_problem_worklog,
    )

    if args.what == "all":
        print(full_report(quick=args.quick))
        return 0
    if args.what == "table1":
        log = eos_problem_worklog(quick=args.quick)
        print(render_table(run_table("eos", log, quick=args.quick)))
        return 0
    if args.what == "table2":
        log = hydro_problem_worklog(quick=args.quick)
        print(render_table(run_table("hydro", log, quick=args.quick)))
        return 0
    if args.what == "figure1":
        t1 = run_table("eos", eos_problem_worklog(quick=args.quick),
                       quick=args.quick)
        t2 = run_table("hydro", hydro_problem_worklog(quick=args.quick),
                       quick=args.quick)
        print(render_figure1(figure1_data(t1, t2)))
        return 0
    if args.what == "compilers":
        log = eos_problem_worklog(quick=args.quick)
        print(compiler_comparison(log).render())
        return 0
    if args.what == "toys":
        print(render_outcomes(static_vs_dynamic("gnu") + static_vs_dynamic("cray"),
                              "STATIC VS DYNAMIC TOY PROGRAMS"))
        return 0
    if args.what == "matrix":
        print(render_outcomes(hugepage_usage_matrix(),
                              "HUGE-PAGE USAGE MATRIX"))
        return 0
    if args.what == "porting":
        from repro.experiments.porting import porting_study

        log = eos_problem_worklog(quick=args.quick)
        print(porting_study(log).render())
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
