"""DTLB geometry sensitivity: how much L1 DTLB would FLASH need?

The paper's punchline rests on the A64FX's 16-entry fully-associative
L1 DTLB being far too small for FLASH's base-page working set.  This
study asks the natural follow-up the hardware model makes cheap: sweep
the L1 entry count and replay the EOS workload with and without huge
pages at every point.  The sweep exercises the batched replay path end
to end — one launch, one trace synthesis, and a single shared
stack-distance pass for all sweep points per cell
(:meth:`~repro.perfmodel.pipeline.PerformancePipeline.run_geometries`),
bit-identical to running one pipeline per geometry.

The expected shape *is* the paper's mechanism: without huge pages the
miss rate stays pathological until the L1 grows far beyond anything
buildable (fully-associative CAMs do not scale), while with huge pages
even the real 16-entry L1 already covers the working set — hardware
cannot fix this, the page size can.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import unit_registry
from repro.hw.a64fx import A64FX, TLBGeometry
from repro.perfmodel.session import ReplaySession, default_session
from repro.perfmodel.workrecord import WorkLog
from repro.toolchain.compiler import FUJITSU

#: the swept L1 entry counts (16 is the real A64FX point); the L1 stays
#: fully associative, as on the real part, so every point shares one
#: stack-distance pass in the batched kernel
L1_SWEEP_ENTRIES = (8, 16, 32, 64)


def sweep_geometries(entries=L1_SWEEP_ENTRIES) -> list[TLBGeometry]:
    """A64FX-derived geometries with the L1 entry count swept."""
    base = A64FX.tlb
    return [replace(base, l1=replace(base.l1, entries=e, assoc=e))
            for e in entries]


@dataclass
class GeometryStudy:
    """Per-sweep-point DTLB miss rates, with and without huge pages."""

    problem: str
    entries: tuple[int, ...]
    #: "with" / "without" -> [l1 misses per second, one per sweep point]
    miss_rates: dict[str, list[float]]

    def render(self) -> str:
        lines = ["DTLB GEOMETRY SENSITIVITY (EOS problem, Fujitsu compiler)",
                 "---------------------------------------------------------"]
        header = f"  {'L1 entries':<12}{'without HPs':>16}{'with HPs':>16}" \
                 f"{'ratio':>9}"
        lines.append(header)
        for i, e in enumerate(self.entries):
            w = self.miss_rates["with"][i]
            wo = self.miss_rates["without"][i]
            ratio = wo / w if w else float("inf")
            mark = "  <- A64FX" if e == 16 else ""
            lines.append(f"  {e:<12}{wo:>16.3e}{w:>16.3e}{ratio:>9.1f}{mark}")
        lines.append("  (TLB_DM per second over the instrumented region; "
                     "huge pages flatten the curve, more entries do not)")
        return "\n".join(lines)


def geometry_study(log: WorkLog, *, replication: int = 2,
                   session: ReplaySession | None = None,
                   entries=L1_SWEEP_ENTRIES) -> GeometryStudy:
    """Sweep the L1 DTLB size over the EOS workload, both page regimes."""
    session = session if session is not None else default_session()
    geometries = sweep_geometries(entries)
    region = unit_registry.workload("eos").region_kinds
    miss_rates: dict[str, list[float]] = {}
    for flags, label in (((), "with"), (("-Knolargepage",), "without")):
        pipeline = session.pipeline(log, FUJITSU, flags=flags,
                                    replication=replication)
        reports = pipeline.run_geometries(geometries)
        miss_rates[label] = [r.region(region)["dtlb_misses_per_s"]
                             for r in reports]
    return GeometryStudy(problem="eos",
                         entries=tuple(int(e) for e in entries),
                         miss_rates=miss_rates)


__all__ = ["geometry_study", "sweep_geometries", "GeometryStudy",
           "L1_SWEEP_ENTRIES"]
