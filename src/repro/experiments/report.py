"""Assembling the full experiment report (used by __main__ and docs)."""

from __future__ import annotations

from repro.experiments.compilers import compiler_comparison
from repro.experiments.figure1 import figure1_data, render_figure1
from repro.experiments.tables import render_table, run_table
from repro.experiments.testprograms import (
    hugepage_usage_matrix,
    render_outcomes,
    static_vs_dynamic,
)
from repro.experiments.workloads import eos_problem_worklog, hydro_problem_worklog
from repro.perfmodel.session import ReplaySession, default_session

#: configurations the quick full report prices through the session
QUICK_REPORT_CONFIGS = 22
#: the PR 6 cold-replay budget: at most this many distinct TLB replays
#: may execute for the whole quick matrix (gated by
#: tests/experiments/test_replay_sharing.py, the report bench baseline,
#: and the serving soak harness)
QUICK_REPORT_REPLAY_BUDGET = 15


def full_report(*, quick: bool = False,
                session: ReplaySession | None = None) -> str:
    """Regenerate every table and figure; returns the text report.

    Every experiment shares one replay session, so each distinct
    (trace, layout, TLB geometry) combination is simulated exactly once
    across the whole report — and, with a persistent store, at most once
    across repeated report runs.
    """
    session = session if session is not None else default_session()
    sections = []

    eos_log = eos_problem_worklog(quick=quick)
    hydro_log = hydro_problem_worklog(quick=quick)

    table1 = run_table("eos", eos_log, quick=quick, session=session)
    sections.append(render_table(table1))

    table2 = run_table("hydro", hydro_log, quick=quick, session=session)
    sections.append(render_table(table2))

    sections.append(render_figure1(figure1_data(table1, table2)))

    sections.append(compiler_comparison(eos_log,
                                        replication=2 if quick else 4,
                                        session=session).render())

    sections.append(render_outcomes(
        static_vs_dynamic("gnu", session=session)
        + static_vs_dynamic("cray", session=session),
        "STATIC VS DYNAMIC TOY PROGRAMS (section IV)"))

    sections.append(render_outcomes(
        hugepage_usage_matrix(session=session),
        "HUGE-PAGE USAGE MATRIX (sections III-IV)"))

    from repro.experiments.geometry import geometry_study

    sections.append(geometry_study(eos_log, replication=1 if quick else 2,
                                   session=session).render())

    from repro.experiments.porting import porting_study

    sections.append(porting_study(eos_log, session=session).render())

    return "\n\n".join(sections)


__all__ = ["full_report"]
