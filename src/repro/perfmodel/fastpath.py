"""Vectorized trace synthesis: the fast engine's batch TraceBuilder.

The scalar :class:`~repro.perfmodel.patterns.TraceBuilder` walks every
(copy, block) pair in Python and issues one tiny ``translate`` call per
panel, neighbour, scratch probe, and table gather — tens of thousands of
calls per invocation at paper scale.  This builder produces the *same*
trace arrays, element for element, from a handful of whole-mesh array
operations and one ``translate`` call per allocation:

* panel offsets are affine in the virtual block slot (``slot *
  block_bytes + probe``), so all blocks' panels are one broadcast;
* guard-cell neighbour probes come from the same panels shifted one
  block left/right within each replication copy, masked at the ends;
* scratch probes are identical for every block and translated once;
* table-gather offsets still consume the deterministic RNG in exactly
  the scalar order (one ``random()`` plus one ``normal`` draw per
  table-reading block — the draws are cheap; the per-call ``translate``
  was not), then post-process and translate as one batch.

Because the emitted access sequence is identical, every downstream
product — :class:`~repro.hw.trace.PageTrace`, TLB miss counts, counter
totals — is bit-identical to the scalar engine's
(``tests/perfmodel/test_fast_path.py`` holds both builders to that).
"""

from __future__ import annotations

import numpy as np

from repro.hw.trace import PageTrace
from repro.perfmodel.patterns import PROBE_STEP, TraceBuilder
from repro.perfmodel.workrecord import StepRecord, UnitInvocation


class FastTraceBuilder(TraceBuilder):
    """Batch-kernel TraceBuilder emitting bit-identical stream traces.

    ``fine_unit_trace`` is inherited: it already operates on whole-block
    zone arrays and is a rounding error next to the stream pass.
    """

    def invocation_stream_trace(self, rec: StepRecord,
                                inv: UnitInvocation) -> PageTrace:
        slots = np.asarray(rec.slots, dtype=np.int64)
        nb = int(slots.size)
        if nb == 0 or self.replication <= 0:
            return PageTrace.empty()
        bb = self.layout.block_bytes
        copies = np.arange(self.replication, dtype=np.int64)
        vslots = (slots[None, :] + copies[:, None] * self.log.maxblocks)
        n_blocks = vslots.size
        probe = np.arange(0, bb, PROBE_STEP, dtype=np.int64)
        panel_w = probe.size
        panel_off = vslots.reshape(-1, 1) * bb + probe[None, :]

        per_block_tables = 0
        table = None
        if inv.unit == "eos":
            per_block_tables, table = 8, self.eos_table
        elif inv.unit == "flame":
            per_block_tables, table = 4, self.flame_table
        use_scratch = inv.unit in ("hydro_sweep", "eos", "eos_gamma")

        # consume the RNG exactly as the scalar builder does: one center
        # plus one clustered-normal draw per table-reading block, in
        # (copy, block) order
        table_off = None
        if table is not None:
            draws = np.empty((n_blocks, per_block_tables))
            for i in range(n_blocks):
                center = self._rng.random()
                draws[i] = self._rng.normal(center, 0.08, per_block_tables)
            raw = np.abs(draws) % 1.0
            table_off = (raw * (table.nbytes - 8)).astype(np.int64)

        unk_p, unk_s = self._translate(self.unk, panel_off.ravel())

        if inv.unit == "guardcell":
            return self._guardcell_trace(vslots, unk_p, unk_s, probe, bb)

        width = panel_w
        scratch_probes = []
        if use_scratch:
            for s in self.scratch:
                pr = np.arange(0, s.nbytes, PROBE_STEP, dtype=np.int64)[:2]
                scratch_probes.append((s, pr))
                width += pr.size
        width += per_block_tables

        pages = np.empty((n_blocks, width), dtype=np.int64)
        sizes = np.empty((n_blocks, width), dtype=np.int64)
        pages[:, :panel_w] = unk_p.reshape(n_blocks, panel_w)
        sizes[:, :panel_w] = unk_s.reshape(n_blocks, panel_w)
        col = panel_w
        for s, pr in scratch_probes:
            sp, ss = self._translate(s, pr)
            pages[:, col:col + pr.size] = sp[None, :]
            sizes[:, col:col + pr.size] = ss[None, :]
            col += pr.size
        if table is not None:
            tp, ts = self._translate(table, table_off.ravel())
            pages[:, col:] = tp.reshape(n_blocks, per_block_tables)
            sizes[:, col:] = ts.reshape(n_blocks, per_block_tables)
        return PageTrace.from_accesses(pages.ravel(), sizes.ravel())

    def _guardcell_trace(self, vslots: np.ndarray, unk_p: np.ndarray,
                         unk_s: np.ndarray, probe: np.ndarray,
                         bb: int) -> PageTrace:
        """Panel walk plus masked left/right neighbour probes."""
        n_copies, nb = vslots.shape
        n_blocks = vslots.size
        panel_w = probe.size
        probe2 = probe[:2]
        w2 = probe2.size
        left = np.zeros_like(vslots)
        right = np.zeros_like(vslots)
        left[:, 1:] = vslots[:, :-1]
        right[:, :-1] = vslots[:, 1:]
        lp, ls = self._translate(
            self.unk, (left.reshape(-1, 1) * bb + probe2[None, :]).ravel())
        rp, rs = self._translate(
            self.unk, (right.reshape(-1, 1) * bb + probe2[None, :]).ravel())
        width = panel_w + 2 * w2
        pages = np.empty((n_blocks, width), dtype=np.int64)
        sizes = np.empty((n_blocks, width), dtype=np.int64)
        pages[:, :panel_w] = unk_p.reshape(n_blocks, panel_w)
        sizes[:, :panel_w] = unk_s.reshape(n_blocks, panel_w)
        pages[:, panel_w:panel_w + w2] = lp.reshape(n_blocks, w2)
        sizes[:, panel_w:panel_w + w2] = ls.reshape(n_blocks, w2)
        pages[:, panel_w + w2:] = rp.reshape(n_blocks, w2)
        sizes[:, panel_w + w2:] = rs.reshape(n_blocks, w2)
        # end blocks of each copy have no left/right Morton neighbour
        has_left = np.zeros((n_copies, nb), dtype=bool)
        has_right = np.zeros((n_copies, nb), dtype=bool)
        has_left[:, 1:] = True
        has_right[:, :-1] = True
        keep = np.ones((n_blocks, width), dtype=bool)
        keep[:, panel_w:panel_w + w2] = has_left.reshape(-1, 1)
        keep[:, panel_w + w2:] = has_right.reshape(-1, 1)
        kr = keep.ravel()
        return PageTrace.from_accesses(pages.ravel()[kr], sizes.ravel()[kr])


__all__ = ["FastTraceBuilder"]
