"""The zero-copy trace tier: persistent, mmap-backed PageTrace bundles.

The replay-result cache (:mod:`repro.perfmodel.store`) reuses *answers*:
a config-level hit skips everything.  But the paper's experiment matrix
— THP policies, toolchains, TLB geometries, machines — mostly varies
inputs that traces do **not** depend on: synthesis is a pure function of
the workload log, the address-space layout, and the sampling parameters
(:class:`~repro.perfmodel.pipeline.SynthesisTask`), never of the TLB
geometry or the replay engine.  A :class:`TraceStore` therefore persists
each synthesized bundle — the per-invocation stream traces plus the fine
(zone-resolution) traces with their indices and extrapolation scales —
under a content key of exactly those inputs, so a *new* geometry or
engine over a known workload skips synthesis entirely, cross-process.

Entries are page-aligned raw binaries, not pickles:

* header: magic + schema + payload offset + per-trace lengths + fine
  indices/scales, padded to a 4 KiB boundary;
* payload: each trace's ``page``/``size``/``weight`` int64 sections,
  contiguous, stream traces first then fine traces.

Loads go through one read-only :func:`numpy.memmap` sliced per section —
zero copies, zero deserialisation — and the resulting views are wrapped
back into :class:`~repro.hw.trace.PageTrace` (whose constructor is
copy-free for int64 input by contract).  ``thp=True`` additionally
advises ``MADV_HUGEPAGE`` on the mapping — the repro system dogfooding
the paper's subject — and counts whether the kernel accepted the advice.

Durability is the artifact store's: atomic tmp+rename writes, SHA-256
sidecars verified on load, quarantine to ``*.corrupt`` on any
validation failure (the caller resynthesizes — losing a trace costs a
rebuild, never a wrong number).  Sharding, LRU eviction, and pinning are
inherited from :class:`~repro.perfmodel.store.ReplayStore`.

``REPRO_TRACE_CACHE`` / ``REPRO_TRACE_CACHE_BYTES`` follow the same
``off|auto|<dir>`` resolver contract as the replay cache;
``REPRO_TRACE_THP`` opts the mappings into transparent huge pages.
"""

from __future__ import annotations

import mmap
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.hw.trace import PageTrace
from repro.perfmodel.store import (
    ReplayStore,
    StoreStats,
    resolve_cache_bytes,
    resolve_cache_dir,
)
from repro.util import artifacts
from repro.util.artifacts import ArtifactError
from repro.util.errors import ConfigurationError

#: first bytes of every trace-bundle artifact
_MAGIC = b"RTRACE01"
#: bump when the binary layout below changes (content changes invalidate
#: through the synthesis key, not here)
TRACE_STORE_SCHEMA = 1
#: payload alignment — one base page, so the mmap'd sections start on a
#: page boundary and ``MADV_HUGEPAGE`` has a chance to take
_ALIGN = 4096
#: fixed header fields after the magic: schema, payload offset,
#: n_stream, n_fine
_FIXED = struct.Struct("<4q")

_THP_TRUE = frozenset({"1", "on", "true", "yes", "thp", "hugepage"})
_THP_FALSE = frozenset({"", "0", "off", "false", "no", "none"})


# --- environment resolvers (the PR 7 ``off|auto|<dir>`` contract) ------------

def resolve_trace_cache_dir(value: str | os.PathLike | None = None,
                            ) -> Path | None:
    """``REPRO_TRACE_CACHE`` through the shared resolver: ``None`` for
    ``off``, ``$XDG_CACHE_HOME/repro/traces`` for ``auto``/unset, else
    the named directory."""
    return resolve_cache_dir(value, env="REPRO_TRACE_CACHE",
                             default_subdir="traces")


def resolve_trace_cache_bytes(value: str | int | None = None) -> int | None:
    """``REPRO_TRACE_CACHE_BYTES`` through the shared budget resolver."""
    return resolve_cache_bytes(value, env="REPRO_TRACE_CACHE_BYTES")


def trace_cache_configured() -> bool:
    """True when ``REPRO_TRACE_CACHE`` carries an *explicit* setting
    (``off`` or a directory) rather than the ``auto`` default — lets a
    session with an explicit replay ``store_dir`` nest its trace tier
    under it instead of writing to the global XDG location."""
    value = os.environ.get("REPRO_TRACE_CACHE", "").strip().lower()
    return value not in ("", "auto", "on", "default")


def resolve_trace_thp(value: str | bool | None = None) -> bool:
    """Resolve the opt-in ``MADV_HUGEPAGE`` flag (``REPRO_TRACE_THP``).

    Off by default — exactly like the kernels the paper measures, huge
    pages on the store's own mappings are a policy the operator chooses.
    """
    if value is None:
        value = os.environ.get("REPRO_TRACE_THP", "")
    if isinstance(value, bool):
        return value
    text = value.strip().lower()
    if text in _THP_TRUE:
        return True
    if text in _THP_FALSE:
        return False
    raise ConfigurationError(
        f"REPRO_TRACE_THP={value!r} is not a boolean "
        f"(expected on/off/1/0/true/false)")


# --- bundles and refs --------------------------------------------------------

@dataclass
class TraceBundle:
    """One synthesis result: stream traces + fine traces with metadata.

    ``key``/``root`` are set when the bundle is backed by a store entry
    (its arrays are then read-only memmap views); an in-memory bundle
    leaves them empty and its payloads travel by value.
    """

    stream: list[PageTrace]
    #: (invocation index, trace, extrapolation scale) per fine pass
    fine: list[tuple[int, PageTrace, float]]
    key: str = ""
    root: Path | None = None
    #: payload bytes on disk (0 for an in-memory bundle)
    nbytes: int = 0
    thp: bool = False

    @property
    def traces(self) -> list[PageTrace]:
        """Every trace in bundle order (stream first, then fine)."""
        return [*self.stream, *(t for _, t, _ in self.fine)]

    def stream_payload(self):
        """The stream-pass work-unit payload: a :class:`TraceRef` when
        store-backed (workers mmap by digest), else the traces."""
        if self.key and self.root is not None:
            return TraceRef(
                root=str(self.root), key=self.key,
                sections=tuple(range(len(self.stream))),
                nbytes=sum(t.nbytes for t in self.stream), thp=self.thp)
        return self.stream

    def fine_payload(self, pos: int):
        """The work-unit payload for fine trace *pos* (one section)."""
        trace = self.fine[pos][1]
        if self.key and self.root is not None:
            return TraceRef(
                root=str(self.root), key=self.key,
                sections=(len(self.stream) + pos,),
                nbytes=trace.nbytes, thp=self.thp)
        return [trace]


@dataclass(frozen=True)
class TraceRef:
    """A picklable pointer to sections of a stored trace bundle.

    Work units carry these instead of arrays: what crosses the pipe to a
    pool worker is ~100 bytes of path + digest, and the worker maps the
    payload read-only straight from the store (the page cache makes the
    second mapping free).
    """

    root: str
    key: str
    #: indices into the bundle's trace list (stream order, then fine)
    sections: tuple[int, ...]
    #: payload bytes the ref stands for (IPC accounting)
    nbytes: int
    thp: bool = False

    def resolve(self) -> list[PageTrace]:
        """Map the bundle and select this ref's sections (zero-copy)."""
        store = TraceStore(Path(self.root), thp=self.thp)
        bundle = store.load_bundle(self.key)
        if bundle is None:
            raise ArtifactError(
                f"trace bundle syn-{self.key} unavailable in {self.root}")
        traces = bundle.traces
        return [traces[i] for i in self.sections]


# --- the store ---------------------------------------------------------------

@dataclass
class TraceStoreStats(StoreStats):
    """Store counters plus the trace tier's mapping observability."""

    #: mappings that received ``madvise(MADV_HUGEPAGE)`` successfully
    thp_advised: int = 0
    #: payload bytes served as read-only memmap views
    mapped_bytes: int = 0


@dataclass
class TraceStore(ReplayStore):
    """Sharded, LRU-bounded store of page-aligned trace-bundle binaries.

    Inherits the replay store's sharding, pinning, eviction, and
    migration machinery (``suffix`` selects the payload kind); adds the
    binary bundle codec and the zero-copy mmap load path.
    """

    stats: TraceStoreStats = field(default_factory=TraceStoreStats)
    #: advise ``MADV_HUGEPAGE`` on every mapping (``REPRO_TRACE_THP``)
    thp: bool = False

    suffix = ".trace"

    # --- codec -----------------------------------------------------------
    @staticmethod
    def _encode(stream: list[PageTrace],
                fine: list[tuple[int, PageTrace, float]],
                ) -> tuple[bytes, int]:
        """Serialise one bundle; returns (header bytes, payload offset)."""
        traces = [*stream, *(t for _, t, _ in fine)]
        lengths = [t.n_events for t in traces]
        meta = struct.pack(f"<{len(lengths)}q", *lengths)
        meta += struct.pack(f"<{len(fine)}q", *(j for j, _, _ in fine))
        meta += struct.pack(f"<{len(fine)}d", *(sc for _, _, sc in fine))
        header_len = len(_MAGIC) + _FIXED.size + len(meta)
        offset = -(-header_len // _ALIGN) * _ALIGN
        header = (_MAGIC
                  + _FIXED.pack(TRACE_STORE_SCHEMA, offset,
                                len(stream), len(fine))
                  + meta)
        return header + b"\0" * (offset - header_len), offset

    def save_bundle(self, key: str,
                    stream: list[PageTrace],
                    fine: list[tuple[int, PageTrace, float]]) -> int:
        """Atomically persist one bundle under ``syn-<key>``; returns the
        payload byte count.  Propagates ``OSError`` (the session turns
        that into quiet degradation, like the replay store's save)."""
        self.ensure()
        header, _ = self._encode(stream, fine)
        path = self.path_for(f"syn-{key}")
        nbytes = 0
        with artifacts.atomic_write(path) as tmp:
            with open(tmp, "wb") as f:
                f.write(header)
                for t in [*stream, *(t for _, t, _ in fine)]:
                    for arr in (t.page, t.size, t.weight):
                        data = np.ascontiguousarray(arr, dtype=np.int64)
                        f.write(data.tobytes())
                        nbytes += data.nbytes
        artifacts.write_checksum(path)
        self.stats.saves += 1
        if self.max_bytes is not None:
            self.enforce_budget()
        return nbytes

    def load_bundle(self, key: str) -> TraceBundle | None:
        """Map one bundle read-only; corruption quarantines and misses.

        Every validation failure — bad magic, wrong schema, a length
        table that disagrees with the file size, a checksum mismatch —
        quarantines the entry to ``*.corrupt`` and returns ``None``; the
        caller resynthesizes and overwrites.
        """
        self.ensure()
        path = self.path_for(f"syn-{key}")
        if not path.exists():
            return None
        try:
            bundle = self._map_bundle(path)
        except ArtifactError:
            artifacts.quarantine(path)
            self.stats.corrupt += 1
            return None
        except OSError:
            return None
        self.stats.loads += 1
        self.stats.mapped_bytes += bundle.nbytes
        try:
            os.utime(path)  # the LRU recency signal, as in the pickle store
        except OSError:
            pass
        bundle.key = key
        bundle.root = self.root
        bundle.thp = self.thp
        return bundle

    def _map_bundle(self, path: Path) -> TraceBundle:
        if artifacts.verify_checksum(path) is False:
            raise ArtifactError(
                f"trace bundle {path} fails its SHA-256 sidecar check")
        with open(path, "rb") as f:
            head = f.read(len(_MAGIC) + _FIXED.size)
            if len(head) < len(_MAGIC) + _FIXED.size:
                raise ArtifactError(f"trace bundle {path} is truncated")
            if head[:len(_MAGIC)] != _MAGIC:
                raise ArtifactError(f"trace bundle {path} has a bad magic")
            schema, offset, n_stream, n_fine = _FIXED.unpack(
                head[len(_MAGIC):])
            if schema != TRACE_STORE_SCHEMA:
                raise ArtifactError(
                    f"trace bundle {path} has schema {schema}, "
                    f"expected {TRACE_STORE_SCHEMA}")
            if not (0 <= n_stream <= 1 << 20 and 0 <= n_fine <= 1 << 20
                    and offset % _ALIGN == 0 and offset > 0):
                raise ArtifactError(
                    f"trace bundle {path} has an implausible header")
            n = n_stream + n_fine
            meta = f.read(8 * (n + 2 * n_fine))
            if len(meta) < 8 * (n + 2 * n_fine):
                raise ArtifactError(f"trace bundle {path} is truncated")
        lengths = struct.unpack(f"<{n}q", meta[:8 * n])
        indices = struct.unpack(f"<{n_fine}q", meta[8 * n:8 * (n + n_fine)])
        scales = struct.unpack(f"<{n_fine}d", meta[8 * (n + n_fine):])
        if any(ln < 0 for ln in lengths):
            raise ArtifactError(
                f"trace bundle {path} has a negative trace length")
        total = 3 * sum(lengths)
        if path.stat().st_size != offset + 8 * total:
            raise ArtifactError(
                f"trace bundle {path} payload size disagrees with its header")
        if total:
            data = np.memmap(path, dtype=np.int64, mode="r", offset=offset)
            self._advise(data)
        else:
            data = np.empty(0, dtype=np.int64)
        traces: list[PageTrace] = []
        cursor = 0
        for ln in lengths:
            page = data[cursor:cursor + ln]
            size = data[cursor + ln:cursor + 2 * ln]
            weight = data[cursor + 2 * ln:cursor + 3 * ln]
            traces.append(PageTrace(page, size, weight))
            cursor += 3 * ln
        return TraceBundle(
            stream=traces[:n_stream],
            fine=[(int(j), t, float(sc))
                  for j, t, sc in zip(indices, traces[n_stream:], scales)],
            nbytes=8 * total)

    def _advise(self, data: np.memmap) -> None:
        """Opt-in ``madvise(MADV_HUGEPAGE)`` on a fresh mapping.

        Best-effort by design: a kernel without THP (or with it disabled
        for the process) refuses the advice and the load proceeds on
        base pages — the exact degradation story the paper documents.
        """
        if not self.thp:
            return
        advice = getattr(mmap, "MADV_HUGEPAGE", None)
        raw = getattr(data, "_mmap", None)
        if advice is None or raw is None:
            return
        try:
            raw.madvise(advice)
        except OSError:
            return
        self.stats.thp_advised += 1

    # --- observability ----------------------------------------------------
    def describe(self) -> dict:
        doc = super().describe()
        doc["thp"] = self.thp
        doc["thp_advised"] = self.stats.thp_advised
        doc["mapped_bytes"] = self.stats.mapped_bytes
        return doc


__all__ = ["TraceStore", "TraceStoreStats", "TraceBundle", "TraceRef",
           "TRACE_STORE_SCHEMA", "resolve_trace_cache_dir",
           "resolve_trace_cache_bytes", "resolve_trace_thp",
           "trace_cache_configured"]
