"""Multi-configuration replay: one synthesis, many translations, few replays.

The paper's experiment is *one* recording replayed under many
configurations — with/without huge pages, four toolchains, two machines.
A :class:`ReplaySession` amortises that matrix three ways:

1. **Content-addressed replay dedup.**  The TLB simulator's output is a
   pure function of (page trace, TLB geometry, engine).  Every replay is
   keyed by a SHA-256 digest of exactly those inputs, so configurations
   that share a trace — all base-page A64FX toolchains produce
   byte-identical address-space layouts, hence byte-identical traces —
   get one replay and N pricings.  Fine (zone-resolution) traces replay
   through *independent* TLB streams, so they deduplicate individually;
   stream traces share one TLB and deduplicate only as a whole sequence.

2. **Config-level result reuse.**  A full replay result (per-invocation
   :class:`~repro.hw.tlb.TLBStats` plus fine-trace scales) is keyed by
   ``WorkLog.digest()`` + the address-space layout signature + TLB
   geometry + engine + seed.  A hit skips trace synthesis entirely —
   this is what makes ``run_table``'s replication probe free on a warm
   cache, instead of a discarded full replay.

3. **Persistence.**  Both caches live in the corruption-safe artifact
   store (atomic writes, SHA-256 sidecars, versioned envelopes), so
   `repro.bench`, the tests, and CI hit warm cache across processes.  A
   corrupted entry is quarantined to ``*.corrupt`` and recomputed —
   never a crash, never a wrong number (keys are content hashes of the
   inputs; the payload is validated by the envelope + checksum).  The
   on-disk layout, sharding, and LRU size bounds live in
   :class:`~repro.perfmodel.store.ReplayStore`.

4. **The trace tier.**  Below the replay-result cache sits a
   content-addressed store of the synthesized traces themselves
   (:class:`~repro.perfmodel.tracestore.TraceStore`).  Synthesis is a
   pure function of the workload + address-space layout + sampling
   parameters — never of the TLB geometry or replay engine — so a warm
   trace store lets a *new* geometry/engine over a known workload skip
   synthesis entirely, cross-process, and the mapped bundles hand
   traces to pool workers by reference instead of pickling arrays.
   Distinct synthesis misses within a batch are themselves schedulable
   work units, run across the replay executor's pool.

The hard contract, inherited from the fast-path work: counters are
**bit-identical** to per-config :class:`PerformancePipeline` runs on both
engines.  Dedup relies only on (a) SHA-256 collision resistance and (b)
the replay kernels being pure functions of a single stream's trace —
which is exactly what the fast-vs-scalar property suite already pins.

``REPRO_REPLAY_CACHE`` follows the ``off|auto|<dir>`` contract of
:func:`repro.perfmodel.store.resolve_cache_dir` — ``off`` keeps
sessions memory-only, ``auto`` (or unset) uses the XDG default.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.hw.a64fx import TLBGeometry
from repro.hw.tlb import (
    TLBSimulator,
    TLBStats,
    run_steady_segments,
    run_steady_segments_multi,
)
from repro.hw.trace import PageTrace
from repro.perfmodel.store import (
    ReplayStore,
    resolve_cache_bytes,
    resolve_cache_dir,
)
from repro.perfmodel.tracestore import (
    TraceBundle,
    TraceStore,
    resolve_trace_cache_bytes,
    resolve_trace_cache_dir,
    resolve_trace_thp,
    trace_cache_configured,
)
from repro.util.artifacts import ArtifactError
from repro.util.errors import ConfigurationError

#: bump when the persisted envelope layout changes (a schema guard only —
#: content changes invalidate through the digests in the keys, not here)
_STORE_VERSION = 1
#: bump when trace *synthesis* semantics change (builder emission order,
#: probe step, fine sampling); part of every config-level key so replay
#: results recorded by an older model can never be served for a new one
TRACE_SCHEMA = 1


# --- digest helpers ----------------------------------------------------------

def _hexdigest(h: "hashlib._Hash") -> str:
    return h.hexdigest()[:40]


def trace_digest(trace: PageTrace) -> str:
    """Content digest of one page trace (page/size/weight arrays)."""
    h = hashlib.sha256()
    h.update(struct.pack("<q", trace.n_events))
    h.update(trace.page.tobytes())
    h.update(trace.size.tobytes())
    h.update(trace.weight.tobytes())
    return _hexdigest(h)


def geometry_digest(geometry: TLBGeometry) -> str:
    """Digest of the TLB fields that determine miss counts.

    Miss penalties and walk cycles price misses but do not change them,
    so they are deliberately excluded: machines sharing a geometry share
    replays.
    """
    h = hashlib.sha256()
    h.update(struct.pack("<4q", geometry.l1.entries, geometry.l1.assoc,
                         geometry.l2.entries, geometry.l2.assoc))
    return _hexdigest(h)


# --- session -----------------------------------------------------------------

@dataclass
class SessionStats:
    """Observability counters for one session (tests and bench gate on
    these — ``replays`` is the "distinct TLB replays" number)."""

    #: replay requests priced through the session (one per pipeline run)
    configs: int = 0
    #: configs whose replay actually executed TLB simulation work
    replays: int = 0
    #: configs served entirely from the in-memory config cache
    memory_hits: int = 0
    #: configs served entirely from the persistent store
    disk_hits: int = 0
    #: trace-level (content-digest) reuses across or within configs
    trace_hits: int = 0
    #: duplicate fine traces within a config not replayed twice
    fine_deduped: int = 0
    #: persisted memo()isations served instead of recomputed
    memo_hits: int = 0
    #: trace syntheses that actually ran (anywhere — requester or pool)
    synthesis_count: int = 0
    #: syntheses skipped because the trace tier already held the bundle
    trace_store_hits: int = 0


@dataclass
class ReplayResult:
    """Everything a pipeline needs to price one configuration."""

    #: per-invocation stream-pass stats, in invocation order
    stream: list[TLBStats]
    #: (invocation index, raw unscaled stats, extrapolation scale) per
    #: fine-sampled invocation
    fine: list[tuple[int, TLBStats, float]] = field(default_factory=list)


@dataclass
class ReplayRequest:
    """One configuration's replay inputs, batchable with others.

    ``synthesize`` is only called on a config-level cache miss, exactly
    as in :meth:`ReplaySession.replay` — a warm store never builds a
    trace.
    """

    config_key: str
    geometry: TLBGeometry
    engine: str
    synthesize: Callable[[], tuple[list[PageTrace],
                                   list[tuple[int, PageTrace, float]]]]
    #: content key of the synthesis inputs (workload digest + layout
    #: signature + sampling parameters; geometry- and engine-free).
    #: ``None`` keeps the legacy behaviour: synthesis always runs in the
    #: requester and nothing is persisted below the replay cache.
    trace_key: str | None = None


class ReplaySession:
    """Shares and persists TLB replay results across configurations.

    ``share=False`` disables both cache levels (every config synthesises
    and replays — the seed-equivalent behaviour, used by the bench as the
    reference measurement); ``persist=False`` keeps results in memory
    only.  Sessions are cheap; the process-wide :func:`default_session`
    is what gives independent experiment entry points a common cache.
    """

    def __init__(self, store_dir: str | Path | None = None, *,
                 persist: bool = True, share: bool = True,
                 max_bytes: int | None = None,
                 trace_dir: str | Path | None = None,
                 trace_max_bytes: int | None = None,
                 trace_thp: bool | None = None) -> None:
        self.share = share
        self.persist = persist and share
        self._store_dir = Path(store_dir) if store_dir is not None else None
        self._explicit_store_dir = store_dir is not None
        self._max_bytes = max_bytes
        self._store_obj: ReplayStore | None = None
        #: the trace tier: explicit ``trace_dir``, else REPRO_TRACE_CACHE
        #: (off|auto|<dir>), else nested under an explicit ``store_dir``,
        #: else the XDG default — active only while the session persists
        self._trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._trace_max_bytes = trace_max_bytes
        self._trace_thp = trace_thp
        self._trace_store_obj: TraceStore | None = None
        self._trace_off = False
        self._bundles: dict[str, TraceBundle] = {}
        self._configs: dict[str, ReplayResult] = {}
        self._traces: dict[str, list[TLBStats]] = {}
        self._memos: dict[str, Any] = {}
        self._executor = None
        self._lock = threading.RLock()
        self.stats = SessionStats()

    @classmethod
    def disabled(cls) -> "ReplaySession":
        """A no-sharing, no-persistence session (per-config behaviour)."""
        return cls(persist=False, share=False)

    # --- store -----------------------------------------------------------
    def _store(self) -> ReplayStore | None:
        """The session's sharded persistent store, or ``None``.

        Cache-dir resolution is centralized in
        :func:`repro.perfmodel.store.resolve_cache_dir` — the single
        reader of ``REPRO_REPLAY_CACHE`` (``off|auto|<dir>``).  An
        explicit ``store_dir`` argument bypasses the environment; an
        uncreatable directory degrades the session to memory-only.
        """
        if not self.persist:
            return None
        if self._store_obj is None:
            store_dir = self._store_dir
            if store_dir is None:
                store_dir = resolve_cache_dir()
                if store_dir is None:  # REPRO_REPLAY_CACHE=off
                    self.persist = False
                    return None
            max_bytes = self._max_bytes
            if max_bytes is None:
                max_bytes = resolve_cache_bytes()
            store = ReplayStore(store_dir, max_bytes=max_bytes)
            try:
                store.ensure()
            except OSError:
                self.persist = False
                return None
            self._store_dir = store.root
            self._store_obj = store
        return self._store_obj

    @property
    def store(self) -> ReplayStore | None:
        """The persistent store (for metrics/eviction), if any."""
        return self._store()

    def _load(self, name: str) -> Any | None:
        """Fetch one persisted payload; corruption quarantines and misses."""
        store = self._store()
        if store is None:
            return None
        return store.load(name, version=_STORE_VERSION)

    def _save(self, name: str, payload: Any) -> None:
        store = self._store()
        if store is None:
            return
        try:
            store.save(name, payload, version=_STORE_VERSION)
        except (OSError, ArtifactError):
            self.persist = False  # e.g. read-only cache dir: degrade quietly

    # --- the trace tier ---------------------------------------------------
    def _trace_store(self) -> TraceStore | None:
        """The session's persistent trace-bundle store, or ``None``.

        Active only for sharing, persisting sessions (the trace tier
        sits *below* the replay cache — a memory-only session keeps its
        bundles in memory).  Resolution precedence: an explicit
        ``trace_dir`` argument, then ``REPRO_TRACE_CACHE``
        (``off|auto|<dir>``), then — under the ``auto`` default — nested
        as ``<store_dir>/traces`` when the session was given an explicit
        replay store directory (so throwaway test stores stay
        self-contained), else the XDG default.  An uncreatable directory
        degrades the trace tier off, never the session.
        """
        if not self.share or self._trace_off:
            return None
        if self._store() is None:  # replay persistence off or degraded
            return None
        if self._trace_store_obj is None:
            trace_dir = self._trace_dir
            if trace_dir is None:
                if self._explicit_store_dir and not trace_cache_configured():
                    trace_dir = Path(self._store_dir) / "traces"
                else:
                    trace_dir = resolve_trace_cache_dir()
                    if trace_dir is None:  # REPRO_TRACE_CACHE=off
                        self._trace_off = True
                        return None
            max_bytes = self._trace_max_bytes
            if max_bytes is None:
                max_bytes = resolve_trace_cache_bytes()
            thp = self._trace_thp
            if thp is None:
                thp = resolve_trace_thp()
            store = TraceStore(trace_dir, max_bytes=max_bytes, thp=thp)
            try:
                store.ensure()
            except OSError:
                self._trace_off = True
                return None
            self._trace_store_obj = store
        return self._trace_store_obj

    @property
    def trace_store(self) -> TraceStore | None:
        """The trace tier's store (for metrics/eviction), if any."""
        return self._trace_store()

    def _save_bundle(self, store: TraceStore, key: str,
                     bundle: TraceBundle) -> TraceBundle | None:
        """Persist a fresh bundle and map it back (zero-copy views); a
        failed save degrades the trace tier off and returns ``None``."""
        try:
            store.save_bundle(key, bundle.stream, bundle.fine)
        except (OSError, ArtifactError):
            self._trace_off = True
            return None
        return store.load_bundle(key)

    def _synthesize_once(self, trace_key: str | None,
                         synthesize: Callable) -> TraceBundle:
        """Resolve one synthesis through the trace tier, inline.

        Bundle-cache hit (memory or store) skips synthesis and counts
        ``trace_store_hits``; a miss synthesizes in the caller, persists
        the bundle when the tier is active, and counts
        ``synthesis_count``.
        """
        key = trace_key if self.share else None
        if key is not None:
            hit = self._bundles.get(key)
            if hit is None:
                store = self._trace_store()
                if store is not None:
                    hit = store.load_bundle(key)
                    if hit is not None:
                        self._bundles[key] = hit
            if hit is not None:
                self.stats.trace_store_hits += 1
                return hit
        self.stats.synthesis_count += 1
        stream, fine = synthesize()
        bundle = TraceBundle(stream=list(stream), fine=list(fine))
        if key is not None:
            store = self._trace_store()
            if store is not None:
                mapped = self._save_bundle(store, key, bundle)
                if mapped is not None:
                    bundle = mapped
            self._bundles[key] = bundle
        return bundle

    def _resolve_syntheses(self, pending: list[tuple[int, "ReplayRequest"]],
                           executor) -> dict[int, TraceBundle]:
        """Resolve every pending request's synthesis to a trace bundle.

        Answers what it can from the bundle caches, then schedules the
        *distinct* misses as ``"synth"`` work units — across the replay
        executor's pool when the trace tier is active and the tasks are
        picklable (workers persist the bundle; the requester maps it) —
        and synthesizes inline otherwise.  Accounting is as-if-
        sequential: one ``synthesis_count`` per distinct miss, one
        ``trace_store_hits`` per request that would have found the store
        warm, independent of the job count.
        """
        out: dict[int, TraceBundle] = {}
        store = self._trace_store()
        waiting: dict[str, list[int]] = {}
        tasks: dict[str, Callable] = {}
        for i, req in pending:
            key = req.trace_key if self.share else None
            if key is None:
                out[i] = self._synthesize_once(None, req.synthesize)
                continue
            hit = self._bundles.get(key)
            if hit is None and store is not None:
                hit = store.load_bundle(key)
                if hit is not None:
                    self._bundles[key] = hit
            if hit is not None:
                self.stats.trace_store_hits += 1
                out[i] = hit
                continue
            if key in waiting:
                # an earlier batch entry synthesizes this bundle;
                # sequential execution would find the store warm here
                self.stats.trace_store_hits += 1
                waiting[key].append(i)
                continue
            waiting[key] = [i]
            tasks[key] = req.synthesize
        if not tasks:
            return out
        self.stats.synthesis_count += len(tasks)
        keys = list(tasks)
        done: dict[str, TraceBundle | None] = {}
        schedulable = (store is not None
                       and all(getattr(tasks[k], "picklable", False)
                               for k in keys))
        if schedulable:
            units = [("synth", k, tasks[k], str(store.root), store.thp)
                     for k in keys]
            with store.pinned(*(f"syn-{k}" for k in keys)):
                try:
                    executor.run_units(units)
                except Exception:  # noqa: BLE001 — synthesis must not be lost
                    self._trace_off = True
                else:
                    for k in keys:
                        done[k] = store.load_bundle(k)
        for k in keys:
            bundle = done.get(k)
            if bundle is None:
                stream, fine = tasks[k]()
                bundle = TraceBundle(stream=list(stream), fine=list(fine))
                store = self._trace_store()
                if store is not None:
                    mapped = self._save_bundle(store, k, bundle)
                    if mapped is not None:
                        bundle = mapped
            self._bundles[k] = bundle
            for i in waiting[k]:
                out[i] = bundle
        return out

    # --- replay ----------------------------------------------------------
    def replay(self, *, config_key: str, geometry: TLBGeometry, engine: str,
               synthesize: Callable[[], tuple[list[PageTrace],
                                              list[tuple[int, PageTrace,
                                                         float]]]],
               trace_key: str | None = None) -> ReplayResult:
        """Replay one configuration, reusing every cached piece.

        ``synthesize`` is only called on a config-level miss *and* a
        trace-tier miss — a warm store answers without building a single
        trace.  This is the single-request form of :meth:`replay_batch`;
        counters and cache behaviour are identical by construction.
        """
        return self.replay_batch([ReplayRequest(
            config_key=config_key, geometry=geometry, engine=engine,
            synthesize=synthesize, trace_key=trace_key)])[0]

    def replay_batch(self, requests: list[ReplayRequest], *,
                     executor=None) -> list[ReplayResult]:
        """Thread-safe entry point for :meth:`_replay_batch`.

        One re-entrant lock serialises the session's cache mutations
        (:meth:`replay_batch`, :meth:`replay_sweep`, :meth:`memo`), so a
        multi-threaded server sharing one session keeps the exact
        sequential accounting the bench gates on — concurrency between
        *different* requests lives above this layer, in the serving
        singleflight, and below it, in the replay executor.
        """
        with self._lock:
            return self._replay_batch(requests, executor=executor)

    def _replay_batch(self, requests: list[ReplayRequest], *,
                      executor=None) -> list[ReplayResult]:
        """Replay many configurations, scheduling distinct work units.

        The batch first answers every request it can from the config
        caches, then synthesises the misses (serially — synthesis reads
        the simulated process) and *dedupes* their work across the
        batch: one unit per distinct content-keyed stream bundle, one
        per distinct fine trace.  Units are pure functions of their
        inputs, so the executor may run them in any order on any number
        of processes; results merge back by digest.  With the default
        serial executor the whole method is step-for-step the sequence
        of :meth:`replay` calls it replaces — counters included.

        ``executor`` defaults to the session's own lazily-created
        :class:`~repro.perfmodel.parallel.ReplayExecutor`, whose job
        count honours ``REPRO_REPLAY_JOBS`` / the ``replay_jobs``
        runtime parameter (serial unless asked otherwise).
        """
        results: list[ReplayResult | None] = [None] * len(requests)
        pending: list[tuple[int, ReplayRequest]] = []
        pending_by_key: dict[str, int] = {}
        aliases: list[tuple[int, int]] = []  # (index, index of original)
        for i, req in enumerate(requests):
            self.stats.configs += 1
            if self.share:
                hit = self._configs.get(req.config_key)
                if hit is not None:
                    self.stats.memory_hits += 1
                    results[i] = hit
                    continue
                if req.config_key in pending_by_key:
                    # an earlier batch entry already computes this config;
                    # sequential replay would memory-hit here
                    self.stats.memory_hits += 1
                    aliases.append((i, pending_by_key[req.config_key]))
                    continue
                stored = self._load(f"cfg-{req.config_key}")
                if self._valid_config(stored):
                    result = ReplayResult(
                        stream=list(stored["stream"]),
                        fine=[(int(j), s, float(sc))
                              for j, s, sc in stored["fine"]])
                    self._configs[req.config_key] = result
                    self.stats.disk_hits += 1
                    results[i] = result
                    continue
                pending_by_key[req.config_key] = i
            pending.append((i, req))
        if not pending:
            return results  # type: ignore[return-value]

        if executor is None:
            executor = self._executor_for_batch()

        # --- resolve synthesis through the trace tier: bundle-cache
        # hits skip it, distinct misses run (possibly across the pool)
        # and persist their bundles for the next request and process
        bundles = self._resolve_syntheses(pending, executor)

        # --- plan: dedupe distinct work units across the batch.  Unit
        # keys are content digests, so the accounting below is exactly
        # what sequential execution would have recorded: the first
        # requester of a unit computes it, later requesters hit the
        # (by then warm) trace cache.  Store-backed bundles put a
        # :class:`~repro.perfmodel.tracestore.TraceRef` in the unit —
        # pool workers map the payload instead of unpickling it.
        stream_units: dict[object, tuple] = {}   # ukey -> work unit
        fine_units: dict[object, tuple] = {}
        plans = []
        for i, req in pending:
            bundle = bundles[i]
            stream_traces, fine_traces = bundle.stream, bundle.fine
            geo = geometry_digest(req.geometry)
            computed = False

            # stream pass: one shared TLB for the whole sequence -> the
            # sequence deduplicates only as a whole
            bundle_hash = hashlib.sha256()
            bundle_hash.update(
                f"stream/{req.engine}/{geo}/{len(stream_traces)}".encode())
            for t in stream_traces:
                bundle_hash.update(trace_digest(t).encode())
            bundle_key = _hexdigest(bundle_hash)
            stream_cached = self._cached_traces(bundle_key)
            stream_ukey: object = bundle_key if self.share else (bundle_key, i)
            if (stream_cached is not None
                    and len(stream_cached) == len(stream_traces)):
                self.stats.trace_hits += 1
            elif self.share and stream_ukey in stream_units:
                self.stats.trace_hits += 1
            else:
                stream_units[stream_ukey] = ("stream", req.engine,
                                             req.geometry,
                                             bundle.stream_payload())
                computed = True

            # fine passes: independent (fresh) TLB per trace -> each
            # trace deduplicates individually, within and across
            # configurations (and across the batch)
            digests = [trace_digest(t) for _, t, _ in fine_traces]
            fine_sources: dict[str, tuple] = {}  # digest -> source
            for pos, d in enumerate(digests):
                if d in fine_sources:
                    self.stats.fine_deduped += 1
                    continue
                fine_ukey: object = (req.engine, geo, d)
                cached = self._cached_traces(f"fine-{req.engine}-{geo}-{d}")
                if cached is not None and len(cached) == 1:
                    fine_sources[d] = ("cached", cached[0])
                    self.stats.trace_hits += 1
                elif self.share and fine_ukey in fine_units:
                    fine_sources[d] = ("unit", fine_ukey)
                    self.stats.trace_hits += 1
                else:
                    if not self.share:
                        fine_ukey = (req.engine, geo, d, i)
                    fine_units[fine_ukey] = ("fine", req.engine,
                                             req.geometry,
                                             bundle.fine_payload(pos))
                    fine_sources[d] = ("unit", fine_ukey)
                    computed = True
            if computed:
                self.stats.replays += 1
            plans.append({
                "index": i, "request": req, "geo": geo,
                "bundle_key": bundle_key, "stream_ukey": stream_ukey,
                "stream_cached": stream_cached
                if (stream_cached is not None
                    and len(stream_cached) == len(stream_traces)) else None,
                "digests": digests, "fine_traces": fine_traces,
                "fine_sources": fine_sources,
            })

        # --- execute every distinct unit (possibly on worker processes).
        # Bundles referenced by units are pinned so a concurrent save's
        # budget enforcement cannot evict a file a worker is about to map
        ukeys = list(stream_units) + list(fine_units)
        units = [stream_units[k] for k in stream_units] + \
                [fine_units[k] for k in fine_units]
        tstore = self._trace_store()
        used_keys = ({b.key for b in bundles.values() if b.key}
                     if tstore is not None else set())
        guard = (tstore.pinned(*(f"syn-{k}" for k in sorted(used_keys)))
                 if used_keys else nullcontext())
        with guard:
            outputs = executor.run_units(units)
        by_ukey = dict(zip(ukeys, outputs))
        if tstore is not None and tstore.max_bytes is not None:
            tstore.enforce_budget()

        # --- merge by digest, persist, assemble in request order
        for plan in plans:
            req = plan["request"]
            if plan["stream_cached"] is not None:
                stream_stats = plan["stream_cached"]
            else:
                stream_stats = by_ukey[plan["stream_ukey"]]
                if plan["stream_ukey"] in stream_units:
                    self._store_traces(plan["bundle_key"], stream_stats)
                    # later plans sharing the bundle read the stored list
                    stream_units.pop(plan["stream_ukey"], None)
            fine: list[tuple[int, TLBStats, float]] = []
            resolved: dict[str, TLBStats] = {}
            for d, (j, _, scale) in zip(plan["digests"],
                                        plan["fine_traces"]):
                if d not in resolved:
                    kind, payload = plan["fine_sources"][d]
                    if kind == "cached":
                        resolved[d] = payload
                    else:
                        stats = by_ukey[payload][0]
                        resolved[d] = stats
                        if payload in fine_units:
                            self._store_traces(
                                f"fine-{req.engine}-{plan['geo']}-{d}",
                                [stats])
                            fine_units.pop(payload, None)
                fine.append((j, resolved[d], scale))
            result = ReplayResult(stream=stream_stats, fine=fine)
            if self.share:
                self._configs[req.config_key] = result
                self._save(f"cfg-{req.config_key}",
                           {"stream": result.stream, "fine": result.fine})
            results[plan["index"]] = result
        for i, j in aliases:
            results[i] = self._configs.get(requests[j].config_key,
                                           results[j])
        return results  # type: ignore[return-value]

    def replay_sweep(self, *, config_keys: list[str],
                     geometries: list[TLBGeometry], engine: str,
                     synthesize: Callable[[], tuple[list[PageTrace],
                                                    list[tuple[int, PageTrace,
                                                               float]]]],
                     trace_key: str | None = None) -> list[ReplayResult]:
        """Thread-safe entry point for :meth:`_replay_sweep` (see
        :meth:`replay_batch` for the locking contract)."""
        with self._lock:
            return self._replay_sweep(config_keys=config_keys,
                                      geometries=geometries, engine=engine,
                                      synthesize=synthesize,
                                      trace_key=trace_key)

    def _replay_sweep(self, *, config_keys: list[str],
                      geometries: list[TLBGeometry], engine: str,
                      synthesize: Callable[[], tuple[list[PageTrace],
                                                     list[tuple[int, PageTrace,
                                                                float]]]],
                      trace_key: str | None = None) -> list[ReplayResult]:
        """Replay one trace set under many TLB geometries in one pass.

        The geometry-sweep analogue of :meth:`replay_batch`: synthesis
        runs (at most) once, and on the fast engine every geometry that
        misses the caches shares a single
        :func:`~repro.hw.tlb.run_steady_segments_multi` call — one
        stack-distance pass for the whole sweep.  Results are persisted
        under exactly the keys per-geometry :meth:`replay` calls would
        use, so sweeps and single replays warm each other's caches, and
        every entry is bit-identical to its serial equivalent (the
        batched kernel's contract).
        """
        if len(config_keys) != len(geometries):
            raise ConfigurationError(
                "replay_sweep needs one config key per geometry")
        results: list[ReplayResult | None] = [None] * len(config_keys)
        pending: list[int] = []
        for i, key in enumerate(config_keys):
            self.stats.configs += 1
            if self.share:
                hit = self._configs.get(key)
                if hit is not None:
                    self.stats.memory_hits += 1
                    results[i] = hit
                    continue
                stored = self._load(f"cfg-{key}")
                if self._valid_config(stored):
                    result = ReplayResult(
                        stream=list(stored["stream"]),
                        fine=[(int(j), s, float(sc))
                              for j, s, sc in stored["fine"]])
                    self._configs[key] = result
                    self.stats.disk_hits += 1
                    results[i] = result
                    continue
            pending.append(i)
        if not pending:
            return results  # type: ignore[return-value]

        bundle = self._synthesize_once(trace_key, synthesize)
        stream_traces, fine_traces = bundle.stream, bundle.fine
        fine_digests = [trace_digest(t) for _, t, _ in fine_traces]
        trace_by_digest: dict[str, PageTrace] = {}
        for d, (_, t, _) in zip(fine_digests, fine_traces):
            trace_by_digest.setdefault(d, t)

        plans: dict[int, dict] = {}
        stream_need: list[int] = []
        for i in pending:
            geo = geometry_digest(geometries[i])
            bundle_hash = hashlib.sha256()
            bundle_hash.update(
                f"stream/{engine}/{geo}/{len(stream_traces)}".encode())
            for t in stream_traces:
                bundle_hash.update(trace_digest(t).encode())
            bundle_key = _hexdigest(bundle_hash)
            computed = False
            stream_stats = self._cached_traces(bundle_key)
            if (stream_stats is not None
                    and len(stream_stats) == len(stream_traces)):
                self.stats.trace_hits += 1
            else:
                stream_stats = None
                stream_need.append(i)
                computed = True
            by_digest: dict[str, TLBStats] = {}
            missing: list[str] = []
            for d in fine_digests:
                if d in by_digest or d in missing:
                    self.stats.fine_deduped += 1
                    continue
                cached = self._cached_traces(f"fine-{engine}-{geo}-{d}")
                if cached is not None and len(cached) == 1:
                    by_digest[d] = cached[0]
                    self.stats.trace_hits += 1
                else:
                    missing.append(d)
            if missing:
                computed = True
            if computed:
                self.stats.replays += 1
            plans[i] = {"geo": geo, "bundle_key": bundle_key,
                        "stream": stream_stats, "by_digest": by_digest,
                        "missing": missing}

        if stream_need:
            geos = [geometries[i] for i in stream_need]
            if engine == "fast":
                rows = run_steady_segments_multi(
                    geos, stream_traces, streams=[0] * len(stream_traces))
            else:
                rows = [self._replay_stream(engine, g, stream_traces)
                        for g in geos]
            for i, row in zip(stream_need, rows):
                plans[i]["stream"] = row
                self._store_traces(plans[i]["bundle_key"], row)

        # fine traces: geometries missing the *same* digests replay them
        # together (cold sweeps collapse into one batched call)
        groups: dict[tuple, list[int]] = {}
        for i in pending:
            if plans[i]["missing"]:
                groups.setdefault(tuple(plans[i]["missing"]), []).append(i)
        for missing, idxs in groups.items():
            traces = [trace_by_digest[d] for d in missing]
            if engine == "fast" and len(idxs) > 1:
                rows = run_steady_segments_multi(
                    [geometries[i] for i in idxs], traces,
                    streams=list(range(len(traces))))
            else:
                rows = [self._replay_fine(engine, geometries[i], traces)
                        for i in idxs]
            for i, row in zip(idxs, rows):
                for d, stats in zip(missing, row):
                    plans[i]["by_digest"][d] = stats
                    self._store_traces(
                        f"fine-{engine}-{plans[i]['geo']}-{d}", [stats])

        for i in pending:
            plan = plans[i]
            fine = [(j, plan["by_digest"][d], scale)
                    for d, (j, _, scale) in zip(fine_digests, fine_traces)]
            result = ReplayResult(stream=plan["stream"], fine=fine)
            if self.share:
                self._configs[config_keys[i]] = result
                self._save(f"cfg-{config_keys[i]}",
                           {"stream": result.stream, "fine": result.fine})
            results[i] = result
        return results  # type: ignore[return-value]

    def _executor_for_batch(self):
        """The session's lazily-created executor (jobs from the
        environment / registry); created serial stays serial forever,
        so the hot path never imports multiprocessing machinery."""
        if getattr(self, "_executor", None) is None:
            from repro.perfmodel.parallel import ReplayExecutor
            self._executor = ReplayExecutor()
        return self._executor

    def close(self) -> None:
        """Release the executor's worker pool, if one was ever forked.

        Idempotent and non-final: the next batch lazily re-creates the
        executor, so closing between legs (or in ``session_scope``
        teardown) never strands a session.
        """
        ex = getattr(self, "_executor", None)
        if ex is not None:
            ex.close()
            self._executor = None

    def __enter__(self) -> "ReplaySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _cached_traces(self, key: str) -> list[TLBStats] | None:
        if not self.share:
            return None
        hit = self._traces.get(key)
        if hit is not None:
            return hit
        stored = self._load(f"trace-{key}")
        if (isinstance(stored, list)
                and all(isinstance(s, TLBStats) for s in stored)):
            self._traces[key] = stored
            return stored
        return None

    def _store_traces(self, key: str, stats: list[TLBStats]) -> None:
        if not self.share:
            return
        self._traces[key] = stats
        self._save(f"trace-{key}", stats)

    @staticmethod
    def _valid_config(stored: Any) -> bool:
        return (isinstance(stored, dict)
                and isinstance(stored.get("stream"), list)
                and all(isinstance(s, TLBStats) for s in stored["stream"])
                and isinstance(stored.get("fine"), list)
                and all(len(e) == 3 and isinstance(e[1], TLBStats)
                        for e in stored["fine"]))

    # --- the two replay kernels (bit-identical to the per-config paths) --
    @staticmethod
    def _replay_stream(engine: str, geometry: TLBGeometry,
                       traces: list[PageTrace]) -> list[TLBStats]:
        if engine == "fast":
            return run_steady_segments(geometry, traces,
                                       streams=[0] * len(traces))
        sim = TLBSimulator(geometry)
        for t in traces:
            sim.run(t)  # warm pass
        return [sim.run(t) for t in traces]

    @staticmethod
    def _replay_fine(engine: str, geometry: TLBGeometry,
                     traces: list[PageTrace]) -> list[TLBStats]:
        if engine == "fast":
            return run_steady_segments(geometry, traces,
                                       streams=list(range(len(traces))))
        out = []
        for trace in traces:
            sim = TLBSimulator(geometry)
            sim.run(trace)  # warm
            out.append(sim.run(trace))
        return out

    # --- deterministic experiment memoisation ----------------------------
    def memo(self, kind: str, key_parts: tuple, builder: Callable[[], Any],
             validate: Callable[[Any], bool] | None = None) -> Any:
        """Persist a deterministic experiment result keyed by content.

        ``key_parts`` must capture every input the result depends on
        (model constants included — ``repr`` of the relevant dataclasses
        is the usual spelling).  Used by the allocation experiments,
        whose kernel/allocator simulations are pure functions of their
        configuration, and by the serving layer's rendered-report memo.
        Holds the session lock for the duration of ``builder()`` (see
        :meth:`replay_batch`).
        """
        key = self.memo_key(kind, key_parts)
        with self._lock:
            if self.share:
                if key in self._memos:
                    self.stats.memo_hits += 1
                    return self._memos[key]
                stored = self._load(f"memo-{key}")
                if stored is not None and (validate is None
                                           or validate(stored)):
                    self._memos[key] = stored
                    self.stats.memo_hits += 1
                    return stored
            value = builder()
            if self.share:
                self._memos[key] = value
                self._save(f"memo-{key}", value)
            return value

    @staticmethod
    def memo_key(kind: str, key_parts: tuple) -> str:
        """The content digest :meth:`memo` files ``(kind, key_parts)``
        under — exposed so callers (the serving singleflight) can name,
        pin, or probe the persisted ``memo-<key>`` entry."""
        h = hashlib.sha256()
        h.update(f"{kind}/{TRACE_SCHEMA}".encode())
        h.update(repr(key_parts).encode())
        return _hexdigest(h)

    # --- sugar ------------------------------------------------------------
    def pipeline(self, log, compiler, **kwargs):
        """A :class:`PerformancePipeline` bound to this session."""
        from repro.perfmodel.pipeline import PerformancePipeline
        return PerformancePipeline(log, compiler, session=self, **kwargs)

    def run(self, log, compiler, **kwargs):
        """Run one configuration through the session; returns PerfReport."""
        return self.pipeline(log, compiler, **kwargs).run()


# --- the process-wide default session ----------------------------------------

_DEFAULT: ReplaySession | None = None


def default_session() -> ReplaySession:
    """The shared session every un-parameterised consumer joins.

    ``REPRO_REPLAY_CACHE`` (``off|auto|<dir>``) is honoured lazily by
    the session's store, through the one resolver in
    :mod:`repro.perfmodel.store` — every session without an explicit
    ``store_dir`` obeys it, not just this default one.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ReplaySession()
    return _DEFAULT


def set_default_session(session: ReplaySession | None) -> None:
    global _DEFAULT
    _DEFAULT = session


@contextmanager
def session_scope(session: ReplaySession, *,
                  close: bool = False) -> Iterator[ReplaySession]:
    """Temporarily replace the default session (bench and tests).

    ``close=True`` additionally shuts the session's executor pool down
    in teardown — forked replay workers must not outlive the scope that
    forked them.  (Closing is non-final: a later batch re-creates the
    pool, so ``close=True`` is safe for sessions that are reused.)
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = session
    try:
        yield session
    finally:
        _DEFAULT = previous
        if close:
            session.close()


__all__ = ["ReplaySession", "ReplayResult", "ReplayRequest", "SessionStats",
           "default_session", "set_default_session", "session_scope",
           "trace_digest", "geometry_digest", "TRACE_SCHEMA",
           "resolve_cache_dir", "resolve_cache_bytes"]
