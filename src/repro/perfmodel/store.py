"""The sharded, size-bounded replay store behind :class:`ReplaySession`.

PR 5 persisted replay results as a flat directory of content-addressed
pickles (``$XDG_CACHE_HOME/repro/replays/*.pkl``).  That layout is
correct but does not serve a long-running service well: a busy cache
puts thousands of entries in one directory, and nothing ever bounds its
size.  :class:`ReplayStore` keeps the artifact-store guarantees (atomic
writes, SHA-256 sidecars, versioned envelopes, quarantine on
corruption) and adds:

* **2-hex-prefix sharding** — an entry named ``cfg-3fa2…`` lives at
  ``<root>/3f/cfg-3fa2….pkl``.  The shard is the first two characters
  of the trailing content digest in the entry name (every session key
  ends in one), so a digest in a log locates its file; names without a
  digest shard by the SHA-256 of the whole name.  A flat pre-shard
  layout is migrated transparently — entries are *moved* with
  ``os.replace``, never rewritten, so every byte (and every sidecar)
  survives bit-identically, and a reader racing the migration finds the
  entry at one path or the other, never at neither.

* **Size/LRU eviction** — an optional byte budget
  (``REPRO_REPLAY_CACHE_BYTES`` or ``ReplayStore(max_bytes=...)``).
  Recency is the file mtime, refreshed on every load hit; when a save
  pushes the store over budget the oldest entries are deleted down to
  the low-water mark.  Entries **pinned** by an in-flight computation
  (the serving layer's singleflight leaders pin their keys) are never
  evicted, and eviction is advisory by construction: the cache is
  content-addressed, so losing an entry costs a recompute, never a
  wrong answer.

* **One cache-dir resolver** — :func:`resolve_cache_dir` is the single
  reader of ``REPRO_REPLAY_CACHE`` with an explicit contract:
  ``off`` (memory-only), ``auto``/unset (the XDG default), or a
  directory path.  A value naming an existing non-directory raises
  :class:`~repro.util.errors.ConfigurationError` instead of failing
  later inside a save.
"""

from __future__ import annotations

import hashlib
import os
import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.util import artifacts
from repro.util.artifacts import ArtifactError
from repro.util.errors import ConfigurationError

#: values of ``REPRO_REPLAY_CACHE`` that disable persistence entirely
_OFF_VALUES = frozenset({"off", "0", "none", "false"})
#: values that mean "the default XDG location" (unset/empty included)
_AUTO_VALUES = frozenset({"auto", "on", "default"})

#: a trailing hex run of at least 8 characters is treated as the entry's
#: content digest (session keys end in 40-hex truncated SHA-256 digests)
_TRAILING_HEX = re.compile(r"([0-9a-f]{8,})$")

#: fraction of ``max_bytes`` eviction shrinks the store down to, so a
#: store sitting at its budget does not evict on every single save
_LOW_WATER = 0.8

_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def resolve_cache_dir(value: str | os.PathLike | None = None, *,
                      env: str = "REPRO_REPLAY_CACHE",
                      default_subdir: str = "replays") -> Path | None:
    """Resolve the replay-cache directory with the ``off|auto|<dir>`` contract.

    ``value=None`` reads *env* — ``REPRO_REPLAY_CACHE`` by default (the
    *only* place that environment variable is consulted; the trace tier
    passes ``REPRO_TRACE_CACHE``/``traces`` through the same contract).
    Returns ``None`` for ``off`` (and its synonyms
    ``0``/``none``/``false``), the XDG default
    (``$XDG_CACHE_HOME/repro/<default_subdir>``, ``~/.cache`` fallback)
    for ``auto``/empty/unset, and the named directory otherwise.  A value
    naming an existing *non-directory* raises
    :class:`ConfigurationError` — better at configuration time than as
    a mysterious ``OSError`` inside the first save.
    """
    if value is None:
        value = os.environ.get(env, "auto")
    text = os.fspath(value).strip() if not isinstance(value, str) else value.strip()
    low = text.lower()
    if low in _OFF_VALUES:
        return None
    if low in _AUTO_VALUES or text == "":
        base = Path(os.environ.get("XDG_CACHE_HOME", Path.home() / ".cache"))
        return base / "repro" / default_subdir
    path = Path(text)
    if path.exists() and not path.is_dir():
        raise ConfigurationError(
            f"{env}={text!r} names an existing non-directory; "
            f"expected 'off', 'auto', or a directory path")
    return path


def resolve_cache_bytes(value: str | int | None = None, *,
                        env: str = "REPRO_REPLAY_CACHE_BYTES") -> int | None:
    """Resolve the store's byte budget (``None`` = unbounded).

    ``value=None`` reads *env* (``REPRO_REPLAY_CACHE_BYTES`` by
    default).  Accepts a plain byte count or a ``K``/``M``/``G`` binary
    suffix (``256M``); ``0``/``off``/``none``/empty/unset mean
    unbounded.  Anything else — including a negative count — raises
    :class:`ConfigurationError`.
    """
    if value is None:
        value = os.environ.get(env, "")
    if isinstance(value, int):
        if value < 0:
            raise ConfigurationError(
                f"replay cache budget must be >= 0, got {value}")
        return value or None
    text = value.strip().lower()
    if text in ("", "off", "none", "0"):
        return None
    scale = 1
    if text[-1] in _SIZE_SUFFIXES:
        scale = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1].strip()
    try:
        n = int(text)
    except ValueError:
        raise ConfigurationError(
            f"{env}={value!r} is not a byte count "
            f"(expected an integer, optionally with a K/M/G suffix)") from None
    if n < 0:
        raise ConfigurationError(
            f"replay cache budget must be >= 0, got {value!r}")
    return n * scale or None


def shard_for(name: str) -> str:
    """The 2-hex shard directory for one entry name."""
    m = _TRAILING_HEX.search(name)
    if m is not None:
        return m.group(1)[:2]
    return hashlib.sha256(name.encode()).hexdigest()[:2]


@dataclass
class StoreStats:
    """Observability counters for one store (surfaced on ``/metrics``)."""

    #: payloads served from disk
    loads: int = 0
    #: payloads written (or rewritten) to disk
    saves: int = 0
    #: flat-layout entries moved into shards by the transparent migration
    migrated: int = 0
    #: entries deleted by LRU eviction
    evictions: int = 0
    #: bytes reclaimed by LRU eviction (payloads + sidecars)
    evicted_bytes: int = 0
    #: entries quarantined as ``*.corrupt`` on a failed load
    corrupt: int = 0
    #: evictions skipped because the entry was pinned by an in-flight
    #: computation
    pinned_skips: int = 0


@dataclass
class _Entry:
    path: Path
    mtime: float
    nbytes: int = 0
    sidecar: Path | None = None


@dataclass
class ReplayStore:
    """A sharded directory of versioned pickle artifacts with LRU bounds.

    Thread-safe: the serving layer loads, saves, pins, and evicts from
    several threads over one store.  All mutation of the pin table and
    all eviction scans hold the store lock; payload I/O itself relies on
    the artifact store's atomic-rename protocol, which already tolerates
    racing writers (last complete write wins, and every complete write
    of a content-addressed key has identical bytes).
    """

    root: Path
    max_bytes: int | None = None
    stats: StoreStats = field(default_factory=StoreStats)

    #: payload filename suffix — subclasses persisting a different
    #: artifact kind (the trace tier's raw binaries) override this so
    #: the shared sharding/LRU/pinning machinery finds their entries
    suffix = ".pkl"

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._lock = threading.RLock()
        self._pins: dict[str, int] = {}
        self._ready = False

    # --- layout -----------------------------------------------------------
    def path_for(self, name: str) -> Path:
        """The sharded payload path for *name*
        (``<root>/<xx>/<name><suffix>``)."""
        return self.root / shard_for(name) / f"{name}{self.suffix}"

    def _flat_path(self, name: str) -> Path:
        return self.root / f"{name}{self.suffix}"

    def ensure(self) -> None:
        """Create the root and migrate any flat pre-shard layout, once.

        Raises ``OSError`` when the root cannot be created — the session
        catches it and degrades to memory-only.
        """
        with self._lock:
            if self._ready:
                return
            self.root.mkdir(parents=True, exist_ok=True)
            self._migrate_flat()
            self._ready = True

    def _migrate_flat(self) -> None:
        """Move flat ``*.pkl`` entries (and sidecars) into their shards.

        ``os.replace`` moves the files without rewriting a byte, so the
        migrated entry is bit-identical and its sidecar still matches
        (the checksum line names the file, which keeps its name).  A
        racing second migrator simply finds fewer files to move.
        """
        for path in sorted(self.root.glob(f"*{self.suffix}")):
            name = path.name[:-len(self.suffix)]
            dest = self.path_for(name)
            try:
                dest.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, dest)
            except OSError:
                continue  # racing migrator got it first, or unwritable
            sidecar = artifacts.checksum_path(path)
            try:
                os.replace(sidecar, artifacts.checksum_path(dest))
            except OSError:
                sidecar.unlink(missing_ok=True)
            self.stats.migrated += 1

    # --- load/save --------------------------------------------------------
    def load(self, name: str, *, version: int | None = None) -> Any | None:
        """Fetch one payload; corruption quarantines and returns ``None``.

        A hit refreshes the entry's mtime — the recency signal LRU
        eviction orders by.  The flat (pre-shard) path is checked as a
        fallback so a writer running older code cannot hide entries from
        this one; a flat hit is migrated into its shard on the way out.
        """
        self.ensure()
        path = self.path_for(name)
        if not path.exists():
            flat = self._flat_path(name)
            if not flat.exists():
                return None
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                os.replace(flat, path)
                os.replace(artifacts.checksum_path(flat),
                           artifacts.checksum_path(path))
            except OSError:
                path = flat if flat.exists() else path
                if not path.exists():
                    return None
            else:
                self.stats.migrated += 1
        try:
            payload = artifacts.load_pickle(path, version=version)
        except ArtifactError:
            artifacts.quarantine(path)
            self.stats.corrupt += 1
            return None
        except OSError:
            return None
        self.stats.loads += 1
        try:
            os.utime(path)
        except OSError:
            pass
        return payload

    def save(self, name: str, payload: Any, *,
             version: int | None = None) -> None:
        """Atomically persist one payload, then enforce the byte budget.

        Propagates ``OSError``/``ArtifactError`` (e.g. a read-only
        store) — the session turns that into quiet memory-only
        degradation, exactly as before.
        """
        self.ensure()
        artifacts.save_pickle(self.path_for(name), payload, version=version)
        self.stats.saves += 1
        if self.max_bytes is not None:
            self.enforce_budget()

    # --- pinning ----------------------------------------------------------
    def pin(self, name: str) -> None:
        """Protect *name* from eviction until :meth:`unpin` (refcounted)."""
        with self._lock:
            self._pins[name] = self._pins.get(name, 0) + 1

    def unpin(self, name: str) -> None:
        with self._lock:
            n = self._pins.get(name, 0) - 1
            if n <= 0:
                self._pins.pop(name, None)
            else:
                self._pins[name] = n

    @contextmanager
    def pinned(self, *names: str) -> Iterator[None]:
        """Pin *names* for the duration of a with-block (singleflight
        leaders wrap their whole computation in this)."""
        for name in names:
            self.pin(name)
        try:
            yield
        finally:
            for name in names:
                self.unpin(name)

    def is_pinned(self, name: str) -> bool:
        with self._lock:
            return name in self._pins

    # --- size & eviction --------------------------------------------------
    def _entries(self) -> list[_Entry]:
        """Every payload in the store (shards and any flat stragglers),
        oldest first, with sidecar sizes folded in."""
        entries: list[_Entry] = []
        if not self.root.is_dir():
            return entries
        for path in self.root.glob(f"**/*{self.suffix}"):
            try:
                st = path.stat()
            except OSError:
                continue
            entry = _Entry(path=path, mtime=st.st_mtime, nbytes=st.st_size)
            sidecar = artifacts.checksum_path(path)
            try:
                entry.nbytes += sidecar.stat().st_size
                entry.sidecar = sidecar
            except OSError:
                pass
            entries.append(entry)
        entries.sort(key=lambda e: (e.mtime, e.path.name))
        return entries

    def size_bytes(self) -> int:
        """Total payload + sidecar bytes currently on disk."""
        return sum(e.nbytes for e in self._entries())

    def enforce_budget(self) -> int:
        """Evict oldest-first down to the low-water mark; returns bytes
        freed.  No-op without a budget or while under it."""
        if self.max_bytes is None:
            return 0
        return self.evict(target_bytes=int(self.max_bytes * _LOW_WATER),
                          over_bytes=self.max_bytes)

    def evict(self, *, target_bytes: int,
              over_bytes: int | None = None) -> int:
        """Delete least-recently-used entries until the store holds at
        most *target_bytes* (checked against *over_bytes* first, when
        given — the high-water trigger).

        Pinned entries are never deleted: an in-flight singleflight
        computation's keys survive any concurrent eviction pass, so a
        leader can always read back what it just wrote.  Quarantined
        ``*.corrupt`` corpses are not entries and are left alone.
        """
        with self._lock:
            entries = self._entries()
            total = sum(e.nbytes for e in entries)
            if over_bytes is not None and total <= over_bytes:
                return 0
            freed = 0
            for entry in entries:
                if total - freed <= target_bytes:
                    break
                name = entry.path.name[:-len(self.suffix)]
                if name in self._pins:
                    self.stats.pinned_skips += 1
                    continue
                try:
                    entry.path.unlink()
                except OSError:
                    continue
                if entry.sidecar is not None:
                    entry.sidecar.unlink(missing_ok=True)
                freed += entry.nbytes
                self.stats.evictions += 1
                self.stats.evicted_bytes += entry.nbytes
            return freed

    # --- observability ----------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """A JSON-ready snapshot (``SERVICE_REPORT.json`` / ``/v1/stats``)."""
        entries = self._entries()
        return {
            "root": str(self.root),
            "max_bytes": self.max_bytes,
            "entries": len(entries),
            "size_bytes": sum(e.nbytes for e in entries),
            "shards": len({e.path.parent.name for e in entries
                           if e.path.parent != self.root}),
            "loads": self.stats.loads,
            "saves": self.stats.saves,
            "migrated": self.stats.migrated,
            "evictions": self.stats.evictions,
            "evicted_bytes": self.stats.evicted_bytes,
            "corrupt": self.stats.corrupt,
            "pinned_skips": self.stats.pinned_skips,
        }


__all__ = ["ReplayStore", "StoreStats", "shard_for",
           "resolve_cache_dir", "resolve_cache_bytes"]
