"""Recording what the application did, step by step.

A :class:`WorkLog` attaches to a :class:`~repro.driver.simulation.Simulation`
and snapshots, per step, the unit invocations with everything the
performance replay needs: zone counts, the leaf blocks' slots in Morton
order (the iteration order of every unit — and hence the panel order of
the memory traces), and the EOS Newton iteration totals (the
data-dependent part of the EOS cost).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.core import RecordContext
from repro.driver.simulation import Simulation, StepInfo
from repro.mesh.grid import MeshSpec


@dataclass(frozen=True)
class UnitInvocation:
    """One unit doing one pass over the mesh."""

    unit: str  # hydro_sweep | eos | eos_gamma | guardcell | flame | gravity
    zones: int
    #: total Newton iterations across zones (eos only)
    newton_iterations: int = 0
    axis: int | None = None


@dataclass
class StepRecord:
    """Everything the replay needs about one step."""

    n: int
    dt: float
    #: leaf slots in Morton order at the time of the step
    slots: tuple[int, ...]
    #: refinement level per leaf (same order)
    levels: tuple[int, ...]
    invocations: tuple[UnitInvocation, ...]

    @property
    def zones_total(self) -> int:
        return sum(inv.zones for inv in self.invocations)


@dataclass
class WorkLog:
    """Per-step work records plus the mesh geometry they refer to."""

    spec: MeshSpec
    nvar: int
    steps: list[StepRecord] = field(default_factory=list)
    #: the attach hook's delta baselines (cumulative unit counters at the
    #: last recorded step) — exposed so a rollback that truncates
    #: ``steps`` can rewind them too, and a rebind can rebase them
    _delta_state: dict = field(default_factory=dict, repr=False,
                               compare=False)
    _helmholtz: bool = field(default=True, repr=False, compare=False)

    @property
    def ndim(self) -> int:
        return self.spec.ndim

    @property
    def zones_per_block(self) -> int:
        return self.spec.zones_per_block()

    @property
    def maxblocks(self) -> int:
        return self.spec.maxblocks

    @classmethod
    def attach(cls, sim: Simulation, *, helmholtz_eos: bool = True) -> "WorkLog":
        """Create a log and hook it onto the simulation's step events."""
        log = cls(spec=sim.grid.spec, nvar=len(sim.grid.variables))
        log.rebind(sim, helmholtz_eos=helmholtz_eos)
        return log

    def rebind(self, sim: Simulation, *,
               helmholtz_eos: bool | None = None) -> None:
        """(Re-)hook this log onto a simulation's step events.

        Used by :meth:`attach` for the first binding and by the fabric
        when a failed rank is respawned from a checkpoint: the fresh
        simulation gets the *same* log, with the delta baselines rebased
        at its restored cumulative counters — attaching to a restarted
        simulation (whose restored work counters are non-zero) must not
        fold the pre-restart work into the first recorded step.
        """
        if helmholtz_eos is not None:
            self._helmholtz = bool(helmholtz_eos)
        eos_work = sim.unit("hydro").work.eos
        self._delta_state.clear()
        self._delta_state.update(eos_iters=eos_work.newton_iterations,
                                 eos_calls=eos_work.calls)
        state = self._delta_state
        log = self

        def hook(sim: Simulation, info: StepInfo) -> None:
            eos_work = sim.unit("hydro").work.eos
            d_iters = eos_work.newton_iterations - state["eos_iters"]
            d_calls = eos_work.calls - state["eos_calls"]
            state["eos_iters"] = eos_work.newton_iterations
            state["eos_calls"] = eos_work.calls
            log.record_step(sim, info, d_calls, d_iters,
                            helmholtz_eos=log._helmholtz)

        sim.step_hooks.append(hook)

    def record_step(self, sim: Simulation, info: StepInfo, eos_calls: int,
                    eos_iters: int, *, helmholtz_eos: bool) -> None:
        """Snapshot one step by asking every composed unit's registered
        recorder, in scheduler (phase) order — the iteration order of the
        replayed memory traces therefore follows the unit declarations."""
        grid = sim.grid
        blocks = grid.leaf_blocks()
        slots = tuple(b.slot for b in blocks)
        levels = tuple(b.level for b in blocks)
        ctx = RecordContext(
            zones=len(blocks) * self.zones_per_block,
            ndim=grid.spec.ndim,
            eos_calls=eos_calls,
            eos_iters=eos_iters,
            helmholtz_eos=helmholtz_eos,
        )
        inv: list[UnitInvocation] = []
        for spec, unit in sim.scheduled_units():
            if spec.record is not None:
                inv.extend(spec.record(sim, unit, ctx))

        self.steps.append(StepRecord(
            n=info.n, dt=info.dt, slots=slots, levels=levels,
            invocations=tuple(inv),
        ))

    # --- identity ------------------------------------------------------------
    def digest(self) -> str:
        """A stable content hash over everything the replay consumes.

        Two logs with the same mesh spec, variable count, and step records
        (slots, levels, invocations, dt) digest identically regardless of
        how or when they were built — so caches keyed on the digest survive
        process restarts and self-invalidate when the recording changes,
        without manual version bumps.  ``dt`` is hashed at full bit
        precision (it seeds no trace today, but a record is its content).
        """
        h = hashlib.sha256()
        spec = self.spec
        h.update(struct.pack("<7q", spec.ndim, spec.nxb, spec.nyb, spec.nzb,
                             spec.nguard, spec.maxblocks, self.nvar))
        h.update(struct.pack("<q", len(self.steps)))
        for rec in self.steps:
            h.update(struct.pack("<qdqq", rec.n, rec.dt,
                                 len(rec.slots), len(rec.invocations)))
            h.update(np.asarray(rec.slots, dtype=np.int64).tobytes())
            h.update(np.asarray(rec.levels, dtype=np.int64).tobytes())
            for inv in rec.invocations:
                name = inv.unit.encode()
                h.update(struct.pack("<q", len(name)))
                h.update(name)
                axis = -1 if inv.axis is None else inv.axis
                h.update(struct.pack("<3q", inv.zones,
                                     inv.newton_iterations, axis))
        return h.hexdigest()

    # --- summaries -----------------------------------------------------------
    @property
    def n_steps(self) -> int:
        return len(self.steps)

    def total_zone_updates(self, unit: str) -> int:
        return sum(inv.zones for rec in self.steps
                   for inv in rec.invocations if inv.unit == unit)

    def representative_step(self) -> StepRecord:
        """A steady-state step for trace sampling (the median-work step)."""
        if not self.steps:
            raise ValueError("empty work log")
        ordered = sorted(self.steps, key=lambda r: r.zones_total)
        return ordered[len(ordered) // 2]


__all__ = ["WorkLog", "StepRecord", "UnitInvocation"]
