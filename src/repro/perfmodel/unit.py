"""The performance-replay unit's declarations.

The replay owns the ``perf_engine`` runtime parameter; the selection
precedence (explicit ``PerformancePipeline(engine=...)`` argument, then
the ``REPRO_PERF_ENGINE`` environment variable, then the par-file /
registry default) is implemented by
:func:`repro.perfmodel.pipeline.resolve_engine`.
"""

from __future__ import annotations

from repro.core import ParameterSpec, UnitSpec, unit_registry

#: the valid replay engines (also the ``perf_engine`` choices)
ENGINES = ("fast", "scalar")

PERFMODEL_UNIT = unit_registry.register(UnitSpec(
    name="perfmodel",
    description="TLB/cycle replay of recorded work on the simulated node",
    phase=95,
    parameters=(
        ParameterSpec("perf_engine", "fast",
                      doc="replay engine: vectorized batch kernels or the "
                          "scalar reference oracle (identical counters)",
                      choices=ENGINES),
        ParameterSpec("replay_jobs", 1,
                      doc="worker processes for batched replays: 1 = "
                          "serial (the bit-identity reference), 0 = one "
                          "per core; REPRO_REPLAY_JOBS overrides",
                      validator=lambda v: v >= 0),
    ),
))

__all__ = ["ENGINES", "PERFMODEL_UNIT"]
