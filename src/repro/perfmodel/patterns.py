"""Synthesising page traces from the recorded access structure.

Two complementary traces model what the paper's counters saw:

* the **stream trace** covers the whole mesh at panel granularity: every
  unit walks the leaf blocks in Morton order, touching each block's unk
  panel (whose pages are contiguous — a consequence of the
  variable-innermost Fortran layout the paper describes), the per-sweep
  scratch arrays, guard-cell traffic into neighbouring panels, and a few
  table pages per block.  It captures L2-TLB *capacity* behaviour: at
  FLASH scale the panels alone outnumber the 1024 L2 entries.

* the **fine trace** resolves the per-zone page-switching inside sampled
  blocks — the inner-loop rotation between the unk zone, scratch, and the
  data-dependent Helmholtz-table gathers.  With 64 KiB pages that rotation
  cycles far more than the 16 L1-DTLB entries, which is the paper's huge
  miss rate; with 2 MiB pages the whole rotation fits.  Fine-trace miss
  counts are scaled from the sampled zones to the full mesh.

Gather targets are drawn from a deterministic RNG, clustered per block
(thermodynamic states within a block are correlated) around block-specific
table locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw import calibration as cal
from repro.hw.trace import PageTrace
from repro.kernel.vmm import AddressSpace
from repro.mesh.layout import UnkLayout
from repro.perfmodel.workrecord import StepRecord, UnitInvocation, WorkLog
from repro.toolchain.allocator import Allocation

#: probe spacing: half the smallest page size guarantees no page is skipped
PROBE_STEP = 32 * 1024


@dataclass
class TraceBuilder:
    """Builds page traces for one process's allocations."""

    space: AddressSpace
    layout: UnkLayout
    unk: Allocation
    scratch: list[Allocation]
    eos_table: Allocation
    flame_table: Allocation
    log: WorkLog
    #: PARAMESH keeps block-sized flux arrays alongside unk; hydro sweeps
    #: stream through them in step with the solution panel
    flux_scratch: Allocation | None = None
    replication: int = 1
    fine_sample_blocks: int = 4
    seed: int = 1234
    #: a hydro pencil loop rotates through small per-pencil work buffers;
    #: they switch every few zones and live on base pages even under the
    #: Fujitsu runtime (too small for the large-page arena) — the main
    #: *residual* L1-DTLB pressure of the with-huge-pages hydro run
    aux_switch_zones: int = 4

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    # --- building blocks -----------------------------------------------------------
    def _virtual_slot(self, slot: int, copy: int) -> int:
        return slot + copy * self.log.maxblocks

    def _panel_offsets(self, slot: int) -> np.ndarray:
        start, stop = self.layout.block_panel_range(slot)
        return np.arange(start, stop, PROBE_STEP, dtype=np.int64)

    def _translate(self, alloc: Allocation, offsets: np.ndarray):
        return alloc.translate(self.space, offsets)

    #: the Helmholtz table is really ~21 separate coefficient arrays
    #: (9 free-energy + 3x4 derivative tables) laid out back to back, of
    #: which ~a dozen are hot in the dens_ei path; each stencil read hits
    #: a different one.  This count sets the with-huge-pages residual miss
    #: rate (the hot arrays' huge pages nearly fill the 16-entry L1 DTLB)
    #: and was pinned against Table I's with-HP column.
    N_TABLE_SUBARRAYS = 12

    def _gather_offsets(self, alloc: Allocation, n: int, center: float,
                        spread: float = 0.08,
                        sub_array: int | None = None) -> np.ndarray:
        """Clustered data-dependent gather targets inside a table.

        ``center`` is the thermodynamic locus of the block (0..1 within
        each coefficient array); ``sub_array`` selects which of the
        table's constituent arrays this gather column reads.
        """
        raw = self._rng.normal(center, spread, size=n)
        raw = np.abs(raw) % 1.0
        if sub_array is None:
            return (raw * (alloc.nbytes - 8)).astype(np.int64)
        width = alloc.nbytes // self.N_TABLE_SUBARRAYS
        base = (sub_array % self.N_TABLE_SUBARRAYS) * width
        return base + (raw * (width - 8)).astype(np.int64)

    # --- stream trace ----------------------------------------------------------------
    def invocation_stream_trace(self, rec: StepRecord,
                                inv: UnitInvocation) -> PageTrace:
        """Panel-granularity trace of one invocation over the whole
        (replicated) mesh."""
        pages: list[np.ndarray] = []
        sizes: list[np.ndarray] = []

        def emit(alloc: Allocation, offsets: np.ndarray) -> None:
            p, s = self._translate(alloc, offsets)
            pages.append(p)
            sizes.append(s)

        n_scratch = len(self.scratch)
        per_block_tables = 0
        table = None
        if inv.unit == "eos":
            per_block_tables, table = 8, self.eos_table
        elif inv.unit == "flame":
            per_block_tables, table = 4, self.flame_table
        for copy in range(self.replication):
            for i, slot in enumerate(rec.slots):
                vslot = self._virtual_slot(slot, copy)
                emit(self.unk, self._panel_offsets(vslot))
                if inv.unit == "guardcell":
                    # neighbour panels: Morton neighbours approximate
                    # the face neighbours' panels
                    for j in (i - 1, i + 1):
                        if 0 <= j < len(rec.slots):
                            nslot = self._virtual_slot(rec.slots[j], copy)
                            emit(self.unk, self._panel_offsets(nslot)[:2])
                if inv.unit in ("hydro_sweep", "eos", "eos_gamma"):
                    for k in range(n_scratch):
                        s = self.scratch[k]
                        emit(s, np.arange(0, s.nbytes, PROBE_STEP,
                                          dtype=np.int64)[:2])
                if table is not None:
                    center = self._rng.random()
                    emit(table, self._gather_offsets(
                        table, per_block_tables, center))
        if not pages:
            return PageTrace.empty()
        return PageTrace.from_accesses(np.concatenate(pages),
                                       np.concatenate(sizes))

    def stream_step_trace(self, rec: StepRecord) -> PageTrace:
        """Whole-step stream trace (all invocations back to back)."""
        traces = [self.invocation_stream_trace(rec, inv)
                  for inv in rec.invocations]
        out = PageTrace.empty()
        return out.concat(*traces) if traces else out

    # --- fine trace -------------------------------------------------------------------
    def _zone_walk_offsets(self, slot: int, axis: int | None) -> np.ndarray:
        """Per-zone unk byte offsets in the order the unit visits zones.

        EOS (axis None) visits zones in natural Fortran order (variables
        innermost — consecutive zones are ``nvar`` doubles apart).  A hydro
        sweep works pencil-by-pencil with the *sweep axis* innermost: for a
        z-sweep consecutive zones are a whole xy-plane apart in memory
        (the "stride in memory for addressing variables in different
        zones" of the paper's section I-C), which is what drives the 3-d
        hydro DTLB rate.
        """
        spec = self.log.spec
        g = spec.nguard
        start, _ = self.layout.block_panel_range(slot)
        nx, ny, nz = spec.interior_zones
        sv, si, sj, sk, _ = self.layout.strides
        if axis is not None:
            # a sweep's pencils run through the guard zones of the sweep
            # axis (the stencil needs them)
            ext = [nx, ny, nz]
            ext[axis] = ext[axis] + 2 * g if ext[axis] > 1 else ext[axis]
            nx, ny, nz = ext
            base = [g, g if spec.ndim > 1 else 0, g if spec.ndim > 2 else 0]
            base[axis] = 0 if ext[axis] > 1 else base[axis]
        else:
            base = [g, g if spec.ndim > 1 else 0, g if spec.ndim > 2 else 0]
        ii = base[0] + np.arange(nx, dtype=np.int64)
        jj = base[1] + np.arange(ny, dtype=np.int64)
        kk = base[2] + np.arange(nz, dtype=np.int64)
        off = (start + si * ii[:, None, None] + sj * jj[None, :, None]
               + sk * kk[None, None, :])
        if axis is None or axis == 0:
            order = (2, 1, 0)  # x innermost
        elif axis == 1:
            order = (2, 0, 1)  # y innermost
        else:
            order = (1, 0, 2)  # z innermost
        return off.transpose(order).ravel()

    def fine_unit_trace(self, rec: StepRecord, inv: UnitInvocation) -> tuple[PageTrace, float]:
        """Zone-resolution trace for sampled blocks of one invocation.

        Returns ``(trace, scale)`` where ``scale`` maps sampled-zone miss
        counts to the full (replicated) invocation.
        """
        slots = rec.slots[: self.fine_sample_blocks]
        zones = self.log.zones_per_block
        iters = inv.newton_iterations / max(inv.zones, 1)

        if inv.unit == "eos":
            gathers = int(round(cal.EOS_CALL.gathers_per_zone
                                + cal.EOS_GATHERS_PER_ITERATION * iters))
            table = self.eos_table
        elif inv.unit == "flame":
            gathers = int(round(cal.FLAME_STEP.gathers_per_zone))
            table = self.flame_table
        else:
            gathers = 0
            table = None

        cols_pages = []
        cols_sizes = []
        hydro_like = inv.unit == "hydro_sweep"
        for slot in slots:
            zone_off = self._zone_walk_offsets(slot, inv.axis)
            n = zone_off.size  # sweeps visit guard zones too
            cols = [self._translate(self.unk, zone_off)]
            if hydro_like and self.flux_scratch is not None:
                # the flux panel walks in step with the solution panel
                start, _ = self.layout.block_panel_range(slot)
                flux_off = (zone_off - start) % (self.flux_scratch.nbytes - 8)
                cols.append(self._translate(self.flux_scratch, flux_off))
                # rotating per-pencil work buffers (base pages always)
                n_aux = len(self.scratch)
                aux_idx = (np.arange(n) // self.aux_switch_zones) % n_aux
                aux_pages = np.empty(n, dtype=np.int64)
                aux_sizes = np.empty(n, dtype=np.int64)
                for a in range(n_aux):
                    m = aux_idx == a
                    if m.any():
                        p, s = self._translate(self.scratch[a],
                                               np.zeros(int(m.sum()), np.int64))
                        aux_pages[m], aux_sizes[m] = p, s
                cols.append((aux_pages, aux_sizes))
            else:
                # one scratch access per zone, sequential within the array
                scr = self.scratch[slot % len(self.scratch)]
                scr_off = (np.arange(n, dtype=np.int64) * 64) % (scr.nbytes - 8)
                cols.append(self._translate(scr, scr_off))
            if table is not None:
                center = self._rng.random()
                for g in range(max(gathers, 0)):
                    g_off = self._gather_offsets(table, n, center,
                                                 sub_array=g)
                    cols.append(self._translate(table, g_off))
            pages = np.stack([c[0] for c in cols], axis=1).ravel()
            sizes = np.stack([c[1] for c in cols], axis=1).ravel()
            cols_pages.append(pages)
            cols_sizes.append(sizes)

        trace = PageTrace.from_accesses(np.concatenate(cols_pages),
                                        np.concatenate(cols_sizes))
        sampled = len(slots) * zones
        scale = inv.zones * self.replication / max(sampled, 1)
        return trace, scale


__all__ = ["TraceBuilder", "PROBE_STEP"]
