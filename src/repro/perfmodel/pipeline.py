"""The performance pipeline: replay a WorkLog on a simulated Ookami node.

``PerformancePipeline.run()`` performs the full measurement the paper
describes: launch the (compiled) executable on the simulated kernel,
allocate FLASH's data structures through the toolchain's allocator (this
is where huge pages do or do not happen), first-touch them the way the
code does, synthesise the memory traces of a steady-state step, replay
them through the A64FX TLB model, price all recorded work with the cycle
model, and report the paper's measures per instrumented region plus the
whole-run FLASH timer.
"""

from __future__ import annotations

import hashlib
import os
import struct
from dataclasses import dataclass, field, replace
from functools import cached_property

import numpy as np

from repro.core import load_all, parameter_registry, unit_registry
from repro.hw import calibration as cal
from repro.hw.a64fx import A64FX, MachineSpec
from repro.hw.cache import CacheModel
from repro.hw.cpu import CycleModel, WorkCounts
from repro.hw.tlb import TLBStats
from repro.kernel.meminfo import hugepages_in_use, meminfo
from repro.kernel.params import ookami_config
from repro.kernel.vmm import Kernel
from repro.mesh.layout import UnkLayout
from repro.papi.counters import CounterBank
from repro.papi.events import Event, derive_measures
from repro.perfmodel.fastpath import FastTraceBuilder
from repro.perfmodel.patterns import TraceBuilder
from repro.perfmodel.session import (
    TRACE_SCHEMA,
    ReplaySession,
    default_session,
    geometry_digest,
)
from repro.perfmodel.workrecord import UnitInvocation, WorkLog
from repro.toolchain.compiler import Compiler
from repro.util.errors import ConfigurationError


def _layout_signature(space, allocations) -> str:
    """Digest of everything ``translate`` can see for these allocations.

    Two processes whose allocations land at the same virtual addresses
    with the same backing (base pages, hugetlbfs size, THP extents)
    translate identically — so configurations sharing a signature share
    page traces.  All base-page toolchains (GNU, Cray, Arm, Fujitsu
    ``-Knolargepage``) produce one signature per (workload, replication).
    """
    geo = space.kernel.config.geometry
    h = hashlib.sha256()
    h.update(struct.pack("<2q", geo.base_page, geo.thp_page))
    for alloc in allocations:
        vma = alloc.vma
        h.update(struct.pack("<4q", vma.start, alloc.offset, alloc.nbytes,
                             vma.hugetlb_size or 0))
        if vma.hugetlb_size is None:
            # THP extents change page sizes mid-VMA; the bitmap is tiny
            # (one flag per 512 MiB extent) and captures it exactly
            h.update(vma._ext_thp.tobytes())
    return h.hexdigest()[:40]


@dataclass
class SynthesisTask:
    """Picklable trace synthesis for one launched configuration.

    Replaces the old nested closure so synthesis itself can travel to a
    pool worker as a ``"synth"`` work unit: every field is a plain
    simulated-process object (address space, allocations, workload log —
    no live handles).  Calling the task is deterministic — the builder
    seeds its RNG from ``seed`` — and geometry-independent: traces
    depend on the address-space layout and the sampling parameters,
    never on the TLB, which is what lets a geometry sweep (and the
    trace store) share one synthesis.
    """

    engine: str
    space: object
    layout: object
    unk: object
    scratch: list
    eos_table: object
    flame_table: object
    flux_scratch: object
    log: object
    replication: int
    fine_sample_blocks: int
    seed: int
    fine_kinds: tuple

    #: marks the task safe to ship to a pool worker (the session checks
    #: this duck-typed flag before scheduling synthesis work units)
    picklable = True

    def __call__(self):
        rep = self.log.representative_step()
        builder_cls = (FastTraceBuilder if self.engine == "fast"
                       else TraceBuilder)
        builder = builder_cls(
            space=self.space, layout=self.layout, unk=self.unk,
            scratch=self.scratch, eos_table=self.eos_table,
            flame_table=self.flame_table, log=self.log,
            flux_scratch=self.flux_scratch,
            replication=self.replication,
            fine_sample_blocks=self.fine_sample_blocks, seed=self.seed,
        )
        stream_traces = [builder.invocation_stream_trace(rep, inv)
                         for inv in rep.invocations]
        fine_traces = []
        for i, inv in enumerate(rep.invocations):
            if inv.unit in self.fine_kinds:
                trace, scale = builder.fine_unit_trace(rep, inv)
                fine_traces.append((i, trace, scale))
        return stream_traces, fine_traces


def resolve_engine(engine: str | None = None, params=None) -> str:
    """Pick the replay engine.  Precedence, highest first:

    1. an explicit ``PerformancePipeline(engine=...)`` argument,
    2. the ``REPRO_PERF_ENGINE`` environment variable,
    3. the ``perf_engine`` runtime parameter (a par file via ``params``,
       else the perfmodel unit's registered default).

    Both engines produce bit-identical counter totals (the fast engine is
    property-tested against the scalar oracle); ``scalar`` exists as the
    auditable reference.  An invalid name at any level raises
    :class:`~repro.util.errors.ConfigurationError`."""
    load_all()
    spec = parameter_registry.spec("perf_engine")
    value = (engine
             or os.environ.get("REPRO_PERF_ENGINE")
             or (params.get("perf_engine") if params is not None else None)
             or str(spec.default))
    if value not in spec.choices:
        expected = " or ".join(repr(c) for c in spec.choices)
        raise ConfigurationError(
            f"unknown perf engine {value!r} (expected {expected})")
    return value


@dataclass
class UnitTotals:
    """Accumulated work + misses for one unit across the whole run."""

    work: WorkCounts = field(default_factory=WorkCounts)
    tlb: TLBStats = field(default_factory=TLBStats)


@dataclass
class PerfReport:
    """Everything the experiment harness needs to print a paper table."""

    units: dict[str, UnitTotals]
    seconds: dict[str, float]
    flash_timer_s: float
    uses_huge_pages: bool
    meminfo: dict[str, int]
    machine: MachineSpec
    compiler: str
    n_steps: int
    #: replay engine that actually produced the totals ("" for reports
    #: built by legacy callers) — differs from the requested engine when
    #: the pipeline degraded to the scalar oracle
    engine: str = ""
    #: kernel degradation counts at report time (hugetlb base-page
    #: fallbacks, perf-engine fallbacks, ...), kind -> count
    degradations: dict[str, int] = field(default_factory=dict)

    @cached_property
    def cycle_model(self) -> CycleModel:
        """The machine's cycle model, built once per report — ``region``
        and ``as_counterbank`` run once per table cell per measure."""
        return CycleModel(self.machine)

    def region(self, unit_names: tuple[str, ...] | str) -> dict[str, float]:
        """The paper's five measures for an instrumented region."""
        if isinstance(unit_names, str):
            unit_names = (unit_names,)
        work = WorkCounts()
        tlb = TLBStats()
        for name in unit_names:
            if name in self.units:
                work = work + self.units[name].work
                tlb = tlb + self.units[name].tlb
        return self.cycle_model.measures(work, tlb)

    def as_counterbank(self) -> CounterBank:
        """Mirror the totals into a PAPI counter bank (for EventSet use)."""
        bank = CounterBank()
        model = self.cycle_model
        for name, tot in self.units.items():
            breakdown = model.cycles(tot.work, tot.tlb)
            bank.advance(self.seconds[name], {
                Event.TOT_CYC: breakdown.total,
                Event.TLB_DM: tot.tlb.l1_misses,
                Event.SVE_INST: tot.work.simd_ops,
                Event.MEM_BYTES: tot.work.dram_bytes,
                Event.FP_OPS: tot.work.scalar_ops,
            })
        return bank


class PerformancePipeline:
    """Replay a WorkLog under one (compiler, kernel, machine) combination."""

    def __init__(
        self,
        log: WorkLog,
        compiler: Compiler,
        *,
        flags: tuple[str, ...] = (),
        env: dict[str, str] | None = None,
        kernel: Kernel | None = None,
        machine: MachineSpec = A64FX,
        replication: int = 1,
        fine_sample_blocks: int = 4,
        seed: int = 1234,
        engine: str | None = None,
        params=None,
        fault_injector=None,
        session: ReplaySession | None = None,
        rank_signature: str = "",
    ) -> None:
        load_all()
        #: invocation kind -> (work model, vectorisation key) and the set
        #: of kinds that get a fine (zone-resolution) TLB pass — both
        #: derived from the unit declarations, not hard-coded here
        self._models = unit_registry.work_models()
        self._fine_kinds = unit_registry.fine_work_kinds()
        self.log = log
        self.compiler = compiler
        self.flags = flags
        self.env = env
        self.kernel = kernel or Kernel(ookami_config())
        self.machine = machine
        self.replication = replication
        self.fine_sample_blocks = fine_sample_blocks
        self.seed = seed
        self.engine = resolve_engine(engine, params=params)
        #: test/chaos seam: ``fault_injector(engine_name)`` is called once
        #: per engine attempt; raising from it aborts that attempt exactly
        #: like an internal replay failure would
        self.fault_injector = fault_injector
        #: replay sharing/caching layer; every unparameterised pipeline
        #: joins the process-wide default session
        self.session = session if session is not None else default_session()
        #: rank-decomposition tag (e.g. ``"rank2/4@rpn2"``): per-rank
        #: WorkLogs usually differ (and so do their digests), but a
        #: decomposed run must never be served a cached replay from a
        #: different rank layout even when shard contents coincide — the
        #: tag is folded into the replay config key when set
        self.rank_signature = rank_signature

    # --- setup: the allocation story -------------------------------------------------
    def _launch_and_allocate(self):
        exe = self.compiler.compile("flash4", flags=self.flags)
        proc = exe.launch(self.kernel, env=self.env)
        spec_virtual = replace(self.log.spec,
                               maxblocks=self.log.maxblocks * self.replication)
        layout = UnkLayout(nvar=self.log.nvar, spec=spec_virtual)

        unk = proc.allocate(layout.nbytes, "unk")
        scratch = [proc.allocate(cal.SCRATCH_ARRAY_BYTES, f"scratch{i:02d}")
                   for i in range(cal.N_SCRATCH_ARRAYS)]
        eos_table = proc.allocate(cal.FLASH_HELM_TABLE_BYTES, "helm_table")
        flame_table = proc.allocate(cal.FLASH_FLAME_TABLE_BYTES, "flame_table")
        # PARAMESH's block-sized flux arrays (~half of unk's variables)
        flux_scratch = proc.allocate(max(layout.block_bytes // 2, 1 << 16),
                                     "flux_scratch")

        # first touch the way the code does: PARAMESH initialises unk
        # variable by variable (strided); tables are read in sequentially
        proc.first_touch("unk", order="strided", stride=2 << 20)
        for i in range(cal.N_SCRATCH_ARRAYS):
            proc.first_touch(f"scratch{i:02d}")
        proc.first_touch("helm_table")
        proc.first_touch("flame_table")
        proc.first_touch("flux_scratch")
        return proc, layout, unk, scratch, eos_table, flame_table, flux_scratch

    # --- work pricing ------------------------------------------------------------------
    def _invocation_work(self, inv: UnitInvocation) -> WorkCounts:
        model, vf_key = self._models[inv.unit]
        zones = inv.zones * self.replication
        flops = model.flops_per_zone * zones
        if inv.unit == "eos":
            iters_per_zone = inv.newton_iterations / max(inv.zones, 1)
            flops += cal.EOS_FLOPS_PER_ITERATION * iters_per_zone * zones
        vf = self.compiler.perf.unit_vector_fraction(vf_key)
        scalar = flops * (1.0 - vf) * self.compiler.perf.scalar_multiplier
        simd = flops * vf / self.compiler.perf.sve_lane_efficiency

        cache = CacheModel(cache_bytes=self.machine.l2_bytes)
        dram = model.unk_bytes_per_zone * zones
        if inv.unit == "eos":
            iters = inv.newton_iterations / max(inv.zones, 1)
            dram += cal.EOS_BYTES_PER_ITERATION * iters * zones
            n_gathers = zones * (model.gathers_per_zone
                                 + cal.EOS_GATHERS_PER_ITERATION * iters)
            hot = int(cal.TABLE_HOT_FRACTION * cal.FLASH_HELM_TABLE_BYTES)
            dram += cache.gather_traffic(int(n_gathers), 8, hot)
        elif inv.unit == "flame":
            dram += cache.gather_traffic(int(zones * model.gathers_per_zone),
                                         8, cal.FLASH_FLAME_TABLE_BYTES)
        return WorkCounts(scalar_ops=scalar, simd_ops=simd, dram_bytes=dram)

    # --- the run ---------------------------------------------------------------------------
    def run(self) -> PerfReport:
        """Replay with the resolved engine, degrading gracefully.

        A failure inside the fast replay engine (an internal consistency
        check, a kernel divergence, an injected fault) does not kill the
        measurement: the first attempt's process is torn down, the
        degradation is counted on the kernel, and the run repeats with
        the scalar oracle — the auditable reference the fast engine is
        property-tested against.  A scalar failure propagates.
        """
        try:
            return self._run_with_engine(self.engine)
        except ConfigurationError:
            raise
        except Exception as exc:  # noqa: BLE001 — any replay failure degrades
            if self.engine == "scalar":
                raise
            self.kernel.degradations.record(
                "perf_engine_scalar_fallback",
                f"{self.engine!r} engine failed: {type(exc).__name__}: {exc}")
            return self._run_with_engine("scalar")

    def _run_with_engine(self, engine: str) -> PerfReport:
        proc, layout, unk, scratch, eos_table, flame_table, flux_scratch = \
            self._launch_and_allocate()
        try:
            return self._replay(engine, proc, layout, unk, scratch,
                                eos_table, flame_table, flux_scratch)
        finally:
            # release the process either way: a failed fast attempt must
            # not leave its allocations (or hugetlb reservations) charged
            # against the scalar re-run
            proc.exit()

    def _synthesize_closure(self, engine, proc, layout, unk, scratch,
                            eos_table, flame_table, flux_scratch):
        """The trace-synthesis task one replay request carries.

        A picklable :class:`SynthesisTask` (stream pass per invocation,
        fine passes for the fine-granularity units), so the session may
        run it on a pool worker and persist the bundle in the trace
        store instead of synthesizing serially in the requester."""
        return SynthesisTask(
            engine=engine, space=proc.space, layout=layout, unk=unk,
            scratch=scratch, eos_table=eos_table, flame_table=flame_table,
            flux_scratch=flux_scratch, log=self.log,
            replication=self.replication,
            fine_sample_blocks=self.fine_sample_blocks, seed=self.seed,
            fine_kinds=tuple(sorted(self._fine_kinds)),
        )

    def _config_key(self, engine, machine, proc, allocations) -> str:
        # the replay is a pure function of these inputs; anything else
        # (compiler pricing, machine frequency, THP statistics) is applied
        # after the session answers.  The rank signature joins only when
        # set so serial (n_ranks=1) keys are bit-stable across releases.
        parts = (
            str(TRACE_SCHEMA), self.log.digest(),
            _layout_signature(proc.space, allocations),
            geometry_digest(machine.tlb), engine,
            str(self.seed), str(self.replication),
            str(self.fine_sample_blocks),
            ",".join(sorted(self._fine_kinds)),
        )
        if self.rank_signature:
            parts = parts + (self.rank_signature,)
        return hashlib.sha256("/".join(parts).encode()).hexdigest()[:40]

    def _trace_key(self, proc, allocations) -> str:
        # the synthesis inputs only: geometry never shapes a trace, and
        # the two builders are property-tested RNG-lockstep identical,
        # so the engine is deliberately excluded — a warm trace store
        # serves a new geometry *and* a new engine without synthesis
        parts = (
            "trace", str(TRACE_SCHEMA), self.log.digest(),
            _layout_signature(proc.space, allocations),
            str(self.seed), str(self.replication),
            str(self.fine_sample_blocks),
            ",".join(sorted(self._fine_kinds)),
        )
        if self.rank_signature:
            parts = parts + (self.rank_signature,)
        return hashlib.sha256("/".join(parts).encode()).hexdigest()[:40]

    def _pending(self, engine, proc, layout, unk, scratch, eos_table,
                 flame_table, flux_scratch,
                 machine: MachineSpec | None = None) -> "ReplayRequest":
        """Build the replay request for one launched process.

        ``run_batch`` collects these across pipelines and answers them
        with a single :meth:`ReplaySession.replay_batch` call."""
        from repro.perfmodel.session import ReplayRequest
        if self.fault_injector is not None:
            self.fault_injector(engine)
        machine = machine or self.machine
        allocations = [unk, *scratch, eos_table, flame_table, flux_scratch]
        return ReplayRequest(
            config_key=self._config_key(engine, machine, proc, allocations),
            geometry=machine.tlb,
            engine=engine,
            synthesize=self._synthesize_closure(
                engine, proc, layout, unk, scratch, eos_table, flame_table,
                flux_scratch),
            trace_key=self._trace_key(proc, allocations),
        )

    def _replay(self, engine, proc, layout, unk, scratch, eos_table,
                flame_table, flux_scratch) -> PerfReport:
        request = self._pending(engine, proc, layout, unk, scratch,
                                eos_table, flame_table, flux_scratch)
        replay = self.session.replay(config_key=request.config_key,
                                     geometry=request.geometry,
                                     engine=engine,
                                     synthesize=request.synthesize,
                                     trace_key=request.trace_key)
        return self._finish(engine, self.machine, proc, replay)

    def _finish(self, engine, machine, proc, replay) -> PerfReport:
        """Price one session answer into a report (pure post-processing)."""
        rep = self.log.representative_step()
        stream_stats = replay.stream
        fine_stats = [TLBStats() for _ in rep.invocations]
        for i, raw, scale in replay.fine:
            fine_stats[i] = raw.scaled(scale)

        # --- accumulate per unit over the whole run, scaling the
        # representative step's misses by each unit's total zone count
        units: dict[str, UnitTotals] = {}
        rep_zone = {i: inv.zones for i, inv in enumerate(rep.invocations)}
        per_step_tlb: dict[str, TLBStats] = {}
        for i, inv in enumerate(rep.invocations):
            tot = per_step_tlb.setdefault(inv.unit, TLBStats())
            per_step_tlb[inv.unit] = tot + stream_stats[i] + fine_stats[i]
        rep_unit_zones: dict[str, int] = {}
        for inv in rep.invocations:
            rep_unit_zones[inv.unit] = rep_unit_zones.get(inv.unit, 0) + inv.zones

        for rec in self.log.steps:
            for inv in rec.invocations:
                totals = units.setdefault(inv.unit, UnitTotals())
                totals.work = totals.work + self._invocation_work(inv)
        for unit, totals in units.items():
            total_zones = self.log.total_zone_updates(unit)
            scale = total_zones / max(rep_unit_zones.get(unit, total_zones), 1)
            totals.tlb = per_step_tlb.get(unit, TLBStats()).scaled(scale)

        # --- price everything
        model = CycleModel(machine)
        seconds = {}
        for unit, totals in units.items():
            seconds[unit] = model.seconds(model.cycles(totals.work, totals.tlb))
        flash_timer = sum(seconds.values()) * (1.0 + cal.DRIVER_OVERHEAD_FRACTION)

        return PerfReport(
            units=units,
            seconds=seconds,
            flash_timer_s=flash_timer,
            uses_huge_pages=proc.uses_huge_pages(),
            meminfo=meminfo(self.kernel),
            machine=machine,
            compiler=self.compiler.name,
            n_steps=self.log.n_steps,
            engine=engine,
            degradations=dict(self.kernel.degradations.counts),
        )

    # --- geometry sweeps -------------------------------------------------
    def run_geometries(self, geometries) -> list[PerfReport]:
        """Replay this configuration under many TLB geometries at once.

        One launch, one trace synthesis, one batched kernel pass for the
        whole sweep (:meth:`ReplaySession.replay_sweep`); each report is
        priced against ``self.machine`` with its TLB swapped for the
        sweep point — bit-identical to constructing one pipeline per
        geometry, at a fraction of the cost.  Degrades to the scalar
        oracle as :meth:`run` does.
        """
        geometries = list(geometries)
        try:
            return self._run_geometries_with_engine(self.engine, geometries)
        except ConfigurationError:
            raise
        except Exception as exc:  # noqa: BLE001 — any replay failure degrades
            if self.engine == "scalar":
                raise
            self.kernel.degradations.record(
                "perf_engine_scalar_fallback",
                f"{self.engine!r} engine failed: {type(exc).__name__}: {exc}")
            return self._run_geometries_with_engine("scalar", geometries)

    def _run_geometries_with_engine(self, engine, geometries):
        machines = [replace(self.machine, tlb=geo) for geo in geometries]
        proc, layout, unk, scratch, eos_table, flame_table, flux_scratch = \
            self._launch_and_allocate()
        try:
            if self.fault_injector is not None:
                self.fault_injector(engine)
            allocations = [unk, *scratch, eos_table, flame_table,
                           flux_scratch]
            keys = [self._config_key(engine, m, proc, allocations)
                    for m in machines]
            synthesize = self._synthesize_closure(
                engine, proc, layout, unk, scratch, eos_table, flame_table,
                flux_scratch)
            replays = self.session.replay_sweep(
                config_keys=keys, geometries=[m.tlb for m in machines],
                engine=engine, synthesize=synthesize,
                trace_key=self._trace_key(proc, allocations))
            return [self._finish(engine, m, proc, r)
                    for m, r in zip(machines, replays)]
        finally:
            proc.exit()


def run_batch(pipelines) -> list[PerfReport]:
    """Run many pipelines, answering their replays as one session batch.

    Each pipeline launches and allocates exactly as :meth:`\
PerformancePipeline.run` would; the replay requests are then handed to
    :meth:`ReplaySession.replay_batch` per shared session, which dedupes
    the work units across the whole batch and may execute them on worker
    processes (``REPRO_REPLAY_JOBS``).  Results are bit-identical to
    running the pipelines one by one — the batch only reorders *where*
    the pure replay kernels run.

    Any failure inside the batched path (an injected fault, a fast-
    engine inconsistency) falls back to running each pipeline serially
    through its own :meth:`~PerformancePipeline.run`, which owns the
    fast-to-scalar degradation story.
    """
    pipelines = list(pipelines)
    try:
        reports: list[PerfReport | None] = [None] * len(pipelines)
        by_session: dict[int, list[int]] = {}
        for i, pipe in enumerate(pipelines):
            by_session.setdefault(id(pipe.session), []).append(i)
        for idxs in by_session.values():
            session = pipelines[idxs[0]].session
            procs = []
            try:
                requests = []
                for i in idxs:
                    pipe = pipelines[i]
                    ctx = pipe._launch_and_allocate()
                    procs.append(ctx[0])
                    requests.append(pipe._pending(pipe.engine, *ctx))
                replays = session.replay_batch(requests)
                for i, proc, replay in zip(idxs, procs, replays):
                    pipe = pipelines[i]
                    reports[i] = pipe._finish(pipe.engine, pipe.machine,
                                              proc, replay)
            finally:
                for proc in procs:
                    proc.exit()
        return reports  # type: ignore[return-value]
    except ConfigurationError:
        raise
    except Exception:  # noqa: BLE001 — serial re-run owns degradation
        return [pipe.run() for pipe in pipelines]


__all__ = ["PerformancePipeline", "PerfReport", "SynthesisTask",
           "UnitTotals", "resolve_engine", "run_batch"]
