"""Process-pool execution of independent replay work units.

A :class:`~repro.perfmodel.session.ReplaySession` batch decomposes into
*work units* that are pure functions of their inputs: one unit per
distinct content-keyed stream bundle (a whole invocation sequence
sharing one TLB) and one per distinct fine trace (each replays through
an independent TLB stream).  Units never share simulator state, so they
can run on any schedule — including other processes — without changing
a single counter.  :class:`ReplayExecutor` schedules them:

* ``jobs <= 1`` (the default) runs every unit inline, in order — the
  serial reference.  Parallel runs are bit-identical *by construction*:
  the same units run the same kernels, only elsewhere; results come
  back keyed by content digest and merge deterministically.
* ``jobs > 1`` lazily forks a :class:`~concurrent.futures.\
ProcessPoolExecutor` (fork start method where available: workers
  inherit the loaded model without re-importing).  Any pool-level
  failure — a worker OOM-killed, a broken pipe, an unpicklable trace —
  degrades to the inline path and is counted on ``fallbacks``; genuine
  replay errors re-raise from the inline retry exactly as serial
  execution would have raised them.

Replay units carry their traces either by value (a list of
:class:`~repro.hw.trace.PageTrace`, pickled over the pipe) or by
reference (a :class:`~repro.perfmodel.tracestore.TraceRef` naming
sections of a persistent trace bundle, which the worker maps read-only
straight from the store).  The executor meters both on
``traces_pickled_bytes`` / ``traces_mapped_bytes`` so the bench can
gate that the zero-copy handoff actually engaged.  A third unit kind,
``"synth"``, runs trace synthesis itself on a worker and persists the
bundle — the requester maps the result instead of building it.

Job-count selection mirrors the engine precedence
(:func:`repro.perfmodel.pipeline.resolve_engine`): explicit argument,
then ``REPRO_REPLAY_JOBS``, then the ``replay_jobs`` runtime parameter.
``0`` or ``auto`` means one worker per core.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Sequence

from repro.core import load_all, parameter_registry
from repro.util.errors import ConfigurationError

#: a work unit — one of:
#:   ("stream" | "fine", engine, geometry, [PageTrace, ...] | TraceRef)
#:   ("synth", trace_key, task, store_root, thp)
WorkUnit = tuple


def resolve_jobs(jobs: int | str | None = None, params=None) -> int:
    """Pick the replay worker count.  Precedence, highest first:

    1. an explicit ``jobs`` argument,
    2. the ``REPRO_REPLAY_JOBS`` environment variable,
    3. the ``replay_jobs`` runtime parameter (par file via ``params``,
       else the perfmodel unit's registered default of 1).

    ``0`` or ``"auto"`` at any level resolves to ``os.cpu_count()``.
    Anything else non-numeric or negative raises
    :class:`~repro.util.errors.ConfigurationError`.
    """
    load_all()
    spec = parameter_registry.spec("replay_jobs")
    value: Any = jobs
    if value is None:
        value = os.environ.get("REPRO_REPLAY_JOBS") or None
    if value is None and params is not None:
        value = params.get("replay_jobs")
    if value is None:
        value = spec.default
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            value = 0
        else:
            try:
                value = int(text)
            except ValueError:
                raise ConfigurationError(
                    f"invalid replay job count {value!r} "
                    "(expected an integer or 'auto')") from None
    if value < 0:
        raise ConfigurationError(
            f"invalid replay job count {value!r} (expected >= 0)")
    if value == 0:
        value = os.cpu_count() or 1
    return int(value)


def _run_unit(unit: WorkUnit) -> list:
    """Execute one work unit (also the process-pool entry point).

    Imports locally so a forked worker resolves the session lazily; the
    kernels themselves are the session's static methods, guaranteeing
    the parallel path cannot drift from the serial one.  A ``"synth"``
    unit synthesizes and persists a trace bundle (returning nothing —
    the requester maps the store entry); replay units resolve a
    :class:`~repro.perfmodel.tracestore.TraceRef` payload by mapping the
    bundle read-only before running the kernel.
    """
    from repro.perfmodel.session import ReplaySession
    kind = unit[0]
    if kind == "synth":
        from repro.perfmodel.tracestore import TraceStore
        _, key, task, root, thp = unit
        stream, fine = task()
        TraceStore(Path(root), thp=thp).save_bundle(key, stream, fine)
        return []
    kind, engine, geometry, payload = unit
    traces = payload if isinstance(payload, list) else payload.resolve()
    if kind == "stream":
        return ReplaySession._replay_stream(engine, geometry, traces)
    if kind == "fine":
        return ReplaySession._replay_fine(engine, geometry, traces)
    raise ConfigurationError(f"unknown replay work unit kind {kind!r}")


class ReplayExecutor:
    """Runs replay work units, inline or across a process pool.

    The pool is created lazily (a warm cache run never pays the fork),
    kept for the executor's lifetime, and torn down by :meth:`close` /
    the context manager.  Thread-compatibility note: one executor per
    session; the session serialises access.
    """

    def __init__(self, jobs: int | str | None = None, *, params=None) -> None:
        self.jobs = resolve_jobs(jobs, params=params)
        #: pool-level failures degraded to inline execution
        self.fallbacks = 0
        #: trace payload bytes shipped to pool workers by pickling
        #: (by-value units) — the IPC tax the trace tier eliminates
        self.traces_pickled_bytes = 0
        #: trace payload bytes workers mapped from the trace store
        #: instead (by-reference units)
        self.traces_mapped_bytes = 0
        self._pool: ProcessPoolExecutor | None = None

    # --- lifecycle -------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            ctx = None
            if "fork" in multiprocessing.get_all_start_methods():
                ctx = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(max_workers=self.jobs,
                                             mp_context=ctx)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ReplayExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # --- execution -------------------------------------------------------
    def run_units(self, units: Sequence[WorkUnit]) -> list[list]:
        """Execute ``units``; returns their results in input order.

        Results are independent of the schedule because units share no
        state; order preservation makes the merge deterministic.
        """
        units = list(units)
        if self.jobs <= 1 or len(units) <= 1:
            return [_run_unit(u) for u in units]
        try:
            pool = self._ensure_pool()
            outputs = list(pool.map(_run_unit, units))
        except Exception:
            # pool-level damage (broken worker, pickling trouble) must
            # not lose the measurement: retry inline.  A genuine replay
            # error raises again here, exactly as serial execution would.
            self.fallbacks += 1
            self.close()
            return [_run_unit(u) for u in units]
        self._account_ipc(units)
        return outputs

    def _account_ipc(self, units: Sequence[WorkUnit]) -> None:
        """Meter what the pool dispatch actually shipped per unit:
        payload bytes pickled over the pipe, or bytes the worker mapped
        from the trace store instead."""
        for unit in units:
            if unit[0] not in ("stream", "fine"):
                continue
            payload = unit[3]
            if isinstance(payload, list):
                self.traces_pickled_bytes += sum(t.nbytes for t in payload)
            else:
                self.traces_mapped_bytes += payload.nbytes


__all__ = ["ReplayExecutor", "resolve_jobs"]
