"""The performance model: couples the application to the machine model.

The split mirrors how the paper's measurements work:

1. the *numerics* run once (:mod:`repro.driver`), while a
   :class:`~repro.perfmodel.workrecord.WorkLog` records what each unit did
   per step (zones, block lists in Morton order, EOS Newton iterations);
2. the log is *replayed* against any (compiler, kernel, machine)
   combination by :class:`~repro.perfmodel.pipeline.PerformancePipeline`:
   allocations are made through the toolchain's allocator model, page
   traces are synthesised from the recorded access structure
   (:mod:`repro.perfmodel.patterns`), the TLB simulator counts misses,
   the cycle model prices the work, and PAPI-style counters advance.

Replaying means one numeric run yields both the with- and without-huge-
pages columns of the paper's tables — exactly the controlled comparison
the authors ran.
"""

from repro.perfmodel.workrecord import StepRecord, UnitInvocation, WorkLog
from repro.perfmodel.patterns import TraceBuilder
from repro.perfmodel.pipeline import PerformancePipeline, PerfReport, run_batch
from repro.perfmodel.parallel import ReplayExecutor, resolve_jobs

__all__ = [
    "StepRecord",
    "UnitInvocation",
    "WorkLog",
    "TraceBuilder",
    "PerformancePipeline",
    "PerfReport",
    "run_batch",
    "ReplayExecutor",
    "resolve_jobs",
]
