"""repro — reproduction of *On Using Linux Kernel Huge Pages with FLASH,
an Astrophysical Simulation Code* (Calder et al., IEEE CLUSTER 2022).

The library has two halves that meet in :mod:`repro.perfmodel`:

* a FLASH-like block-structured AMR astrophysics code
  (:mod:`repro.mesh`, :mod:`repro.physics`, :mod:`repro.setups`,
  :mod:`repro.driver`) with real numerics — compressible hydrodynamics,
  a degenerate electron/positron equation of state, an
  advection-diffusion-reaction model flame, and self-gravity;
* a simulated Ookami node — Linux kernel memory management
  (:mod:`repro.kernel`), an A64FX hardware model (:mod:`repro.hw`),
  compiler/runtime toolchains (:mod:`repro.toolchain`), and PAPI-style
  instrumentation (:mod:`repro.papi`).

:mod:`repro.experiments` regenerates every table and figure in the paper.
See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.

The most common entry points are re-exported here::

    from repro import (Simulation, HydroUnit, GammaLawEOS, HelmholtzEOS,
                       supernova_setup, sedov_setup, WorkLog,
                       PerformancePipeline, Kernel, ookami_config, FUJITSU)
"""

__version__ = "1.0.0"

from repro.analysis import line_profile, peak_location, radial_profile
from repro.core import (
    ParameterSpec,
    UnitSpec,
    WorkKind,
    WorkloadSpec,
    load_all,
    parameter_registry,
    unit_registry,
)
from repro.driver.config import RuntimeParameters
from repro.driver.io import read_checkpoint, restart_simulation, write_checkpoint
from repro.driver.simulation import Simulation
from repro.kernel.params import ookami_config
from repro.kernel.vmm import Kernel
from repro.mesh.grid import Grid, MeshSpec, VariableRegistry
from repro.mesh.tree import AMRTree
from repro.perfmodel.pipeline import PerformancePipeline
from repro.perfmodel.workrecord import WorkLog
from repro.physics.eos import GammaLawEOS, HelmholtzEOS
from repro.physics.flame.adr import ADRFlame
from repro.physics.gravity.monopole import MonopoleGravity
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sedov import SedovSolution, sedov_setup
from repro.setups.supernova import supernova_setup
from repro.setups.whitedwarf import build_white_dwarf
from repro.toolchain.compiler import ARM, COMPILERS, CRAY, FUJITSU, GNU

__all__ = [
    "__version__",
    "ParameterSpec",
    "UnitSpec",
    "WorkKind",
    "WorkloadSpec",
    "load_all",
    "parameter_registry",
    "unit_registry",
    "RuntimeParameters",
    "Simulation",
    "write_checkpoint",
    "read_checkpoint",
    "restart_simulation",
    "line_profile",
    "peak_location",
    "radial_profile",
    "Kernel",
    "ookami_config",
    "Grid",
    "MeshSpec",
    "VariableRegistry",
    "AMRTree",
    "PerformancePipeline",
    "WorkLog",
    "GammaLawEOS",
    "HelmholtzEOS",
    "ADRFlame",
    "MonopoleGravity",
    "HydroUnit",
    "SedovSolution",
    "sedov_setup",
    "supernova_setup",
    "build_white_dwarf",
    "COMPILERS",
    "GNU",
    "CRAY",
    "ARM",
    "FUJITSU",
]
