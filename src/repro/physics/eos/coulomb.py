"""Coulomb corrections to the ion gas (one-component-plasma fits).

In a white-dwarf interior the ions are strongly coupled
(:math:`\\Gamma \\gtrsim 1`), reducing pressure and energy below the ideal
gas.  We use the standard OCP free-energy fits: Debye-Hückel at weak
coupling, the DeWitt/Slattery-style liquid fit at strong coupling, blended
smoothly — the same physics FLASH's Helmholtz EOS applies.
"""

from __future__ import annotations

import numpy as np

from repro.util.constants import AVOGADRO, BOLTZMANN

#: electron charge [esu]
E_CHARGE = 4.80320425e-10

#: DeWitt/Slattery liquid OCP fit coefficients (Gamma >= 1)
_A1, _B1, _C1, _D1 = -0.898004, 0.96786, 0.220703, -0.86097


def coupling_gamma(dens, temp, abar, zbar) -> np.ndarray:
    """Plasma coupling parameter Gamma = (Ze)^2 / (a kT)."""
    dens = np.asarray(dens, dtype=np.float64)
    temp = np.asarray(temp, dtype=np.float64)
    n_ion = dens * AVOGADRO / abar
    a_ion = (3.0 / (4.0 * np.pi * n_ion)) ** (1.0 / 3.0)
    return (zbar * E_CHARGE) ** 2 / (a_ion * BOLTZMANN * temp)


def coulomb_corrections(dens, temp, abar, zbar):
    """Return (pressure [erg/cm^3], specific energy [erg/g]) corrections.

    Both are negative (binding) in the strongly coupled regime.
    """
    dens = np.asarray(dens, dtype=np.float64)
    temp = np.asarray(temp, dtype=np.float64)
    gamma = coupling_gamma(dens, temp, abar, zbar)
    n_ion = dens * AVOGADRO / abar
    nkt = n_ion * BOLTZMANN * temp

    # strong coupling: u/NkT = A Gamma + B Gamma^{1/4} + C Gamma^{-1/4} + D
    g = np.maximum(gamma, 1e-30)
    u_strong = _A1 * g + _B1 * g**0.25 + _C1 * g**-0.25 + _D1
    # weak coupling (Debye-Hückel): u/NkT = -(sqrt(3)/2) Gamma^{3/2}
    u_weak = -np.sqrt(3.0) / 2.0 * g**1.5

    blend = 0.5 * (1.0 + np.tanh(4.0 * (g - 1.0)))
    u_per_nkt = blend * u_strong + (1.0 - blend) * u_weak
    # OCP virial: P_coul = u_coul / 3 (per volume)
    u_vol = u_per_nkt * nkt
    p_coul = u_vol / 3.0
    e_coul = u_vol / dens
    return p_coul, e_coul


__all__ = ["coupling_gamma", "coulomb_corrections", "E_CHARGE"]
