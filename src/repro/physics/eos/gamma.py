"""Gamma-law EOS — the FLASH default used by the Sedov test problem."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import AVOGADRO, BOLTZMANN
from repro.util.errors import PhysicsError
from repro.physics.eos.helmholtz import EosResult


@dataclass
class GammaLawEOS:
    """P = (gamma - 1) rho eint, with an ideal-gas temperature."""

    gamma: float = 1.4
    abar: float = 1.0

    def __post_init__(self) -> None:
        if self.gamma <= 1.0:
            raise PhysicsError("gamma must exceed 1")

    def _temp(self, eint) -> np.ndarray:
        return (self.gamma - 1.0) * self.abar / (AVOGADRO * BOLTZMANN) * \
            np.asarray(eint)

    def _result(self, dens, eint) -> EosResult:
        dens = np.atleast_1d(np.asarray(dens, dtype=np.float64))
        eint = np.broadcast_to(np.asarray(eint, dtype=np.float64), dens.shape)
        pres = (self.gamma - 1.0) * dens * eint
        g = np.full(dens.shape, self.gamma)
        return EosResult(
            dens=dens,
            temp=self._temp(eint),
            pres=pres,
            eint=np.array(eint),
            entr=np.zeros_like(dens),
            cv=np.full(dens.shape,
                       AVOGADRO * BOLTZMANN / ((self.gamma - 1.0) * self.abar)),
            gamc=g,
            game=g.copy(),
            cs=np.sqrt(self.gamma * pres / dens),
            eta=np.full(dens.shape, -np.inf),
        )

    def eos_de(self, dens, eint, abar=None, zbar=None, temp_guess=None) -> EosResult:
        """Mode ``dens_ei`` (the hydro-facing call)."""
        return self._result(dens, eint)

    def eos_dt(self, dens, temp, abar=None, zbar=None) -> EosResult:
        dens = np.atleast_1d(np.asarray(dens, dtype=np.float64))
        temp = np.broadcast_to(np.asarray(temp, dtype=np.float64), dens.shape)
        eint = AVOGADRO * BOLTZMANN * temp / ((self.gamma - 1.0) * self.abar)
        return self._result(dens, eint)

    def eos_dp(self, dens, pres, abar=None, zbar=None, temp_guess=None) -> EosResult:
        dens = np.atleast_1d(np.asarray(dens, dtype=np.float64))
        pres = np.broadcast_to(np.asarray(pres, dtype=np.float64), dens.shape)
        eint = pres / ((self.gamma - 1.0) * dens)
        return self._result(dens, eint)


__all__ = ["GammaLawEOS"]
