"""The assembled Helmholtz-type stellar EOS.

Total pressure and specific internal energy of white-dwarf matter:

``P = P_electron/positron + P_ion + P_radiation (+ P_coulomb)``

with the electron part interpolated from :class:`ElectronTable` and the
rest analytic.  Thermodynamic derivatives give :math:`c_v`,
:math:`\\chi_\\rho`, :math:`\\chi_T`, the adiabatic index
:math:`\\Gamma_1 = \\chi_\\rho + P\\chi_T^2/(\\rho T c_v)`, and the sound
speed — the quantities FLASH's ``gamc``/``game`` variables carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.constants import AVOGADRO, BOLTZMANN, RADIATION_A
from repro.util.errors import PhysicsError
from repro.physics.eos.coulomb import coulomb_corrections
from repro.physics.eos.ion import ion_energy, ion_entropy, ion_pressure
from repro.physics.eos.table import ElectronTable, default_table


@dataclass
class EosResult:
    """Thermodynamic state at (rho, T, composition)."""

    dens: np.ndarray
    temp: np.ndarray
    pres: np.ndarray  # [erg/cm^3]
    eint: np.ndarray  # specific internal energy [erg/g]
    entr: np.ndarray  # specific entropy [erg/g/K]
    cv: np.ndarray  # [erg/g/K]
    gamc: np.ndarray  # Gamma_1
    game: np.ndarray  # 1 + P/(rho*eint)
    cs: np.ndarray  # adiabatic sound speed [cm/s]
    eta: np.ndarray  # electron degeneracy parameter
    #: dP/dT at constant rho and dP/drho at constant T (None for EOSes
    #: that never need them)
    dpt: np.ndarray | None = None
    dpd: np.ndarray | None = None


@dataclass
class HelmholtzEOS:
    """Degenerate stellar EOS (electrons+positrons, ions, radiation)."""

    table: ElectronTable | None = None
    include_coulomb: bool = True
    #: temperature floors/ceilings for inversions
    temp_min: float = 1.0e4
    temp_max: float = 3.0e10

    def __post_init__(self) -> None:
        if self.table is None:
            self.table = default_table()

    def eos_dt(self, dens, temp, abar, zbar) -> EosResult:
        """Mode ``dens_temp``: everything from (rho, T, composition)."""
        dens = np.atleast_1d(np.asarray(dens, dtype=np.float64))
        temp = np.broadcast_to(np.asarray(temp, dtype=np.float64), dens.shape)
        abar = np.broadcast_to(np.asarray(abar, dtype=np.float64), dens.shape)
        zbar = np.broadcast_to(np.asarray(zbar, dtype=np.float64), dens.shape)
        if (dens <= 0).any():
            raise PhysicsError("non-positive density passed to EOS")

        ye = zbar / abar
        rho_ye = dens * ye
        ele = self.table.evaluate(rho_ye, temp)

        p_ele = ele["pres"]
        e_ele = ele["ener"] / dens  # specific
        p_ion = ion_pressure(dens, temp, abar)
        e_ion = ion_energy(dens, temp, abar)
        p_rad = RADIATION_A * temp**4 / 3.0
        e_rad = RADIATION_A * temp**4 / dens

        pres = p_ele + p_ion + p_rad
        eint = e_ele + e_ion + e_rad
        entr = (ele["entr"] / dens + ion_entropy(dens, temp, abar)
                + 4.0 / 3.0 * RADIATION_A * temp**3 / dens)

        dpc_dt = dpc_dr = dec_dt = 0.0
        if self.include_coulomb:
            p_c, e_c = coulomb_corrections(dens, temp, abar, zbar)
            # derivatives by small central differences (the fits are smooth)
            dt_ = 1.0e-4 * temp
            p_hi, e_hi = coulomb_corrections(dens, temp + dt_, abar, zbar)
            p_lo, e_lo = coulomb_corrections(dens, temp - dt_, abar, zbar)
            dpc_dt = (p_hi - p_lo) / (2.0 * dt_)
            dec_dt = (e_hi - e_lo) / (2.0 * dt_)
            dr_ = 1.0e-4 * dens
            p_hi, _ = coulomb_corrections(dens + dr_, temp, abar, zbar)
            p_lo, _ = coulomb_corrections(dens - dr_, temp, abar, zbar)
            dpc_dr = (p_hi - p_lo) / (2.0 * dr_)
            # never let the correction destabilise the total
            clamped = p_c < -0.5 * pres
            p_c = np.maximum(p_c, -0.5 * pres)
            dpc_dt = np.where(clamped, 0.0, dpc_dt)
            dpc_dr = np.where(clamped, 0.0, dpc_dr)
            pres = pres + p_c
            eint = eint + e_c

        dpe_dr = ele["dlnp_dlnr"] * p_ele / dens  # d p_ele / d rho |T
        dpe_dt = ele["dlnp_dlnt"] * p_ele / temp
        dp_dr = dpe_dr + p_ion / dens + dpc_dr
        dp_dt = dpe_dt + p_ion / temp + 4.0 * p_rad / temp + dpc_dt

        due_dt = ele["dlnu_dlnt"] * ele["ener"] / temp  # per volume
        cv = due_dt / dens + 1.5 * AVOGADRO * BOLTZMANN / abar \
            + 4.0 * RADIATION_A * temp**3 / dens + dec_dt
        chi_rho = dp_dr * dens / pres
        chi_t = dp_dt * temp / pres
        gamc = chi_rho + pres * chi_t**2 / (dens * temp * cv)
        gamc = np.clip(gamc, 1.01, 5.0 / 3.0 + 1.0)
        game = 1.0 + pres / (dens * np.maximum(eint, 1e-30))
        cs = np.sqrt(gamc * pres / dens)
        return EosResult(dens=dens, temp=np.array(temp), pres=pres, eint=eint,
                         entr=entr, cv=cv, gamc=gamc, game=game, cs=cs,
                         eta=ele["eta"], dpt=dp_dt, dpd=dp_dr)

    def eint_cv(self, dens, temp, abar, zbar):
        """Fast path for the Newton inversion: (eint, cv) only.

        Evaluates just the electron energy spline and its T-derivative
        instead of the full thermodynamic set — the inner loop of the
        paper's hottest routine.
        """
        dens = np.atleast_1d(np.asarray(dens, dtype=np.float64))
        temp = np.broadcast_to(np.asarray(temp, dtype=np.float64), dens.shape)
        ye = zbar / abar
        rho_ye = dens * ye
        lr = np.clip(np.log10(rho_ye), self.table.lg_rhoye[0],
                     self.table.lg_rhoye[-1])
        lt = np.clip(np.log10(temp), self.table.lg_temp[0],
                     self.table.lg_temp[-1])
        lg_u = self.table._sp_u.ev(lr, lt)
        u_ele = 10.0**lg_u
        dlnu_dlnt = self.table._sp_u.ev(lr, lt, dy=1)
        e_ele = u_ele / dens
        e_ion = ion_energy(dens, temp, abar)
        e_rad = RADIATION_A * temp**4 / dens
        eint = e_ele + e_ion + e_rad
        dec_dt = 0.0
        if self.include_coulomb:
            _, e_c = coulomb_corrections(dens, temp, abar, zbar)
            dt_ = 1.0e-4 * temp
            _, e_hi = coulomb_corrections(dens, temp + dt_, abar, zbar)
            _, e_lo = coulomb_corrections(dens, temp - dt_, abar, zbar)
            dec_dt = (e_hi - e_lo) / (2.0 * dt_)
            eint = eint + e_c
        cv = (dlnu_dlnt * u_ele / temp / dens
              + 1.5 * AVOGADRO * BOLTZMANN / abar
              + 4.0 * RADIATION_A * temp**3 / dens + dec_dt)
        return eint, cv

    # inversion modes live in invert.py; convenience forwarding here
    def eos_de(self, dens, eint, abar, zbar, temp_guess=None):
        """Mode ``dens_ei``: invert for T, then evaluate (the hydro call)."""
        from repro.physics.eos.invert import invert_dens_eint

        temp, stats = invert_dens_eint(self, dens, eint, abar, zbar,
                                       temp_guess=temp_guess)
        result = self.eos_dt(dens, temp, abar, zbar)
        result.iterations = stats  # type: ignore[attr-defined]
        return result

    def eos_dp(self, dens, pres, abar, zbar, temp_guess=None):
        """Mode ``dens_pres``: invert for T from pressure."""
        from repro.physics.eos.invert import invert_dens_pres

        temp, _ = invert_dens_pres(self, dens, pres, abar, zbar,
                                   temp_guess=temp_guess)
        return self.eos_dt(dens, temp, abar, zbar)


__all__ = ["HelmholtzEOS", "EosResult"]
