"""Equations of state.

Two production EOSes, sharing the :class:`~repro.physics.eos.helmholtz.EosResult`
interface:

* :class:`~repro.physics.eos.gamma.GammaLawEOS` — ideal gas, used by the
  Sedov problem (FLASH's default for that test);
* :class:`~repro.physics.eos.helmholtz.HelmholtzEOS` — the degenerate
  electron/positron + ion + radiation (+ Coulomb) stellar EOS of the
  supernova problem, built from first-principles Fermi-Dirac integrals
  (:mod:`~repro.physics.eos.fermi`, :mod:`~repro.physics.eos.electron`)
  and tabulated for speed (:mod:`~repro.physics.eos.table`).

All EOS calls are vectorised over zones; the inversion modes
(:mod:`~repro.physics.eos.invert`) carry the per-zone branching the paper
identifies as the obstacle to SVE vectorisation.
"""

from repro.physics.eos.gamma import GammaLawEOS
from repro.physics.eos.helmholtz import EosResult, HelmholtzEOS
from repro.physics.eos.ion import (
    CO_WD,
    HYBRID_CONE_WD,
    NSE_ASH,
    SI_ASH,
    Composition,
)
from repro.physics.eos.table import ElectronTable, default_table

__all__ = [
    "GammaLawEOS",
    "HelmholtzEOS",
    "EosResult",
    "Composition",
    "CO_WD",
    "HYBRID_CONE_WD",
    "SI_ASH",
    "NSE_ASH",
    "ElectronTable",
    "default_table",
]
