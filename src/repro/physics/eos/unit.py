"""The Eos unit's declarations.

Two registered units mirror FLASH's EOS implementations: ``eos`` (the
tabulated Helmholtz free-energy EOS — the expensive one the paper
instrumented) and ``eos_gamma`` (the analytic gamma-law EOS the Sedov
problem uses).  Neither is scheduled by the driver — EOS calls happen
inside the hydro update — but both declare the runtime parameters and
the work kinds the performance model prices, including the ``fine``
trace granularity that reproduces the paper's Helmholtz-table DTLB
thrashing.
"""

from __future__ import annotations

from repro.core import FINE, ParameterSpec, UnitSpec, WorkKind, unit_registry
from repro.hw import calibration as cal
from repro.physics.eos.gamma import GammaLawEOS
from repro.physics.eos.helmholtz import HelmholtzEOS

EOS_UNIT = unit_registry.register(UnitSpec(
    name="eos",
    description="tabulated Helmholtz EOS (electrons/positrons, ions, "
                "radiation, Coulomb)",
    phase=15,
    implements=(HelmholtzEOS,),
    parameters=(
        ParameterSpec("eosModeInit", "dens_temp",
                      doc="EOS mode applied to the initial state"),
    ),
    work_kinds=(
        WorkKind("eos", cal.EOS_CALL, "eos", FINE, region="eos"),
    ),
))

EOS_GAMMA_UNIT = unit_registry.register(UnitSpec(
    name="eos_gamma",
    description="analytic gamma-law EOS",
    phase=16,
    implements=(GammaLawEOS,),
    work_kinds=(
        WorkKind("eos_gamma", cal.EOS_GAMMA_CALL, "eos", FINE, region="eos"),
    ),
))

__all__ = ["EOS_UNIT", "EOS_GAMMA_UNIT"]
