"""EOS inversion: recover temperature from (rho, eint) or (rho, P).

This is the code whose "vast scope and branching" the paper blames for
defeating SVE vectorisation: a per-zone Newton-Raphson on temperature with
per-zone convergence masks, bracket safeguards, and a bisection fallback
for zones where Newton misbehaves.  The structure below mirrors FLASH's
``eos_helmholtz`` loop (vectorised over zones, but with exactly those
data-dependent branches).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConvergenceError


def _newton_bisect(f, lo: np.ndarray, hi: np.ndarray, max_iter: int,
                   rtol: float):
    """Vectorised safeguarded Newton: solve f(T) = 0 per element.

    ``f(T) -> (residual, dresidual_dT)``.  Keeps a live bracket [lo, hi]
    (f(lo) < 0 < f(hi) assumed monotone increasing) and falls back to
    bisection whenever the Newton step leaves it.
    Returns (root, iterations_used_per_element).
    """
    t = np.sqrt(lo * hi)  # geometric-mean start
    iters = np.zeros(t.shape, dtype=np.int64)
    active = np.ones(t.shape, dtype=bool)
    for _ in range(max_iter):
        if not active.any():
            break
        resid, dresid = f(t)
        # maintain bracket
        neg = resid < 0.0
        lo = np.where(active & neg, t, lo)
        hi = np.where(active & ~neg, t, hi)
        with np.errstate(divide="ignore", invalid="ignore"):
            step = np.where(dresid != 0.0, -resid / dresid, 0.0)
        t_new = t + step
        # zones whose Newton step escapes the bracket bisect instead
        escaped = (t_new <= lo) | (t_new >= hi) | ~np.isfinite(t_new)
        t_new = np.where(escaped, 0.5 * (lo + hi), t_new)
        moved = np.abs(t_new - t) > rtol * t
        t = np.where(active, t_new, t)
        iters += active
        active = active & moved
    if active.any():
        raise ConvergenceError(
            f"EOS inversion: {int(active.sum())} zones failed to converge"
        )
    return t, iters


def invert_dens_eint(eos, dens, eint, abar, zbar, temp_guess=None,
                     max_iter: int = 60, rtol: float = 1.0e-8):
    """Solve eint(rho, T) = eint for T (mode ``dens_ei``).

    Returns ``(temp, stats)`` where stats carries per-zone iteration counts
    (the performance model uses their total).
    """
    dens = np.atleast_1d(np.asarray(dens, dtype=np.float64))
    eint = np.broadcast_to(np.asarray(eint, dtype=np.float64), dens.shape)
    lo = np.full(dens.shape, eos.temp_min)
    hi = np.full(dens.shape, eos.temp_max)
    if temp_guess is not None:
        guess = np.clip(np.asarray(temp_guess, dtype=np.float64),
                        eos.temp_min, eos.temp_max)
        # tighten the bracket around the guess; widened again on failure
        lo = np.maximum(lo, guess / 100.0)
        hi = np.minimum(hi, guess * 100.0)

    energy_of = getattr(eos, "eint_cv", None) or (
        lambda d, t, a, z: (lambda r: (r.eint, r.cv))(eos.eos_dt(d, t, a, z))
    )

    def f(t):
        e, cv = energy_of(dens, t, abar, zbar)
        return e - eint, cv

    # energies outside the bracketed range clamp to the floor/ceiling
    r_lo = energy_of(dens, lo, abar, zbar)[0] - eint
    r_hi = energy_of(dens, hi, abar, zbar)[0] - eint
    lo = np.where(r_lo > 0.0, np.full_like(lo, eos.temp_min), lo)
    hi = np.where(r_hi < 0.0, np.full_like(hi, eos.temp_max), hi)
    r_lo2 = energy_of(dens, lo, abar, zbar)[0] - eint
    clamped_low = r_lo2 >= 0.0  # colder than the floor: clamp
    r_hi2 = energy_of(dens, hi, abar, zbar)[0] - eint
    clamped_high = r_hi2 <= 0.0

    temp, iters = _newton_bisect(f, lo, hi, max_iter, rtol)
    temp = np.where(clamped_low, eos.temp_min, temp)
    temp = np.where(clamped_high, eos.temp_max, temp)
    return temp, iters


def invert_dens_pres(eos, dens, pres, abar, zbar, temp_guess=None,
                     max_iter: int = 60, rtol: float = 1.0e-8):
    """Solve P(rho, T) = pres for T (mode ``dens_pres``)."""
    dens = np.atleast_1d(np.asarray(dens, dtype=np.float64))
    pres = np.broadcast_to(np.asarray(pres, dtype=np.float64), dens.shape)
    lo = np.full(dens.shape, eos.temp_min)
    hi = np.full(dens.shape, eos.temp_max)

    def f(t):
        r = eos.eos_dt(dens, t, abar, zbar)
        dpdt = r.dpt if r.dpt is not None else r.pres / t
        return r.pres - pres, dpdt

    r_lo = eos.eos_dt(dens, lo, abar, zbar).pres - pres
    clamped_low = r_lo >= 0.0  # degeneracy pressure already exceeds target
    temp, iters = _newton_bisect(f, lo, hi, max_iter, rtol)
    temp = np.where(clamped_low, eos.temp_min, temp)
    return temp, iters


__all__ = ["invert_dens_eint", "invert_dens_pres"]
