"""Applying the EOS across the whole mesh (FLASH's ``Eos_wrapped``).

After each hydro sweep the thermodynamic variables (``pres``, ``temp``,
``gamc``, ``game``) must be refreshed from the updated ``(dens, eint)``.
This module does that for all leaf blocks at once, stacked along the
block axis — and reports the work done (zones, Newton iterations) so the
performance model can account for it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.grid import Grid


@dataclass
class EosWork:
    """Work accounting for one mesh-wide EOS application."""

    zones: int = 0
    newton_iterations: int = 0
    calls: int = 0

    def __iadd__(self, other: "EosWork") -> "EosWork":
        self.zones += other.zones
        self.newton_iterations += other.newton_iterations
        self.calls += other.calls
        return self


def composition_from_species(grid: Grid, stacked: dict[str, np.ndarray],
                             fuel, ash, progress_var: str = "fl01"):
    """(abar, zbar) per zone for a fuel/ash mixture set by a progress
    variable: linear mixing of 1/abar and zbar/abar (exact for mass
    fractions)."""
    phi = stacked[progress_var]
    inv_abar = (1.0 - phi) / fuel.abar + phi / ash.abar
    z_over_a = (1.0 - phi) * fuel.zbar / fuel.abar + phi * ash.zbar / ash.abar
    abar = 1.0 / inv_abar
    zbar = abar * z_over_a
    return abar, zbar


def apply_eos(grid: Grid, eos, mode: str = "dens_ei",
              composition=None, species: tuple[str, ...] = ()) -> EosWork:
    """Refresh pres/temp/gamc/game on every leaf block.

    ``composition`` is either ``None`` (the EOS's defaults / gamma law),
    a :class:`~repro.physics.eos.ion.Composition`, or a callable
    ``(grid, stacked_species) -> (abar, zbar)`` for reactive mixtures.
    """
    blocks = grid.leaf_blocks()
    if not blocks:
        return EosWork()
    slots = [b.slot for b in blocks]
    sx, sy, sz = grid.spec.interior_slices()

    dens = grid.unk[grid.var("dens"), sx, sy, sz, slots]
    eint = grid.unk[grid.var("eint"), sx, sy, sz, slots]
    temp = grid.unk[grid.var("temp"), sx, sy, sz, slots]
    shape = dens.shape

    if callable(composition):
        stacked = {s: grid.unk[grid.var(s), sx, sy, sz, slots] for s in species}
        abar, zbar = composition(grid, stacked)
        abar, zbar = abar.ravel(), zbar.ravel()
    elif composition is not None:
        abar, zbar = composition.abar, composition.zbar
    else:
        abar = zbar = 1.0

    if mode == "dens_ei":
        result = eos.eos_de(dens.ravel(), eint.ravel(), abar, zbar,
                            temp_guess=temp.ravel())
    elif mode == "dens_temp":
        result = eos.eos_dt(dens.ravel(), temp.ravel(), abar, zbar)
    else:
        raise ValueError(f"unsupported EOS mode {mode!r}")

    def put(name, values):
        grid.unk[grid.var(name), sx, sy, sz, slots] = values.reshape(shape)

    put("pres", result.pres)
    put("temp", result.temp)
    put("gamc", result.gamc)
    put("game", result.game)
    if mode == "dens_temp":
        put("eint", result.eint)
        ke = 0.5 * sum(
            grid.unk[grid.var(v), sx, sy, sz, slots] ** 2
            for v in ("velx", "vely", "velz")
        )
        put("ener", result.eint.reshape(shape) + ke)

    iters = getattr(result, "iterations", None)
    return EosWork(
        zones=int(dens.size),
        newton_iterations=int(iters.sum()) if iters is not None else 0,
        calls=1,
    )


__all__ = ["apply_eos", "composition_from_species", "EosWork"]
