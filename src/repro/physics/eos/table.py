"""The tabulated electron/positron EOS (the "helm table" analogue).

Direct Fermi-Dirac evaluation is far too slow to sit inside a hydro loop,
so — exactly as the Helmholtz EOS used by FLASH ships a precomputed
``helm_table.dat`` — we tabulate the electron/positron quantities over a
``(log10 rho*Ye, log10 T)`` grid once and interpolate with bicubic
splines thereafter.  The table is built on first use and cached as an
``.npz`` (in the package ``data/`` directory when writable, else under
``~/.cache``).

This table is also a key *performance* object in the reproduction: the
paper's "EOS" test gathers from it zone-by-zone with data-dependent
indices, which is what drives its enormous DTLB miss rate (see
:mod:`repro.perfmodel.patterns`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np
from scipy.interpolate import RectBivariateSpline

from repro.physics.eos import electron
from repro.util import artifacts
from repro.util.errors import ArtifactError, PhysicsError

#: default table extents (log10)
LG_RHOYE_RANGE = (-4.0, 11.0)
LG_TEMP_RANGE = (4.0, 10.5)
DEFAULT_N_RHOYE = 181
DEFAULT_N_TEMP = 101

#: embedded artifact version (was a ``_v3`` filename suffix)
_TABLE_VERSION = 3
#: arrays every valid table artifact must carry
_TABLE_KEYS = ("lg_rhoye", "lg_temp", "lg_pres", "lg_ener", "entr", "eta")


def _cache_path() -> Path:
    pkg_data = Path(__file__).resolve().parent / "data"
    shipped = pkg_data / "electron_table.npz"
    if shipped.exists():
        return shipped
    try:
        pkg_data.mkdir(exist_ok=True)
        probe = pkg_data / ".writable"
        probe.touch()
        probe.unlink()
        return shipped
    except OSError:
        cache = Path(os.environ.get("XDG_CACHE_HOME",
                                    Path.home() / ".cache")) / "repro"
        cache.mkdir(parents=True, exist_ok=True)
        return cache / "electron_table.npz"


@dataclass
class ElectronTable:
    """Bicubic-spline interpolation of electron/positron thermodynamics."""

    lg_rhoye: np.ndarray
    lg_temp: np.ndarray
    lg_pres: np.ndarray  # log10 P_e [erg/cm^3]
    lg_ener: np.ndarray  # log10 u_e [erg/cm^3]
    entr: np.ndarray  # s_e [erg/cm^3/K]
    eta: np.ndarray

    def __post_init__(self) -> None:
        kx = min(3, len(self.lg_rhoye) - 1)
        ky = min(3, len(self.lg_temp) - 1)
        self._sp_p = RectBivariateSpline(self.lg_rhoye, self.lg_temp,
                                         self.lg_pres, kx=kx, ky=ky)
        self._sp_u = RectBivariateSpline(self.lg_rhoye, self.lg_temp,
                                         self.lg_ener, kx=kx, ky=ky)
        self._sp_s = RectBivariateSpline(self.lg_rhoye, self.lg_temp,
                                         self.entr, kx=kx, ky=ky)
        self._sp_eta = RectBivariateSpline(self.lg_rhoye, self.lg_temp,
                                           self.eta, kx=kx, ky=ky)

    # --- construction --------------------------------------------------------
    @classmethod
    def build(cls, n_rhoye: int = DEFAULT_N_RHOYE, n_temp: int = DEFAULT_N_TEMP,
              lg_rhoye_range=LG_RHOYE_RANGE,
              lg_temp_range=LG_TEMP_RANGE) -> "ElectronTable":
        """Evaluate the Fermi-Dirac thermodynamics on the full grid."""
        lg_r = np.linspace(*lg_rhoye_range, n_rhoye)
        lg_t = np.linspace(*lg_temp_range, n_temp)
        rr, tt = np.meshgrid(10.0**lg_r, 10.0**lg_t, indexing="ij")
        state = electron.electron_state(rr.ravel(), tt.ravel())
        shape = rr.shape
        return cls(
            lg_rhoye=lg_r,
            lg_temp=lg_t,
            lg_pres=np.log10(state.pressure).reshape(shape),
            lg_ener=np.log10(state.energy_density).reshape(shape),
            entr=state.entropy_density.reshape(shape),
            eta=state.eta.reshape(shape),
        )

    @classmethod
    def load(cls, path: Path | None = None, build_if_missing: bool = True,
             **build_kwargs) -> "ElectronTable":
        """Load the cached table, building (and caching) it if absent.

        A corrupt, truncated, stale-version, or schema-incomplete cache
        file is never fatal: it is quarantined as ``*.corrupt`` and the
        table is rebuilt from the Fermi-Dirac integrals and re-cached.
        """
        path = Path(path) if path is not None else _cache_path()

        def _load(p: Path) -> "ElectronTable":
            data = artifacts.load_npz(p, required_keys=_TABLE_KEYS,
                                      version=_TABLE_VERSION)
            return cls(**{k: data[k] for k in _TABLE_KEYS})

        builder = (lambda: cls.build(**build_kwargs)) if build_if_missing \
            else None
        try:
            return artifacts.load_or_rebuild(
                path, loader=_load, builder=builder,
                saver=lambda table, p: table.save(p),
                description="electron EOS table")
        except ArtifactError as exc:
            raise PhysicsError(f"electron table unusable at {path}: "
                               f"{exc}") from exc

    def save(self, path: Path | None = None) -> Path:
        path = Path(path) if path is not None else _cache_path()
        artifacts.save_npz(
            path, {k: getattr(self, k) for k in _TABLE_KEYS},
            version=_TABLE_VERSION)
        return path

    # --- evaluation ------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """In-memory size of the tabulated arrays (performance modelling)."""
        return sum(a.nbytes for a in (self.lg_pres, self.lg_ener, self.entr,
                                      self.eta)) + self.lg_rhoye.nbytes + \
            self.lg_temp.nbytes

    def evaluate(self, rho_ye, temp) -> dict[str, np.ndarray]:
        """Interpolate P_e, u_e (per volume), s_e, eta and the log-log
        derivatives of P and u at (rho*Ye, T)."""
        rho_ye = np.asarray(rho_ye, dtype=np.float64)
        temp = np.asarray(temp, dtype=np.float64)
        lr = np.clip(np.log10(rho_ye), self.lg_rhoye[0], self.lg_rhoye[-1])
        lt = np.clip(np.log10(temp), self.lg_temp[0], self.lg_temp[-1])
        lg_p = self._sp_p.ev(lr, lt)
        lg_u = self._sp_u.ev(lr, lt)
        pres = 10.0**lg_p
        ener = 10.0**lg_u
        return {
            "pres": pres,
            "ener": ener,
            "entr": self._sp_s.ev(lr, lt),
            "eta": self._sp_eta.ev(lr, lt),
            # chi's with respect to (rho*Ye) and T
            "dlnp_dlnr": self._sp_p.ev(lr, lt, dx=1),
            "dlnp_dlnt": self._sp_p.ev(lr, lt, dy=1),
            "dlnu_dlnr": self._sp_u.ev(lr, lt, dx=1),
            "dlnu_dlnt": self._sp_u.ev(lr, lt, dy=1),
        }


_DEFAULT_TABLE: ElectronTable | None = None


def default_table() -> ElectronTable:
    """The process-wide shared table (loaded/built on first call)."""
    global _DEFAULT_TABLE
    if _DEFAULT_TABLE is None:
        _DEFAULT_TABLE = ElectronTable.load()
    return _DEFAULT_TABLE


__all__ = ["ElectronTable", "default_table",
           "LG_RHOYE_RANGE", "LG_TEMP_RANGE"]
