"""Photon gas: blackbody radiation thermodynamics."""

from __future__ import annotations

import numpy as np

from repro.util.constants import RADIATION_A


def radiation_pressure(temp) -> np.ndarray:
    """P_rad = a T^4 / 3 [erg/cm^3]."""
    t = np.asarray(temp, dtype=np.float64)
    return RADIATION_A * t**4 / 3.0


def radiation_energy(dens, temp) -> np.ndarray:
    """Specific radiation energy a T^4 / rho [erg/g]."""
    t = np.asarray(temp, dtype=np.float64)
    return RADIATION_A * t**4 / np.asarray(dens, dtype=np.float64)


def radiation_entropy(dens, temp) -> np.ndarray:
    """Specific radiation entropy (4/3) a T^3 / rho [erg/g/K]."""
    t = np.asarray(temp, dtype=np.float64)
    return 4.0 / 3.0 * RADIATION_A * t**3 / np.asarray(dens, dtype=np.float64)


__all__ = ["radiation_pressure", "radiation_energy", "radiation_entropy"]
