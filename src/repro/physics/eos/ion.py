"""Ideal ion gas and composition bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import AVOGADRO, BOLTZMANN, H_PLANCK, PROTON_MASS
from repro.util.errors import PhysicsError


@dataclass(frozen=True)
class Composition:
    """Mass fractions of a nuclear mixture -> mean molecular quantities."""

    #: mapping isotope name -> (A, Z, mass fraction)
    species: tuple[tuple[str, float, float, float], ...]

    @classmethod
    def from_fractions(cls, **x: float) -> "Composition":
        """Build from mass fractions, e.g. ``from_fractions(c12=0.5, o16=0.5)``."""
        table = {
            "he4": (4.0, 2.0), "c12": (12.0, 6.0), "o16": (16.0, 8.0),
            "ne20": (20.0, 10.0), "ne22": (22.0, 10.0), "mg24": (24.0, 12.0),
            "si28": (28.0, 14.0), "ni56": (56.0, 28.0), "fe54": (54.0, 26.0),
        }
        total = sum(x.values())
        if not np.isclose(total, 1.0, atol=1e-8):
            raise PhysicsError(f"mass fractions sum to {total}, expected 1")
        species = tuple(
            (name, *table[name], frac) for name, frac in x.items()
            if name in table
        )
        if len(species) != len(x):
            unknown = set(x) - {s[0] for s in species}
            raise PhysicsError(f"unknown isotopes {unknown}")
        return cls(species)

    @property
    def abar(self) -> float:
        """Mean atomic mass: 1 / sum(X_i / A_i)."""
        return 1.0 / sum(x / a for _, a, _, x in self.species)

    @property
    def zbar(self) -> float:
        """Mean charge: abar * sum(X_i Z_i / A_i)."""
        return self.abar * sum(x * z / a for _, a, z, x in self.species)

    @property
    def ye(self) -> float:
        """Electron fraction Z/A of the mixture."""
        return self.zbar / self.abar


#: canonical mixtures for the supernova problem
CO_WD = Composition.from_fractions(c12=0.5, o16=0.5)
#: hybrid C/O/Ne white dwarf of the Type Iax progenitor scenario
HYBRID_CONE_WD = Composition.from_fractions(c12=0.30, o16=0.35, ne20=0.35)
#: silicon-group intermediate ash
SI_ASH = Composition.from_fractions(si28=1.0)
#: iron-group NSE ash
NSE_ASH = Composition.from_fractions(ni56=1.0)


def ion_pressure(dens, temp, abar) -> np.ndarray:
    """Ideal ion pressure P = rho N_A k T / abar [erg/cm^3]."""
    return np.asarray(dens) * AVOGADRO * BOLTZMANN * np.asarray(temp) / abar


def ion_energy(dens, temp, abar) -> np.ndarray:
    """Ideal ion specific internal energy 3/2 kT N_A/abar [erg/g]."""
    return 1.5 * AVOGADRO * BOLTZMANN * np.asarray(temp) / abar


def ion_entropy(dens, temp, abar) -> np.ndarray:
    """Sackur-Tetrode specific entropy of the ions [erg/g/K]."""
    dens = np.asarray(dens, dtype=np.float64)
    temp = np.asarray(temp, dtype=np.float64)
    n = dens * AVOGADRO / abar
    mass = abar * PROTON_MASS
    lam = H_PLANCK / np.sqrt(2.0 * np.pi * mass * BOLTZMANN * temp)
    arg = np.maximum(1.0 / (n * lam**3), 1e-300)
    return AVOGADRO * BOLTZMANN / abar * (np.log(arg) + 2.5)


__all__ = [
    "Composition",
    "CO_WD",
    "HYBRID_CONE_WD",
    "SI_ASH",
    "NSE_ASH",
    "ion_pressure",
    "ion_energy",
    "ion_entropy",
]
