"""Relativistic Fermi-Dirac integrals.

The electron/positron thermodynamics of a white-dwarf interior reduces to
the generalised Fermi-Dirac integrals

.. math::

    F_k(\\eta, \\beta) = \\int_0^\\infty
        \\frac{x^k \\sqrt{1 + \\beta x / 2}}{e^{x-\\eta} + 1}\\, dx

with degeneracy parameter :math:`\\eta = \\mu/kT` and relativity parameter
:math:`\\beta = kT/m_e c^2`, for :math:`k = 1/2, 3/2, 5/2`.

Evaluation uses fixed-order composite Gauss-Legendre panels that track the
Fermi surface (panel boundaries at :math:`\\eta \\pm 30`) plus a
Gauss-Laguerre tail, fully vectorised over ``eta``/``beta`` arrays.
Accuracy is ~1e-9 relative across the white-dwarf regime (verified against
``scipy.integrate.quad`` and degenerate/non-degenerate limits in the
tests), which is ample for table construction.
"""

from __future__ import annotations

import numpy as np

#: quadrature orders (per panel / tail)
_N_PANEL = 120
_N_TAIL = 48
_EDGE = 30.0  # panel half-width around the Fermi surface

_GL_X, _GL_W = np.polynomial.legendre.leggauss(_N_PANEL)
_LAG_X, _LAG_W = np.polynomial.laguerre.laggauss(_N_TAIL)


def _occupancy(arg: np.ndarray) -> np.ndarray:
    """Stable logistic 1 / (e^arg + 1)."""
    e = np.exp(-np.abs(arg))
    return np.where(arg > 0.0, e / (1.0 + e), 1.0 / (1.0 + e))


def _common_factor(x: np.ndarray, eta: np.ndarray, beta: np.ndarray,
                   exp_shift: np.ndarray | None = None) -> np.ndarray:
    """sqrt(x) * sqrt(1 + beta x/2) / (e^{x-eta} + 1)  [times the factored
    exponential for the Laguerre tail].  The three half-integer-k
    integrands are this factor times 1, x, x^2."""
    arg = x - eta
    if exp_shift is not None:
        # occupancy * e^{x - shift}; both stable in log space
        occ = np.where(
            arg > 0.0,
            np.exp(np.clip(x - exp_shift - arg, -700.0, 700.0))
            / (1.0 + np.exp(-np.clip(arg, 0.0, 700.0))),
            np.exp(np.clip(x - exp_shift, -700.0, 700.0))
            / (1.0 + np.exp(np.clip(arg, -700.0, 0.0))),
        )
    else:
        occ = _occupancy(arg)
    return np.sqrt(x * (1.0 + 0.5 * beta * x)) * occ


def fermi_dirac_all(eta, beta) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate ``(F_1/2, F_3/2, F_5/2)`` in one shared pass (broadcasting).

    This is the hot path of table construction: the occupancy and
    relativistic-root factors are computed once and reused across the
    three moments.
    """
    eta = np.asarray(eta, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    shape = np.broadcast_shapes(eta.shape, beta.shape)
    flat_eta = np.broadcast_to(eta, shape).reshape(-1, 1)
    flat_beta = np.broadcast_to(beta, shape).reshape(-1, 1)

    # panel boundaries: [0, m] (sqrt-substituted), [m, b] with
    # a = max(eta-EDGE, 0), b = max(eta+EDGE, 2*EDGE); the origin panel uses
    # x = t^2 to remove the half-integer-power singularity at x = 0.
    a = np.maximum(flat_eta - _EDGE, 0.0)
    b = np.maximum(flat_eta + _EDGE, 2.0 * _EDGE)
    m = np.where(a > 0.0, a, b)

    n = flat_eta.shape[0]
    totals = [np.zeros(n), np.zeros(n), np.zeros(n)]

    def accumulate(x: np.ndarray, w: np.ndarray,
                   exp_shift: np.ndarray | None = None) -> None:
        base = w * _common_factor(x, flat_eta, flat_beta, exp_shift)
        totals[0] += base.sum(axis=1)
        base = base * x
        totals[1] += base.sum(axis=1)
        totals[2] += (base * x).sum(axis=1)

    # origin panel via x = t^2: integral = ∫_0^sqrt(m) 2 t g(t^2) dt
    tmax = np.sqrt(m)
    t = 0.5 * tmax * (_GL_X + 1.0)
    accumulate(t * t, tmax * _GL_W * t)  # w = (tmax/2)*GL_W * 2t
    # Fermi-surface panel [m, b] (zero width when a == 0)
    width = b - m
    x = m + 0.5 * width * (_GL_X + 1.0)
    accumulate(x, 0.5 * width * _GL_W)
    # tail: substitute x = b + t with the e^{-t} Laguerre weight factored out
    xt = b + _LAG_X
    accumulate(xt, np.broadcast_to(_LAG_W, xt.shape), exp_shift=b)

    return tuple(t.reshape(shape) for t in totals)  # type: ignore[return-value]


_K_INDEX = {0.5: 0, 1.5: 1, 2.5: 2}


def fermi_dirac(k: float, eta, beta) -> np.ndarray:
    """Evaluate :math:`F_k(\\eta, \\beta)` elementwise (broadcasting).

    ``k`` must be one of 1/2, 3/2, 5/2 — the moments the EOS needs.
    """
    if k not in _K_INDEX:
        raise ValueError(f"k={k}: only k in (0.5, 1.5, 2.5) supported")
    return fermi_dirac_all(eta, beta)[_K_INDEX[k]]


def fermi_dirac_deta(k: float, eta, beta, rel_step: float = 1.0e-6) -> np.ndarray:
    """:math:`\\partial F_k/\\partial\\eta` by high-order central difference.

    The derivative equals another smooth integral, so a central difference
    with a scale-aware step is accurate to ~1e-8 relative.
    """
    eta = np.asarray(eta, dtype=np.float64)
    h = np.maximum(np.abs(eta), 1.0) * rel_step
    return (fermi_dirac(k, eta + h, beta) - fermi_dirac(k, eta - h, beta)) / (2.0 * h)


__all__ = ["fermi_dirac", "fermi_dirac_deta"]
