"""Electron/positron thermodynamics from Fermi-Dirac integrals.

Follows the classic formulation (Timmes & Arnett 1999): with
:math:`\\beta = kT/m_ec^2` and degeneracy parameter :math:`\\eta`,

.. math::

    n_- &= C_n \\beta^{3/2} [F_{1/2}(\\eta,\\beta) + \\beta F_{3/2}] \\\\
    P_- &= \\tfrac{2}{3} C_n m_ec^2 \\beta^{5/2}
           [F_{3/2}(\\eta,\\beta) + \\tfrac{\\beta}{2} F_{5/2}] \\\\
    u_- &= C_n m_ec^2 \\beta^{5/2} [F_{3/2}(\\eta,\\beta) + \\beta F_{5/2}]

with :math:`C_n = 8\\pi\\sqrt{2}\\,(m_ec/h)^3`.  Positrons use
:math:`\\eta_+ = -\\eta - 2/\\beta` and carry the pair rest-mass energy
:math:`2 m_ec^2 n_+`.  Charge neutrality
:math:`n_- - n_+ = \\rho Y_e N_A` fixes :math:`\\eta`, solved here by a
vectorised bisection (monotone in :math:`\\eta`, hence unconditionally
convergent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import (
    AVOGADRO,
    BOLTZMANN,
    C_LIGHT,
    ELECTRON_MASS,
    H_PLANCK,
    ME_C2,
)
from repro.util.errors import ConvergenceError
from repro.physics.eos.fermi import fermi_dirac_all

#: C_n = 8 pi sqrt(2) (m_e c / h)^3  [1/cm^3]
C_N = 8.0 * np.pi * np.sqrt(2.0) * (ELECTRON_MASS * C_LIGHT / H_PLANCK) ** 3

#: positrons are negligible once eta_+ = -eta - 2/beta < this
_POSITRON_CUTOFF = -40.0


@dataclass
class ElectronState:
    """Electron+positron thermodynamic state (per unit volume)."""

    eta: np.ndarray
    n_ele: np.ndarray  # electron number density [1/cm^3]
    n_pos: np.ndarray  # positron number density [1/cm^3]
    pressure: np.ndarray  # [erg/cm^3]
    energy_density: np.ndarray  # kinetic + pair rest mass [erg/cm^3]
    entropy_density: np.ndarray  # [erg/cm^3/K]


def _species(eta: np.ndarray, beta: np.ndarray):
    """(n, P, u) per unit volume for one lepton species at (eta, beta)."""
    f12, f32, f52 = fermi_dirac_all(eta, beta)
    b32 = beta**1.5
    b52 = beta**2.5
    n = C_N * b32 * (f12 + beta * f32)
    p = (2.0 / 3.0) * C_N * ME_C2 * b52 * (f32 + 0.5 * beta * f52)
    u = C_N * ME_C2 * b52 * (f32 + beta * f52)
    return n, p, u


def net_density(eta, temp) -> np.ndarray:
    """n_- - n_+ at the given degeneracy parameter and temperature [K]."""
    eta = np.asarray(eta, dtype=np.float64)
    temp = np.asarray(temp, dtype=np.float64)
    beta = BOLTZMANN * temp / ME_C2
    n_ele, _, _ = _species(eta, beta)
    eta_pos = -eta - 2.0 / beta
    n_pos = np.zeros_like(n_ele)
    mask = eta_pos > _POSITRON_CUTOFF
    if mask.any():
        n_pos_m, _, _ = _species(eta_pos[mask], beta[mask])
        n_pos[mask] = n_pos_m
    return n_ele - n_pos


def solve_eta(rho_ye, temp, iterations: int = 80) -> np.ndarray:
    """Solve charge neutrality for eta, vectorised bisection.

    ``rho_ye`` is rho * Ye [g/cm^3]; the target net density is
    ``rho_ye * N_A``.
    """
    rho_ye = np.atleast_1d(np.asarray(rho_ye, dtype=np.float64))
    temp = np.broadcast_to(np.asarray(temp, dtype=np.float64), rho_ye.shape)
    target = rho_ye * AVOGADRO
    beta = BOLTZMANN * temp / ME_C2

    # bracket: nondegenerate guess minus margin ... degenerate guess plus margin
    x_f = np.cbrt(3.0 * target / (8.0 * np.pi) * (H_PLANCK /
                                                  (ELECTRON_MASS * C_LIGHT)) ** 3)
    eta_deg = (np.sqrt(1.0 + x_f**2) - 1.0) / beta
    lo = np.full_like(target, -300.0)
    hi = eta_deg * 1.2 + 30.0
    # ensure the bracket really contains the root
    for _ in range(60):
        bad = net_density(hi, temp) < target
        if not bad.any():
            break
        hi = np.where(bad, hi * 2.0 + 60.0, hi)
    else:
        raise ConvergenceError("eta bracket expansion failed")

    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        high = net_density(mid, temp) > target
        hi = np.where(high, mid, hi)
        lo = np.where(high, lo, mid)
    return 0.5 * (lo + hi)


def electron_state(rho_ye, temp, eta=None) -> ElectronState:
    """Full electron/positron state at (rho*Ye, T)."""
    rho_ye = np.atleast_1d(np.asarray(rho_ye, dtype=np.float64))
    temp = np.broadcast_to(np.asarray(temp, dtype=np.float64), rho_ye.shape)
    if eta is None:
        eta = solve_eta(rho_ye, temp)
    beta = BOLTZMANN * temp / ME_C2

    n_ele, p_ele, u_ele = _species(eta, beta)
    eta_pos = -eta - 2.0 / beta
    n_pos = np.zeros_like(n_ele)
    p_pos = np.zeros_like(n_ele)
    u_pos = np.zeros_like(n_ele)
    mask = eta_pos > _POSITRON_CUTOFF
    if mask.any():
        n_m, p_m, u_m = _species(eta_pos[mask], beta[mask])
        n_pos[mask], p_pos[mask] = n_m, p_m
        u_pos[mask] = u_m + 2.0 * ME_C2 * n_m  # pair rest-mass energy

    pressure = p_ele + p_pos
    energy = u_ele + u_pos
    # s = (u + P - mu n)/T summed over species; mu_+ = -mu_- - 2 m c^2
    kt = BOLTZMANN * temp
    s_ele = (u_ele + p_ele - eta * kt * n_ele) / temp
    s_pos = (u_pos + p_pos - eta_pos * kt * n_pos) / temp
    return ElectronState(
        eta=eta,
        n_ele=n_ele,
        n_pos=n_pos,
        pressure=pressure,
        energy_density=energy,
        entropy_density=s_ele + s_pos,
    )


def cold_degenerate_pressure(rho_ye) -> np.ndarray:
    """Analytic T=0 electron pressure (Chandrasekhar), for verification.

    P = (pi m^4 c^5 / 3 h^3) f(x),
    f(x) = x(2x^2-3)sqrt(x^2+1) + 3 asinh(x), x = p_F / m_e c.
    """
    rho_ye = np.asarray(rho_ye, dtype=np.float64)
    n = rho_ye * AVOGADRO
    lam = H_PLANCK / (ELECTRON_MASS * C_LIGHT)
    x = np.cbrt(3.0 * n * lam**3 / (8.0 * np.pi))
    a = np.pi * ELECTRON_MASS**4 * C_LIGHT**5 / (3.0 * H_PLANCK**3)
    f = x * (2.0 * x**2 - 3.0) * np.sqrt(x**2 + 1.0) + 3.0 * np.arcsinh(x)
    return a * f


__all__ = [
    "ElectronState",
    "electron_state",
    "solve_eta",
    "net_density",
    "cold_degenerate_pressure",
    "C_N",
]
