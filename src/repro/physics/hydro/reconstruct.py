"""Slope-limited piecewise-linear reconstruction (the "M" of MUSCL)."""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigurationError


def _shift(q: np.ndarray, axis: int, offset: int) -> np.ndarray:
    """q shifted by ``offset`` along ``axis`` (edge-clamped view-copy)."""
    out = np.empty_like(q)
    src = [slice(None)] * q.ndim
    dst = [slice(None)] * q.ndim
    if offset > 0:
        src[axis] = slice(None, -offset)
        dst[axis] = slice(offset, None)
        edge = [slice(None)] * q.ndim
        edge[axis] = slice(0, offset)
        out[tuple(edge)] = np.take(q, [0], axis=axis)
    elif offset < 0:
        src[axis] = slice(-offset, None)
        dst[axis] = slice(None, offset)
        edge = [slice(None)] * q.ndim
        edge[axis] = slice(offset, None)
        out[tuple(edge)] = np.take(q, [-1], axis=axis)
    else:
        return q.copy()
    out[tuple(dst)] = q[tuple(src)]
    return out


def _minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    keep = a * b > 0.0
    return np.where(keep, np.where(np.abs(a) < np.abs(b), a, b), 0.0)


def limited_slopes(q: np.ndarray, axis: int, limiter: str = "mc") -> np.ndarray:
    """Per-cell limited slope of ``q`` along ``axis``.

    Limiters: ``minmod`` (most dissipative), ``mc`` (monotonised central,
    FLASH's usual choice), ``vanleer``.
    """
    dqf = _shift(q, axis, -1) - q  # q[i+1] - q[i]
    dqb = q - _shift(q, axis, 1)  # q[i] - q[i-1]
    if limiter == "minmod":
        return _minmod(dqf, dqb)
    if limiter == "mc":
        centred = 0.5 * (dqf + dqb)
        lim = _minmod(dqf, dqb)
        return _minmod(centred, 2.0 * lim)
    if limiter == "vanleer":
        denom = dqf + dqb
        with np.errstate(invalid="ignore", divide="ignore"):
            s = np.where(dqf * dqb > 0.0, 2.0 * dqf * dqb / denom, 0.0)
        return np.where(np.isfinite(s), s, 0.0)
    raise ConfigurationError(f"unknown limiter {limiter!r}")


def face_states(q: np.ndarray, axis: int, limiter: str = "mc"):
    """Left/right extrapolations of ``q`` to its cell faces:
    ``(q_minus, q_plus)`` where minus/plus are the low/high-face values of
    *each cell* (not yet paired across the interface)."""
    slope = limited_slopes(q, axis, limiter)
    return q - 0.5 * slope, q + 0.5 * slope


__all__ = ["limited_slopes", "face_states"]
