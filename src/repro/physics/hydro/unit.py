"""The Hydro unit: CFL timestep + one full (Strang-alternated) step.

Mirrors FLASH's ``hy_ppm`` driver structure: per directional sweep the
guard cells are filled, every leaf block is updated, fluxes are matched at
refinement jumps, and the EOS is re-applied to the interiors.  The unit
also keeps :class:`HydroWork` counters for the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import (
    FINE,
    ParameterSpec,
    RecordContext,
    UnitSpec,
    WorkKind,
    unit_registry,
)
from repro.hw import calibration as cal
from repro.mesh.grid import Grid
from repro.mesh.guardcell import BoundaryConditions, fill_guardcells
from repro.perfmodel.workrecord import UnitInvocation
from repro.physics.eos.apply import EosWork, apply_eos
from repro.physics.hydro.riemann import max_wave_speed
from repro.physics.hydro.sweep import sweep_blocks
from repro.util.errors import PhysicsError


@dataclass
class HydroWork:
    """Work accounting for the hydro unit (performance model input)."""

    zone_sweeps: int = 0
    guardcell_fills: int = 0
    eos: EosWork = field(default_factory=EosWork)


class HydroUnit:
    """Directionally split compressible hydro on the AMR mesh."""

    def __init__(self, eos, *, cfl: float = 0.4, limiter: str = "mc",
                 bc: BoundaryConditions | None = None,
                 species: tuple[str, ...] = (),
                 composition=None,
                 conserve_fluxes: bool = True,
                 instrumentation=None) -> None:
        if not 0.0 < cfl <= 1.0:
            raise PhysicsError("CFL number must be in (0, 1]")
        self.eos = eos
        self.cfl = cfl
        self.limiter = limiter
        self.bc = bc or BoundaryConditions()
        self.species = tuple(species)
        self.composition = composition
        self.conserve_fluxes = conserve_fluxes
        #: optional PAPI-style region instrumentation
        #: (:class:`repro.papi.instrument.PapiInstrumentation`): brackets
        #: the hydro sweeps and EOS calls the way the paper's runs did
        self.instrumentation = instrumentation
        self.work = HydroWork()
        self._parity = 0

    # --- timestep ---------------------------------------------------------------
    def timestep(self, grid: Grid) -> float:
        """CFL-limited timestep over all leaf blocks."""
        dt = np.inf
        n = grid.spec.interior_zones
        for block in grid.leaf_blocks():
            prim = {v: grid.interior(block, v)
                    for v in ("dens", "velx", "vely", "velz", "pres")}
            gamc = grid.interior(block, "gamc")
            speed = max_wave_speed(prim, gamc, grid.spec.ndim)
            dx = min(block.deltas(n)[:grid.spec.ndim])
            local = dx / float(speed.max())
            dt = min(dt, local)
        if not np.isfinite(dt) or dt <= 0.0:
            raise PhysicsError("CFL timestep collapsed (bad state?)")
        return self.cfl * dt

    # --- step -------------------------------------------------------------------
    def step(self, grid: Grid, dt: float) -> HydroWork:
        """Advance all blocks by dt (one sweep per dimension)."""
        ndim = grid.spec.ndim
        axes = tuple(range(ndim))
        if self._parity % 2:
            axes = axes[::-1]
        self._parity += 1

        step_work = HydroWork()
        inst = self.instrumentation
        for axis in axes:
            fill_guardcells(grid, self.bc)
            step_work.guardcell_fills += 1
            if inst is not None:
                inst.begin("hydro")
            sweep_blocks(grid, dt, axis, species=self.species,
                         limiter=self.limiter,
                         conserve_fluxes=self.conserve_fluxes)
            if inst is not None:
                inst.end("hydro")
            step_work.zone_sweeps += (len(grid.leaf_blocks())
                                      * grid.spec.zones_per_block())
            if inst is not None:
                inst.begin("eos")
            ew = apply_eos(grid, self.eos, mode="dens_ei",
                           composition=self.composition, species=self.species)
            if inst is not None:
                inst.end("eos")
            step_work.eos += ew
        self.work.zone_sweeps += step_work.zone_sweeps
        self.work.guardcell_fills += step_work.guardcell_fills
        self.work.eos += step_work.eos
        return step_work


def _record(sim, unit: HydroUnit, ctx: RecordContext) -> list[UnitInvocation]:
    """Per directional sweep: a guard-cell fill, the sweep itself, and the
    mesh-wide EOS re-application (Helmholtz or gamma-law, per the hydro
    unit's attached EOS) with its recorded Newton iteration density."""
    out: list[UnitInvocation] = []
    for axis in range(ctx.ndim):
        out.append(UnitInvocation(unit="guardcell", zones=ctx.zones, axis=axis))
        out.append(UnitInvocation(unit="hydro_sweep", zones=ctx.zones,
                                  axis=axis))
        per_call_iters = ctx.eos_iters // max(ctx.eos_calls, 1)
        out.append(UnitInvocation(
            unit="eos" if ctx.helmholtz_eos else "eos_gamma",
            zones=ctx.zones,
            newton_iterations=per_call_iters if ctx.helmholtz_eos else 0,
        ))
    return out


def _save_state(sim, unit: HydroUnit) -> dict[str, float]:
    """Everything a checkpoint (or a step rollback) must capture to make
    a resumed run's recorded work continue bit-identically."""
    return {
        "parity": unit._parity,
        "zone_sweeps": unit.work.zone_sweeps,
        "guardcell_fills": unit.work.guardcell_fills,
        "eos_zones": unit.work.eos.zones,
        "eos_newton_iterations": unit.work.eos.newton_iterations,
        "eos_calls": unit.work.eos.calls,
    }


def _restore_state(sim, unit: HydroUnit, state: dict[str, float]) -> None:
    unit._parity = int(state["parity"])
    unit.work.zone_sweeps = int(state["zone_sweeps"])
    unit.work.guardcell_fills = int(state["guardcell_fills"])
    unit.work.eos.zones = int(state["eos_zones"])
    unit.work.eos.newton_iterations = int(state["eos_newton_iterations"])
    unit.work.eos.calls = int(state["eos_calls"])


HYDRO_UNIT = unit_registry.register(UnitSpec(
    name="hydro",
    description="directionally split compressible hydrodynamics (MUSCL "
                "reconstruction, HLLC fluxes, flux conservation at jumps)",
    phase=10,
    timer="hydro",
    implements=(HydroUnit,),
    step=lambda sim, unit, dt: unit.step(sim.grid, dt),
    timestep=lambda sim, unit: unit.timestep(sim.grid),
    record=_record,
    provides_bc=True,
    save_state=_save_state,
    restore_state=_restore_state,
    parameters=(
        ParameterSpec("cfl", 0.4, doc="CFL stability factor"),
        ParameterSpec("smlrho", 1.0e-12, doc="density floor"),
        ParameterSpec("smallp", 1.0e-12, doc="pressure floor"),
    ),
    work_kinds=(
        WorkKind("hydro_sweep", cal.HYDRO_SWEEP, "hydro", FINE,
                 region="hydro"),
    ),
))

__all__ = ["HydroUnit", "HydroWork", "HYDRO_UNIT"]
