"""HLLC approximate Riemann solver (Toro, ch. 10) with passive scalars.

States arrive as dicts of arrays giving the left/right primitive states at
each interface; the normal direction is abstracted by passing the names of
the normal and transverse velocity components.  A per-interface gamma (the
larger of the two ``game`` values, a robust choice for general-EOS
operation) closes the energy equation.
"""

from __future__ import annotations

import numpy as np

from repro.physics.hydro.state import SMALL_DENS, SMALL_PRES


def _flux_from_state(prim, vn_name, gamma, species):
    """Physical flux of one state through a face with normal velocity vn."""
    rho = prim["dens"]
    vn = prim[vn_name]
    pres = prim["pres"]
    eint = pres / ((gamma - 1.0) * rho)
    ke = 0.5 * (prim["velx"] ** 2 + prim["vely"] ** 2 + prim["velz"] ** 2)
    etot = rho * (eint + ke)
    flux = {
        "dens": rho * vn,
        "momx": rho * vn * prim["velx"],
        "momy": rho * vn * prim["vely"],
        "momz": rho * vn * prim["velz"],
        "ener": vn * (etot + pres),
    }
    mom_n = "mom" + vn_name[-1]
    flux[mom_n] = flux[mom_n] + pres
    for s in species:
        flux[s] = rho * vn * prim[s]
    return flux, etot


def hllc_flux(left: dict, right: dict, axis: int,
              species: tuple[str, ...] = ()) -> dict[str, np.ndarray]:
    """HLLC flux through interfaces with the given left/right states.

    ``axis`` picks the normal velocity (0 -> velx, 1 -> vely, 2 -> velz).
    Returns conserved fluxes keyed like the conserved state.
    """
    vn_name = ("velx", "vely", "velz")[axis]
    mom_n = "mom" + vn_name[-1]

    rho_l = np.maximum(left["dens"], SMALL_DENS)
    rho_r = np.maximum(right["dens"], SMALL_DENS)
    p_l = np.maximum(left["pres"], SMALL_PRES)
    p_r = np.maximum(right["pres"], SMALL_PRES)
    u_l, u_r = left[vn_name], right[vn_name]
    gamma = np.maximum(left["game"], right["game"])

    c_l = np.sqrt(gamma * p_l / rho_l)
    c_r = np.sqrt(gamma * p_r / rho_r)

    # Davis wave-speed estimates
    s_l = np.minimum(u_l - c_l, u_r - c_r)
    s_r = np.maximum(u_l + c_l, u_r + c_r)
    # contact speed
    denom = rho_l * (s_l - u_l) - rho_r * (s_r - u_r)
    s_star = (p_r - p_l + rho_l * u_l * (s_l - u_l)
              - rho_r * u_r * (s_r - u_r)) / np.where(denom != 0.0, denom, 1e-300)

    f_l, e_l = _flux_from_state(left, vn_name, gamma, species)
    f_r, e_r = _flux_from_state(right, vn_name, gamma, species)

    def star_flux(prim, f, etot, s_k, rho, u, p):
        """F* = F_k + S_k (U* - U_k) for the HLLC star region."""
        factor = rho * (s_k - u) / np.where(s_k - s_star != 0.0,
                                            s_k - s_star, 1e-300)
        out = {}
        u_cons = {
            "dens": rho,
            "momx": rho * prim["velx"],
            "momy": rho * prim["vely"],
            "momz": rho * prim["velz"],
            "ener": etot,
        }
        u_star = {
            "dens": factor,
            "momx": factor * prim["velx"],
            "momy": factor * prim["vely"],
            "momz": factor * prim["velz"],
            "ener": factor * (etot / rho + (s_star - u)
                              * (s_star + p / (rho * (s_k - u)))),
        }
        u_star[mom_n] = factor * s_star
        for s in species:
            u_cons[s] = rho * prim[s]
            u_star[s] = factor * prim[s]
        for key in u_cons:
            out[key] = f[key] + s_k * (u_star[key] - u_cons[key])
        return out

    fl_star = star_flux(left, f_l, e_l, s_l, rho_l, u_l, p_l)
    fr_star = star_flux(right, f_r, e_r, s_r, rho_r, u_r, p_r)

    out = {}
    for key in f_l:
        out[key] = np.where(
            s_l >= 0.0, f_l[key],
            np.where(s_star >= 0.0, fl_star[key],
                     np.where(s_r >= 0.0, fr_star[key], f_r[key])),
        )
    return out


def max_wave_speed(prim: dict[str, np.ndarray], gamc: np.ndarray,
                   ndim: int) -> np.ndarray:
    """|v| + c_s per zone, for the CFL condition."""
    cs = np.sqrt(gamc * prim["pres"] / prim["dens"])
    speed = np.abs(prim["velx"])
    if ndim > 1:
        speed = np.maximum(speed, np.abs(prim["vely"]))
    if ndim > 2:
        speed = np.maximum(speed, np.abs(prim["velz"]))
    return speed + cs


__all__ = ["hllc_flux", "max_wave_speed"]
