"""Dimensionally split MUSCL-Hancock sweeps over all leaf blocks.

The sweep is vectorised across blocks: every leaf's padded panel is
stacked into arrays shaped ``(NX, NY, NZ, nblocks)`` so each NumPy kernel
touches all blocks at once (Python loops over blocks appear only in the
flux-matching bookkeeping).  At coarse/fine interfaces the coarse block's
boundary flux is replaced by the area-averaged fine flux *before* the
update is applied, so conservation across refinement jumps is exact.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.grid import Grid
from repro.mesh.prolong import restrict_fluxes
from repro.physics.hydro.reconstruct import face_states
from repro.physics.hydro.riemann import hllc_flux
from repro.physics.hydro.state import SMALL_DENS, SMALL_EINT

PRIM_VARS = ("dens", "velx", "vely", "velz", "pres", "game")
CONS_KEYS = ("dens", "momx", "momy", "momz", "ener")


def _gather(grid: Grid, slots: list[int], names) -> dict[str, np.ndarray]:
    """Stack named variables of the given slots: (NX, NY, NZ, NB) each."""
    out = {}
    for name in names:
        out[name] = grid.unk[grid.var(name)][..., slots]
    return out


def _physical_flux(prim, axis, species):
    """Physical flux of a primitive state along ``axis`` (conserved keys)."""
    vn = prim[("velx", "vely", "velz")[axis]]
    rho = prim["dens"]
    pres = prim["pres"]
    eint = pres / ((prim["game"] - 1.0) * rho)
    ke = 0.5 * (prim["velx"] ** 2 + prim["vely"] ** 2 + prim["velz"] ** 2)
    flux = {
        "dens": rho * vn,
        "momx": rho * vn * prim["velx"],
        "momy": rho * vn * prim["vely"],
        "momz": rho * vn * prim["velz"],
        "ener": vn * (rho * (eint + ke) + pres),
    }
    flux["mom" + "xyz"[axis]] += pres
    for s in species:
        flux[s] = rho * vn * prim[s]
    return flux


def _cons(prim, species):
    rho = prim["dens"]
    eint = prim["pres"] / ((prim["game"] - 1.0) * rho)
    ke = 0.5 * (prim["velx"] ** 2 + prim["vely"] ** 2 + prim["velz"] ** 2)
    cons = {
        "dens": rho,
        "momx": rho * prim["velx"],
        "momy": rho * prim["vely"],
        "momz": rho * prim["velz"],
        "ener": rho * (eint + ke),
    }
    for s in species:
        cons[s] = rho * prim[s]
    return cons


def _prim_from_cons(cons, game, species):
    rho = np.maximum(cons["dens"], SMALL_DENS)
    out = {
        "dens": rho,
        "velx": cons["momx"] / rho,
        "vely": cons["momy"] / rho,
        "velz": cons["momz"] / rho,
        "game": game,
    }
    ke = 0.5 * (out["velx"] ** 2 + out["vely"] ** 2 + out["velz"] ** 2)
    eint = np.maximum(cons["ener"] / rho - ke, SMALL_EINT)
    out["pres"] = np.maximum((game - 1.0) * rho * eint, 1e-30)
    for s in species:
        out[s] = np.clip(cons[s] / rho, 0.0, 1.0)
    return out


def sweep_blocks(grid: Grid, dt: float, axis: int,
                 species: tuple[str, ...] = (), limiter: str = "mc",
                 conserve_fluxes: bool = True) -> None:
    """One directional sweep updating every leaf block in place.

    Requires guard cells to be freshly filled.  Updates ``dens``, the
    velocities, ``ener`` (specific total), ``eint``, and the advected
    ``species``; callers refresh pressure/temperature via the EOS.
    """
    blocks = grid.leaf_blocks()
    if not blocks:
        return
    slots = [b.slot for b in blocks]
    g = grid.spec.nguard
    n = grid.spec.interior_zones
    n_a = n[axis]

    prim = _gather(grid, slots, PRIM_VARS + tuple(species))
    # sanitise: corner guard zones at physical corners are never filled
    # (and never used); floor them so no NaNs leak into the vector kernels
    prim["dens"] = np.maximum(prim["dens"], SMALL_DENS)
    prim["pres"] = np.maximum(prim["pres"], 1e-30)
    prim["game"] = np.clip(prim["game"], 1.01, 3.0)

    # --- reconstruct + Hancock half step -----------------------------------------
    wm, wp = {}, {}
    for name in PRIM_VARS + tuple(species):
        wm[name], wp[name] = face_states(prim[name], axis, limiter)

    dx = np.array([b.deltas(n)[axis] for b in blocks])
    lam = 0.5 * dt / dx  # broadcast over trailing block axis

    f_m = _physical_flux(wm, axis, species)
    f_p = _physical_flux(wp, axis, species)
    u_m = _cons(wm, species)
    u_p = _cons(wp, species)
    for key in u_m:
        dudt = lam * (f_m[key] - f_p[key])
        u_m[key] = u_m[key] + dudt
        u_p[key] = u_p[key] + dudt
    wbar_m = _prim_from_cons(u_m, prim["game"], species)
    wbar_p = _prim_from_cons(u_p, prim["game"], species)

    # --- interface fluxes ----------------------------------------------------------
    # interface j (j = 0..n_a) sits between cells (g-1+j, g+j) along axis
    def cells(state, lo, hi):
        sel = [slice(None)] * 4
        sel[axis] = slice(lo, hi)
        return {k: v[tuple(sel)] for k, v in state.items()}

    left = cells(wbar_p, g - 1, g + n_a)
    right = cells(wbar_m, g, g + n_a + 1)
    flux = hllc_flux(left, right, axis, species)

    # --- flux matching at refinement jumps ------------------------------------------
    if conserve_fluxes:
        _match_fluxes(grid, blocks, flux, axis)

    # --- conservative update ----------------------------------------------------------
    interior = [slice(None)] * 4
    interior[axis] = slice(g, g + n_a)
    lo_f = [slice(None)] * 4
    lo_f[axis] = slice(0, n_a)
    hi_f = [slice(None)] * 4
    hi_f[axis] = slice(1, n_a + 1)

    cons = {k: v[tuple(interior)].copy() for k, v in _cons(prim, species).items()}
    lam_full = dt / dx
    for key in cons:
        cons[key] += lam_full * (flux[key][tuple(lo_f)] - flux[key][tuple(hi_f)])

    game_int = prim["game"][tuple(interior)]
    new = _prim_from_cons(cons, game_int, species)

    # --- write back --------------------------------------------------------------------
    sx, sy, sz = grid.spec.interior_slices()

    def put(name, arr):
        # two-step indexing: unk[var] is a basic view, so `slots` is the
        # only advanced index and the block axis stays in place
        grid.unk[grid.var(name)][sx, sy, sz, slots] = _restrict_to_interior(
            grid, arr, axis)

    def _restrict_to_interior(grid, arr, axis):
        # arr covers the interior along `axis` and the full padded extent
        # on the transverse axes; cut the transverse guards
        sel = [slice(None)] * 4
        for t in range(3):
            if t == axis:
                continue
            full = grid.spec.padded_shape[t]
            if full == grid.spec.interior_zones[t]:
                continue
            sel[t] = slice(g, g + grid.spec.interior_zones[t])
        return arr[tuple(sel)]

    ke = 0.5 * (new["velx"] ** 2 + new["vely"] ** 2 + new["velz"] ** 2)
    eint = np.maximum(cons["ener"] / new["dens"] - ke, SMALL_EINT)
    put("dens", new["dens"])
    put("velx", new["velx"])
    put("vely", new["vely"])
    put("velz", new["velz"])
    put("ener", eint + ke)
    put("eint", eint)
    for s in species:
        put(s, new[s])


def _match_fluxes(grid: Grid, blocks, flux: dict[str, np.ndarray],
                  axis: int) -> None:
    """Overwrite coarse boundary fluxes with restricted fine fluxes."""
    tree = grid.tree
    g = grid.spec.nguard
    n = grid.spec.interior_zones
    n_a = n[axis]
    index_of = {b.bid: i for i, b in enumerate(blocks)}
    transverse = [t for t in range(grid.spec.ndim) if t != axis]
    active_face_dims = tuple(range(len(transverse)))

    def face_slice(j, b_idx):
        sel: list = [slice(None)] * 3
        sel[axis] = j
        # transverse interior only
        for t in range(3):
            if t == axis:
                continue
            if grid.spec.padded_shape[t] != grid.spec.interior_zones[t]:
                sel[t] = slice(g, g + grid.spec.interior_zones[t])
        return tuple(sel + [b_idx])

    for b_idx, block in enumerate(blocks):
        for direction, j_coarse in ((-1, 0), (1, n_a)):
            kind, info = tree.face_neighbor(block.bid, axis, direction)
            if kind != "finer":
                continue
            j_fine = n_a if direction < 0 else 0
            for child in info:
                c_idx = index_of[child]
                for key, arr in flux.items():
                    fine_face = arr[face_slice(j_fine, c_idx)]
                    # fine_face axes: the (up to 2) transverse dims
                    coarse = restrict_fluxes(fine_face[None], active_face_dims)[0]
                    target = arr[face_slice(j_coarse, b_idx)]
                    sel = []
                    for t in transverse:
                        ct = child.coords()[t] % 2
                        half = n[t] // 2
                        sel.append(slice(ct * half, (ct + 1) * half))
                    while len(sel) < target.ndim:
                        sel.append(slice(None))
                    target[tuple(sel)] = coarse


__all__ = ["sweep_blocks"]
