"""Compressible hydrodynamics: dimensionally split MUSCL-Hancock + HLLC.

FLASH's default hydro solver is the directionally split PPM of the
original FLASH paper; we substitute the standard MUSCL-Hancock scheme
(Toro ch. 14) with an HLLC Riemann solver — the same class of method
(finite-volume, dimensionally split, second order, guard-cell driven)
with the same memory access structure, which is what the reproduction
needs (DESIGN.md section 2).
"""

from repro.physics.hydro.state import conserved_from_primitive, primitive_from_conserved
from repro.physics.hydro.riemann import hllc_flux
from repro.physics.hydro.reconstruct import limited_slopes
from repro.physics.hydro.sweep import sweep_blocks
from repro.physics.hydro.unit import HydroUnit

__all__ = [
    "conserved_from_primitive",
    "primitive_from_conserved",
    "hllc_flux",
    "limited_slopes",
    "sweep_blocks",
    "HydroUnit",
]
