"""Primitive/conserved state conversion with positivity floors.

State arrays are dicts of NumPy arrays sharing one shape:

* primitive: ``dens``, ``velx/vely/velz``, ``pres``, plus ``game``
  (energy gamma: P = (game-1) rho eint) and any passive mass scalars;
* conserved: ``dens``, momentum ``mom*``, total energy density ``ener``
  (rho * (eint + v^2/2)), plus ``rho * scalar``.
"""

from __future__ import annotations

import numpy as np

#: default floors, in CGS — generous enough for both test problems
SMALL_DENS = 1.0e-12
SMALL_PRES = 1.0e-12
SMALL_EINT = 1.0e-12

VELS = ("velx", "vely", "velz")


def conserved_from_primitive(prim: dict[str, np.ndarray],
                             species: tuple[str, ...] = ()) -> dict[str, np.ndarray]:
    """Primitive -> conserved. ``game`` closes the energy equation."""
    dens = prim["dens"]
    eint = prim["pres"] / ((prim["game"] - 1.0) * dens)
    ke = 0.5 * (prim["velx"] ** 2 + prim["vely"] ** 2 + prim["velz"] ** 2)
    cons = {
        "dens": dens.copy(),
        "momx": dens * prim["velx"],
        "momy": dens * prim["vely"],
        "momz": dens * prim["velz"],
        "ener": dens * (eint + ke),
    }
    for name in species:
        cons[name] = dens * prim[name]
    return cons


def primitive_from_conserved(cons: dict[str, np.ndarray],
                             game: np.ndarray,
                             species: tuple[str, ...] = ()) -> dict[str, np.ndarray]:
    """Conserved -> primitive with floors (returns a fresh dict).

    ``game`` is carried through unchanged; callers refresh it with an EOS
    call afterwards.
    """
    dens = np.maximum(cons["dens"], SMALL_DENS)
    velx = cons["momx"] / dens
    vely = cons["momy"] / dens
    velz = cons["momz"] / dens
    ke = 0.5 * (velx**2 + vely**2 + velz**2)
    eint = np.maximum(cons["ener"] / dens - ke, SMALL_EINT)
    pres = np.maximum((game - 1.0) * dens * eint, SMALL_PRES)
    prim = {
        "dens": dens,
        "velx": velx,
        "vely": vely,
        "velz": velz,
        "pres": pres,
        "game": np.array(game, copy=True),
    }
    for name in species:
        prim[name] = np.clip(cons[name] / dens, 0.0, 1.0)
    return prim


def specific_total_energy(prim: dict[str, np.ndarray]) -> np.ndarray:
    """rho-specific total energy E = eint + v^2/2 from primitives."""
    eint = prim["pres"] / ((prim["game"] - 1.0) * prim["dens"])
    ke = 0.5 * (prim["velx"] ** 2 + prim["vely"] ** 2 + prim["velz"] ** 2)
    return eint + ke


__all__ = [
    "conserved_from_primitive",
    "primitive_from_conserved",
    "specific_total_energy",
    "SMALL_DENS",
    "SMALL_PRES",
    "SMALL_EINT",
    "VELS",
]
