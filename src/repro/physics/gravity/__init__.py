"""Self-gravity (monopole approximation)."""

from repro.physics.gravity.monopole import MonopoleGravity

__all__ = ["MonopoleGravity"]
