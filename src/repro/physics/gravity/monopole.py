"""Monopole self-gravity: spherically averaged enclosed-mass field.

FLASH's supernova setups typically run the multipole Poisson solver with
low ell; for a nearly spherical white dwarf the monopole term dominates
utterly, so we implement the ell=0 solver (FLASH's "new multipole" with
``mpole_lmax=0``): bin the density into radial shells about the star's
centre, build a spherically averaged density profile, integrate

``M(<r) = 4 pi \\int_0^r rho(r') r'^2 dr'``

and apply ``g = -G M(<r)/r^2`` toward the centre.  The source is coupled
operator-split: ``v += g dt``, ``E += v.g dt`` (using the time-centred
velocity for second-order energy coupling).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.grid import Grid
from repro.util.constants import G_NEWTON


@dataclass
class MonopoleGravity:
    """ell = 0 self-gravity unit."""

    center: tuple[float, float, float] = (0.0, 0.0, 0.0)
    n_bins: int = 256
    #: computed profile (updated by :meth:`update_potential`)
    r_edges: np.ndarray | None = field(default=None, repr=False)
    m_enclosed: np.ndarray | None = field(default=None, repr=False)

    def _radii(self, grid: Grid, block) -> np.ndarray:
        x, y, z = grid.cell_centers(block)
        dx = x - self.center[0]
        dy = (y - self.center[1]) if grid.spec.ndim > 1 else 0.0
        dz = (z - self.center[2]) if grid.spec.ndim > 2 else 0.0
        return np.sqrt(dx**2 + dy**2 + dz**2)

    def update_potential(self, grid: Grid) -> None:
        """Rebuild the spherically averaged M(<r) from the current mesh.

        The 2-d supernova simulations interpret the plane as a slice
        through a spherical star: densities are averaged in radius and the
        enclosed mass integral is performed spherically (the standard
        FLASH trick for cheap 2-d gravity).
        """
        r_max = 0.0
        for block in grid.leaf_blocks():
            for (lo, hi), c in zip(block.bbox, self.center):
                r_max = max(r_max, abs(hi - c), abs(lo - c))
        r_max *= np.sqrt(grid.spec.ndim)
        edges = np.linspace(0.0, r_max, self.n_bins + 1)

        mass_w = np.zeros(self.n_bins)
        vol_w = np.zeros(self.n_bins)
        for block in grid.leaf_blocks():
            r = self._radii(grid, block)
            dens = grid.interior(block, "dens")
            vol = grid.cell_volume(block)
            r_flat = np.broadcast_to(r, dens.shape).ravel()
            idx = np.clip(np.searchsorted(edges, r_flat) - 1, 0, self.n_bins - 1)
            mass_w += np.bincount(idx, weights=dens.ravel() * vol,
                                  minlength=self.n_bins)
            vol_w += np.bincount(idx, weights=np.full(r_flat.size, vol),
                                 minlength=self.n_bins)

        with np.errstate(invalid="ignore", divide="ignore"):
            rho_bar = np.where(vol_w > 0.0, mass_w / vol_w, 0.0)
        # fill empty bins from the previous non-empty one (rare, coarse mesh)
        for i in range(1, self.n_bins):
            if vol_w[i] == 0.0:
                rho_bar[i] = rho_bar[i - 1]
        centers = 0.5 * (edges[:-1] + edges[1:])
        shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
        self.r_edges = edges
        self.m_enclosed = np.concatenate([[0.0], np.cumsum(rho_bar * shell_vol)])
        self._centers = centers

    def enclosed_mass(self, r) -> np.ndarray:
        """Interpolated M(<r)."""
        if self.m_enclosed is None:
            raise RuntimeError("call update_potential first")
        return np.interp(np.asarray(r), self.r_edges, self.m_enclosed)

    def acceleration_magnitude(self, r) -> np.ndarray:
        r = np.maximum(np.asarray(r, dtype=np.float64), 1e-30)
        return -G_NEWTON * self.enclosed_mass(r) / r**2

    def accelerate(self, grid: Grid, dt: float,
                   refresh_potential: bool = True) -> None:
        """Apply the gravitational source term to all leaves for dt."""
        if refresh_potential or self.m_enclosed is None:
            self.update_potential(grid)
        iv = [grid.var(v) for v in ("velx", "vely", "velz")]
        ie = grid.var("ener")
        for block in grid.leaf_blocks():
            x, y, z = grid.cell_centers(block)
            dxc = x - self.center[0]
            dyc = (y - self.center[1]) if grid.spec.ndim > 1 else np.zeros_like(y)
            dzc = (z - self.center[2]) if grid.spec.ndim > 2 else np.zeros_like(z)
            r = np.sqrt(dxc**2 + dyc**2 + dzc**2)
            r = np.maximum(r, 1e-30)
            g_over_r = self.acceleration_magnitude(r) / r
            gx, gy, gz = g_over_r * dxc, g_over_r * dyc, g_over_r * dzc

            data = grid.interior(block)
            vx0 = data[iv[0]].copy()
            vy0 = data[iv[1]].copy()
            vz0 = data[iv[2]].copy()
            data[iv[0]] += gx * dt
            if grid.spec.ndim > 1:
                data[iv[1]] += gy * dt
            if grid.spec.ndim > 2:
                data[iv[2]] += gz * dt
            # time-centred energy coupling
            data[ie] += dt * (
                gx * 0.5 * (vx0 + data[iv[0]])
                + gy * 0.5 * (vy0 + data[iv[1]])
                + gz * 0.5 * (vz0 + data[iv[2]])
            )


__all__ = ["MonopoleGravity"]
