"""The Gravity unit's declarations.

Monopole self-gravity applies a kick after the hydro update; its work is
a coarse (panel-granularity) streaming pass — no table gathers, so no
fine TLB trace.
"""

from __future__ import annotations

from repro.core import (
    COARSE,
    RecordContext,
    UnitSpec,
    WorkKind,
    unit_registry,
)
from repro.hw import calibration as cal
from repro.perfmodel.workrecord import UnitInvocation
from repro.physics.gravity.monopole import MonopoleGravity


def _record(sim, unit, ctx: RecordContext) -> list[UnitInvocation]:
    return [UnitInvocation(unit="gravity", zones=ctx.zones)]


GRAVITY_UNIT = unit_registry.register(UnitSpec(
    name="gravity",
    description="spherically averaged monopole self-gravity",
    phase=20,
    timer="gravity",
    implements=(MonopoleGravity,),
    step=lambda sim, unit, dt: unit.accelerate(sim.grid, dt),
    record=_record,
    work_kinds=(
        WorkKind("gravity", cal.GRAVITY_STEP, "gravity", COARSE),
    ),
))

__all__ = ["GRAVITY_UNIT"]
