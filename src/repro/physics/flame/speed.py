"""Laminar flame speeds and turbulent enhancement.

The paper: "Flame speeds are from the tabulated results of previous
calculations [Timmes & Woosley 1992; Chamulak, Brown & Timmes 2007] and
also include enhancement to the burning rate from unresolved buoyancy and
background turbulence [Khokhlov 1995; Townsley et al. 2007; Jackson,
Townsley & Calder 2014]."

We synthesise the table from the published TW92 power-law fit

``s_lam ~ 92 km/s (rho/2e9)^0.805 (X_C/0.5)^0.889``

sampled onto a (log rho, X_C) grid and bilinearly interpolated — the same
structure (and the same gather-from-table memory behaviour) as the
tabulated speeds FLASH reads.  Turbulence/buoyancy enhancement follows the
Khokhlov-style quadrature blend ``s_t = sqrt(s_lam^2 + C u'^2)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import PhysicsError

#: TW92-style fit anchors
_S0 = 9.2e6  # cm/s at rho = 2e9, X_C = 0.5
_RHO0 = 2.0e9
_EXP_RHO = 0.805
_EXP_XC = 0.889


def laminar_speed_fit(dens, x_carbon) -> np.ndarray:
    """The published power-law fit itself (used to build the table)."""
    dens = np.asarray(dens, dtype=np.float64)
    x_c = np.asarray(x_carbon, dtype=np.float64)
    return _S0 * (dens / _RHO0) ** _EXP_RHO * (x_c / 0.5) ** _EXP_XC


@dataclass
class FlameSpeedTable:
    """Bilinear (log rho, X_C) laminar flame-speed table."""

    lg_dens: np.ndarray = field(
        default_factory=lambda: np.linspace(5.5, 10.0, 46))
    x_carbon: np.ndarray = field(
        default_factory=lambda: np.linspace(0.05, 1.0, 20))

    def __post_init__(self) -> None:
        rr, xx = np.meshgrid(10.0**self.lg_dens, self.x_carbon, indexing="ij")
        self.table = laminar_speed_fit(rr, xx)

    @property
    def nbytes(self) -> int:
        return self.table.nbytes + self.lg_dens.nbytes + self.x_carbon.nbytes

    def __call__(self, dens, x_carbon) -> np.ndarray:
        """Bilinear lookup, clamped to the table edges."""
        lg_r = np.clip(np.log10(np.maximum(np.asarray(dens, np.float64), 1e-30)),
                       self.lg_dens[0], self.lg_dens[-1])
        x = np.clip(np.asarray(x_carbon, np.float64),
                    self.x_carbon[0], self.x_carbon[-1])
        i = np.clip(np.searchsorted(self.lg_dens, lg_r) - 1, 0,
                    len(self.lg_dens) - 2)
        j = np.clip(np.searchsorted(self.x_carbon, x) - 1, 0,
                    len(self.x_carbon) - 2)
        tr = (lg_r - self.lg_dens[i]) / (self.lg_dens[i + 1] - self.lg_dens[i])
        tx = (x - self.x_carbon[j]) / (self.x_carbon[j + 1] - self.x_carbon[j])
        t00 = self.table[i, j]
        t10 = self.table[i + 1, j]
        t01 = self.table[i, j + 1]
        t11 = self.table[i + 1, j + 1]
        return ((1 - tr) * (1 - tx) * t00 + tr * (1 - tx) * t10
                + (1 - tr) * tx * t01 + tr * tx * t11)


def turbulent_enhancement(s_lam, u_turb, coefficient: float = 1.0) -> np.ndarray:
    """Khokhlov-style turbulent flame speed: sqrt(s_lam^2 + C u'^2).

    Recovers the laminar speed for weak turbulence and ``sqrt(C) u'`` when
    the turbulence dominates, as the buoyancy-driven regime requires.
    """
    if coefficient < 0:
        raise PhysicsError("enhancement coefficient must be non-negative")
    s = np.asarray(s_lam, dtype=np.float64)
    u = np.asarray(u_turb, dtype=np.float64)
    return np.sqrt(s**2 + coefficient * u**2)


__all__ = ["FlameSpeedTable", "laminar_speed_fit", "turbulent_enhancement"]
