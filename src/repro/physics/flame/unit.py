"""The Flame unit's declarations.

The ADR model flame is scheduled after gravity; its step refills guard
cells first (progress variables advect as mass scalars, so the hydro
sweep leaves the guard layers stale) exactly as the seed driver did.
"""

from __future__ import annotations

from repro.core import (
    FINE,
    RecordContext,
    UnitSpec,
    WorkKind,
    unit_registry,
)
from repro.hw import calibration as cal
from repro.mesh.guardcell import fill_guardcells
from repro.perfmodel.workrecord import UnitInvocation
from repro.physics.flame.adr import ADRFlame


def _step(sim, unit: ADRFlame, dt: float) -> None:
    fill_guardcells(sim.grid, sim.bc)
    unit.step(sim.grid, dt)


def _record(sim, unit: ADRFlame, ctx: RecordContext) -> list[UnitInvocation]:
    return [UnitInvocation(unit="guardcell", zones=ctx.zones),
            UnitInvocation(unit="flame", zones=ctx.zones)]


def _save_state(sim, unit: ADRFlame) -> dict[str, float]:
    return {"zones": unit.work.zones,
            "table_lookups": unit.work.table_lookups}


def _restore_state(sim, unit: ADRFlame, state: dict[str, float]) -> None:
    unit.work.zones = int(state["zones"])
    unit.work.table_lookups = int(state["table_lookups"])


FLAME_UNIT = unit_registry.register(UnitSpec(
    name="flame",
    description="advection-diffusion-reaction model flame (two progress "
                "variables: C burning, NSE relaxation)",
    phase=30,
    timer="flame",
    implements=(ADRFlame,),
    step=_step,
    timestep=lambda sim, unit: unit.timestep(sim.grid),
    record=_record,
    save_state=_save_state,
    restore_state=_restore_state,
    work_kinds=(
        WorkKind("flame", cal.FLAME_STEP, "flame", FINE, region="flame"),
    ),
))

__all__ = ["FLAME_UNIT"]
