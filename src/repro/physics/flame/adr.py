"""The advection-diffusion-reaction model flame.

Following Vladimirova, Weirs & Ryzhik (2006) as used in the authors'
supernova models (Townsley et al.): reaction progress variables are
evolved with

``d phi/dt + v . grad phi  =  kappa Laplacian(phi) + R(phi)``

where the advection term is handled by the hydro unit (progress variables
ride along as mass scalars) and this unit applies the diffusion-reaction
step.  With the KPP-like source ``R = (s^2 / 4 kappa) phi (1 - phi)`` the
front propagates at exactly ``s`` with width ``~ sqrt(kappa / R0)``; we
choose ``kappa = s * delta / 2`` and ``R0 = s / (2 delta)`` with
``delta = b * dx`` so the front spans ``b`` zones (b ~ 3.2, as in the
FLASH flame unit).  A small progress floor below which the reaction is
cut prevents the well-known KPP noise-driven acceleration; the resulting
small speed deficit is calibrated out (``_SPEED_CALIBRATION``, pinned by
the 1-d propagation test).

Two progress variables model the burning stages (Townsley et al. 2007,
reduced): ``fl01`` — carbon burning to the Si group, releasing
``Q_CARBON_BURN``; ``fl02`` — relaxation of the ash toward NSE on a
density-dependent timescale, releasing ``Q_NSE_RELAX``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.grid import Grid
from repro.physics.flame.speed import FlameSpeedTable, turbulent_enhancement
from repro.util.constants import Q_CARBON_BURN, Q_NSE_RELAX
from repro.util.errors import PhysicsError

#: multiplicative correction for the reaction-floor speed deficit,
#: calibrated by tests/physics/test_flame.py::test_front_speed
_SPEED_CALIBRATION = 1.0806
#: front width in zones
_WIDTH_ZONES = 3.2
#: progress floor below which the reaction is cut (sKPP sharpening)
_PHI_FLOOR = 1.0e-4


@dataclass
class FlameWork:
    """Work accounting for the flame unit."""

    zones: int = 0
    table_lookups: int = 0


class ADRFlame:
    """Diffusion-reaction step for the flame progress variables."""

    def __init__(self, *, speed_table: FlameSpeedTable | None = None,
                 x_carbon_fuel: float = 0.3,
                 turb_coefficient: float = 1.0,
                 q_carbon: float = Q_CARBON_BURN,
                 q_nse: float = Q_NSE_RELAX,
                 nse_timescale: float = 0.1,
                 dens_cutoff: float = 1.0e5) -> None:
        self.speed_table = speed_table or FlameSpeedTable()
        self.x_carbon_fuel = x_carbon_fuel
        self.turb_coefficient = turb_coefficient
        self.q_carbon = q_carbon
        self.q_nse = q_nse
        self.nse_timescale = nse_timescale
        self.dens_cutoff = dens_cutoff
        self.work = FlameWork()

    # --- helpers ------------------------------------------------------------
    def _laplacian(self, phi: np.ndarray, deltas, ndim: int) -> np.ndarray:
        """Second-order Laplacian on the padded block array (valid in the
        interior; guard cells must be filled)."""
        lap = np.zeros_like(phi)
        for axis in range(ndim):
            d2 = np.zeros_like(phi)
            lo = [slice(None)] * 3
            mid = [slice(None)] * 3
            hi = [slice(None)] * 3
            lo[axis] = slice(None, -2)
            mid[axis] = slice(1, -1)
            hi[axis] = slice(2, None)
            d2[tuple(mid)] = (phi[tuple(hi)] - 2.0 * phi[tuple(mid)]
                              + phi[tuple(lo)]) / deltas[axis] ** 2
            lap += d2
        return lap

    def _turbulence_proxy(self, grid: Grid, block) -> np.ndarray:
        """Unresolved-turbulence speed proxy: |velocity jump| across a zone.

        Stands in for the subgrid turbulence estimators of the published
        model (which feed on resolved shear the same way)."""
        ndim = grid.spec.ndim
        data = grid.block_data(block)
        u = 0.0
        for axis, vname in zip(range(ndim), ("velx", "vely", "velz")):
            v = data[grid.var(vname)]
            dv = np.zeros_like(v)
            mid = [slice(None)] * 3
            hi = [slice(None)] * 3
            lo = [slice(None)] * 3
            mid[axis] = slice(1, -1)
            hi[axis] = slice(2, None)
            lo[axis] = slice(None, -2)
            dv[tuple(mid)] = 0.5 * np.abs(v[tuple(hi)] - v[tuple(lo)])
            u = u + dv**2
        return np.sqrt(u)

    def flame_speed(self, grid: Grid, block) -> np.ndarray:
        """Turbulence-enhanced flame speed on the padded block."""
        data = grid.block_data(block)
        dens = data[grid.var("dens")]
        s_lam = self.speed_table(dens, self.x_carbon_fuel)
        self.work.table_lookups += dens.size
        u_turb = self._turbulence_proxy(grid, block)
        return turbulent_enhancement(s_lam, u_turb, self.turb_coefficient)

    # --- timestep -------------------------------------------------------------
    def timestep(self, grid: Grid) -> float:
        """Explicit diffusion stability limit (rarely binding: s << c_s)."""
        dt = np.inf
        n = grid.spec.interior_zones
        for block in grid.leaf_blocks():
            dx = min(block.deltas(n)[: grid.spec.ndim])
            s = float(self.flame_speed(grid, block).max())
            if s > 0.0:
                kappa = 0.5 * s * _WIDTH_ZONES * dx
                dt = min(dt, 0.25 * dx**2 / kappa / grid.spec.ndim)
        return dt

    # --- step ------------------------------------------------------------------
    def step(self, grid: Grid, dt: float) -> FlameWork:
        """Apply diffusion + reaction + energy release to all leaves.

        Guard cells must be filled (the driver fills them right before).
        """
        if dt <= 0.0:
            raise PhysicsError("flame step needs dt > 0")
        step_work = FlameWork()
        g = grid.spec.nguard
        ndim = grid.spec.ndim
        n = grid.spec.interior_zones
        i_f1 = grid.var("fl01")
        i_f2 = grid.var("fl02")
        i_eint = grid.var("eint")
        i_ener = grid.var("ener")
        i_dens = grid.var("dens")

        for block in grid.leaf_blocks():
            data = grid.block_data(block)
            deltas = block.deltas(n)
            dx = min(deltas[:ndim])
            phi1 = data[i_f1]
            dens = data[i_dens]

            speed = self.flame_speed(grid, block)
            # quench where the density is too low for carbon burning
            speed = np.where(dens > self.dens_cutoff, speed, 0.0)

            delta = _WIDTH_ZONES * dx
            kappa = 0.5 * speed * delta * _SPEED_CALIBRATION
            r0 = 0.5 * speed / delta * _SPEED_CALIBRATION

            lap = self._laplacian(phi1, deltas, ndim)
            react = np.where(phi1 > _PHI_FLOOR,
                             r0 * phi1 * (1.0 - phi1), 0.0)
            dphi1 = dt * (kappa * lap + react)

            sx, sy, sz = grid.spec.interior_slices()
            phi1_new = np.clip(phi1[sx, sy, sz] + dphi1[sx, sy, sz], 0.0, 1.0)
            dphi1_int = phi1_new - phi1[sx, sy, sz]

            # NSE relaxation: phi2 -> phi1 on the (density-gated) timescale
            phi2 = data[i_f2][sx, sy, sz]
            tau = self.nse_timescale * np.where(
                dens[sx, sy, sz] > 1e7, 1.0, 1e6)  # NSE only at high density
            dphi2 = np.clip((phi1_new - phi2) * (1.0 - np.exp(-dt / tau)),
                            0.0, None)
            phi2_new = np.clip(phi2 + dphi2, 0.0, 1.0)

            # energy release
            dq = self.q_carbon * dphi1_int + self.q_nse * dphi2
            data[i_f1][sx, sy, sz] = phi1_new
            data[i_f2][sx, sy, sz] = phi2_new
            data[i_eint][sx, sy, sz] += dq
            data[i_ener][sx, sy, sz] += dq
            step_work.zones += phi1_new.size

        self.work.zones += step_work.zones
        return step_work


__all__ = ["ADRFlame", "FlameWork"]
