"""The model flame: ADR progress variables with tabulated speeds."""

from repro.physics.flame.speed import FlameSpeedTable, turbulent_enhancement
from repro.physics.flame.adr import ADRFlame

__all__ = ["FlameSpeedTable", "turbulent_enhancement", "ADRFlame"]
