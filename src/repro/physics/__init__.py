"""Physics units: equation of state, hydrodynamics, gravity, model flame."""
