"""The 2-d Type Iax supernova setup: pure deflagration of a hybrid WD.

Builds the paper's science problem: a hydrostatic hybrid C/O/Ne white
dwarf mapped onto the 2-d AMR mesh (interpreted as a slice through the
star — see DESIGN.md for the substitution of FLASH's 2-d cylindrical
geometry by Cartesian-slice + spherically averaged monopole gravity), an
ambient fluff, monopole self-gravity, the Helmholtz EOS with a reactive
fuel/ash composition, and a "match-head" ignition region for the ADR
model flame slightly offset from the centre (the standard single-bubble
deflagration ignition of the Iax literature).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.grid import Grid, MeshSpec, VariableRegistry
from repro.mesh.refine import refine_pass
from repro.mesh.tree import AMRTree
from repro.physics.eos import HYBRID_CONE_WD, NSE_ASH, SI_ASH, HelmholtzEOS
from repro.physics.eos.apply import apply_eos, composition_from_species
from repro.physics.flame.adr import ADRFlame
from repro.physics.gravity.monopole import MonopoleGravity
from repro.physics.hydro.unit import HydroUnit
from repro.setups.whitedwarf import WhiteDwarfModel, build_white_dwarf

#: progress variables: fl01 carbon burning, fl02 NSE relaxation
SN_SPECIES = ("fl01", "fl02")


@dataclass
class SupernovaProblem:
    """Everything needed to evolve the deflagration."""

    grid: Grid
    eos: HelmholtzEOS
    hydro: HydroUnit
    flame: ADRFlame
    gravity: MonopoleGravity
    model: WhiteDwarfModel


def _composition(grid, stacked):
    """Per-zone (abar, zbar): fuel -> Si ash by fl01, Si -> NSE by fl02."""
    phi1 = stacked["fl01"]
    phi2 = stacked["fl02"]
    fuel, si, nse = HYBRID_CONE_WD, SI_ASH, NSE_ASH
    inv_abar = ((1.0 - phi1) / fuel.abar + (phi1 - phi2) / si.abar
                + phi2 / nse.abar)
    z_over_a = ((1.0 - phi1) * fuel.ye + (phi1 - phi2) * si.ye + phi2 * nse.ye)
    abar = 1.0 / np.maximum(inv_abar, 1e-30)
    return abar, abar * z_over_a


def supernova_setup(
    *,
    ndim: int = 2,
    nblock: int = 4,
    nxb: int = 16,
    max_level: int = 3,
    maxblocks: int = 2048,
    central_density: float = 1.2e9,
    core_temperature: float = 5.0e7,
    fluff_density: float = 1.0e4,
    fluff_temperature: float = 3.0e7,
    ignition_offset: float = 5.0e7,
    ignition_radius: float = 1.2e7,
    domain_half_width: float = 2.5e8,
    model: WhiteDwarfModel | None = None,
    eos: HelmholtzEOS | None = None,
    initial_refinement: bool = True,
) -> SupernovaProblem:
    """Build the supernova problem (the paper's "EOS" test workload).

    ``ndim=2`` is the paper's configuration ("suites of 2-d simulations
    that allow for a relatively inexpensive exploration"); ``ndim=3``
    builds the full-star problem the paper says will come next
    ("Eventually, however, we will run full 3-d simulations").
    """
    if ndim not in (2, 3):
        raise ValueError("the supernova setup supports ndim = 2 or 3")
    eos = eos or HelmholtzEOS()
    model = model or build_white_dwarf(
        central_density=central_density, temperature=core_temperature,
        eos=eos, dens_floor=10.0 * fluff_density,
    )

    L = domain_half_width
    tree = AMRTree(ndim=ndim, nblockx=nblock, nblocky=nblock,
                   nblockz=nblock if ndim == 3 else 1,
                   max_level=max_level,
                   domain=((-L, L), (-L, L),
                           (-L, L) if ndim == 3 else (0.0, 1.0)))
    variables = VariableRegistry().extended(*SN_SPECIES)
    spec = MeshSpec(ndim=ndim, nxb=nxb, nyb=nxb,
                    nzb=nxb if ndim == 3 else 1, nguard=4,
                    maxblocks=maxblocks)
    grid = Grid(tree, spec, variables)

    def paint(grid: Grid) -> None:
        comp = model.composition
        for block in grid.leaf_blocks():
            x, y, z = grid.cell_centers(block)
            r2 = x**2 + y**2 + (z**2 if ndim == 3 else 0.0)
            r = np.broadcast_to(np.sqrt(r2),
                                grid.interior(block, "dens").shape)
            dens = np.maximum(model.interp_dens(r), fluff_density)
            temp = np.where(dens > 2.0 * fluff_density,
                            model.interp_temp(r), fluff_temperature)
            # match-head: hot, fully burned ignition bubble offset on +y
            rb2 = x**2 + (y - ignition_offset) ** 2 + (
                z**2 if ndim == 3 else 0.0)
            rb = np.broadcast_to(np.sqrt(rb2), dens.shape)
            ignite = rb < ignition_radius
            phi1 = np.where(ignite, 1.0, 0.0)
            temp = np.where(ignite, np.maximum(temp, 3.0e9), temp)
            grid.interior(block, "dens")[:] = dens
            grid.interior(block, "temp")[:] = temp
            grid.interior(block, "velx")[:] = 0.0
            grid.interior(block, "vely")[:] = 0.0
            grid.interior(block, "velz")[:] = 0.0
            grid.interior(block, "fl01")[:] = phi1
            grid.interior(block, "fl02")[:] = phi1 * np.where(
                np.broadcast_to(dens, phi1.shape) > 1e7, 1.0, 0.0)
        apply_eos(grid, eos, mode="dens_temp", composition=_composition,
                  species=SN_SPECIES)

    paint(grid)
    if initial_refinement:
        for _ in range(max_level):
            n_ref, _ = refine_pass(grid, "dens", refine_cutoff=0.55,
                                   derefine_cutoff=0.1)
            paint(grid)
            if n_ref == 0:
                break

    hydro = HydroUnit(eos, cfl=0.4, species=SN_SPECIES,
                      composition=_composition)
    flame = ADRFlame(x_carbon_fuel=0.30)
    gravity = MonopoleGravity(center=(0.0, 0.0, 0.0))
    return SupernovaProblem(grid=grid, eos=eos, hydro=hydro, flame=flame,
                            gravity=gravity, model=model)


__all__ = ["supernova_setup", "SupernovaProblem", "SN_SPECIES", "_composition"]
