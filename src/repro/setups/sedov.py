"""The Sedov explosion: setup + exact self-similar solution.

The paper's "3-d Hydro" test is FLASH's standard Sedov problem [Sedov
1959]: energy E deposited at the origin of a cold uniform medium drives a
self-similar blast wave with shock radius

``R(t) = (E t^2 / (alpha rho0))^{1/(j+2)}``

The exact interior profiles follow the closed-form parametric solution
(Sedov; Kamm & Timmes formulation for the standard case): the similarity
coordinate, velocity, and density come from the x1..x4 factors with
exponents a0..a5, the sound speed from the exact adiabatic energy
integral ``Z = gamma (gamma-1) (1-V) V^2 / (2 (gamma V - 1))``, and the
energy constant ``alpha`` from numerical quadrature of the profiles —
validated against the classic value alpha = 0.851 (gamma = 1.4, j = 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.grid import Grid
from repro.physics.eos.apply import apply_eos
from repro.util.errors import PhysicsError


@dataclass
class SedovSolution:
    """Exact standard-case Sedov-Taylor solution for geometry j."""

    gamma: float = 1.4
    j: int = 3  # 1 planar, 2 cylindrical, 3 spherical
    energy: float = 1.0
    rho0: float = 1.0
    n_param: int = 2000

    def __post_init__(self) -> None:
        if self.j not in (1, 2, 3):
            raise PhysicsError("geometry index j must be 1, 2, or 3")
        g, j = self.gamma, float(self.j)
        a0 = 2.0 / (j + 2.0)
        a2 = -(g - 1.0) / (2.0 * (g - 1.0) + j)
        a1 = ((j + 2.0) * g / (2.0 + j * (g - 1.0))) * (
            2.0 * j * (2.0 - g) / (g * (j + 2.0) ** 2) - a2
        )
        a3 = j / (2.0 * (g - 1.0) + j)
        a4 = a1 * (j + 2.0) / (2.0 - g)
        a5 = -2.0 / (2.0 - g)

        v0 = 2.0 / ((j + 2.0) * g)  # origin
        v2 = 4.0 / ((j + 2.0) * (g + 1.0))  # shock
        # open at the origin end (lambda -> 0 singular there)
        v = v0 + (v2 - v0) * (np.linspace(0.0, 1.0, self.n_param) ** 3)
        v = v[1:]

        x1 = (j + 2.0) * (g + 1.0) / 4.0 * v
        x2 = ((g + 1.0) / (g - 1.0)) * ((j + 2.0) * g / 2.0 * v - 1.0)
        denom3 = (j + 2.0) * (g + 1.0) - 2.0 * (2.0 + j * (g - 1.0))
        x3 = ((j + 2.0) * (g + 1.0) / denom3) * (
            1.0 - (2.0 + j * (g - 1.0)) / 2.0 * v
        )
        x4 = ((g + 1.0) / (g - 1.0)) * (1.0 - (j + 2.0) / 2.0 * v)

        lam = x1 ** (-a0) * x2 ** (-a2) * x3 ** (-a1)
        # scaled radial velocity: u = (2 r / ((j+2) t)) * vhat
        vhat = (j + 2.0) / 2.0 * v
        # density ratio to the post-shock value
        g_of = x2**a3 * x3**a4 * x4**a5
        # exact adiabatic integral: dimensionless sound speed squared
        z_of = g * (g - 1.0) * (1.0 - vhat) * vhat**2 / (2.0 * (g * vhat - 1.0))

        order = np.argsort(lam)
        self._lam = lam[order]
        self._vhat = vhat[order]
        self._g = g_of[order]
        self._z = z_of[order]

        # sanity: all profiles normalised to 1 at the shock
        if not (abs(self._lam[-1] - 1.0) < 1e-9 and abs(self._g[-1] - 1.0) < 1e-9):
            raise PhysicsError("Sedov parametric solution failed to normalise")

        self.alpha = self._energy_integral()

    # --- internals ------------------------------------------------------------
    def _geom_coeff(self) -> float:
        return {1: 2.0, 2: 2.0 * np.pi, 3: 4.0 * np.pi}[self.j]

    def _energy_integral(self) -> float:
        """alpha = E t^2/(rho0 R^{j+2}) from the profile energy integral."""
        g, j = self.gamma, float(self.j)
        lam, vh, gg, zz = self._lam, self._vhat, self._g, self._z
        rho_ratio = (g + 1.0) / (g - 1.0) * gg  # rho/rho0
        # u = (2 R lam / ((j+2) t)) vhat ; p = rho c^2/g,
        # c^2 = (2 R lam/((j+2) t))^2 zz
        # E = A_j ∫ (rho u^2/2 + p/(g-1)) lam^{j-1} R^j dlam
        #   = A_j rho0 R^{j+2}/t^2 * (4/(j+2)^2) ∫ rho_ratio lam^{j+1}
        #         (vh^2/2 + zz/(g(g-1))) dlam
        integrand = rho_ratio * lam ** (j + 1.0) * (
            0.5 * vh**2 + zz / (g * (g - 1.0))
        )
        integral = np.trapezoid(integrand, lam)
        return self._geom_coeff() * 4.0 / (j + 2.0) ** 2 * integral

    # --- public API -----------------------------------------------------------
    @property
    def xi0(self) -> float:
        """Dimensionless shock-position constant (1/alpha)^{1/(j+2)}."""
        return (1.0 / self.alpha) ** (1.0 / (self.j + 2.0))

    def shock_radius(self, t) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return (self.energy * t**2 / (self.alpha * self.rho0)) ** (
            1.0 / (self.j + 2.0)
        )

    def shock_compression(self) -> float:
        """Strong-shock density jump (gamma+1)/(gamma-1)."""
        return (self.gamma + 1.0) / (self.gamma - 1.0)

    def profile(self, r, t, p_ambient: float = 0.0):
        """(dens, velr, pres) at radii ``r`` and time ``t``."""
        r = np.asarray(r, dtype=np.float64)
        r2 = float(self.shock_radius(t))
        lam = np.clip(r / r2, 0.0, None)
        inside = lam <= 1.0
        g = self.gamma

        gg = np.interp(lam, self._lam, self._g, left=self._g[0])
        vh = np.interp(lam, self._lam, self._vhat, left=self._vhat[0])
        zz = np.interp(lam, self._lam, self._z, left=self._z[0])

        dens = np.where(inside, self.rho0 * (g + 1.0) / (g - 1.0) * gg,
                        self.rho0)
        scale = 2.0 * r / ((self.j + 2.0) * t)
        velr = np.where(inside, scale * vh, 0.0)
        pres = np.where(inside, dens * scale**2 * zz / g, p_ambient)
        return dens, velr, pres


def sedov_setup(grid: Grid, eos, *, energy: float = 1.0, rho0: float = 1.0,
                p_ambient: float = 1.0e-5,
                deposit_radius: float | None = None,
                center: tuple[float, float, float] | None = None) -> None:
    """FLASH's Sedov initialisation: ambient cold gas plus a small hot
    region at ``center`` carrying total energy ``energy``."""
    ndim = grid.spec.ndim
    if center is None:
        center = tuple(
            0.5 * (lo + hi) for lo, hi in grid.tree.domain
        )
    if deposit_radius is None:
        # a few zones of the finest level
        finest = max(b.level for b in grid.leaf_blocks())
        n = grid.spec.interior_zones
        dx_min = min(
            (hi - lo) / (e * nn)
            for (lo, hi), e, nn in zip(
                grid.tree.domain[:ndim], grid.tree.extent(finest)[:ndim],
                n[:ndim])
        )
        deposit_radius = 3.5 * dx_min

    # energy density inside the deposit region
    if ndim == 3:
        vol = 4.0 / 3.0 * np.pi * deposit_radius**3
    elif ndim == 2:
        vol = np.pi * deposit_radius**2
    else:
        vol = 2.0 * deposit_radius
    e_dep = energy / vol  # [erg/cm^3]

    gamma = eos.gamma
    for block in grid.leaf_blocks():
        x, y, z = grid.cell_centers(block)
        dx2 = (x - center[0]) ** 2
        if ndim > 1:
            dx2 = dx2 + (y - center[1]) ** 2
        if ndim > 2:
            dx2 = dx2 + (z - center[2]) ** 2
        r = np.sqrt(np.broadcast_to(dx2, grid.interior(block, "dens").shape))
        hot = r < deposit_radius
        grid.interior(block, "dens")[:] = rho0
        pres = np.where(hot, (gamma - 1.0) * e_dep, p_ambient)
        grid.interior(block, "pres")[:] = pres
        grid.interior(block, "velx")[:] = 0.0
        grid.interior(block, "vely")[:] = 0.0
        grid.interior(block, "velz")[:] = 0.0
        eint = pres / ((gamma - 1.0) * rho0)
        grid.interior(block, "eint")[:] = eint
        grid.interior(block, "ener")[:] = eint
    apply_eos(grid, eos)


__all__ = ["SedovSolution", "sedov_setup"]
