"""Problem setups: Sod, Sedov, white dwarfs, the Type Iax supernova."""

from repro.setups.sod import SodProblem, sod_exact
from repro.setups.sedov import SedovSolution, sedov_setup
from repro.setups.whitedwarf import WhiteDwarfModel, build_white_dwarf
from repro.setups.supernova import supernova_setup

__all__ = [
    "SodProblem",
    "sod_exact",
    "SedovSolution",
    "sedov_setup",
    "WhiteDwarfModel",
    "build_white_dwarf",
    "supernova_setup",
]
