"""Hydrostatic white-dwarf initial models.

Integrates hydrostatic equilibrium with the Helmholtz-type EOS,

``dP/dr = -G M(<r) rho / r^2,   dM/dr = 4 pi r^2 rho``

at constant (isothermal) temperature, from a chosen central density
outward until the density reaches the ambient "fluff" value — the way
FLASH supernova setups construct their progenitors.  For the Type Iax
scenario the progenitor is a hybrid C/O/Ne white dwarf (Kromer et al.
2015); composition defaults accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.physics.eos import HYBRID_CONE_WD, Composition, HelmholtzEOS
from repro.util.constants import G_NEWTON, M_SUN
from repro.util.errors import ConvergenceError, PhysicsError


@dataclass
class WhiteDwarfModel:
    """A radial hydrostatic model: arrays of r, rho, P, T, M(<r)."""

    radius: np.ndarray
    dens: np.ndarray
    pres: np.ndarray
    temp: np.ndarray
    mass: np.ndarray
    composition: Composition

    @property
    def total_mass(self) -> float:
        return float(self.mass[-1])

    @property
    def surface_radius(self) -> float:
        return float(self.radius[-1])

    def interp_dens(self, r) -> np.ndarray:
        return np.interp(np.asarray(r), self.radius, self.dens,
                         right=self.dens[-1])

    def interp_temp(self, r) -> np.ndarray:
        return np.interp(np.asarray(r), self.radius, self.temp,
                         right=self.temp[-1])

    def hydrostatic_residual(self) -> float:
        """Max relative violation of dP/dr = -G M rho / r^2 (test metric)."""
        dp = np.gradient(self.pres, self.radius)
        rhs = -G_NEWTON * self.mass * self.dens / np.maximum(self.radius, 1.0) ** 2
        scale = np.abs(self.pres[0] / self.radius[-1])
        inner = slice(2, -2)
        return float(np.max(np.abs(dp[inner] - rhs[inner])) / scale)


def _dens_from_pres(eos, pres: float, temp: float, comp: Composition,
                    guess: float) -> float:
    """Invert P(rho, T) for rho by safeguarded Newton (scalar)."""
    rho = guess
    for _ in range(80):
        r = eos.eos_dt(rho, temp, comp.abar, comp.zbar)
        resid = float(r.pres[0]) - pres
        dpd = float(r.dpd[0])
        step = -resid / dpd
        step = np.clip(step, -0.5 * rho, 1.0 * rho)
        rho_new = rho + step
        if abs(rho_new - rho) < 1e-12 * rho:
            return float(rho_new)
        rho = float(rho_new)
    raise ConvergenceError("dens-from-pres inversion failed")


def build_white_dwarf(
    central_density: float = 1.2e9,
    temperature: float = 5.0e7,
    composition: Composition = HYBRID_CONE_WD,
    eos: HelmholtzEOS | None = None,
    dens_floor: float = 1.0e4,
    dr: float = 2.0e6,
) -> WhiteDwarfModel:
    """Integrate a hydrostatic isothermal WD (RK2 midpoint in radius).

    ``dr`` = 20 km steps resolve the pressure scale height everywhere
    above the floor for the densities of interest.
    """
    if central_density <= dens_floor:
        raise PhysicsError("central density below the floor")
    eos = eos or HelmholtzEOS()
    comp = composition

    rs = [0.0]
    rhos = [central_density]
    press = [float(eos.eos_dt(central_density, temperature, comp.abar,
                              comp.zbar).pres[0])]
    masses = [0.0]

    r, p, m, rho = 0.0, press[0], 0.0, central_density
    while rho > dens_floor:
        # midpoint (RK2) step of the coupled (P, M) system
        def derivs(r_, p_, m_, rho_):
            if r_ <= 0.0:
                return 0.0, 0.0
            dp = -G_NEWTON * m_ * rho_ / r_**2
            dm = 4.0 * np.pi * r_**2 * rho_
            return dp, dm

        dp1, dm1 = derivs(r, p, m, rho)
        p_half = p + 0.5 * dr * dp1
        m_half = m + 0.5 * dr * dm1
        if p_half <= 0.0:
            break
        rho_half = _dens_from_pres(eos, p_half, temperature, comp, rho)
        dp2, dm2 = derivs(r + 0.5 * dr, p_half, m_half, rho_half)
        p_new = p + dr * dp2
        m_new = m + dr * dm2
        if p_new <= 0.0:
            break
        rho = _dens_from_pres(eos, p_new, temperature, comp, rho_half)
        r, p, m = r + dr, p_new, m_new
        rs.append(r)
        rhos.append(rho)
        press.append(p)
        masses.append(m)
        if len(rs) > 100000:
            raise ConvergenceError("white dwarf integration ran away")

    return WhiteDwarfModel(
        radius=np.array(rs),
        dens=np.array(rhos),
        pres=np.array(press),
        temp=np.full(len(rs), temperature),
        mass=np.array(masses),
        composition=comp,
    )


__all__ = ["WhiteDwarfModel", "build_white_dwarf"]
