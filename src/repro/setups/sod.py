"""The Sod shock tube: setup + exact Riemann solution (verification)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.mesh.grid import Grid
from repro.physics.eos.apply import apply_eos


@dataclass(frozen=True)
class SodProblem:
    """Classic Sod (1978) initial data on [0, 1]."""

    gamma: float = 1.4
    rho_l: float = 1.0
    p_l: float = 1.0
    u_l: float = 0.0
    rho_r: float = 0.125
    p_r: float = 0.1
    u_r: float = 0.0
    x0: float = 0.5

    def initialize(self, grid: Grid, eos) -> None:
        """Write the initial discontinuity onto all leaf blocks."""
        for block in grid.leaf_blocks():
            x, _, _ = grid.cell_centers(block)
            left = np.broadcast_to(x < self.x0,
                                   grid.interior(block, "dens").shape)
            dens = np.where(left, self.rho_l, self.rho_r)
            pres = np.where(left, self.p_l, self.p_r)
            grid.interior(block, "dens")[:] = dens
            grid.interior(block, "pres")[:] = pres
            grid.interior(block, "velx")[:] = np.where(left, self.u_l, self.u_r)
            eint = pres / ((self.gamma - 1.0) * dens)
            grid.interior(block, "eint")[:] = eint
            grid.interior(block, "ener")[:] = eint + 0.5 * np.where(
                left, self.u_l, self.u_r) ** 2
        apply_eos(grid, eos)


def sod_exact(problem: SodProblem, x: np.ndarray, t: float):
    """Exact gamma-law Riemann solution sampled at positions x, time t.

    Returns (dens, velx, pres).  Standard exact solver (Toro ch. 4):
    Newton/Brent on the star-region pressure, then self-similar sampling.
    """
    g = problem.gamma
    rl, pl, ul = problem.rho_l, problem.p_l, problem.u_l
    rr, pr, ur = problem.rho_r, problem.p_r, problem.u_r
    cl = np.sqrt(g * pl / rl)
    cr = np.sqrt(g * pr / rr)

    def f_k(p, rk, pk, ck):
        if p > pk:  # shock
            a = 2.0 / ((g + 1.0) * rk)
            b = (g - 1.0) / (g + 1.0) * pk
            return (p - pk) * np.sqrt(a / (p + b))
        # rarefaction
        return 2.0 * ck / (g - 1.0) * ((p / pk) ** ((g - 1.0) / (2 * g)) - 1.0)

    def f(p):
        return f_k(p, rl, pl, cl) + f_k(p, rr, pr, cr) + (ur - ul)

    p_star = brentq(f, 1e-12, 100.0 * max(pl, pr))
    u_star = 0.5 * (ul + ur) + 0.5 * (f_k(p_star, rr, pr, cr)
                                      - f_k(p_star, rl, pl, cl))

    x = np.asarray(x, dtype=np.float64)
    s = (x - problem.x0) / max(t, 1e-300)
    dens = np.empty_like(s)
    vel = np.empty_like(s)
    pres = np.empty_like(s)

    # left side
    if p_star > pl:  # left shock
        rho_star_l = rl * ((p_star / pl + (g - 1) / (g + 1))
                           / ((g - 1) / (g + 1) * p_star / pl + 1.0))
        s_l = ul - cl * np.sqrt((g + 1) / (2 * g) * p_star / pl
                                + (g - 1) / (2 * g))
        left_states = [(s < s_l, (rl, ul, pl)),
                       ((s >= s_l) & (s < u_star), (rho_star_l, u_star, p_star))]
        fan_l = None
    else:  # left rarefaction
        rho_star_l = rl * (p_star / pl) ** (1.0 / g)
        c_star_l = cl * (p_star / pl) ** ((g - 1) / (2 * g))
        head, tail = ul - cl, u_star - c_star_l
        left_states = [(s < head, (rl, ul, pl)),
                       ((s >= tail) & (s < u_star), (rho_star_l, u_star, p_star))]
        fan_l = (head, tail)

    # right side
    if p_star > pr:  # right shock
        rho_star_r = rr * ((p_star / pr + (g - 1) / (g + 1))
                           / ((g - 1) / (g + 1) * p_star / pr + 1.0))
        s_r = ur + cr * np.sqrt((g + 1) / (2 * g) * p_star / pr
                                + (g - 1) / (2 * g))
        right_states = [((s >= u_star) & (s < s_r), (rho_star_r, u_star, p_star)),
                        (s >= s_r, (rr, ur, pr))]
        fan_r = None
    else:
        rho_star_r = rr * (p_star / pr) ** (1.0 / g)
        c_star_r = cr * (p_star / pr) ** ((g - 1) / (2 * g))
        head, tail = ur + cr, u_star + c_star_r
        right_states = [((s >= u_star) & (s < tail),
                         (rho_star_r, u_star, p_star)),
                        (s >= head, (rr, ur, pr))]
        fan_r = (tail, head)

    for mask, (d, u, p) in left_states + right_states:
        dens[mask], vel[mask], pres[mask] = d, u, p

    if fan_l is not None:
        head, tail = fan_l
        m = (s >= head) & (s < tail)
        u_fan = 2.0 / (g + 1.0) * (cl + (g - 1.0) / 2.0 * ul + s[m])
        c_fan = cl - (g - 1.0) / 2.0 * (u_fan - ul)
        dens[m] = rl * (c_fan / cl) ** (2.0 / (g - 1.0))
        vel[m] = u_fan
        pres[m] = pl * (c_fan / cl) ** (2.0 * g / (g - 1.0))
    if fan_r is not None:
        tail, head = fan_r
        m = (s >= tail) & (s < head)
        u_fan = 2.0 / (g + 1.0) * (-cr + (g - 1.0) / 2.0 * ur + s[m])
        c_fan = cr + (g - 1.0) / 2.0 * (u_fan - ur)
        dens[m] = rr * (c_fan / cr) ** (2.0 / (g - 1.0))
        vel[m] = u_fan
        pres[m] = pr * (c_fan / cr) ** (2.0 * g / (g - 1.0))

    return dens, vel, pres


__all__ = ["SodProblem", "sod_exact"]
