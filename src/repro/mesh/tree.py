"""The AMR quad/octree: refinement topology, 2:1 balance, Morton order.

PARAMESH keeps a fully threaded tree whose leaves carry the solution
blocks.  We store the set of existing blocks in a dict keyed by
:class:`~repro.mesh.block.BlockId` and enforce the standard 2:1 balance
rule: a leaf's face neighbours differ by at most one refinement level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from repro.mesh.block import BlockId
from repro.util.errors import MeshError


def morton_key(bid: BlockId, max_level: int) -> tuple[int, int]:
    """Space-filling-curve sort key: bit-interleaved normalised coords.

    Coordinates are scaled to the finest level so blocks of different
    levels sort into a single curve; ties broken by level (coarse first).
    """
    shift = max_level - bid.level
    x, y, z = bid.ix << shift, bid.iy << shift, bid.iz << shift
    key = 0
    for bit in range(max_level + 24):
        key |= ((x >> bit) & 1) << (3 * bit)
        key |= ((y >> bit) & 1) << (3 * bit + 1)
        key |= ((z >> bit) & 1) << (3 * bit + 2)
    return (key, bid.level)


@dataclass
class AMRTree:
    """Refinement topology over an ``nblockx x nblocky x nblockz`` base grid."""

    ndim: int = 2
    nblockx: int = 1
    nblocky: int = 1
    nblockz: int = 1
    max_level: int = 4
    domain: tuple[tuple[float, float], ...] = (((0.0, 1.0)), (0.0, 1.0), (0.0, 1.0))
    periodic: tuple[bool, bool, bool] = (False, False, False)
    #: bid -> is_leaf
    _blocks: dict[BlockId, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ndim not in (1, 2, 3):
            raise MeshError("ndim must be 1, 2 or 3")
        if self.ndim < 3:
            self.nblockz = 1
        if self.ndim < 2:
            self.nblocky = 1
        if not self._blocks:
            for iz in range(self.nblockz):
                for iy in range(self.nblocky):
                    for ix in range(self.nblockx):
                        self._blocks[BlockId(0, ix, iy, iz)] = True

    # --- queries ------------------------------------------------------------
    def exists(self, bid: BlockId) -> bool:
        return bid in self._blocks

    def is_leaf(self, bid: BlockId) -> bool:
        return self._blocks.get(bid, False)

    def leaves(self) -> list[BlockId]:
        """All leaf blocks in Morton (space-filling) order (cached)."""
        cached = getattr(self, "_leaf_cache", None)
        if cached is not None:
            return cached
        out = [b for b, leaf in self._blocks.items() if leaf]
        out.sort(key=lambda b: morton_key(b, self.max_level))
        self._leaf_cache = out
        return out

    def _invalidate_leaves(self) -> None:
        self._leaf_cache = None

    @property
    def n_leaves(self) -> int:
        return sum(1 for leaf in self._blocks.values() if leaf)

    def extent(self, level: int) -> tuple[int, int, int]:
        """Blocks per dimension at the given level."""
        return (self.nblockx << level, self.nblocky << level, self.nblockz << level)

    def child_offsets(self) -> list[tuple[int, int, int]]:
        return [
            (dx, dy, dz)
            for dz in (range(2) if self.ndim > 2 else [0])
            for dy in (range(2) if self.ndim > 1 else [0])
            for dx in range(2)
        ]

    def children(self, bid: BlockId) -> list[BlockId]:
        return [bid.child(dx, dy, dz) for dx, dy, dz in self.child_offsets()]

    def in_domain(self, bid: BlockId) -> bool:
        ex = self.extent(bid.level)
        return all(0 <= c < e for c, e in zip(bid.coords(), ex))

    def wrap(self, bid: BlockId) -> BlockId | None:
        """Apply periodic wrapping; None when the block is off-domain."""
        ex = self.extent(bid.level)
        coords = list(bid.coords())
        for axis in range(3):
            if coords[axis] < 0 or coords[axis] >= ex[axis]:
                if self.periodic[axis]:
                    coords[axis] %= ex[axis]
                else:
                    return None
        return BlockId(bid.level, *coords)

    def bbox(self, bid: BlockId) -> tuple[tuple[float, float], ...]:
        """Physical bounding box of a block."""
        ex = self.extent(bid.level)
        out = []
        for axis, (lo, hi) in enumerate(self.domain[:3]):
            n = ex[axis]
            width = (hi - lo) / n
            c = bid.coords()[axis]
            out.append((lo + c * width, lo + (c + 1) * width))
        return tuple(out)

    # --- neighbour finding ------------------------------------------------------
    def face_neighbor(self, bid: BlockId, axis: int, direction: int):
        """Neighbour across a face.

        Returns one of:

        * ``("leaf", nid)`` — same-level leaf neighbour;
        * ``("coarser", nid)`` — the neighbouring leaf is one level up;
        * ``("finer", [nids])`` — the face abuts same-level-parent whose
          touching children are the leaves;
        * ``("boundary", None)`` — a physical domain boundary.
        """
        raw = bid.neighbor(axis, direction)
        nid = self.wrap(raw)
        if nid is None:
            return ("boundary", None)
        if self.is_leaf(nid):
            return ("leaf", nid)
        if self.exists(nid):
            # refined neighbour: collect its children touching our face
            touching = []
            for child in self.children(nid):
                cc = child.coords()[axis] % 2
                if (direction > 0 and cc == 0) or (direction < 0 and cc == 1):
                    touching.append(child)
            return ("finer", touching)
        if bid.level > 0:
            parent = nid.parent
            if self.is_leaf(parent):
                return ("coarser", parent)
        raise MeshError(f"tree inconsistent around {bid} axis={axis} dir={direction}")

    # --- refinement -----------------------------------------------------------------
    def split(self, bid: BlockId) -> list[BlockId]:
        """Split one leaf into children (no balance cascade).

        Low-level primitive used by :func:`repro.mesh.refine.refine_block`,
        which handles balance *and* the solution data.
        """
        if not self.is_leaf(bid):
            raise MeshError(f"cannot refine non-leaf {bid}")
        if bid.level >= self.max_level:
            raise MeshError(f"{bid} already at max_level={self.max_level}")
        self._blocks[bid] = False
        kids = self.children(bid)
        for child in kids:
            self._blocks[child] = True
        self._invalidate_leaves()
        return kids

    def refine(self, bid: BlockId) -> list[BlockId]:
        """Split a leaf into children, recursively keeping 2:1 balance.

        Returns every *new* leaf created (children of this block and of any
        neighbours refined to restore balance), so callers can fill data.
        """
        created: list[BlockId] = []
        # balance first: face neighbours must exist at bid.level
        for axis in range(self.ndim):
            for direction in (-1, 1):
                kind, info = self.face_neighbor(bid, axis, direction)
                if kind == "coarser":
                    created += self.refine(info)
        created += self.split(bid)
        return created

    def can_derefine(self, bid: BlockId) -> bool:
        """Whether a parent's children may be coalesced back into it."""
        if self.is_leaf(bid) or not self.exists(bid):
            return False
        kids = self.children(bid)
        if not all(self.is_leaf(k) for k in kids):
            return False
        # balance: no neighbour of any child may be finer than the child
        for kid in kids:
            for axis in range(self.ndim):
                for direction in (-1, 1):
                    kind, _ = self.face_neighbor(kid, axis, direction)
                    if kind == "finer":
                        return False
        return True

    def derefine(self, bid: BlockId) -> list[BlockId]:
        """Coalesce children back into ``bid``; returns the removed leaves."""
        if not self.can_derefine(bid):
            raise MeshError(f"cannot derefine {bid}")
        kids = self.children(bid)
        for kid in kids:
            del self._blocks[kid]
        self._blocks[bid] = True
        self._invalidate_leaves()
        return kids

    def check_balance(self) -> None:
        """Raise if any leaf violates 2:1 balance (test hook)."""
        for bid in self.leaves():
            for axis in range(self.ndim):
                for direction in (-1, 1):
                    kind, info = self.face_neighbor(bid, axis, direction)
                    if kind == "finer":
                        for child in info:
                            if not self.is_leaf(child):
                                raise MeshError(
                                    f"2:1 balance violated at {bid} vs {child}"
                                )


__all__ = ["AMRTree", "morton_key"]
