"""Refinement criteria and the refine/derefine pass.

FLASH marks blocks with a Löhner-style second-derivative error estimator
on chosen refinement variables (density by default) and refines blocks
above ``refine_cutoff`` / coalesces sibling bundles below
``derefine_cutoff``, subject to 2:1 balance and level limits.

Data motion on refinement uses the conservative operators of
:mod:`repro.mesh.prolong`.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.block import Block, BlockId
from repro.mesh.grid import Grid
from repro.mesh.prolong import prolong, restrict
from repro.util.errors import MeshError


def loehner_error(grid: Grid, block: Block, name: str, eps: float = 1.0e-2) -> float:
    """Maximum modified-Löhner indicator of one variable on one block.

    A dimension-by-dimension second-derivative estimator normalised by the
    first-derivative magnitude plus a noise filter: robust to both shocks
    and smooth flows, like FLASH's default.
    """
    q = grid.interior(block, name)
    worst = 0.0
    for axis in range(grid.spec.ndim):
        n = q.shape[axis]
        if n < 3:
            continue
        mid = [slice(1, -1)] * q.ndim
        lo = [slice(None, -2)] * q.ndim
        hi = [slice(2, None)] * q.ndim
        for a in range(q.ndim):
            if a != axis:
                mid[a] = lo[a] = hi[a] = slice(None)
        qm, ql, qh = q[tuple(mid)], q[tuple(lo)], q[tuple(hi)]
        num = np.abs(qh - 2.0 * qm + ql)
        den = np.abs(qh - qm) + np.abs(qm - ql) + eps * (
            np.abs(qh) + 2.0 * np.abs(qm) + np.abs(ql)
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = np.where(den > 0.0, num / den, 0.0)
        worst = max(worst, float(ratio.max()))
    return worst


def refine_block(grid: Grid, bid: BlockId) -> list[BlockId]:
    """Refine one leaf (recursively pre-refining for 2:1 balance),
    prolonging the solution into the new children.  Returns new leaves."""
    tree = grid.tree
    if not tree.is_leaf(bid):
        return []
    created: list[BlockId] = []
    for axis in range(tree.ndim):
        for direction in (-1, 1):
            kind, info = tree.face_neighbor(bid, axis, direction)
            if kind == "coarser":
                created += refine_block(grid, info)
    parent_block = grid.blocks[bid]
    sx, sy, sz = grid.spec.interior_slices()
    parent_interior = grid.block_data(parent_block)[:, sx, sy, sz].copy()
    active = tuple(range(grid.spec.ndim))
    fine = prolong(parent_interior, active)

    kids = tree.split(bid)
    n = grid.spec.interior_zones
    for kid in kids:
        kb = grid._add_block(kid)
        sel: list = [slice(None)]
        for axis in range(3):
            if axis < grid.spec.ndim:
                half = kid.coords()[axis] % 2
                sel.append(slice(half * n[axis], (half + 1) * n[axis]))
            else:
                sel.append(slice(None))
        grid.block_data(kb)[:, sx, sy, sz] = fine[tuple(sel)]
        created.append(kid)
    grid._remove_block(bid)
    return created


def derefine_block(grid: Grid, parent: BlockId) -> bool:
    """Coalesce a sibling bundle into its parent (restriction); False if
    the tree's balance rules forbid it."""
    tree = grid.tree
    if not tree.can_derefine(parent):
        return False
    sx, sy, sz = grid.spec.interior_slices()
    n = grid.spec.interior_zones
    active = tuple(range(grid.spec.ndim))
    pb = grid._add_block(parent)  # slot first; children still hold data
    for kid in tree.children(parent):
        kid_interior = grid.block_data(grid.blocks[kid])[:, sx, sy, sz]
        coarse = restrict(kid_interior, active)
        sel: list = [slice(None)]
        for axis in range(3):
            if axis < grid.spec.ndim:
                half = kid.coords()[axis] % 2
                half_n = n[axis] // 2
                sel.append(slice(grid.spec.nguard + half * half_n,
                                 grid.spec.nguard + (half + 1) * half_n))
            else:
                sel.append(slice(0, 1))
        grid.block_data(pb)[tuple(sel)] = coarse
    removed = tree.derefine(parent)
    for kid in removed:
        grid._remove_block(kid)
    return True


def refine_pass(grid: Grid, name: str = "dens",
                refine_cutoff: float = 0.8,
                derefine_cutoff: float = 0.2,
                max_new: int | None = None) -> tuple[int, int]:
    """One FLASH-style remesh: mark by Löhner error, derefine then refine.

    Returns ``(n_refined, n_derefined)`` block-split/merge counts.
    """
    if not (0.0 <= derefine_cutoff < refine_cutoff <= 1.0):
        raise MeshError("need 0 <= derefine_cutoff < refine_cutoff <= 1")
    tree = grid.tree
    errors = {b.bid: loehner_error(grid, b, name) for b in grid.leaf_blocks()}

    # derefinement: whole sibling bundles below the low threshold
    n_deref = 0
    parents = {bid.parent for bid in errors if bid.level > 0}
    for parent in sorted(parents):
        kids = tree.children(parent)
        if all(tree.is_leaf(k) and errors.get(k, 1.0) < derefine_cutoff
               for k in kids):
            if derefine_block(grid, parent):
                n_deref += 1
                for k in kids:
                    errors.pop(k, None)

    # refinement: leaves above the high threshold
    n_ref = 0
    marks = [bid for bid, err in sorted(errors.items())
             if err > refine_cutoff and bid.level < tree.max_level]
    for bid in marks:
        if max_new is not None and n_ref >= max_new:
            break
        if tree.is_leaf(bid):
            refine_block(grid, bid)
            n_ref += 1
    return n_ref, n_deref


__all__ = ["loehner_error", "refine_block", "derefine_block", "refine_pass"]
