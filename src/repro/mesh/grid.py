"""The ``unk`` data container and block bookkeeping.

PARAMESH stores every block's solution in one Fortran-ordered array

``unk(nvar, il_bnd:iu_bnd, jl_bnd:ju_bnd, kl_bnd:ku_bnd, maxblocks)``

We keep exactly that layout (``order='F'`` NumPy array), because the
memory strides it induces — between variables of one zone, between zones,
and between blocks — are what the paper's huge-page study is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.block import Block, BlockId
from repro.mesh.tree import AMRTree
from repro.util.errors import MeshError


@dataclass(frozen=True)
class MeshSpec:
    """Block geometry: zone counts, guard cells, capacity."""

    ndim: int = 2
    nxb: int = 16
    nyb: int = 16
    nzb: int = 1
    nguard: int = 4
    maxblocks: int = 2048

    def __post_init__(self) -> None:
        if self.ndim < 3 and self.nzb != 1:
            raise MeshError("nzb must be 1 for ndim < 3")
        if self.ndim < 2 and self.nyb != 1:
            raise MeshError("nyb must be 1 for ndim < 2")
        for n in (self.nxb, self.nyb, self.nzb):
            if n % 2 and n > 1:
                raise MeshError("zone counts must be even (refinement halves)")

    @property
    def interior_zones(self) -> tuple[int, int, int]:
        return (self.nxb, self.nyb, self.nzb)

    @property
    def padded_shape(self) -> tuple[int, int, int]:
        """Zone counts including guard cells (guards only along active dims)."""
        gx = self.nxb + 2 * self.nguard
        gy = self.nyb + (2 * self.nguard if self.ndim > 1 else 0)
        gz = self.nzb + (2 * self.nguard if self.ndim > 2 else 0)
        return (gx, gy, gz)

    def interior_slices(self) -> tuple[slice, slice, slice]:
        g = self.nguard
        sx = slice(g, g + self.nxb)
        sy = slice(g, g + self.nyb) if self.ndim > 1 else slice(0, 1)
        sz = slice(g, g + self.nzb) if self.ndim > 2 else slice(0, 1)
        return (sx, sy, sz)

    def zones_per_block(self) -> int:
        return self.nxb * self.nyb * self.nzb


class VariableRegistry:
    """Ordered named variables of ``unk`` (FLASH's four-letter names)."""

    #: the standard hydro + thermodynamics set
    HYDRO = ("dens", "velx", "vely", "velz", "pres", "ener", "eint",
             "temp", "gamc", "game")

    def __init__(self, names: tuple[str, ...] = HYDRO) -> None:
        if len(set(names)) != len(names):
            raise MeshError("duplicate variable names")
        self.names = tuple(names)
        self._index = {n: i for i, n in enumerate(self.names)}

    def __len__(self) -> int:
        return len(self.names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise MeshError(f"unknown variable {name!r}") from None

    def extended(self, *extra: str) -> "VariableRegistry":
        return VariableRegistry(self.names + tuple(extra))


class Grid:
    """Solution storage + block table on top of an :class:`AMRTree`."""

    def __init__(self, tree: AMRTree, spec: MeshSpec,
                 variables: VariableRegistry | None = None) -> None:
        if tree.ndim != spec.ndim:
            raise MeshError("tree and spec dimensionality differ")
        self.tree = tree
        self.spec = spec
        self.variables = variables or VariableRegistry()
        nx, ny, nz = spec.padded_shape
        self.unk = np.zeros((len(self.variables), nx, ny, nz, spec.maxblocks),
                            order="F")
        self._free_slots = list(range(spec.maxblocks - 1, -1, -1))
        self.blocks: dict[BlockId, Block] = {}
        #: rank decomposition hooks (see repro.mpisim.fabric): when
        #: ``owned`` is set, iteration — and therefore every unit sweep
        #: and integral — is restricted to the owned shard; ``halo_hook``
        #: is invoked once per guard-fill axis pass so off-rank source
        #: blocks can be refreshed before they are read.  Both default to
        #: the serial behaviour (no filter, no hook).
        self.owned: frozenset | None = None
        self.halo_hook = None
        for bid in tree.leaves():
            self._add_block(bid)

    # --- block table -----------------------------------------------------------
    def _add_block(self, bid: BlockId) -> Block:
        if bid in self.blocks:
            raise MeshError(f"{bid} already has a slot")
        if not self._free_slots:
            raise MeshError("maxblocks exceeded; enlarge MeshSpec.maxblocks")
        slot = self._free_slots.pop()
        block = Block(bid=bid, slot=slot, bbox=self.tree.bbox(bid))
        self.blocks[bid] = block
        return block

    def _remove_block(self, bid: BlockId) -> None:
        block = self.blocks.pop(bid)
        self.unk[..., block.slot] = 0.0
        self._free_slots.append(block.slot)

    def leaf_blocks(self) -> list[Block]:
        """Leaf blocks in Morton order (the iteration order of every unit).

        Under a rank decomposition (``owned`` set) only the owned shard
        is returned, in the same Morton order — units then sweep, apply
        the EOS to, and integrate over this rank's blocks only.
        """
        leaves = self.tree.leaves()
        if self.owned is not None:
            leaves = [bid for bid in leaves if bid in self.owned]
        return [self.blocks[bid] for bid in leaves]

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    # --- data access -------------------------------------------------------------
    def var(self, name: str) -> int:
        return self.variables.index(name)

    def block_data(self, block: Block | BlockId) -> np.ndarray:
        """Full padded view ``(nvar, NX, NY, NZ)`` of one block."""
        slot = block.slot if isinstance(block, Block) else self.blocks[block].slot
        return self.unk[..., slot]

    def interior(self, block: Block | BlockId, name: str | None = None) -> np.ndarray:
        """Interior (guard-free) view of one variable — or all of them."""
        data = self.block_data(block)
        sx, sy, sz = self.spec.interior_slices()
        if name is None:
            return data[:, sx, sy, sz]
        return data[self.variables.index(name), sx, sy, sz]

    def cell_centers(self, block: Block) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cell-centre coordinate arrays for the *interior* zones,
        shaped for broadcasting: (nxb,1,1), (1,nyb,1), (1,1,nzb)."""
        nx, ny, nz = self.spec.interior_zones
        out = []
        for axis, n in enumerate((nx, ny, nz)):
            lo, hi = block.bbox[axis]
            d = (hi - lo) / n
            centers = lo + d * (np.arange(n) + 0.5)
            shape = [1, 1, 1]
            shape[axis] = n
            out.append(centers.reshape(shape))
        return tuple(out)

    def cell_volume(self, block: Block) -> float:
        """Volume of one interior cell (Cartesian geometry)."""
        dx, dy, dz = block.deltas(self.spec.interior_zones)
        vol = dx
        if self.spec.ndim > 1:
            vol *= dy
        if self.spec.ndim > 2:
            vol *= dz
        return vol

    # --- integrals ------------------------------------------------------------------
    def total(self, name: str, weight: str | None = "dens") -> float:
        """Domain integral of a variable (mass-weighted by default).

        ``total('dens', weight=None)`` is total mass / volume... the
        common uses are ``total('dens', None)`` -> sum rho*V = mass and
        ``total('ener')`` -> sum rho*E*V = total energy.
        """
        acc = 0.0
        for block in self.leaf_blocks():
            q = self.interior(block, name)
            w = self.interior(block, weight) if weight else 1.0
            acc += float(np.sum(q * w)) * self.cell_volume(block)
        return acc

    @property
    def nbytes(self) -> int:
        """Size of the unk container (what FLASH dynamically allocates)."""
        return self.unk.nbytes


__all__ = ["Grid", "MeshSpec", "VariableRegistry"]
