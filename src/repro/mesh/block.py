"""Block identity and metadata for the AMR tree."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class BlockId:
    """A block's logical position: refinement level plus integer coords.

    At level ``L`` the domain is tiled by ``nbase * 2**L`` blocks per
    dimension (where ``nbase`` is the base-grid block count), so
    ``0 <= ix < nblockx * 2**L`` etc.  Unused dimensions have coord 0.
    """

    level: int
    ix: int
    iy: int
    iz: int = 0

    def child(self, dx: int, dy: int, dz: int = 0) -> "BlockId":
        """The child block offset by (dx, dy, dz) in {0,1}^ndim."""
        return BlockId(self.level + 1, 2 * self.ix + dx, 2 * self.iy + dy,
                       2 * self.iz + dz)

    @property
    def parent(self) -> "BlockId":
        if self.level == 0:
            raise ValueError("root blocks have no parent")
        return BlockId(self.level - 1, self.ix // 2, self.iy // 2, self.iz // 2)

    def neighbor(self, axis: int, direction: int) -> "BlockId":
        """Same-level neighbour across the given face (may not exist)."""
        d = [self.ix, self.iy, self.iz]
        d[axis] += direction
        return BlockId(self.level, *d)

    def coords(self) -> tuple[int, int, int]:
        return (self.ix, self.iy, self.iz)


@dataclass
class Block:
    """Runtime state of one block: its grid slot and physical extent."""

    bid: BlockId
    #: slot index into the unk array's block axis
    slot: int
    #: physical bounding box: ((xlo, xhi), (ylo, yhi), (zlo, zhi))
    bbox: tuple[tuple[float, float], ...]
    is_leaf: bool = True

    @property
    def level(self) -> int:
        return self.bid.level

    def deltas(self, nzones: tuple[int, int, int]) -> tuple[float, ...]:
        """Cell widths (dx, dy, dz) given interior zone counts."""
        return tuple(
            (hi - lo) / n if n > 0 else 0.0
            for (lo, hi), n in zip(self.bbox, nzones)
        )


__all__ = ["Block", "BlockId"]
