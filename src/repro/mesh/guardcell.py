"""Guard-cell filling: same-level exchange, restriction, prolongation, BCs.

PARAMESH's ``amr_guardcell``: before a physics unit sweeps a block it needs
``nguard`` halo zones on every side, sourced from

* the same-level neighbour's interior (plain copy),
* a finer neighbour's interior (restriction),
* a coarser neighbour's interior (limited prolongation), or
* a physical boundary condition (outflow / reflect; periodic faces are
  handled by the tree's index wrapping).

Directions are filled in axis order (x, then y, then z) for *all* blocks
per axis, so edge/corner guard zones inherit values through the already
filled guards of the transverse pass — the standard trick that gives
correct corners for same-level neighbours without explicit diagonal
communication.  (At refinement jumps corners are first-order accurate;
the dimensionally split solvers never read them.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.block import Block, BlockId
from repro.mesh.grid import Grid
from repro.mesh.prolong import prolong, restrict
from repro.util.errors import MeshError

#: boundary condition names per (axis, side)
BC_OUTFLOW = "outflow"
BC_REFLECT = "reflect"
BC_PERIODIC = "periodic"


@dataclass(frozen=True)
class BoundaryConditions:
    """Per-axis boundary conditions, e.g. ``BoundaryConditions(('outflow',)*2, ...)``."""

    x: tuple[str, str] = (BC_OUTFLOW, BC_OUTFLOW)
    y: tuple[str, str] = (BC_OUTFLOW, BC_OUTFLOW)
    z: tuple[str, str] = (BC_OUTFLOW, BC_OUTFLOW)

    def for_axis(self, axis: int) -> tuple[str, str]:
        return (self.x, self.y, self.z)[axis]


def _sl(ndim4: int, axis: int, rng: slice) -> tuple:
    """Slice tuple selecting ``rng`` on block-data axis ``axis`` (0-based
    spatial axis; +1 accounts for the leading variable axis)."""
    out: list = [slice(None)] * ndim4
    out[axis + 1] = rng
    return tuple(out)


def _active_dims(grid: Grid) -> tuple[int, ...]:
    return tuple(range(grid.spec.ndim))


def fill_guardcells(grid: Grid, bc: BoundaryConditions | None = None,
                    velocity_vars: tuple[str, ...] = ("velx", "vely", "velz")) -> None:
    """Fill all guard cells of all leaf blocks."""
    bc = bc or BoundaryConditions()
    g = grid.spec.nguard
    interior_n = grid.spec.interior_zones
    for axis in range(grid.spec.ndim):
        n_a = interior_n[axis]
        if 2 * g > n_a:
            raise MeshError("nguard may not exceed half the block width")
        if grid.halo_hook is not None:
            # rank decomposition: refresh off-rank source blocks before
            # this axis pass reads them (repro.mpisim.fabric); within one
            # pass the writes (guard strips along ``axis``) never overlap
            # the reads (source interiors + already-filled transverse
            # guards), so a per-axis exchange reproduces the serial fill
            # bit-for-bit
            grid.halo_hook(axis)
        for block in grid.leaf_blocks():
            for direction in (-1, 1):
                _fill_face(grid, block, axis, direction, bc, velocity_vars)


def _fill_face(grid: Grid, block: Block, axis: int, direction: int,
               bc: BoundaryConditions, velocity_vars: tuple[str, ...]) -> None:
    g = grid.spec.nguard
    n_a = grid.spec.interior_zones[axis]
    data = grid.block_data(block)
    nd = data.ndim

    if direction < 0:
        dest = _sl(nd, axis, slice(0, g))
    else:
        dest = _sl(nd, axis, slice(g + n_a, g + n_a + g))

    kind, info = grid.tree.face_neighbor(block.bid, axis, direction)

    if kind == "boundary":
        side = 0 if direction < 0 else 1
        _apply_physical_bc(grid, data, axis, direction, bc.for_axis(axis)[side],
                           velocity_vars)
        return

    if kind == "leaf":
        src_block = grid.blocks[info]
        src = grid.block_data(src_block)
        if direction < 0:
            src_rng = slice(n_a, n_a + g)  # neighbour's last g interior cells
        else:
            src_rng = slice(g, 2 * g)  # neighbour's first g interior cells
        data[dest] = src[_sl(nd, axis, src_rng)]
        return

    if kind == "coarser":
        _fill_from_coarser(grid, block, info, axis, direction, dest)
        return

    if kind == "finer":
        _fill_from_finer(grid, block, info, axis, direction)
        return

    raise MeshError(f"unknown neighbour kind {kind}")


def _apply_physical_bc(grid: Grid, data: np.ndarray, axis: int, direction: int,
                       kind: str, velocity_vars: tuple[str, ...]) -> None:
    g = grid.spec.nguard
    n_a = grid.spec.interior_zones[axis]
    nd = data.ndim
    if kind == BC_PERIODIC:
        # consistency: periodic faces should have been wrapped by the tree
        raise MeshError("periodic BC must be configured on the AMRTree")
    if kind == BC_OUTFLOW:
        # zero gradient: replicate the edge interior zone
        edge = g if direction < 0 else g + n_a - 1
        edge_vals = data[_sl(nd, axis, slice(edge, edge + 1))]
        if direction < 0:
            data[_sl(nd, axis, slice(0, g))] = edge_vals
        else:
            data[_sl(nd, axis, slice(g + n_a, g + n_a + g))] = edge_vals
        return
    if kind == BC_REFLECT:
        if direction < 0:
            src = data[_sl(nd, axis, slice(g, 2 * g))]
            mirrored = np.flip(src, axis=axis + 1)
            data[_sl(nd, axis, slice(0, g))] = mirrored
        else:
            src = data[_sl(nd, axis, slice(n_a, n_a + g))]
            mirrored = np.flip(src, axis=axis + 1)
            data[_sl(nd, axis, slice(g + n_a, g + n_a + g))] = mirrored
        # flip the normal velocity component
        vname = velocity_vars[axis]
        if vname in grid.variables:
            v = grid.variables.index(vname)
            if direction < 0:
                data[v][tuple(s for s in _sl(nd, axis, slice(0, g))[1:])] *= -1.0
            else:
                data[v][tuple(s for s in _sl(nd, axis, slice(g + n_a, g + n_a + g))[1:])] *= -1.0
        return
    raise MeshError(f"unknown boundary condition {kind!r}")


def _transverse_axes(grid: Grid, axis: int) -> list[int]:
    return [a for a in range(grid.spec.ndim) if a != axis]


def _fill_from_coarser(grid: Grid, block: Block, coarse_bid: BlockId,
                       axis: int, direction: int, dest: tuple) -> None:
    """Prolong the adjacent strip of the coarser neighbour into our guards."""
    g = grid.spec.nguard
    spec = grid.spec
    n = spec.interior_zones
    data = grid.block_data(block)
    src = grid.block_data(grid.blocks[coarse_bid])
    nd = data.ndim
    gc = g // 2  # coarse cells needed along the face-normal
    if g % 2:
        raise MeshError("nguard must be even for coarse-fine interpolation")

    # face-normal coarse range: the strip of the neighbour adjacent to us.
    # The source region is widened by one interior cell per active axis
    # (where available) so the slope limiter sees real gradients instead of
    # clamped zero slopes at the strip edges; the pad is trimmed after
    # prolongation.
    n_a = n[axis]
    if direction < 0:
        want = (g + n_a - gc, g + n_a)
    else:
        want = (g, g + gc)

    sel: list = [slice(None)] * nd
    trim: dict[int, tuple[int, int]] = {}
    lo = max(want[0] - 1, g)
    hi = min(want[1] + 1, g + n_a)
    sel[axis + 1] = slice(lo, hi)
    trim[axis] = (want[0] - lo, hi - want[1])

    # transverse: the half of the coarse block our fine block overlays
    for t in _transverse_axes(grid, axis):
        half = block.bid.coords()[t] % 2
        n_t = n[t]
        t_want = (g + half * (n_t // 2), g + (half + 1) * (n_t // 2))
        t_lo = max(t_want[0] - 1, g)
        t_hi = min(t_want[1] + 1, g + n_t)
        sel[t + 1] = slice(t_lo, t_hi)
        trim[t] = (t_want[0] - t_lo, t_hi - t_want[1])
    coarse_strip = src[tuple(sel)]

    fine = prolong(coarse_strip, _active_dims(grid), edge_slopes=True)
    crop: list = [slice(None)] * nd
    for a, (pad_lo, pad_hi) in trim.items():
        stop = fine.shape[a + 1] - 2 * pad_hi
        crop[a + 1] = slice(2 * pad_lo, stop)
    fine = fine[tuple(crop)]
    # write into our guard strip over the interior transverse extent
    out_sel: list = list(dest)
    for t in _transverse_axes(grid, axis):
        out_sel[t + 1] = slice(g, g + n[t])
    data[tuple(out_sel)] = fine


def _fill_from_finer(grid: Grid, block: Block, children: list[BlockId],
                     axis: int, direction: int) -> None:
    """Restrict the touching fine children's interiors into our guards."""
    g = grid.spec.nguard
    spec = grid.spec
    n = spec.interior_zones
    data = grid.block_data(block)
    nd = data.ndim
    n_a = n[axis]

    for child_bid in children:
        child = grid.blocks[child_bid]
        src = grid.block_data(child)
        sel: list = [slice(None)] * nd
        # face-normal: 2g fine interior cells nearest our face
        if direction < 0:
            sel[axis + 1] = slice(g + n_a - 2 * g, g + n_a)
        else:
            sel[axis + 1] = slice(g, g + 2 * g)
        for t in _transverse_axes(grid, axis):
            sel[t + 1] = slice(g, g + n[t])
        fine_strip = src[tuple(sel)]
        coarse = restrict(fine_strip, _active_dims(grid))

        out_sel: list = [slice(None)] * nd
        if direction < 0:
            out_sel[axis + 1] = slice(0, g)
        else:
            out_sel[axis + 1] = slice(g + n_a, g + n_a + g)
        for t in _transverse_axes(grid, axis):
            ct = child_bid.coords()[t] % 2
            n_t = n[t]
            out_sel[t + 1] = slice(g + ct * (n_t // 2), g + (ct + 1) * (n_t // 2))
        data[tuple(out_sel)] = coarse


__all__ = ["fill_guardcells", "BoundaryConditions",
           "BC_OUTFLOW", "BC_REFLECT", "BC_PERIODIC"]
