"""Conservative restriction and prolongation operators.

* **Restriction** (fine -> coarse) averages each 2^ndim bundle of fine
  cells — exactly conservative for cell averages.
* **Prolongation** (coarse -> fine) reconstructs a minmod-limited linear
  profile in each direction and samples it at child-cell centres
  (offsets of +-1/4 of the parent cell).  The linear terms cancel in the
  children's mean, so prolongation is conservative too, and the limiter
  keeps it monotone near shocks.

Both operate on arrays shaped ``(nvar, na, nb, nc)`` and refine/coarsen
only the listed active dimensions (inactive dims of 2-d data stay 1).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import MeshError


def restrict(fine: np.ndarray, active_dims: tuple[int, ...]) -> np.ndarray:
    """Average 2x(2x(2)) fine cells into coarse cells along active dims."""
    out = fine
    for dim in active_dims:
        axis = dim + 1  # skip the variable axis
        n = out.shape[axis]
        if n % 2:
            raise MeshError(f"cannot restrict odd extent {n} on axis {axis}")
        shape = list(out.shape)
        shape[axis : axis + 1] = [n // 2, 2]
        out = out.reshape(shape).mean(axis=axis + 1)
    return out


def _minmod_slopes(q: np.ndarray, axis: int, edge_slopes: bool = False) -> np.ndarray:
    """Limited per-cell slope along ``axis``.

    Interior cells get the minmod of the two one-sided differences.  Edge
    cells get zero slope by default (safe for data whose edges may be real
    extrema); with ``edge_slopes=True`` they get the single available
    difference — appropriate when the array is a *window* into a larger
    smooth field, as in guard-cell interpolation.
    """
    fwd = np.zeros_like(q)
    bwd = np.zeros_like(q)
    sl_lo = [slice(None)] * q.ndim
    sl_hi = [slice(None)] * q.ndim
    sl_lo[axis] = slice(None, -1)
    sl_hi[axis] = slice(1, None)
    diff = q[tuple(sl_hi)] - q[tuple(sl_lo)]
    fwd[tuple(sl_lo)] = diff
    bwd[tuple(sl_hi)] = diff
    same_sign = fwd * bwd > 0.0
    mm = np.where(np.abs(fwd) < np.abs(bwd), fwd, bwd)
    slopes = np.where(same_sign, mm, 0.0)
    if edge_slopes and q.shape[axis] > 1:
        first = [slice(None)] * q.ndim
        last = [slice(None)] * q.ndim
        first[axis] = slice(0, 1)
        last[axis] = slice(-1, None)
        slopes[tuple(first)] = fwd[tuple(first)]
        slopes[tuple(last)] = bwd[tuple(last)]
    return slopes


def prolong(coarse: np.ndarray, active_dims: tuple[int, ...],
            edge_slopes: bool = False) -> np.ndarray:
    """Refine by 2 along active dims with limited linear reconstruction."""
    slopes = {dim: _minmod_slopes(coarse, dim + 1, edge_slopes)
              for dim in active_dims}
    out_shape = list(coarse.shape)
    for dim in active_dims:
        out_shape[dim + 1] *= 2
    out = np.empty(out_shape, dtype=coarse.dtype)

    # iterate over the 2^n child offsets, writing strided views
    n_active = len(active_dims)
    for mask in range(1 << n_active):
        value = coarse.copy()
        sel: list = [slice(None)] * coarse.ndim
        for bit, dim in enumerate(active_dims):
            off = 1 if (mask >> bit) & 1 else 0
            value = value + (0.25 if off else -0.25) * slopes[dim]
            sel[dim + 1] = slice(off, None, 2)
        out[tuple(sel)] = value
    return out


def restrict_fluxes(fine_flux: np.ndarray, active_dims: tuple[int, ...]) -> np.ndarray:
    """Average fine face fluxes (per unit area) onto the coarse face.

    ``fine_flux`` is shaped ``(nvar, nt, nu)`` on the face; active dims
    refer to the face's transverse axes (0-based within the face array).
    """
    out = fine_flux
    for dim in active_dims:
        axis = dim + 1
        n = out.shape[axis]
        if n % 2:
            raise MeshError(f"cannot restrict odd face extent {n}")
        shape = list(out.shape)
        shape[axis : axis + 1] = [n // 2, 2]
        out = out.reshape(shape).mean(axis=axis + 1)
    return out


__all__ = ["restrict", "prolong", "restrict_fluxes"]
