"""Flux conservation at refinement jumps.

With PARAMESH's single global timestep, conservation across a coarse/fine
face requires the coarse cell adjacent to the face to be updated with the
*area-averaged fine* fluxes instead of its own coarse flux.  The hydro
unit deposits its boundary face fluxes here; after all blocks are updated,
:meth:`FluxRegister.correct` applies the difference

``U_coarse += -(dt/dx) * direction * (F_fine_avg - F_coarse)``

to the first interior zone layer behind each under-resolved face.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.block import BlockId
from repro.mesh.grid import Grid
from repro.mesh.prolong import restrict_fluxes
from repro.util.errors import MeshError


@dataclass
class FluxRegister:
    """Stores per-block boundary face fluxes for one timestep.

    Keyed by ``(bid, axis, side)`` with ``side`` 0 (low face) or 1 (high
    face); fluxes are per-unit-area arrays shaped ``(nvar, nt, nu)`` over
    the block's interior transverse zones.
    """

    grid: Grid
    fluxes: dict[tuple[BlockId, int, int], np.ndarray] = field(default_factory=dict)

    def put(self, bid: BlockId, axis: int, side: int, flux: np.ndarray) -> None:
        self.fluxes[(bid, axis, side)] = np.array(flux, copy=True)

    def get(self, bid: BlockId, axis: int, side: int) -> np.ndarray:
        return self.fluxes[(bid, axis, side)]

    def clear(self) -> None:
        self.fluxes.clear()

    def correct(self, dt: float, conserved_vars: list[str] | None = None) -> int:
        """Apply fine-flux corrections to coarse cells; returns the number
        of corrected faces."""
        grid = self.grid
        tree = grid.tree
        spec = grid.spec
        g = spec.nguard
        n = spec.interior_zones
        corrected = 0
        names = conserved_vars or list(grid.variables.names)
        var_idx = np.array([grid.var(v) for v in names])

        for block in grid.leaf_blocks():
            bid = block.bid
            deltas = block.deltas(n)
            for axis in range(spec.ndim):
                for direction in (-1, 1):
                    kind, info = tree.face_neighbor(bid, axis, direction)
                    if kind != "finer":
                        continue
                    side = 0 if direction < 0 else 1
                    key = (bid, axis, side)
                    if key not in self.fluxes:
                        raise MeshError(f"missing coarse flux for {key}")
                    coarse_flux = self.fluxes[key][var_idx]
                    fine_avg = self._averaged_fine_flux(info, axis, direction,
                                                        var_idx)
                    diff = fine_avg - coarse_flux  # (nvar_sel, nt, nu)
                    data = grid.block_data(block)
                    # first interior layer behind the face
                    layer = g if direction < 0 else g + n[axis] - 1
                    sel: list = [var_idx, slice(None), slice(None), slice(None)]
                    sel[axis + 1] = slice(layer, layer + 1)
                    for t in range(spec.ndim):
                        if t != axis:
                            sel[t + 1] = slice(g, g + n[t])
                    for t in range(spec.ndim, 3):
                        sel[t + 1] = slice(0, 1)
                    shape = [len(var_idx), 1, 1, 1]
                    tshape = list(diff.shape[1:])
                    ti = 0
                    for t in range(3):
                        if t == axis:
                            continue
                        if t < spec.ndim:
                            shape[t + 1] = tshape[ti]
                            ti += 1
                    # sign: at the low face flux enters the cell, at the
                    # high face it leaves
                    sign = 1.0 if direction < 0 else -1.0
                    data[tuple(sel)] += (
                        sign * dt / deltas[axis] * diff.reshape(shape)
                    )
                    corrected += 1
        return corrected

    def _averaged_fine_flux(self, children: list[BlockId], axis: int,
                            direction: int, var_idx: np.ndarray) -> np.ndarray:
        """Area-average the touching children's face fluxes onto the coarse
        face, assembled over the transverse extent."""
        grid = self.grid
        spec = grid.spec
        n = spec.interior_zones
        # fine child face: opposite side of ours
        child_side = 1 if direction < 0 else 0
        transverse = [t for t in range(spec.ndim) if t != axis]
        # output transverse shape: full coarse interior
        out_shape = [len(var_idx)] + [
            (n[t] if t < spec.ndim and t != axis else 1) for t in range(3)
        ]
        out_shape = [len(var_idx)] + [n[t] for t in transverse]
        while len(out_shape) < 3:
            out_shape.append(1)
        out = np.zeros(out_shape)
        for child in children:
            key = (child, axis, child_side)
            if key not in self.fluxes:
                raise MeshError(f"missing fine flux for {key}")
            fine = self.fluxes[key][var_idx]
            coarse = restrict_fluxes(fine, tuple(range(len(transverse))))
            sel: list = [slice(None)]
            for ti, t in enumerate(transverse):
                ct = child.coords()[t] % 2
                half = n[t] // 2
                sel.append(slice(ct * half, (ct + 1) * half))
            while len(sel) < out.ndim:
                sel.append(slice(None))
            out[tuple(sel)] = coarse
        return out


__all__ = ["FluxRegister"]
