"""The Grid unit's declarations: refinement policy + guard-cell work.

PARAMESH's runtime parameters (refinement cadence, criteria, boundary
types) live here, together with :class:`RefinementPolicy` — the
schedulable object the generic driver runs in the ``remesh`` phase —
and the ``guardcell`` work kind the performance model prices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import (
    COARSE,
    ParameterSpec,
    StepContribution,
    UnitSpec,
    WorkKind,
    unit_registry,
)
from repro.hw import calibration as cal
from repro.mesh.grid import Grid
from repro.mesh.refine import refine_pass

#: the six flash.par boundary-type parameters
_BOUNDARY_PARAMS = tuple(
    ParameterSpec(f"{side}_boundary_type", "outflow",
                  doc=f"{side} domain boundary condition")
    for side in ("xl", "xr", "yl", "yr", "zl", "zr"))


@dataclass
class RefinementPolicy:
    """When and how the mesh refines (FLASH's ``nrefs`` cadence)."""

    nrefs: int = 4
    refine_var: str = "dens"
    refine_cutoff: float = 0.8
    derefine_cutoff: float = 0.2

    def due(self, n_step: int) -> bool:
        """Remesh runs every ``nrefs`` steps (counting the current one)."""
        return self.nrefs > 0 and (n_step + 1) % self.nrefs == 0

    def remesh(self, grid: Grid) -> tuple[int, int]:
        return refine_pass(grid, self.refine_var,
                           refine_cutoff=self.refine_cutoff,
                           derefine_cutoff=self.derefine_cutoff)


def _step(sim, unit: RefinementPolicy, dt: float) -> StepContribution:
    n_ref, n_deref = unit.remesh(sim.grid)
    return StepContribution(n_refined=n_ref, n_derefined=n_deref)


MESH_UNIT = unit_registry.register(UnitSpec(
    name="mesh",
    description="block-structured AMR grid: refinement and guard cells",
    phase=40,
    timer="remesh",
    implements=(RefinementPolicy,),
    step=_step,
    should_run=lambda sim, unit: unit.due(sim.n_step),
    parameters=(
        ParameterSpec("lrefine_max", 4, doc="maximum refinement level"),
        ParameterSpec("nrefs", 4, doc="steps between refinement passes"),
        ParameterSpec("refine_var_1", "dens", doc="refinement variable"),
        ParameterSpec("refine_cutoff_1", 0.8,
                      doc="Löhner indicator above which blocks refine"),
        ParameterSpec("derefine_cutoff_1", 0.2,
                      doc="Löhner indicator below which blocks coalesce"),
    ) + _BOUNDARY_PARAMS,
    work_kinds=(
        WorkKind("guardcell", cal.GUARDCELL, "mesh", COARSE),
    ),
))

__all__ = ["RefinementPolicy", "MESH_UNIT"]
