"""Byte-offset layout of the ``unk`` container.

The paper (section I-C): "PARAMESH is thus designed for loops using data
from blocks, and there is a stride in memory for addressing variables in
different zones or blocks.  This feature motivated our interest in
investigating the use of huge pages."

This module makes those strides explicit.  For the Fortran-ordered array
``unk(nvar, 1:NX, 1:NY, 1:NZ, maxblocks)`` of 8-byte reals the byte offset
of element ``(v, i, j, k, b)`` is::

    8 * (v + nvar*(i + NX*(j + NY*(k + NZ*b))))

so consecutive *variables of one zone* are contiguous, zones along x are
``nvar`` elements apart, and blocks are whole ``nvar*NX*NY*NZ`` panels
apart.  The performance model's access patterns
(:mod:`repro.perfmodel.patterns`) are generated from these formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.grid import MeshSpec


@dataclass(frozen=True)
class UnkLayout:
    """Stride calculator for a concrete unk allocation."""

    nvar: int
    spec: MeshSpec
    itemsize: int = 8

    @property
    def shape(self) -> tuple[int, int, int, int, int]:
        nx, ny, nz = self.spec.padded_shape
        return (self.nvar, nx, ny, nz, self.spec.maxblocks)

    @property
    def strides(self) -> tuple[int, int, int, int, int]:
        """Byte strides (var, i, j, k, block) — Fortran order."""
        nx, ny, nz = self.spec.padded_shape
        sv = self.itemsize
        si = sv * self.nvar
        sj = si * nx
        sk = sj * ny
        sb = sk * nz
        return (sv, si, sj, sk, sb)

    @property
    def block_bytes(self) -> int:
        """Bytes of one block's panel (all variables, padded zones)."""
        return self.strides[4]

    @property
    def nbytes(self) -> int:
        return self.block_bytes * self.spec.maxblocks

    def offset(self, v, i, j, k, b) -> np.ndarray:
        """Byte offset(s) of unk elements; arguments broadcast."""
        sv, si, sj, sk, sb = self.strides
        return (np.asarray(v, np.int64) * sv + np.asarray(i, np.int64) * si
                + np.asarray(j, np.int64) * sj + np.asarray(k, np.int64) * sk
                + np.asarray(b, np.int64) * sb)

    # --- canonical access patterns ----------------------------------------------
    def zone_gather_offsets(self, slot: int, variables: np.ndarray) -> np.ndarray:
        """Offsets for gathering ``variables`` of every interior zone of a
        block, zone-by-zone (the EOS call pattern: all thermodynamic
        variables of zone (i,j,k), then zone (i+1,j,k), ...)."""
        sx, sy, sz = self.spec.interior_slices()
        ii = np.arange(sx.start, sx.stop, dtype=np.int64)
        jj = np.arange(sy.start, sy.stop, dtype=np.int64)
        kk = np.arange(sz.start, sz.stop, dtype=np.int64)
        v = np.asarray(variables, dtype=np.int64)
        # order: v fastest, then i, j, k (Fortran loop nest)
        off = self.offset(
            v[:, None, None, None],
            ii[None, :, None, None],
            jj[None, None, :, None],
            kk[None, None, None, :],
            slot,
        )
        return off.reshape(-1, order="F")

    def sweep_offsets(self, slot: int, variables: np.ndarray, axis: int,
                      include_guards: bool = True) -> np.ndarray:
        """Offsets for a directional stencil sweep over a block.

        The sweep reads each variable's padded plane in natural (Fortran)
        memory order — what a hydro x/y/z sweep does per block.  For y/z
        sweeps the *memory* order is identical (the code still loads the
        same panel); the TLB cares about pages, and page order within one
        block barely depends on the sweep axis, so one canonical order
        per block is the honest model.
        """
        nx, ny, nz = self.spec.padded_shape
        if not include_guards:
            sx, sy, sz = self.spec.interior_slices()
            ii = np.arange(sx.start, sx.stop, dtype=np.int64)
            jj = np.arange(sy.start, sy.stop, dtype=np.int64)
            kk = np.arange(sz.start, sz.stop, dtype=np.int64)
        else:
            ii = np.arange(nx, dtype=np.int64)
            jj = np.arange(ny, dtype=np.int64)
            kk = np.arange(nz, dtype=np.int64)
        v = np.asarray(variables, dtype=np.int64)
        off = self.offset(
            v[:, None, None, None],
            ii[None, :, None, None],
            jj[None, None, :, None],
            kk[None, None, None, :],
            slot,
        )
        return off.reshape(-1, order="F")

    def block_panel_range(self, slot: int) -> tuple[int, int]:
        """(start, stop) byte range of one block's panel."""
        start = int(self.offset(0, 0, 0, 0, slot))
        return start, start + self.block_bytes


__all__ = ["UnkLayout"]
