"""PARAMESH-like block-structured adaptive mesh refinement.

The mesh follows the PARAMESH design the paper describes: the solution
lives in a single Fortran-ordered array

``unk(nvar, il_bnd:iu_bnd, jl_bnd:ju_bnd, kl_bnd:ku_bnd, maxblocks)``

holding fixed-size blocks (16x16 zones in 2-d, 16x16x16 in 3-d by
default, with ``nguard`` guard cells per side) that tile the leaves of a
fully threaded quad/octree.  The stride structure of ``unk`` is what
motivated the paper's huge-page investigation, so
:mod:`repro.mesh.layout` exposes the exact byte-offset mapping for the
performance model.
"""

from repro.mesh.block import Block, BlockId
from repro.mesh.tree import AMRTree
from repro.mesh.grid import Grid, MeshSpec, VariableRegistry
from repro.mesh.layout import UnkLayout
from repro.mesh.guardcell import fill_guardcells
from repro.mesh.refine import loehner_error, refine_pass
from repro.mesh.flux import FluxRegister

__all__ = [
    "Block",
    "BlockId",
    "AMRTree",
    "Grid",
    "MeshSpec",
    "VariableRegistry",
    "UnkLayout",
    "fill_guardcells",
    "loehner_error",
    "refine_pass",
    "FluxRegister",
]
