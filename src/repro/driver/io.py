"""Checkpoint I/O.

FLASH writes HDF5 checkpoints through a parallel I/O layer; we write
compressed ``.npz`` with the same logical content — the tree topology,
block bounding boxes, and every variable of every leaf block — enough to
restart or analyse a run.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.mesh.block import BlockId
from repro.mesh.grid import Grid, MeshSpec, VariableRegistry
from repro.mesh.tree import AMRTree
from repro.util import artifacts
from repro.util.errors import ArtifactError

#: embedded checkpoint format version
_CHECKPOINT_VERSION = 1
#: arrays every valid checkpoint must carry
_CHECKPOINT_KEYS = ("bids", "data", "variables", "spec", "tree_meta",
                    "domain", "periodic", "scalars")


def collect_run_state(sim) -> dict[str, np.ndarray]:
    """Snapshot a simulation's evolving non-mesh state as npz arrays.

    Carried inside checkpoints so a resumed run continues bit-identically:
    the PAPI counter bank, every composed unit's registered
    ``save_state`` dict (hydro sweep parity, cumulative work counters,
    ...), and the driver RNG's bit-generator state.
    """
    events = sorted(sim.bank.totals, key=lambda e: e.name)
    state: dict[str, np.ndarray] = {
        "state/bank_events": np.array([e.name for e in events]),
        "state/bank_values": np.array([sim.bank.totals[e] for e in events],
                                      dtype=np.float64),
        "state/bank_time": np.array(sim.bank.time_s, dtype=np.float64),
    }
    names: list[str] = []
    values: list[float] = []
    for spec, unit in sim.scheduled_units():
        if spec.save_state is None:
            continue
        for key, value in sorted(spec.save_state(sim, unit).items()):
            names.append(f"{spec.name}.{key}")
            values.append(float(value))
    state["state/unit_keys"] = np.array(names)
    state["state/unit_values"] = np.array(values, dtype=np.float64)
    if sim.rng is not None:
        state["state/rng"] = np.array(
            json.dumps(sim.rng.bit_generator.state))
    return state


def restore_run_state(sim, state: dict[str, np.ndarray]) -> None:
    """Apply a :func:`collect_run_state` snapshot to a fresh simulation."""
    from repro.papi.events import Event

    if "state/bank_events" in state:
        for name, value in zip(state["state/bank_events"],
                               state["state/bank_values"]):
            sim.bank.totals[Event[str(name)]] = float(value)
        sim.bank.time_s = float(state["state/bank_time"])
    unit_state: dict[str, dict[str, float]] = {}
    for key, value in zip(state.get("state/unit_keys", ()),
                          state.get("state/unit_values", ())):
        unit_name, _, field = str(key).partition(".")
        unit_state.setdefault(unit_name, {})[field] = float(value)
    for spec, unit in sim.scheduled_units():
        if spec.restore_state is not None and spec.name in unit_state:
            spec.restore_state(sim, unit, unit_state[spec.name])
    if "state/rng" in state and sim.rng is not None:
        sim.rng.bit_generator.state = json.loads(str(state["state/rng"]))


def write_checkpoint(grid: Grid, path: str | Path, *, time: float = 0.0,
                     n_step: int = 0, sim=None) -> Path:
    """Write all leaf-block data and mesh metadata.

    The file is written atomically (temp file + rename) with a SHA-256
    sidecar, so an interrupted write can never leave a truncated
    checkpoint under the final name.  When ``sim`` is given, the run
    state (:func:`collect_run_state`) is embedded too, making the
    checkpoint a bit-identical resume point, and ``time``/``n_step``
    default to the simulation's.
    """
    path = Path(path)
    if sim is not None:
        time, n_step = sim.t, sim.n_step
    leaves = grid.tree.leaves()
    bids = np.array([(b.level, b.ix, b.iy, b.iz) for b in leaves],
                    dtype=np.int64)
    sx, sy, sz = grid.spec.interior_slices()
    slots = [grid.blocks[b].slot for b in leaves]
    data = grid.unk[:, sx, sy, sz, :][..., slots]
    payload = {
        "bids": bids,
        "data": data,
        "variables": np.array(grid.variables.names),
        "spec": np.array([grid.spec.ndim, grid.spec.nxb, grid.spec.nyb,
                          grid.spec.nzb, grid.spec.nguard,
                          grid.spec.maxblocks]),
        "tree_meta": np.array([grid.tree.nblockx, grid.tree.nblocky,
                               grid.tree.nblockz, grid.tree.max_level]),
        "domain": np.array(grid.tree.domain, dtype=np.float64),
        "periodic": np.array(grid.tree.periodic),
        "scalars": np.array([time, float(n_step)]),
    }
    if sim is not None:
        payload.update(collect_run_state(sim))
    artifacts.save_npz(path, payload, version=_CHECKPOINT_VERSION)
    return path


def read_run_state(path: str | Path) -> dict[str, np.ndarray]:
    """The embedded run-state arrays of a checkpoint (empty for legacy
    checkpoints written without ``sim=``)."""
    f = _load_validated(path)
    return {k: v for k, v in f.items() if k.startswith("state/")}


def restart_simulation(path: str | Path, *units, **sim_kwargs):
    """Rebuild a :class:`~repro.driver.simulation.Simulation` from a
    checkpoint, resuming bit-identically.

    The caller supplies fresh unit instances; every evolving piece of
    driver state the checkpoint carries is restored — the hydro unit's
    sweep parity and cumulative work counters, the PAPI counter bank,
    and the driver RNG — so the resumed run's recorded work and counter
    totals continue exactly where the interrupted run stopped.  Legacy
    checkpoints without embedded state still restore the sweep parity
    from the step count.
    """
    from repro.driver.simulation import Simulation

    grid, time, n_step = read_checkpoint(path)
    sim = Simulation(grid, *units, **sim_kwargs)
    sim.t = time
    sim.n_step = n_step
    if sim.hydro is not None:
        sim.hydro._parity = n_step
    restore_run_state(sim, read_run_state(path))
    return sim


def restore_into(sim, path: str | Path) -> None:
    """Apply a checkpoint onto an *existing*, topology-identical simulation.

    The respawn path: rebuilding a failed fabric rank calls the builder
    (fresh storage, initial conditions) and then overwrites its leaf
    interiors, time, step count, and embedded run state from the rank's
    last checkpoint — cheaper than reconstructing a Grid, and it keeps
    the ownership filter and halo hook the fabric already installed on
    the grid.  Guard cells are left stale; the next guard-cell fill
    refills them from the restored interiors exactly as a cold restart
    would.
    """
    f = _load_validated(path)
    grid = sim.grid
    stored_vars = tuple(str(v) for v in f["variables"])
    if stored_vars != tuple(grid.variables.names):
        raise ArtifactError(
            f"checkpoint {path} variables {stored_vars} do not match the "
            f"live grid's {tuple(grid.variables.names)}")
    bids = [BlockId(int(l), int(x), int(y), int(z))
            for l, x, y, z in f["bids"]]
    missing = [b for b in bids if b not in grid.blocks]
    if missing:
        raise ArtifactError(
            f"checkpoint {path} holds block(s) {missing[:3]} the live "
            f"grid does not have (topology mismatch)")
    sx, sy, sz = grid.spec.interior_slices()
    data = f["data"]
    for i, bid in enumerate(bids):
        grid.unk[:, sx, sy, sz, grid.blocks[bid].slot] = data[..., i]
    time, n_step = f["scalars"]
    sim.t = float(time)
    sim.n_step = int(n_step)
    if sim.hydro is not None:
        sim.hydro._parity = sim.n_step
    restore_run_state(sim, {k: v for k, v in f.items()
                            if k.startswith("state/")})


def read_checkpoint(path: str | Path) -> tuple[Grid, float, int]:
    """Reconstruct a Grid (tree + data) from a checkpoint.

    A checkpoint has no builder — it is the product of a simulation run —
    so unlike the EOS-table and worklog caches it cannot be silently
    regenerated.  A truncated, corrupt, or schema-incomplete file raises
    :class:`~repro.util.errors.ArtifactError` with the failed check in
    the message instead of a bare ``zipfile.BadZipFile``.  Checkpoints
    written before the embedded version field are still accepted.
    """
    f = _load_validated(path)
    ndim, nxb, nyb, nzb, nguard, maxblocks = (int(v) for v in f["spec"])
    nbx, nby, nbz, max_level = (int(v) for v in f["tree_meta"])
    domain = tuple(tuple(row) for row in f["domain"])
    periodic = tuple(bool(v) for v in f["periodic"])
    tree = AMRTree(ndim=ndim, nblockx=nbx, nblocky=nby, nblockz=nbz,
                   max_level=max_level, domain=domain, periodic=periodic)
    bids = [BlockId(int(l), int(x), int(y), int(z)) for l, x, y, z in f["bids"]]
    # rebuild topology: split ancestors until every stored bid is a leaf
    for bid in sorted(bids):
        path_ids = []
        b = bid
        while b.level > 0:
            path_ids.append(b)
            b = b.parent
        for anc in reversed([p.parent for p in path_ids]):
            if tree.is_leaf(anc):
                tree.split(anc)
    spec = MeshSpec(ndim=ndim, nxb=nxb, nyb=nyb, nzb=nzb, nguard=nguard,
                    maxblocks=maxblocks)
    variables = VariableRegistry(tuple(str(v) for v in f["variables"]))
    grid = Grid(tree, spec, variables)
    sx, sy, sz = grid.spec.interior_slices()
    data = f["data"]
    for i, bid in enumerate(bids):
        block = grid.blocks[bid]
        grid.unk[:, sx, sy, sz, block.slot] = data[..., i]
    time, n_step = f["scalars"]
    return grid, float(time), int(n_step)


def _load_validated(path: str | Path) -> dict[str, np.ndarray]:
    """Load + validate a checkpoint npz, with checkpoint-flavoured errors."""
    path = Path(path)
    try:
        return artifacts.load_npz(path, required_keys=_CHECKPOINT_KEYS,
                                  version=_CHECKPOINT_VERSION,
                                  allow_missing_version=True)
    except ArtifactError as exc:
        raise ArtifactError(
            f"checkpoint {path} is unreadable and checkpoints cannot be "
            f"rebuilt: {exc}") from exc


__all__ = ["write_checkpoint", "read_checkpoint", "restart_simulation",
           "restore_into", "collect_run_state", "restore_run_state",
           "read_run_state"]
