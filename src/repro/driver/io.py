"""Checkpoint I/O.

FLASH writes HDF5 checkpoints through a parallel I/O layer; we write
compressed ``.npz`` with the same logical content — the tree topology,
block bounding boxes, and every variable of every leaf block — enough to
restart or analyse a run.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.mesh.block import BlockId
from repro.mesh.grid import Grid, MeshSpec, VariableRegistry
from repro.mesh.tree import AMRTree
from repro.util import artifacts
from repro.util.errors import ArtifactError

#: embedded checkpoint format version
_CHECKPOINT_VERSION = 1
#: arrays every valid checkpoint must carry
_CHECKPOINT_KEYS = ("bids", "data", "variables", "spec", "tree_meta",
                    "domain", "periodic", "scalars")


def write_checkpoint(grid: Grid, path: str | Path, *, time: float = 0.0,
                     n_step: int = 0) -> Path:
    """Write all leaf-block data and mesh metadata.

    The file is written atomically (temp file + rename) with a SHA-256
    sidecar, so an interrupted write can never leave a truncated
    checkpoint under the final name.
    """
    path = Path(path)
    leaves = grid.tree.leaves()
    bids = np.array([(b.level, b.ix, b.iy, b.iz) for b in leaves],
                    dtype=np.int64)
    sx, sy, sz = grid.spec.interior_slices()
    slots = [grid.blocks[b].slot for b in leaves]
    data = grid.unk[:, sx, sy, sz, :][..., slots]
    artifacts.save_npz(
        path,
        {
            "bids": bids,
            "data": data,
            "variables": np.array(grid.variables.names),
            "spec": np.array([grid.spec.ndim, grid.spec.nxb, grid.spec.nyb,
                              grid.spec.nzb, grid.spec.nguard,
                              grid.spec.maxblocks]),
            "tree_meta": np.array([grid.tree.nblockx, grid.tree.nblocky,
                                   grid.tree.nblockz, grid.tree.max_level]),
            "domain": np.array(grid.tree.domain, dtype=np.float64),
            "periodic": np.array(grid.tree.periodic),
            "scalars": np.array([time, float(n_step)]),
        },
        version=_CHECKPOINT_VERSION,
    )
    return path


def restart_simulation(path: str | Path, *units, **sim_kwargs):
    """Rebuild a :class:`~repro.driver.simulation.Simulation` from a
    checkpoint, resuming bit-identically.

    The caller supplies fresh physics units (they hold no evolving state
    except the hydro unit's sweep parity, which is restored from the step
    count so the Strang ordering continues where it left off).
    """
    from repro.driver.simulation import Simulation

    grid, time, n_step = read_checkpoint(path)
    sim = Simulation(grid, *units, **sim_kwargs)
    sim.t = time
    sim.n_step = n_step
    if sim.hydro is not None:
        sim.hydro._parity = n_step
    return sim


def read_checkpoint(path: str | Path) -> tuple[Grid, float, int]:
    """Reconstruct a Grid (tree + data) from a checkpoint.

    A checkpoint has no builder — it is the product of a simulation run —
    so unlike the EOS-table and worklog caches it cannot be silently
    regenerated.  A truncated, corrupt, or schema-incomplete file raises
    :class:`~repro.util.errors.ArtifactError` with the failed check in
    the message instead of a bare ``zipfile.BadZipFile``.  Checkpoints
    written before the embedded version field are still accepted.
    """
    path = Path(path)
    try:
        f = artifacts.load_npz(path, required_keys=_CHECKPOINT_KEYS,
                               version=_CHECKPOINT_VERSION,
                               allow_missing_version=True)
    except ArtifactError as exc:
        raise ArtifactError(
            f"checkpoint {path} is unreadable and checkpoints cannot be "
            f"rebuilt: {exc}") from exc
    ndim, nxb, nyb, nzb, nguard, maxblocks = (int(v) for v in f["spec"])
    nbx, nby, nbz, max_level = (int(v) for v in f["tree_meta"])
    domain = tuple(tuple(row) for row in f["domain"])
    periodic = tuple(bool(v) for v in f["periodic"])
    tree = AMRTree(ndim=ndim, nblockx=nbx, nblocky=nby, nblockz=nbz,
                   max_level=max_level, domain=domain, periodic=periodic)
    bids = [BlockId(int(l), int(x), int(y), int(z)) for l, x, y, z in f["bids"]]
    # rebuild topology: split ancestors until every stored bid is a leaf
    for bid in sorted(bids):
        path_ids = []
        b = bid
        while b.level > 0:
            path_ids.append(b)
            b = b.parent
        for anc in reversed([p.parent for p in path_ids]):
            if tree.is_leaf(anc):
                tree.split(anc)
    spec = MeshSpec(ndim=ndim, nxb=nxb, nyb=nyb, nzb=nzb, nguard=nguard,
                    maxblocks=maxblocks)
    variables = VariableRegistry(tuple(str(v) for v in f["variables"]))
    grid = Grid(tree, spec, variables)
    sx, sy, sz = grid.spec.interior_slices()
    data = f["data"]
    for i, bid in enumerate(bids):
        block = grid.blocks[bid]
        grid.unk[:, sx, sy, sz, block.slot] = data[..., i]
    time, n_step = f["scalars"]
    return grid, float(time), int(n_step)


__all__ = ["write_checkpoint", "read_checkpoint", "restart_simulation"]
