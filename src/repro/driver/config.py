"""flash.par-style runtime parameters.

FLASH reads a plain ``name = value`` parameter file; this replica parses
the same format (comments with ``#``, booleans as ``.true.``/``.false.``,
strings quoted) on top of a defaults dictionary, with type checking
against the default's type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.util.errors import ConfigurationError

#: defaults shared by the example applications (subset of FLASH's)
DEFAULTS: dict[str, object] = {
    "basenm": "repro_",
    "restart": False,
    "nend": 100,
    "tmax": 1.0e99,
    "dtinit": 1.0e-10,
    "dtmax": 1.0e99,
    "cfl": 0.4,
    "lrefine_max": 4,
    "nrefs": 4,
    "refine_var_1": "dens",
    "refine_cutoff_1": 0.8,
    "derefine_cutoff_1": 0.2,
    "smlrho": 1.0e-12,
    "smallp": 1.0e-12,
    "eosModeInit": "dens_temp",
    #: performance-replay engine: "fast" (vectorized batch kernels) or
    #: "scalar" (the reference per-access loops); both produce identical
    #: counter totals.  Overridable per run via REPRO_PERF_ENGINE.
    "perf_engine": "fast",
    "xl_boundary_type": "outflow",
    "xr_boundary_type": "outflow",
    "yl_boundary_type": "outflow",
    "yr_boundary_type": "outflow",
    "zl_boundary_type": "outflow",
    "zr_boundary_type": "outflow",
}


def _parse_value(text: str, like: object):
    text = text.strip()
    if isinstance(like, bool):
        low = text.lower()
        if low in (".true.", "true", "t", "1"):
            return True
        if low in (".false.", "false", "f", "0"):
            return False
        raise ConfigurationError(f"bad boolean {text!r}")
    if isinstance(like, int) and not isinstance(like, bool):
        try:
            return int(text)
        except ValueError as exc:
            raise ConfigurationError(f"bad integer {text!r}") from exc
    if isinstance(like, float):
        try:
            return float(text.replace("d", "e").replace("D", "E"))
        except ValueError as exc:
            raise ConfigurationError(f"bad real {text!r}") from exc
    return text.strip("\"'")


@dataclass
class RuntimeParameters:
    """Typed key-value runtime parameters with flash.par parsing."""

    values: dict[str, object] = field(default_factory=lambda: dict(DEFAULTS))

    @classmethod
    def from_par(cls, text: str,
                 defaults: dict[str, object] | None = None) -> "RuntimeParameters":
        params = cls(dict(defaults if defaults is not None else DEFAULTS))
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "=" not in line:
                raise ConfigurationError(f"line {lineno}: expected name = value")
            name, _, value = line.partition("=")
            params.set(name.strip(), value)
        return params

    @classmethod
    def from_file(cls, path: str | Path, **kw) -> "RuntimeParameters":
        return cls.from_par(Path(path).read_text(), **kw)

    def get(self, name: str):
        try:
            return self.values[name]
        except KeyError:
            raise ConfigurationError(f"unknown runtime parameter {name!r}") from None

    def set(self, name: str, value) -> None:
        if name in self.values and isinstance(value, str):
            value = _parse_value(value, self.values[name])
        elif isinstance(value, str):
            # unknown parameter: keep as best-effort typed literal
            for caster in (int, float):
                try:
                    value = caster(value)
                    break
                except ValueError:
                    continue
            else:
                value = value.strip().strip("\"'")
        self.values[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self.values


__all__ = ["RuntimeParameters", "DEFAULTS"]
