"""flash.par-style runtime parameters, as a view over the registry.

FLASH reads a plain ``name = value`` parameter file; this replica parses
the same format (comments with ``#``, booleans as ``.true.``/``.false.``,
Fortran ``1.0d0`` reals, strings quoted) against the declarations every
unit registered in :data:`repro.core.parameter_registry`.  Both ``get``
and ``set`` are strict: an unregistered name raises
:class:`~repro.util.errors.ConfigurationError` with a did-you-mean
suggestion, and values are typed and validated by the owning unit's
:class:`~repro.core.ParameterSpec`.  :meth:`RuntimeParameters.to_par`
serialises back to the same grammar, round-tripping every registered
type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core import ParameterSpec, parameter_registry
from repro.core.registry import _DefaultsView
from repro.util.errors import ConfigurationError

#: defaults of every registered parameter (kept under the seed's name;
#: a live read-only view — units own the declarations now)
DEFAULTS = _DefaultsView(parameter_registry)


def _parse_value(text: str, spec: ParameterSpec):
    """Parse flash.par literal ``text`` as the spec's declared type."""
    text = text.strip()
    if spec.type is bool:
        low = text.lower()
        if low in (".true.", "true", "t", "1"):
            return True
        if low in (".false.", "false", "f", "0"):
            return False
        raise ConfigurationError(f"bad boolean {text!r} for {spec.name!r}")
    if spec.type is int:
        try:
            return int(text)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad integer {text!r} for {spec.name!r}") from exc
    if spec.type is float:
        try:
            return float(text.replace("d", "e").replace("D", "E"))
        except ValueError as exc:
            raise ConfigurationError(
                f"bad real {text!r} for {spec.name!r}") from exc
    return text.strip("\"'")


def _format_value(value) -> str:
    """The inverse of :func:`_parse_value` (Fortran-flavoured literals)."""
    if isinstance(value, bool):
        return ".true." if value else ".false."
    if isinstance(value, float):
        # repr is the shortest round-tripping literal; Fortran spells the
        # exponent with 'd', which _parse_value maps back to 'e'
        return repr(value).replace("e", "d").replace("E", "D")
    if isinstance(value, int):
        return str(value)
    return f'"{value}"'


def _coerce(value, spec: ParameterSpec):
    """Type-check a non-string value against the declaration (ints are
    promoted to declared floats, matching Fortran literal semantics)."""
    if spec.type is float and isinstance(value, int) \
            and not isinstance(value, bool):
        return float(value)
    if not isinstance(value, spec.type) or (
            isinstance(value, bool) and spec.type is not bool):
        raise ConfigurationError(
            f"runtime parameter {spec.name!r} expects "
            f"{spec.type.__name__}, got {type(value).__name__} "
            f"({value!r})")
    return value


@dataclass
class RuntimeParameters:
    """Typed key-value runtime parameters with flash.par parsing."""

    values: dict[str, object] = field(
        default_factory=lambda: parameter_registry.defaults())

    @classmethod
    def from_par(cls, text: str,
                 defaults: dict[str, object] | None = None) -> "RuntimeParameters":
        params = cls(dict(defaults) if defaults is not None
                     else parameter_registry.defaults())
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "=" not in line:
                raise ConfigurationError(f"line {lineno}: expected name = value")
            name, _, value = line.partition("=")
            params.set(name.strip(), value)
        return params

    @classmethod
    def from_file(cls, path: str | Path, **kw) -> "RuntimeParameters":
        return cls.from_par(Path(path).read_text(), **kw)

    def get(self, name: str):
        spec = parameter_registry.spec(name)  # raises with a suggestion
        return self.values.get(name, spec.default)

    def set(self, name: str, value) -> None:
        spec = parameter_registry.spec(name)  # raises with a suggestion
        if isinstance(value, str) and spec.type is not str:
            value = _parse_value(value, spec)
        elif isinstance(value, str):
            value = value.strip().strip("\"'")
        else:
            value = _coerce(value, spec)
        spec.validate(value)
        self.values[name] = value

    def to_par(self) -> str:
        """Serialise to flash.par text, grouped by owning unit.

        ``RuntimeParameters.from_par(p.to_par()) == p`` for every
        registered parameter type (strings must not embed quotes, ``#``,
        or surrounding whitespace — the flash.par grammar cannot express
        those).
        """
        lines: list[str] = []
        for unit, specs in sorted(parameter_registry.by_unit().items()):
            if not specs:
                continue
            lines.append(f"# {unit}")
            for spec in specs:
                value = self.values.get(spec.name, spec.default)
                lines.append(f"{spec.name} = {_format_value(value)}")
            lines.append("")
        return "\n".join(lines)

    def unit_of(self, name: str) -> str:
        """The unit that declared a parameter."""
        return parameter_registry.owner(name)

    def __contains__(self, name: str) -> bool:
        return name in self.values


__all__ = ["RuntimeParameters", "DEFAULTS"]
