"""Simulation driver: runtime parameters, timestep control, evolution."""

from repro.driver.config import RuntimeParameters
from repro.driver.simulation import Simulation, StepInfo
from repro.driver.io import write_checkpoint, read_checkpoint

__all__ = [
    "RuntimeParameters",
    "Simulation",
    "StepInfo",
    "write_checkpoint",
    "read_checkpoint",
]
