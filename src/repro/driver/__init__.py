"""Simulation driver: runtime parameters, timestep control, evolution,
and the resilient run supervisor."""

from repro.driver.config import RuntimeParameters
from repro.driver.simulation import Simulation, StepInfo
from repro.driver.io import (read_checkpoint, restart_simulation,
                             write_checkpoint)
from repro.driver.supervisor import (RunReport, RunSupervisor, StepFailure,
                                     step_guards)

__all__ = [
    "RuntimeParameters",
    "Simulation",
    "StepInfo",
    "write_checkpoint",
    "read_checkpoint",
    "restart_simulation",
    "RunSupervisor",
    "RunReport",
    "StepFailure",
    "step_guards",
]
