"""The Driver unit's declarations (FLASH's ``Driver`` Config file).

The driver owns the run-control parameters every simulation reads; it
has no step hook of its own because it *is* the scheduler
(:class:`~repro.driver.simulation.Simulation`).
"""

from __future__ import annotations

from repro.core import ParameterSpec, UnitSpec, unit_registry

DRIVER_UNIT = unit_registry.register(UnitSpec(
    name="driver",
    description="run control: evolution loop, timestep limits, naming",
    phase=0,
    parameters=(
        ParameterSpec("basenm", "repro_", doc="output file base name"),
        ParameterSpec("restart", False, doc="restart from a checkpoint"),
        ParameterSpec("nend", 100, doc="maximum number of steps"),
        ParameterSpec("tmax", 1.0e99, doc="maximum simulation time"),
        ParameterSpec("dtinit", 1.0e-10, doc="initial timestep cap"),
        ParameterSpec("dtmax", 1.0e99, doc="largest allowed timestep"),
        # --- resilience (FLASH's dr_* / checkpoint cadence parameters) ---
        ParameterSpec("dr_dtmin", 1.0e-12,
                      doc="smallest timestep the dt-retry schedule may "
                          "reach before a step failure is fatal",
                      validator=lambda v: v > 0.0),
        ParameterSpec("dr_dt_retry_factor", 0.5,
                      doc="timestep reduction factor per retry after a "
                          "guard trip",
                      validator=lambda v: 0.0 < v < 1.0),
        ParameterSpec("dr_max_retries", 4,
                      doc="retries of one step (at reduced dt) before "
                          "raising StepFailure",
                      validator=lambda v: v >= 0),
        ParameterSpec("dr_rng_seed", -1,
                      doc="driver RNG seed (-1: no driver RNG); the RNG "
                          "state is checkpointed for bit-identical resume"),
        ParameterSpec("checkpoint_interval_step", 0,
                      doc="auto-checkpoint every N steps (0: disabled)",
                      validator=lambda v: v >= 0),
        ParameterSpec("wall_clock_checkpoint", 0.0,
                      doc="auto-checkpoint every T wall-clock seconds "
                          "(0: disabled)",
                      validator=lambda v: v >= 0.0),
        ParameterSpec("checkpoint_keep", 3,
                      doc="rotation depth: how many auto-checkpoints are "
                          "kept on disk",
                      validator=lambda v: v >= 1),
        ParameterSpec("output_directory", ".",
                      doc="directory auto-checkpoints and run reports "
                          "are written to"),
    ),
))

__all__ = ["DRIVER_UNIT"]
