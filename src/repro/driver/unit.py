"""The Driver unit's declarations (FLASH's ``Driver`` Config file).

The driver owns the run-control parameters every simulation reads; it
has no step hook of its own because it *is* the scheduler
(:class:`~repro.driver.simulation.Simulation`).
"""

from __future__ import annotations

from repro.core import ParameterSpec, UnitSpec, unit_registry

DRIVER_UNIT = unit_registry.register(UnitSpec(
    name="driver",
    description="run control: evolution loop, timestep limits, naming",
    phase=0,
    parameters=(
        ParameterSpec("basenm", "repro_", doc="output file base name"),
        ParameterSpec("restart", False, doc="restart from a checkpoint"),
        ParameterSpec("nend", 100, doc="maximum number of steps"),
        ParameterSpec("tmax", 1.0e99, doc="maximum simulation time"),
        ParameterSpec("dtinit", 1.0e-10, doc="initial timestep cap"),
        ParameterSpec("dtmax", 1.0e99, doc="largest allowed timestep"),
    ),
))

__all__ = ["DRIVER_UNIT"]
