"""The evolution driver (FLASH's ``Driver_evolveFlash``).

Glues the units together per step — timestep negotiation, hydro sweeps,
flame diffusion-reaction, gravity kick, periodic remeshing — under
FLASH-style timers, and (optionally) under PAPI-style instrumentation via
a caller-provided hook.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.mesh.grid import Grid
from repro.mesh.guardcell import fill_guardcells
from repro.mesh.refine import refine_pass
from repro.papi.counters import CounterBank
from repro.papi.timers import Timers
from repro.util.errors import PhysicsError


@dataclass
class StepInfo:
    """Summary of one evolution step."""

    n: int
    t: float
    dt: float
    n_blocks: int
    n_refined: int = 0
    n_derefined: int = 0


class Simulation:
    """Evolution loop over a grid plus physics units."""

    def __init__(
        self,
        grid: Grid,
        hydro,
        *,
        flame=None,
        gravity=None,
        nrefs: int = 4,
        refine_var: str = "dens",
        refine_cutoff: float = 0.8,
        derefine_cutoff: float = 0.2,
        dtmax: float = 1.0e99,
        dtinit: float | None = None,
        bank: CounterBank | None = None,
    ) -> None:
        self.grid = grid
        self.hydro = hydro
        self.flame = flame
        self.gravity = gravity
        self.nrefs = nrefs
        self.refine_var = refine_var
        self.refine_cutoff = refine_cutoff
        self.derefine_cutoff = derefine_cutoff
        self.dtmax = dtmax
        self.dtinit = dtinit
        self.t = 0.0
        self.n_step = 0
        self.bank = bank or CounterBank()
        self.timers = Timers(self.bank)
        self.history: list[StepInfo] = []
        #: per-step observers, e.g. the performance pipeline
        self.step_hooks: list[Callable[["Simulation", StepInfo], None]] = []

    # --- timestep ----------------------------------------------------------------
    def compute_dt(self) -> float:
        dt = self.hydro.timestep(self.grid)
        if self.flame is not None:
            dt = min(dt, self.flame.timestep(self.grid))
        if self.n_step == 0 and self.dtinit is not None:
            dt = min(dt, self.dtinit)
        return min(dt, self.dtmax)

    # --- stepping ------------------------------------------------------------------
    @contextmanager
    def _timed(self, name: str):
        """A FLASH timer scope that also advances the simulated clock by the
        wall time spent — so standalone runs (no performance pipeline) still
        get meaningful timer summaries, like FLASH's own."""
        self.timers.start(name)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.bank.advance(time.perf_counter() - t0)
            self.timers.stop(name)

    def step(self, dt: float | None = None) -> StepInfo:
        """Advance one step; returns the step summary."""
        with self.timers.scope("evolution"):
            if dt is None:
                with self._timed("compute_dt"):
                    dt = self.compute_dt()
            if dt <= 0.0 or not np.isfinite(dt):
                raise PhysicsError(f"bad timestep {dt}")

            with self._timed("hydro"):
                self.hydro.step(self.grid, dt)

            if self.gravity is not None:
                with self._timed("gravity"):
                    self.gravity.accelerate(self.grid, dt)

            if self.flame is not None:
                with self._timed("flame"):
                    fill_guardcells(self.grid, self.hydro.bc)
                    self.flame.step(self.grid, dt)

            n_ref = n_deref = 0
            if self.nrefs > 0 and (self.n_step + 1) % self.nrefs == 0:
                with self._timed("remesh"):
                    n_ref, n_deref = refine_pass(
                        self.grid, self.refine_var,
                        refine_cutoff=self.refine_cutoff,
                        derefine_cutoff=self.derefine_cutoff,
                    )

        self.t += dt
        self.n_step += 1
        info = StepInfo(n=self.n_step, t=self.t, dt=dt,
                        n_blocks=self.grid.tree.n_leaves,
                        n_refined=n_ref, n_derefined=n_deref)
        self.history.append(info)
        for hook in self.step_hooks:
            hook(self, info)
        return info

    def evolve(self, *, nend: int | None = None, tmax: float | None = None,
               quiet: bool = True) -> list[StepInfo]:
        """Run until ``nend`` steps or ``tmax`` simulation time."""
        if nend is None and tmax is None:
            raise PhysicsError("evolve needs nend and/or tmax")
        out = []
        while True:
            if nend is not None and self.n_step >= nend:
                break
            if tmax is not None and self.t >= tmax:
                break
            dt = None
            if tmax is not None:
                dt = min(self.compute_dt(), tmax - self.t)
            info = self.step(dt)
            out.append(info)
            if not quiet:
                print(f"  step {info.n:5d}  t={info.t:.6e}  dt={info.dt:.3e}  "
                      f"blocks={info.n_blocks}")
        return out


__all__ = ["Simulation", "StepInfo"]
