"""The evolution driver (FLASH's ``Driver_evolveFlash``).

A *generic* scheduler: the driver composes whatever units it is given —
it holds no named physics slots.  Each unit instance is mapped to its
registered :class:`~repro.core.UnitSpec` (the unit's declarations) and
the step loop simply runs every scheduled spec's hook in declared phase
order under FLASH-style timers: timestep negotiation first (the min over
all declared timestep contributors), then the advance hooks (hydro,
gravity, flame, ... in their declared phases), then any cadence-gated
hooks such as the mesh refinement pass.  New units join the loop by
registering a spec — the driver never changes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.core import StepContribution, UnitSpec, load_all, unit_registry
from repro.mesh.grid import Grid
from repro.mesh.guardcell import BoundaryConditions
from repro.mesh.unit import RefinementPolicy
from repro.papi.counters import CounterBank
from repro.papi.timers import Timers
from repro.util.errors import ConfigurationError, PhysicsError


@dataclass
class StepInfo:
    """Summary of one evolution step."""

    n: int
    t: float
    dt: float
    n_blocks: int
    n_refined: int = 0
    n_derefined: int = 0


class Simulation:
    """Evolution loop over a grid plus any registered units.

    ``units`` are unit instances (e.g. a
    :class:`~repro.physics.hydro.unit.HydroUnit`, an
    :class:`~repro.physics.flame.adr.ADRFlame`, a
    :class:`~repro.physics.gravity.monopole.MonopoleGravity`, a
    :class:`~repro.mesh.unit.RefinementPolicy`); each must belong to a
    registered spec.  A refinement policy is synthesised from the
    ``nrefs``/``refine_*`` keywords unless one is passed explicitly.
    """

    def __init__(
        self,
        grid: Grid,
        *units,
        nrefs: int = 4,
        refine_var: str = "dens",
        refine_cutoff: float = 0.8,
        derefine_cutoff: float = 0.2,
        dtmax: float = 1.0e99,
        dtinit: float | None = None,
        bank: CounterBank | None = None,
        rng_seed: int | None = None,
    ) -> None:
        load_all()
        self.grid = grid
        self.dtmax = dtmax
        self.dtinit = dtinit
        self.t = 0.0
        self.n_step = 0
        #: optional driver RNG (seeded, checkpointed): units that need
        #: randomness draw from it so a resumed run replays identically
        self.rng = (np.random.default_rng(rng_seed)
                    if rng_seed is not None and rng_seed >= 0 else None)
        self.bank = bank or CounterBank()
        self.timers = Timers(self.bank)
        self.history: list[StepInfo] = []
        #: per-step observers, e.g. the performance pipeline's work log
        self.step_hooks: list = []

        instances = list(units)
        if not any(isinstance(u, RefinementPolicy) for u in instances):
            instances.append(RefinementPolicy(
                nrefs=nrefs, refine_var=refine_var,
                refine_cutoff=refine_cutoff,
                derefine_cutoff=derefine_cutoff))
        ordered: list[tuple[int, int, UnitSpec, object]] = []
        self._by_name: dict[str, object] = {}
        for index, unit in enumerate(instances):
            spec = unit_registry.spec_for(unit)
            if spec is None:
                known = ", ".join(s.name for s in unit_registry.units()
                                  if s.implements)
                raise ConfigurationError(
                    f"{type(unit).__name__!r} instance is not a registered "
                    f"unit (registered units: {known})")
            if spec.name in self._by_name:
                raise ConfigurationError(
                    f"two instances of unit {spec.name!r} passed to the "
                    f"driver")
            self._by_name[spec.name] = unit
            ordered.append((spec.phase, index, spec, unit))
        ordered.sort(key=lambda entry: entry[:2])
        self._scheduled: list[tuple[UnitSpec, object]] = [
            (spec, unit) for _, _, spec, unit in ordered]

        bc_units = [u for s, u in self._scheduled if s.provides_bc]
        #: grid boundary conditions, supplied by the declaring unit
        self.bc: BoundaryConditions = (bc_units[0].bc if bc_units
                                       else BoundaryConditions())

    @classmethod
    def from_params(cls, grid: Grid, *units, params) -> "Simulation":
        """Build a driver from flash.par runtime parameters — the
        declarative path: every keyword comes from the registry."""
        return cls(
            grid, *units,
            nrefs=params.get("nrefs"),
            refine_var=params.get("refine_var_1"),
            refine_cutoff=params.get("refine_cutoff_1"),
            derefine_cutoff=params.get("derefine_cutoff_1"),
            dtmax=params.get("dtmax"),
            dtinit=params.get("dtinit"),
            rng_seed=params.get("dr_rng_seed"),
        )

    # --- unit access ---------------------------------------------------------------
    def unit(self, name: str):
        """The instance of a registered unit, or None if not composed in."""
        return self._by_name.get(name)

    def scheduled_units(self) -> tuple[tuple[UnitSpec, object], ...]:
        """(spec, instance) pairs in scheduler (phase) order."""
        return tuple(self._scheduled)

    @property
    def unit_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec, _ in self._scheduled)

    # the common units, as derived views (no constructor slots)
    @property
    def hydro(self):
        return self.unit("hydro")

    @property
    def flame(self):
        return self.unit("flame")

    @property
    def gravity(self):
        return self.unit("gravity")

    # refinement policy passthroughs (the policy is just another unit)
    @property
    def refinement(self) -> RefinementPolicy:
        return self.unit("mesh")

    @property
    def nrefs(self) -> int:
        return self.refinement.nrefs

    @nrefs.setter
    def nrefs(self, value: int) -> None:
        self.refinement.nrefs = value

    @property
    def refine_var(self) -> str:
        return self.refinement.refine_var

    @refine_var.setter
    def refine_var(self, value: str) -> None:
        self.refinement.refine_var = value

    @property
    def refine_cutoff(self) -> float:
        return self.refinement.refine_cutoff

    @refine_cutoff.setter
    def refine_cutoff(self, value: float) -> None:
        self.refinement.refine_cutoff = value

    @property
    def derefine_cutoff(self) -> float:
        return self.refinement.derefine_cutoff

    @derefine_cutoff.setter
    def derefine_cutoff(self, value: float) -> None:
        self.refinement.derefine_cutoff = value

    # --- timestep ----------------------------------------------------------------
    def compute_dt(self) -> float:
        """Min over every unit that declares a timestep contributor."""
        dts = [spec.timestep(self, unit) for spec, unit in self._scheduled
               if spec.timestep is not None]
        if not dts:
            raise PhysicsError("no composed unit provides a timestep")
        dt = min(dts)
        if self.n_step == 0 and self.dtinit is not None:
            dt = min(dt, self.dtinit)
        return min(dt, self.dtmax)

    # --- stepping ------------------------------------------------------------------
    @contextmanager
    def _timed(self, name: str):
        """A FLASH timer scope that also advances the simulated clock by the
        wall time spent — so standalone runs (no performance pipeline) still
        get meaningful timer summaries, like FLASH's own."""
        self.timers.start(name)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.bank.advance(time.perf_counter() - t0)
            self.timers.stop(name)

    def step(self, dt: float | None = None) -> StepInfo:
        """Advance one step; returns the step summary."""
        with self.timers.scope("evolution"):
            if dt is None:
                with self._timed("compute_dt"):
                    dt = self.compute_dt()
            if dt <= 0.0 or not np.isfinite(dt):
                raise PhysicsError(f"bad timestep {dt}")

            n_ref = n_deref = 0
            for spec, unit in self._scheduled:
                if spec.step is None:
                    continue
                if spec.should_run is not None and not spec.should_run(self,
                                                                       unit):
                    continue
                with self._timed(spec.timer or spec.name):
                    contrib = spec.step(self, unit, dt)
                if isinstance(contrib, StepContribution):
                    n_ref += contrib.n_refined
                    n_deref += contrib.n_derefined

        self.t += dt
        self.n_step += 1
        info = StepInfo(n=self.n_step, t=self.t, dt=dt,
                        n_blocks=self.grid.tree.n_leaves,
                        n_refined=n_ref, n_derefined=n_deref)
        self.history.append(info)
        for hook in self.step_hooks:
            hook(self, info)
        return info

    def evolve(self, *, nend: int | None = None, tmax: float | None = None,
               quiet: bool = True) -> list[StepInfo]:
        """Run until ``nend`` steps or ``tmax`` simulation time."""
        if nend is None and tmax is None:
            raise PhysicsError("evolve needs nend and/or tmax")
        out = []
        while True:
            if nend is not None and self.n_step >= nend:
                break
            if tmax is not None and self.t >= tmax:
                break
            dt = None
            if tmax is not None:
                dt = min(self.compute_dt(), tmax - self.t)
            info = self.step(dt)
            out.append(info)
            if not quiet:
                print(f"  step {info.n:5d}  t={info.t:.6e}  dt={info.dt:.3e}  "
                      f"blocks={info.n_blocks}")
        return out


__all__ = ["Simulation", "StepInfo"]
