"""The resilient run supervisor — FLASH's production-run survival kit.

Long campaigns (the paper's 50-step EOS and 200-step Sedov runs, the
A64FX follow-up study's restartable sweeps) lose everything if the
driver aborts on the first unphysical zone or dies to node reclamation.
This module wraps a :class:`~repro.driver.simulation.Simulation` in the
protections real FLASH has:

* **step guards** — after every step the leaf interiors are checked for
  non-finite or non-positive density/pressure and non-finite energies,
  and the PAPI counter bank is checked for monotonic, finite totals;
* **bounded dt-retry** — a tripped guard (or any
  :class:`~repro.util.errors.PhysicsError` escaping a unit's hooks)
  rolls the step back from an in-memory snapshot and retries at
  ``dr_dt_retry_factor`` times the timestep, down to the ``dr_dtmin``
  floor, for at most ``dr_max_retries`` attempts, then raises a
  structured :class:`StepFailure` carrying every attempt;
* **auto-checkpointing** — every ``checkpoint_interval_step`` steps
  and/or ``wall_clock_checkpoint`` seconds a rotated checkpoint (depth
  ``checkpoint_keep``) is written through the corruption-safe artifact
  store, embedding the run state for bit-identical resume;
* **graceful shutdown** — SIGTERM/SIGINT finish the in-flight step,
  write a final checkpoint, and return cleanly with
  ``RunReport.interrupted`` set.

Everything observable about a supervised run lands in the structured
:class:`RunReport` (JSON-serialisable; the chaos-soak CI job uploads
it).  See ``docs/resilience.md``.
"""

from __future__ import annotations

import copy
import json
import signal
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.driver.io import write_checkpoint
from repro.driver.simulation import Simulation, StepInfo
from repro.mesh.grid import Grid
from repro.util import artifacts
from repro.util.errors import PhysicsError

#: (variable, must-be-positive) pairs the post-step state guard checks
GUARDED_VARIABLES = (("dens", True), ("pres", True),
                     ("ener", False), ("eint", False))


class GuardViolation(PhysicsError):
    """One step attempt tripped a guard (internal to the retry loop)."""

    def __init__(self, violations: list[str]) -> None:
        super().__init__("; ".join(violations))
        self.violations = tuple(violations)


class StepFailure(PhysicsError):
    """A step could not be completed within the retry budget.

    Carries the full context FLASH prints before aborting: the step
    number, the simulation time, and every attempted timestep with the
    guard trips (or unit errors) that rejected it.
    """

    def __init__(self, *, step: int, t: float,
                 attempts: tuple["StepAttempt", ...], dtmin: float) -> None:
        lines = [f"step {step} failed after {len(attempts)} attempt(s) "
                 f"at t={t:.6e} (dr_dtmin floor {dtmin:.3e}):"]
        for i, a in enumerate(attempts, 1):
            lines.append(f"  attempt {i}: dt={a.dt:.6e} -> "
                         + "; ".join(a.reasons))
        super().__init__("\n".join(lines))
        self.step = step
        self.t = t
        self.attempts = attempts
        self.dtmin = dtmin


@dataclass(frozen=True)
class StepAttempt:
    """One rejected attempt of a step: the dt tried and why it failed."""

    dt: float
    reasons: tuple[str, ...]


@dataclass
class RetryRecord:
    """A step that needed the retry schedule (and how it ended)."""

    step: int
    rejected: list[StepAttempt]
    final_dt: float  # dt of the attempt that succeeded (nan if none did)


@dataclass
class RunReport:
    """Structured outcome of one supervised run (JSON-serialisable)."""

    steps_completed: int = 0
    t_final: float = 0.0
    wall_seconds: float = 0.0
    guard_trips: int = 0
    retries: list[RetryRecord] = field(default_factory=list)
    checkpoints: list[str] = field(default_factory=list)
    final_checkpoint: str | None = None
    #: signal name when the run was interrupted and shut down cleanly
    interrupted: str | None = None
    #: rendered StepFailure when the retry budget was exhausted
    failure: str | None = None
    #: counted graceful degradations (hugetlb base-page fallbacks,
    #: perf-engine fallbacks, ...), kind -> count
    degradations: dict[str, int] = field(default_factory=dict)
    #: rank threads killed and respawned by the fabric's recovery loop
    rank_restarts: int = 0
    #: wall seconds spent inside coordinated recoveries (restore +
    #: respawn), summed — the run's MTTR numerator
    recovery_wall_s: float = 0.0
    #: barrier/collective deadlines that tripped (FabricTimeout count)
    timeouts: int = 0
    #: per-rank stack dumps from the last barrier timeout, rank -> trace
    rank_stacks: dict[str, str] = field(default_factory=dict)
    #: rank-targeted chaos injections actually delivered
    #: (step/kind/rank/detail dicts, in delivery order)
    rank_faults: list[dict] = field(default_factory=list)

    @property
    def retried_steps(self) -> int:
        return len(self.retries)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        with artifacts.atomic_write(path) as tmp:
            tmp.write_text(self.to_json() + "\n")
        return path


def step_guards(grid: Grid) -> list[str]:
    """Scan every leaf block's interior for unphysical state.

    Returns human-readable violation strings (empty when the state is
    sound): non-finite values anywhere, plus non-positive density or
    pressure — the conditions under which the next CFL estimate or EOS
    call would blow up far from the actual corruption.
    """
    out: list[str] = []
    for var, positive in GUARDED_VARIABLES:
        if var not in grid.variables:
            continue
        for block in grid.leaf_blocks():
            a = grid.interior(block, var)
            bad = ~np.isfinite(a)
            if positive:
                bad |= a <= 0.0
            n = int(np.count_nonzero(bad))
            if n:
                out.append(f"{var}: {n} unphysical zone(s) in "
                           f"block {block.bid}")
    return out


@dataclass
class _Snapshot:
    """Everything a step rollback restores (in-memory, pre-attempt)."""

    unk: np.ndarray
    tree: object
    blocks: dict
    free_slots: list[int]
    t: float
    n_step: int
    history_len: int
    bank_totals: dict
    unit_state: dict[str, dict[str, float]]


class RunSupervisor:
    """Run a simulation to completion through faults and signals."""

    #: signals that trigger the graceful-shutdown path
    SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(
        self,
        sim: Simulation,
        *,
        checkpoint_dir: str | Path | None = None,
        basenm: str = "repro_",
        checkpoint_interval_step: int = 0,
        wall_clock_checkpoint: float = 0.0,
        checkpoint_keep: int = 3,
        dtmin: float = 1.0e-12,
        retry_factor: float = 0.5,
        max_retries: int = 4,
        handle_signals: bool = True,
        kernel=None,
    ) -> None:
        self.sim = sim
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        self.basenm = basenm
        self.checkpoint_interval_step = checkpoint_interval_step
        self.wall_clock_checkpoint = wall_clock_checkpoint
        self.checkpoint_keep = checkpoint_keep
        self.dtmin = dtmin
        self.retry_factor = retry_factor
        self.max_retries = max_retries
        self.handle_signals = handle_signals
        #: optional simulated kernel whose degradation counters the
        #: report surfaces alongside the driver's own
        self.kernel = kernel
        self._last_dt: float | None = None
        self._stop_signal: str | None = None
        self._auto_checkpoints: list[Path] = []

    @classmethod
    def from_params(cls, sim: Simulation, params,
                    checkpoint_dir: str | Path | None = None,
                    **overrides) -> "RunSupervisor":
        """Build from flash.par runtime parameters (the dr_* namespace)."""
        kwargs = dict(
            checkpoint_dir=(checkpoint_dir
                            if checkpoint_dir is not None
                            else params.get("output_directory")),
            basenm=params.get("basenm"),
            checkpoint_interval_step=params.get("checkpoint_interval_step"),
            wall_clock_checkpoint=params.get("wall_clock_checkpoint"),
            checkpoint_keep=params.get("checkpoint_keep"),
            dtmin=params.get("dr_dtmin"),
            retry_factor=params.get("dr_dt_retry_factor"),
            max_retries=params.get("dr_max_retries"),
        )
        kwargs.update(overrides)
        return cls(sim, **kwargs)

    # --- snapshots ------------------------------------------------------------
    def _snapshot(self) -> _Snapshot:
        sim = self.sim
        unit_state = {spec.name: dict(spec.save_state(sim, unit))
                      for spec, unit in sim.scheduled_units()
                      if spec.save_state is not None}
        return _Snapshot(
            unk=sim.grid.unk.copy(),
            tree=copy.deepcopy(sim.grid.tree),
            blocks=copy.deepcopy(sim.grid.blocks),
            free_slots=list(sim.grid._free_slots),
            t=sim.t,
            n_step=sim.n_step,
            history_len=len(sim.history),
            bank_totals=dict(sim.bank.totals),
            unit_state=unit_state,
        )

    def _restore(self, snap: _Snapshot) -> None:
        sim = self.sim
        sim.grid.unk[...] = snap.unk
        sim.grid.tree = snap.tree
        sim.grid.blocks = snap.blocks
        sim.grid._free_slots = list(snap.free_slots)
        sim.t = snap.t
        sim.n_step = snap.n_step
        del sim.history[snap.history_len:]
        sim.bank.totals = dict(snap.bank_totals)
        for spec, unit in sim.scheduled_units():
            if spec.restore_state is not None and spec.name in snap.unit_state:
                spec.restore_state(sim, unit, snap.unit_state[spec.name])

    def _counter_guards(self, snap: _Snapshot) -> list[str]:
        """Counters must stay finite and monotonic across a step."""
        out = []
        for event, before in snap.bank_totals.items():
            now = self.sim.bank.totals[event]
            if not np.isfinite(now):
                out.append(f"counter {event.name} went non-finite ({now})")
            elif now < before:
                out.append(f"counter {event.name} went backwards "
                           f"({before} -> {now})")
        return out

    # --- checkpointing ----------------------------------------------------------
    def _checkpoint(self, name: str) -> Path | None:
        if self.checkpoint_dir is None:
            return None
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        path = self.checkpoint_dir / f"{self.basenm}{name}.npz"
        write_checkpoint(self.sim.grid, path, sim=self.sim)
        return path

    def _auto_checkpoint(self, report: RunReport) -> None:
        path = self._checkpoint(f"chk_{self.sim.n_step:04d}")
        if path is None:
            return
        report.checkpoints.append(str(path))
        self._auto_checkpoints.append(path)
        while len(self._auto_checkpoints) > self.checkpoint_keep:
            old = self._auto_checkpoints.pop(0)
            old.unlink(missing_ok=True)
            artifacts.checksum_path(old).unlink(missing_ok=True)

    # --- the guarded step -------------------------------------------------------
    def guarded_step(self, dt_cap: float | None = None,
                     report: RunReport | None = None) -> StepInfo:
        """One step under guards, retried at reduced dt on any trip."""
        sim = self.sim
        report = report if report is not None else RunReport()
        rejected: list[StepAttempt] = []
        dt: float | None = None
        for _attempt in range(self.max_retries + 1):
            snap = self._snapshot()
            try:
                if dt is None:
                    dt = sim.compute_dt()
                    if dt_cap is not None and np.isfinite(dt):
                        dt = min(dt, dt_cap)
                if not np.isfinite(dt) or dt <= 0.0:
                    raise GuardViolation([f"bad timestep {dt}"])
                if dt < self.dtmin:
                    raise GuardViolation(
                        [f"timestep {dt:.6e} below dr_dtmin {self.dtmin:.3e}"])
                info = sim.step(dt)
                violations = step_guards(sim.grid) + self._counter_guards(snap)
                if violations:
                    raise GuardViolation(violations)
                if rejected:
                    report.retries.append(RetryRecord(
                        step=info.n, rejected=rejected, final_dt=info.dt))
                self._last_dt = info.dt
                return info
            except (GuardViolation, PhysicsError) as exc:
                self._restore(snap)
                reasons = (list(exc.violations)
                           if isinstance(exc, GuardViolation)
                           else [f"{type(exc).__name__}: {exc}"])
                attempted = float(dt) if dt is not None else float("nan")
                rejected.append(StepAttempt(dt=attempted,
                                            reasons=tuple(reasons)))
                report.guard_trips += 1
                # next attempt's dt: back off from the failed dt when it
                # was usable, else from the last good step (or dtinit)
                if dt is not None and np.isfinite(dt) and dt > 0.0:
                    base = dt
                else:
                    base = (self._last_dt or sim.dtinit
                            or self.dtmin / self.retry_factor)
                dt = base * self.retry_factor
                if dt < self.dtmin:
                    break
        failure = StepFailure(step=sim.n_step + 1, t=sim.t,
                              attempts=tuple(rejected), dtmin=self.dtmin)
        report.retries.append(RetryRecord(step=sim.n_step + 1,
                                          rejected=rejected,
                                          final_dt=float("nan")))
        raise failure

    # --- signals ---------------------------------------------------------------
    def _install_handlers(self):
        # signal.signal is only legal on the main thread; a supervisor
        # running inside a fabric rank thread must skip handler setup
        # (rank-level interruption goes through the fabric's stop flag)
        if threading.current_thread() is not threading.main_thread():
            return {}
        previous = {}
        for sig in self.SIGNALS:
            def handler(signum, frame):
                self._stop_signal = signal.Signals(signum).name
            previous[sig] = signal.signal(sig, handler)
        return previous

    # --- the supervised run -----------------------------------------------------
    def run(self, *, nend: int | None = None, tmax: float | None = None,
            quiet: bool = True) -> RunReport:
        """Evolve to ``nend``/``tmax`` under guards, retries, cadence
        checkpoints, and graceful signal shutdown.

        Returns the :class:`RunReport`.  A :class:`StepFailure` (retry
        budget exhausted) still writes a final checkpoint and attaches
        the report to the exception (``exc.report``) before raising.
        """
        if nend is None and tmax is None:
            raise PhysicsError("run needs nend and/or tmax")
        sim = self.sim
        report = RunReport()
        start_wall = time.monotonic()
        last_chk_wall = start_wall
        previous_handlers = (self._install_handlers()
                             if self.handle_signals else {})
        try:
            while True:
                if self._stop_signal is not None:
                    report.interrupted = self._stop_signal
                    path = self._checkpoint(f"chk_final_{sim.n_step:04d}")
                    report.final_checkpoint = (str(path) if path else None)
                    break
                if nend is not None and sim.n_step >= nend:
                    break
                if tmax is not None and sim.t >= tmax:
                    break
                dt_cap = tmax - sim.t if tmax is not None else None
                try:
                    info = self.guarded_step(dt_cap, report)
                except StepFailure as exc:
                    report.failure = str(exc)
                    path = self._checkpoint(f"chk_failed_{sim.n_step:04d}")
                    report.final_checkpoint = (str(path) if path else None)
                    self._finalise(report, start_wall)
                    exc.report = report
                    raise
                if not quiet:
                    print(f"  step {info.n:5d}  t={info.t:.6e}  "
                          f"dt={info.dt:.3e}  blocks={info.n_blocks}")
                due_steps = (self.checkpoint_interval_step > 0
                             and sim.n_step % self.checkpoint_interval_step == 0)
                now = time.monotonic()
                due_wall = (self.wall_clock_checkpoint > 0.0
                            and now - last_chk_wall >= self.wall_clock_checkpoint)
                if due_steps or due_wall:
                    self._auto_checkpoint(report)
                    last_chk_wall = now
        finally:
            for sig, handler in previous_handlers.items():
                signal.signal(sig, handler)
        self._finalise(report, start_wall)
        return report

    def _finalise(self, report: RunReport, start_wall: float) -> None:
        report.steps_completed = self.sim.n_step
        report.t_final = self.sim.t
        report.wall_seconds = time.monotonic() - start_wall
        if self.kernel is not None:
            for kind, count in self.kernel.degradations.counts.items():
                report.degradations[kind] = (
                    report.degradations.get(kind, 0) + count)


__all__ = ["RunSupervisor", "RunReport", "RetryRecord", "StepAttempt",
           "StepFailure", "GuardViolation", "step_guards",
           "GUARDED_VARIABLES"]
