"""The ``python -m repro.bench`` command-line interface.

Runs the EOS and 3-d Hydro workloads through the performance pipeline at
several replication scales, with and without huge pages, under the fast
and scalar replay engines, and writes one ``BENCH_<problem>.json``
document per problem.  With ``--compare`` the emitted documents are
gated against a committed baseline (speedup regression, counter drift,
and — under ``--strict-wall`` — wall-clock regression).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench.compare import compare_bench, load_baseline
from repro.core import unit_registry
from repro.perfmodel.parallel import resolve_jobs
from repro.perfmodel.pipeline import PerformancePipeline, resolve_engine
from repro.perfmodel.session import ReplaySession
from repro.toolchain.compiler import FUJITSU

#: document format version; bump on incompatible layout changes
#: (v2: environment records ``jobs``, the report document gains the
#: multicore executor leg and the batched-geometry block; v3: the
#: report document gains the trace-tier leg — cold/warm trace-store
#: walls, synthesis counts, and the executor's pickled/mapped bytes)
SCHEMA = "repro.bench/3"

#: mesh replication scales exercised per problem; quick mode skips
#: replication 1, where the engine-independent pipeline overhead
#: (compile/allocate/first-touch) dominates the wall clock
_SCALES = {"full": (1, 2, 4), "quick": (2, 4)}
#: with huge pages (Fujitsu default) and without (-Knolargepage)
_FLAG_VARIANTS = ((), ("-Knolargepage",))


def _environment() -> dict[str, object]:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "default_engine": resolve_engine(),
        "jobs": resolve_jobs(),
    }


@contextlib.contextmanager
def _forced_jobs(n: int):
    """Pin ``REPRO_REPLAY_JOBS`` for a bench leg, restoring it after.

    The serial legs force 1 so the committed walls mean the same thing
    regardless of the caller's environment; the executor leg forces the
    requested worker count."""
    old = os.environ.get("REPRO_REPLAY_JOBS")
    os.environ["REPRO_REPLAY_JOBS"] = str(n)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_REPLAY_JOBS", None)
        else:
            os.environ["REPRO_REPLAY_JOBS"] = old


def _run_once(log, flags: tuple[str, ...], replication: int,
              engine: str) -> dict[str, object]:
    """One pipeline replay; returns wall time plus the model's outputs.

    A disabled replay session keeps this an honest measurement of the
    replay engines themselves — the committed per-workload speedup
    baselines predate the shared session and must keep meaning "fast
    engine vs scalar engine", not "cache hit vs cache miss".
    """
    t0 = time.perf_counter()
    report = PerformancePipeline(log, FUJITSU, flags=flags,
                                 replication=replication,
                                 engine=engine,
                                 session=ReplaySession.disabled()).run()
    wall = time.perf_counter() - t0
    bank = report.as_counterbank()
    counters = {event.value: total for event, total in bank.totals.items()}
    l1 = sum(t.tlb.l1_misses for t in report.units.values())
    l2 = sum(t.tlb.l2_misses for t in report.units.values())
    return {
        "wall_s": wall,
        "steps_per_s": report.n_steps / wall if wall > 0 else None,
        "counters": counters,
        "dtlb": {"l1_misses": l1, "l2_misses": l2},
        "huge_pages": report.uses_huge_pages,
        "flash_timer_s": report.flash_timer_s,
    }


def run_problem_bench(problem: str, *, quick: bool = False,
                      engines: tuple[str, ...] = ("fast", "scalar"),
                      ) -> dict[str, object]:
    """Benchmark one problem; returns the ``BENCH_<problem>`` document."""
    log = unit_registry.workload(problem).builder(quick=quick)
    scales = _SCALES["quick" if quick else "full"]
    runs: list[dict[str, object]] = []
    wall_totals = {engine: 0.0 for engine in engines}
    all_equal = True
    for replication in scales:
        for flags in _FLAG_VARIANTS:
            entry: dict[str, object] = {
                "problem": problem,
                "replication": replication,
                "flags": list(flags),
                "engines": {},
            }
            results = {engine: _run_once(log, flags, replication, engine)
                       for engine in engines}
            for engine, res in results.items():
                wall_totals[engine] += res["wall_s"]
                entry["engines"][engine] = {
                    "wall_s": res["wall_s"],
                    "steps_per_s": res["steps_per_s"],
                }
            # counters/dtlb are engine-independent by contract; record
            # them once and record whether the contract actually held
            first = results[engines[0]]
            entry["counters"] = first["counters"]
            entry["dtlb"] = first["dtlb"]
            entry["huge_pages"] = first["huge_pages"]
            if len(engines) > 1:
                equal = all(res["counters"] == first["counters"]
                            and res["dtlb"] == first["dtlb"]
                            for res in results.values())
                entry["counters_equal"] = equal
                all_equal &= equal
                if results["scalar"]["wall_s"] > 0:
                    entry["speedup"] = (results["scalar"]["wall_s"]
                                        / results["fast"]["wall_s"])
            runs.append(entry)

    summary: dict[str, object] = {"n_runs": len(runs)}
    if len(engines) > 1:
        summary["all_counters_equal"] = all_equal
        if wall_totals.get("fast", 0.0) > 0:
            summary["speedup"] = (wall_totals["scalar"]
                                  / wall_totals["fast"])
            per_run = [r["speedup"] for r in runs if "speedup" in r]
            summary["min_speedup"] = min(per_run)
            summary["max_speedup"] = max(per_run)
    return {
        "schema": SCHEMA,
        "name": problem,
        "quick": quick,
        "engines": list(engines),
        "environment": _environment(),
        "runs": runs,
        "summary": summary,
    }


def _geometry_block(*, quick: bool = True) -> dict[str, object]:
    """Benchmark the batched multi-geometry kernel against the serial
    per-geometry sweep it replaces.

    The ratio is algorithmic (one shared stack-distance pass instead of
    one per sweep point), so it holds on a single core; the identity
    flag is the contract — the batch must be bit-identical to running
    one pipeline per geometry.
    """
    from dataclasses import replace

    from repro.experiments.geometry import L1_SWEEP_ENTRIES, sweep_geometries
    from repro.experiments.workloads import eos_problem_worklog
    from repro.hw.a64fx import A64FX

    log = eos_problem_worklog(quick=quick)
    geometries = sweep_geometries()

    def fingerprint(report):
        bank = report.as_counterbank()
        return ({event.value: total for event, total in bank.totals.items()},
                sum(t.tlb.l1_misses for t in report.units.values()),
                sum(t.tlb.l2_misses for t in report.units.values()))

    t0 = time.perf_counter()
    batched = PerformancePipeline(
        log, FUJITSU, replication=1,
        session=ReplaySession.disabled()).run_geometries(geometries)
    wall_batched = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = [PerformancePipeline(
        log, FUJITSU, replication=1, machine=replace(A64FX, tlb=geo),
        session=ReplaySession.disabled()).run() for geo in geometries]
    wall_serial = time.perf_counter() - t0

    return {
        "l1_entries": list(L1_SWEEP_ENTRIES),
        "wall_batched_s": wall_batched,
        "wall_serial_s": wall_serial,
        "speedup_batch": (wall_serial / wall_batched
                          if wall_batched > 0 else None),
        "batch_identical": all(fingerprint(b) == fingerprint(s)
                               for b, s in zip(batched, serial)),
    }


def run_report_bench(*, quick: bool = True,
                     jobs: int | str | None = None) -> dict[str, object]:
    """Benchmark the full experiment report through the replay session.

    Three serial walls, all in one process on the same machine (so the
    ratios transfer across hosts even though the absolute times do not):

    * ``wall_unshared_s`` — a disabled session; every configuration
      synthesises and replays on its own, the pre-session behaviour;
    * ``wall_cold_s`` — a fresh session over an empty store; only
      intra-run sharing (deduplicated traces) helps;
    * ``wall_warm_s`` — a new session over the now-populated store; the
      steady state for CI, tests, and repeated local report runs.

    When the resolved ``jobs`` is above 1 a fourth leg repeats the cold
    run with the process-pool executor (``wall_cold_jobs_s``), recording
    the measured ``speedup_jobs`` — honestly, whatever the host's core
    count makes of it — plus ``text_identical_jobs`` and the executor's
    replay count, which the compare gate holds bit-equal to the serial
    cold leg.  Two further pool legs exercise the trace tier: a cold
    trace store (every synthesis paid once, scheduled across the pool)
    and a warm trace store over a fresh replay store, which must map
    every bundle (``synthesis_warm == 0``) and ship zero pickled trace
    bytes.

    The emitted ``session`` block also records the distinct-replay
    counts each variant performed and whether all report texts were
    byte-identical — neither the cache nor the executor may ever change
    the answer.
    """
    import hashlib
    import tempfile

    from repro.experiments.report import full_report
    from repro.experiments.workloads import (
        eos_problem_worklog,
        hydro_problem_worklog,
    )

    # pre-warm the worklog pickle caches: workload synthesis is shared by
    # all three variants and would otherwise drown the first wall
    eos_problem_worklog(quick=quick)
    hydro_problem_worklog(quick=quick)

    def timed(session: ReplaySession) -> tuple[float, str]:
        t0 = time.perf_counter()
        text = full_report(quick=quick, session=session)
        return time.perf_counter() - t0, text

    with _forced_jobs(1):
        unshared = ReplaySession.disabled()
        wall_unshared, text_unshared = timed(unshared)

        with tempfile.TemporaryDirectory() as tmp:
            cold = ReplaySession(store_dir=tmp)
            wall_cold, text_cold = timed(cold)
            warm = ReplaySession(store_dir=tmp)
            wall_warm, text_warm = timed(warm)
            # the cache story behind the warm wall: sharded layout,
            # entry/byte counts, migrations — same snapshot the serving
            # layer reports on /v1/stats (while tmp still exists)
            warm_store = warm.store
            store_doc = (warm_store.describe()
                         if warm_store is not None else None)

    resolved_jobs = resolve_jobs(jobs)
    jobs_doc: dict[str, object] = {
        "jobs": resolved_jobs,
        "wall_cold_jobs_s": None,
        "replays_cold_jobs": None,
        "executor_fallbacks": None,
        "speedup_jobs": None,
        "text_identical_jobs": None,
    }
    if resolved_jobs > 1:
        with tempfile.TemporaryDirectory() as tmp, _forced_jobs(resolved_jobs):
            par = ReplaySession(store_dir=tmp)
            wall_jobs, text_jobs = timed(par)
            fallbacks = par._executor.fallbacks if par._executor else 0
            par.close()
        jobs_doc.update({
            "wall_cold_jobs_s": wall_jobs,
            "replays_cold_jobs": par.stats.replays,
            "executor_fallbacks": fallbacks,
            "speedup_jobs": wall_cold / wall_jobs if wall_jobs > 0 else None,
            "text_identical_jobs": text_jobs == text_unshared,
        })

    # the trace-tier leg: two pool runs sharing one trace store but each
    # over a fresh replay store.  The cold run pays every synthesis once
    # (scheduled across the pool) and ships traces by reference; the warm
    # run must synthesize *nothing* — a known workload over a new replay
    # store maps every bundle straight from disk.  Both legs' replay
    # counts must match the serial cold leg's (the cache tier above the
    # session never changes what gets replayed, only what gets rebuilt).
    trace_doc: dict[str, object] = {
        "wall_cold_trace_s": None,
        "wall_warm_trace_s": None,
        "synthesis_cold": None,
        "synthesis_warm": None,
        "trace_store_hits_warm": None,
        "replays_cold_trace": None,
        "replays_warm_trace": None,
        "traces_pickled_bytes_cold": None,
        "traces_pickled_bytes_warm": None,
        "traces_mapped_bytes_cold": None,
        "traces_mapped_bytes_warm": None,
        "text_identical_trace": None,
        "trace_store": None,
    }
    if resolved_jobs > 1:
        with tempfile.TemporaryDirectory() as tmp, _forced_jobs(resolved_jobs):
            traces = Path(tmp) / "traces"
            cold_t = ReplaySession(store_dir=str(Path(tmp) / "replays-cold"),
                                   trace_dir=traces)
            wall_cold_t, text_cold_t = timed(cold_t)
            ex = cold_t._executor
            pickled_cold = ex.traces_pickled_bytes if ex else 0
            mapped_cold = ex.traces_mapped_bytes if ex else 0
            cold_t.close()
            warm_t = ReplaySession(store_dir=str(Path(tmp) / "replays-warm"),
                                   trace_dir=traces)
            wall_warm_t, text_warm_t = timed(warm_t)
            ex = warm_t._executor
            pickled_warm = ex.traces_pickled_bytes if ex else 0
            mapped_warm = ex.traces_mapped_bytes if ex else 0
            tstore = warm_t.trace_store
            trace_store_doc = (tstore.describe()
                               if tstore is not None else None)
            warm_t.close()
        trace_doc.update({
            "wall_cold_trace_s": wall_cold_t,
            "wall_warm_trace_s": wall_warm_t,
            "synthesis_cold": cold_t.stats.synthesis_count,
            "synthesis_warm": warm_t.stats.synthesis_count,
            "trace_store_hits_warm": warm_t.stats.trace_store_hits,
            "replays_cold_trace": cold_t.stats.replays,
            "replays_warm_trace": warm_t.stats.replays,
            "traces_pickled_bytes_cold": pickled_cold,
            "traces_pickled_bytes_warm": pickled_warm,
            "traces_mapped_bytes_cold": mapped_cold,
            "traces_mapped_bytes_warm": mapped_warm,
            "text_identical_trace": (text_cold_t == text_unshared
                                     and text_warm_t == text_unshared),
            "trace_store": trace_store_doc,
        })

    identical = text_unshared == text_cold == text_warm
    session_doc = {
        "wall_unshared_s": wall_unshared,
        "wall_cold_s": wall_cold,
        "wall_warm_s": wall_warm,
        "configs": cold.stats.configs,
        "replays_unshared": unshared.stats.replays,
        "replays_cold": cold.stats.replays,
        "replays_warm": warm.stats.replays,
        "disk_hits_warm": warm.stats.disk_hits,
        "speedup_cold": wall_unshared / wall_cold if wall_cold > 0 else None,
        "speedup_warm": wall_unshared / wall_warm if wall_warm > 0 else None,
        "text_sha256": hashlib.sha256(text_unshared.encode()).hexdigest(),
        "text_identical": identical,
        "store": store_doc,
        **jobs_doc,
        "trace": trace_doc,
    }
    geometry_doc = _geometry_block(quick=quick)
    environment = _environment()
    environment["jobs"] = resolved_jobs  # the jobs this document ran with
    return {
        "schema": SCHEMA,
        "name": "report",
        "quick": quick,
        "engines": [resolve_engine()],
        "environment": environment,
        "runs": [],
        "session": session_doc,
        "geometry": geometry_doc,
        "summary": {
            "n_runs": 3 + (3 if resolved_jobs > 1 else 0),
            "replays_cold": session_doc["replays_cold"],
            "replays_warm": session_doc["replays_warm"],
            "speedup_warm": session_doc["speedup_warm"],
            "text_identical": identical,
            "jobs": resolved_jobs,
            "speedup_jobs": jobs_doc["speedup_jobs"],
            "text_identical_jobs": jobs_doc["text_identical_jobs"],
            "synthesis_cold": trace_doc["synthesis_cold"],
            "synthesis_warm": trace_doc["synthesis_warm"],
            "traces_mapped_bytes": trace_doc["traces_mapped_bytes_warm"],
            "text_identical_trace": trace_doc["text_identical_trace"],
            "speedup_batch": geometry_doc["speedup_batch"],
            "batch_identical": geometry_doc["batch_identical"],
        },
    }


def run_scaling_bench(*, quick: bool = True) -> dict[str, object]:
    """Benchmark + gate document for the rank-decomposed scaling sweep.

    Everything in the document except the wall is a deterministic model
    output (fabric evolution, per-rank replays, the contention story),
    so the compare gate holds it to the baseline at counter tolerance.
    The ``identity`` block is the tentpole contract: a one-rank fabric
    must be bit-identical to the serial spine — same WorkLog digest,
    same replayed counters, same timer.
    """
    import hashlib
    import tempfile

    from repro.experiments.scaling import scaling_study, serial_identity

    with tempfile.TemporaryDirectory() as tmp:
        session = ReplaySession(store_dir=tmp)
        t0 = time.perf_counter()
        study = scaling_study(quick=quick, session=session)
        wall = time.perf_counter() - t0
        identity = serial_identity(session=session)
        replays = session.stats.replays
    text = study.render()

    def mode_doc(points: dict[int, dict]) -> dict[str, dict]:
        return {str(p): point for p, point in sorted(points.items())}

    serial_ok = bool(identity["digest_identical"]
                     and identity["counters_identical"])
    return {
        "schema": SCHEMA,
        "name": "scaling",
        "quick": quick,
        "engines": [resolve_engine()],
        "environment": _environment(),
        "runs": [],
        "scaling": {
            "wall_s": wall,
            "replays": replays,
            "ranks_per_node": study.ranks_per_node,
            "steps": study.steps,
            "strong": mode_doc(study.strong),
            "weak": mode_doc(study.weak),
            "contention": study.contention,
            "identity": identity,
            "text_sha256": hashlib.sha256(text.encode()).hexdigest(),
        },
        "summary": {
            "n_runs": len(study.strong) + len(study.weak),
            "serial_identical": serial_ok,
            "degraded_ranks": study.contention["degraded"],
            "max_ranks": max(study.strong),
        },
    }


def run_resilience_bench(*, quick: bool = True) -> dict[str, object]:
    """Benchmark + gate document for the fabric resilience study.

    Wall-clock numbers (checkpoint overhead, recovery time) are
    recorded for the trend but never gated — they are machine noise.
    What gates is the determinism story: the identity booleans (a
    fault-free supervised run and a killed-and-recovered run both
    finish bit-identical to the unsupervised reference) and the exact
    recovery accounting (restarts and replayed steps per point, which
    are pure functions of the schedule).
    """
    import hashlib

    from repro.experiments.resilience import resilience_study

    t0 = time.perf_counter()
    study = resilience_study(quick=quick)
    wall = time.perf_counter() - t0
    text = study.render()

    points = {f"{ranks}x{interval}": dict(p)
              for (ranks, interval), p in sorted(study.points.items())}
    all_identical = all(p["faultfree_identical"] and p["recovered_identical"]
                        for p in study.points.values())
    return {
        "schema": SCHEMA,
        "name": "resilience",
        "quick": quick,
        "engines": [resolve_engine()],
        "environment": _environment(),
        "runs": [],
        "resilience": {
            "wall_s": wall,
            "steps": study.steps,
            "kill_step": study.kill_step,
            "points": points,
            "text_sha256": hashlib.sha256(text.encode()).hexdigest(),
        },
        "summary": {
            "n_runs": 2 * len(points) + 2,  # ref + fault-free + killed
            "all_identical": all_identical,
            "rank_restarts": sum(p["rank_restarts"]
                                 for p in study.points.values()),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Replay the paper's workloads and emit "
                    "BENCH_<problem>.json benchmark documents.")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads and fewer scales (CI smoke)")
    parser.add_argument("--out", type=Path, default=Path("."),
                        help="directory for BENCH_*.json (default: cwd)")
    # workloads come from the registry: gated ones (those with committed
    # baselines) by default, every registered one selectable
    all_problems = tuple(w.name for w in unit_registry.workloads())
    gated = [w.name for w in unit_registry.gated_workloads()]
    # "report" is the whole-report replay-session benchmark, not a
    # registered workload; it has a committed baseline, so it is gated
    all_problems += ("report",)
    gated += ["report"]
    # "scaling" is the rank-decomposed fabric sweep; its committed
    # baseline gates the n_ranks=1 bit-identity contract
    all_problems += ("scaling",)
    gated += ["scaling"]
    # "resilience" is the fault-tolerant fabric study; its committed
    # baseline gates the recovery bit-identity contract
    all_problems += ("resilience",)
    gated += ["resilience"]
    parser.add_argument("--problems", nargs="+", choices=all_problems,
                        default=gated,
                        help="which registered workloads to run (default: "
                             "the baseline-gated ones: " + " ".join(gated)
                             + ")")
    parser.add_argument("--engine", choices=("both", "fast", "scalar"),
                        default="both",
                        help="replay engine(s); 'both' also checks the "
                             "fast-vs-scalar equivalence contract and "
                             "reports the speedup")
    parser.add_argument("--jobs", default=None, metavar="N",
                        help="worker processes for the report bench's "
                             "executor leg (default: REPRO_REPLAY_JOBS / "
                             "the replay_jobs parameter; 0 = one per "
                             "core; 1 skips the leg)")
    parser.add_argument("--profile", action="store_true",
                        help="run each phase under cProfile and write the "
                             "top-20 cumulative entries to "
                             "BENCH_PROFILE_<problem>.txt next to the "
                             "documents")
    parser.add_argument("--compare", type=Path, default=None, metavar="PATH",
                        help="baseline BENCH_*.json file or a directory of "
                             "them; exit non-zero on regression")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="allowed relative regression for --compare "
                             "(default: 0.2 = 20%%)")
    parser.add_argument("--strict-wall", action="store_true",
                        help="with --compare, also gate absolute wall "
                             "time (off by default: wall clocks are "
                             "machine-dependent, speedup ratios are not)")
    args = parser.parse_args(argv)

    engines = ("fast", "scalar") if args.engine == "both" else (args.engine,)
    args.out.mkdir(parents=True, exist_ok=True)
    failures: list[str] = []
    notes: list[str] = []
    for problem in args.problems:
        profiler = None
        if args.profile:
            import cProfile
            profiler = cProfile.Profile()
            profiler.enable()
        if problem == "report":
            doc = run_report_bench(quick=args.quick, jobs=args.jobs)
        elif problem == "scaling":
            doc = run_scaling_bench(quick=args.quick)
        elif problem == "resilience":
            doc = run_resilience_bench(quick=args.quick)
        else:
            doc = run_problem_bench(problem, quick=args.quick,
                                    engines=engines)
        if profiler is not None:
            import io
            import pstats
            profiler.disable()
            buf = io.StringIO()
            pstats.Stats(profiler, stream=buf).sort_stats(
                "cumulative").print_stats(20)
            profile_path = args.out / f"BENCH_PROFILE_{problem}.txt"
            profile_path.write_text(buf.getvalue())
            print(f"wrote {profile_path}")
        path = args.out / f"BENCH_{problem}.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        summary = doc["summary"]
        line = f"{path}: {summary['n_runs']} runs"
        if "speedup" in summary:
            line += (f", fast-path speedup {summary['speedup']:.2f}x "
                     f"(min {summary['min_speedup']:.2f}x), counters "
                     + ("identical" if summary["all_counters_equal"]
                        else "DIFFER"))
        if "speedup_warm" in summary:
            line += (f", warm-session speedup {summary['speedup_warm']:.1f}x"
                     f", replays cold {summary['replays_cold']}"
                     f" / warm {summary['replays_warm']}, text "
                     + ("identical" if summary["text_identical"]
                        else "DIFFERS"))
        if summary.get("speedup_jobs") is not None:
            line += (f", jobs={summary['jobs']} speedup "
                     f"{summary['speedup_jobs']:.2f}x, text "
                     + ("identical" if summary["text_identical_jobs"]
                        else "DIFFERS"))
        if summary.get("synthesis_cold") is not None:
            line += (f", trace tier synth cold {summary['synthesis_cold']}"
                     f" / warm {summary['synthesis_warm']}, mapped "
                     f"{summary['traces_mapped_bytes']} B, text "
                     + ("identical" if summary["text_identical_trace"]
                        else "DIFFERS"))
        if summary.get("speedup_batch") is not None:
            line += (f", geometry batch speedup "
                     f"{summary['speedup_batch']:.2f}x, batch "
                     + ("identical" if summary["batch_identical"]
                        else "DIFFERS"))
        if "serial_identical" in summary:
            line += (f", up to {summary['max_ranks']} ranks, n_ranks=1 "
                     + ("identical" if summary["serial_identical"]
                        else "DIFFERS")
                     + f", degraded ranks {summary['degraded_ranks']}")
        if "all_identical" in summary:
            line += (f", {summary['rank_restarts']} rank restart(s), "
                     "recovery "
                     + ("bit-identical" if summary["all_identical"]
                        else "DIVERGED"))
        print(line)
        if summary.get("all_counters_equal") is False:
            failures.append(f"{problem}: fast and scalar engines disagree")
        if summary.get("text_identical") is False:
            failures.append(
                f"{problem}: report text changed across cache states")
        if summary.get("text_identical_jobs") is False:
            failures.append(
                f"{problem}: report text changed under the executor")
        if summary.get("text_identical_trace") is False:
            failures.append(
                f"{problem}: report text changed under the trace tier")
        if summary.get("synthesis_warm") not in (None, 0):
            failures.append(
                f"{problem}: warm trace store still synthesized "
                f"{summary['synthesis_warm']} bundle(s)")
        if summary.get("batch_identical") is False:
            failures.append(
                f"{problem}: batched geometry sweep diverged from serial")
        if summary.get("serial_identical") is False:
            failures.append(
                f"{problem}: one-rank fabric diverged from the serial spine")
        if summary.get("all_identical") is False:
            failures.append(
                f"{problem}: a supervised or recovered fabric run diverged "
                f"from the unsupervised reference")
        if args.compare is not None:
            baseline = load_baseline(args.compare, problem)
            if baseline is None:
                failures.append(
                    f"{problem}: no baseline found under {args.compare}")
            else:
                failures.extend(
                    compare_bench(doc, baseline,
                                  threshold=args.threshold,
                                  strict_wall=args.strict_wall,
                                  notes=notes))
    for note in notes:
        print(f"note: {note}")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
