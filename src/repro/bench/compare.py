"""Regression gating between a fresh bench run and a committed baseline.

The gate is deliberately ratio-first: counter totals and DTLB misses are
deterministic model outputs, so any drift is a real behaviour change and
fails immediately; the fast-path *speedup* is a ratio of two walls on
the same machine, so it transfers across hosts and is gated against the
baseline with a relative threshold; absolute wall time does not transfer
across hosts and is only gated under ``--strict-wall``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

#: relative tolerance for "deterministic" quantities — generous enough
#: for cross-platform float summation order, tight enough that any model
#: change trips it
_COUNTER_RTOL = 1e-9


def load_baseline(path: Path, problem: str) -> dict | None:
    """Load the baseline document for ``problem`` from a file or a
    directory containing ``BENCH_<problem>.json``."""
    if path.is_dir():
        path = path / f"BENCH_{problem}.json"
    if not path.is_file():
        return None
    doc = json.loads(path.read_text())
    if doc.get("name") != problem:
        return None
    return doc


def _run_key(run: dict) -> tuple:
    return (run.get("problem"), run.get("replication"),
            tuple(run.get("flags", ())))


def _drifted(current: float, baseline: float) -> bool:
    return not math.isclose(current, baseline, rel_tol=_COUNTER_RTOL,
                            abs_tol=0.0)


def compare_bench(current: dict, baseline: dict, *, threshold: float = 0.2,
                  strict_wall: bool = False) -> list[str]:
    """Return a list of human-readable regression descriptions (empty =
    the run passes the gate)."""
    failures: list[str] = []
    name = current.get("name", "?")
    if baseline.get("schema") != current.get("schema"):
        failures.append(
            f"{name}: schema mismatch ({baseline.get('schema')!r} vs "
            f"{current.get('schema')!r}) — regenerate the baseline")
        return failures

    base_runs = {_run_key(r): r for r in baseline.get("runs", ())}
    for run in current.get("runs", ()):
        base = base_runs.get(_run_key(run))
        if base is None:
            continue  # new configuration: nothing to regress against
        label = (f"{name} r{run['replication']} "
                 f"{'+'.join(run['flags']) or 'default'}")
        for counter, value in run.get("counters", {}).items():
            if counter not in base.get("counters", {}):
                continue
            if _drifted(value, base["counters"][counter]):
                failures.append(
                    f"{label}: counter {counter} drifted "
                    f"{base['counters'][counter]!r} -> {value!r}")
        for level, value in run.get("dtlb", {}).items():
            if level in base.get("dtlb", {}) and value != base["dtlb"][level]:
                failures.append(
                    f"{label}: dtlb {level} changed "
                    f"{base['dtlb'][level]} -> {value}")
        if strict_wall:
            for engine, res in run.get("engines", {}).items():
                bres = base.get("engines", {}).get(engine)
                if bres and res["wall_s"] > bres["wall_s"] * (1 + threshold):
                    failures.append(
                        f"{label}: {engine} wall {res['wall_s']:.3f}s vs "
                        f"baseline {bres['wall_s']:.3f}s "
                        f"(> +{threshold:.0%})")

    cur_speed = current.get("summary", {}).get("speedup")
    base_speed = baseline.get("summary", {}).get("speedup")
    if cur_speed is not None and base_speed is not None:
        if cur_speed < base_speed * (1 - threshold):
            failures.append(
                f"{name}: fast-path speedup regressed "
                f"{base_speed:.2f}x -> {cur_speed:.2f}x "
                f"(> -{threshold:.0%})")
    return failures


__all__ = ["compare_bench", "load_baseline"]
