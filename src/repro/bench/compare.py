"""Regression gating between a fresh bench run and a committed baseline.

The gate is deliberately ratio-first: counter totals and DTLB misses are
deterministic model outputs, so any drift is a real behaviour change and
fails immediately; the fast-path *speedup* is a ratio of two walls on
the same machine, so it transfers across hosts and is gated against the
baseline with a relative threshold; absolute wall time does not transfer
across hosts and is only gated under ``--strict-wall``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

#: relative tolerance for "deterministic" quantities — generous enough
#: for cross-platform float summation order, tight enough that any model
#: change trips it
_COUNTER_RTOL = 1e-9

#: hard floor for the warm-session whole-report speedup.  A warm store
#: does zero TLB simulation while the unshared reference replays every
#: configuration, so this ratio is far above the floor on any machine —
#: dropping below it means the session cache stopped working
_MIN_WARM_SPEEDUP = 1.8

#: floor for the executor-leg speedup — gated only on hosts that can
#: actually exhibit it (cpu_count >= _MIN_JOBS_CORES and jobs >= 2);
#: elsewhere the measured value is recorded but not judged
_MIN_JOBS_SPEEDUP = 1.5
_MIN_JOBS_CORES = 4


def _env_mismatch(current: dict, baseline: dict) -> list[str]:
    """Environment keys that make wall-clock comparisons meaningless."""
    cur = current.get("environment", {}) or {}
    base = baseline.get("environment", {}) or {}
    return [f"{key} {base.get(key)!r} -> {cur.get(key)!r}"
            for key in ("cpu_count", "jobs")
            if cur.get(key) != base.get(key)]


def load_baseline(path: Path, problem: str) -> dict | None:
    """Load the baseline document for ``problem`` from a file or a
    directory containing ``BENCH_<problem>.json``."""
    if path.is_dir():
        path = path / f"BENCH_{problem}.json"
    if not path.is_file():
        return None
    doc = json.loads(path.read_text())
    if doc.get("name") != problem:
        return None
    return doc


def _run_key(run: dict) -> tuple:
    return (run.get("problem"), run.get("replication"),
            tuple(run.get("flags", ())))


def _drifted(current: float, baseline: float) -> bool:
    return not math.isclose(current, baseline, rel_tol=_COUNTER_RTOL,
                            abs_tol=0.0)


def compare_bench(current: dict, baseline: dict, *, threshold: float = 0.2,
                  strict_wall: bool = False,
                  notes: list[str] | None = None) -> list[str]:
    """Return a list of human-readable regression descriptions (empty =
    the run passes the gate).

    Wall-clock gates only fire when the environment's ``cpu_count`` and
    ``jobs`` match the baseline's — a baseline regenerated on a laptop
    must not fail CI (or vice versa) on machine speed.  Skipped gates
    are reported through ``notes``; deterministic gates (counters,
    identity booleans, replay counts) always apply.
    """
    failures: list[str] = []
    name = current.get("name", "?")
    if baseline.get("schema") != current.get("schema"):
        failures.append(
            f"{name}: schema mismatch ({baseline.get('schema')!r} vs "
            f"{current.get('schema')!r}) — regenerate the baseline")
        return failures
    env_diffs = _env_mismatch(current, baseline)
    if env_diffs and strict_wall and notes is not None:
        notes.append(f"{name}: environment differs from the baseline "
                     f"({', '.join(env_diffs)}) — wall-clock gates skipped")

    base_runs = {_run_key(r): r for r in baseline.get("runs", ())}
    for run in current.get("runs", ()):
        base = base_runs.get(_run_key(run))
        if base is None:
            continue  # new configuration: nothing to regress against
        label = (f"{name} r{run['replication']} "
                 f"{'+'.join(run['flags']) or 'default'}")
        for counter, value in run.get("counters", {}).items():
            if counter not in base.get("counters", {}):
                continue
            if _drifted(value, base["counters"][counter]):
                failures.append(
                    f"{label}: counter {counter} drifted "
                    f"{base['counters'][counter]!r} -> {value!r}")
        for level, value in run.get("dtlb", {}).items():
            if level in base.get("dtlb", {}) and value != base["dtlb"][level]:
                failures.append(
                    f"{label}: dtlb {level} changed "
                    f"{base['dtlb'][level]} -> {value}")
        if strict_wall and not env_diffs:
            for engine, res in run.get("engines", {}).items():
                bres = base.get("engines", {}).get(engine)
                if bres and res["wall_s"] > bres["wall_s"] * (1 + threshold):
                    failures.append(
                        f"{label}: {engine} wall {res['wall_s']:.3f}s vs "
                        f"baseline {bres['wall_s']:.3f}s "
                        f"(> +{threshold:.0%})")

    cur_speed = current.get("summary", {}).get("speedup")
    base_speed = baseline.get("summary", {}).get("speedup")
    if cur_speed is not None and base_speed is not None:
        if cur_speed < base_speed * (1 - threshold):
            failures.append(
                f"{name}: fast-path speedup regressed "
                f"{base_speed:.2f}x -> {cur_speed:.2f}x "
                f"(> -{threshold:.0%})")

    failures.extend(_compare_session(current, baseline, threshold=threshold,
                                     strict_wall=strict_wall,
                                     env_diffs=env_diffs, notes=notes))
    failures.extend(_compare_geometry(current, baseline, threshold=threshold))
    failures.extend(_compare_scaling(current, baseline))
    failures.extend(_compare_resilience(current, baseline))
    return failures


def _compare_resilience(current: dict, baseline: dict) -> list[str]:
    """Gate the resilience block of a bench document.

    The identity booleans always gate (recovery must reproduce the
    unfaulted run bit-for-bit); the recovery accounting — restarts and
    replayed steps per (ranks, interval) point — is a pure function of
    the fault schedule and gates exactly.  Walls (checkpoint overhead,
    recovery time) are recorded for the trend but never gated.
    """
    cur = current.get("resilience")
    if cur is None:
        return []
    name = current.get("name", "?")
    failures: list[str] = []
    for point, p in sorted((cur.get("points") or {}).items()):
        for flag in ("faultfree_identical", "recovered_identical"):
            if p.get(flag) is False:
                failures.append(
                    f"{name} {point}: {flag.replace('_', ' ')} is False "
                    f"(recovery must be bit-identical)")
    base = baseline.get("resilience")
    if base is None:
        return failures
    base_points = base.get("points") or {}
    for point in sorted(set(cur.get("points") or {}) & set(base_points)):
        p, b = cur["points"][point], base_points[point]
        for field in ("rank_restarts", "replayed_steps"):
            if p.get(field) != b.get(field):
                failures.append(
                    f"{name} {point}: {field} changed "
                    f"{b.get(field)} -> {p.get(field)} (the fault "
                    f"schedule is deterministic)")
    return failures


def _compare_scaling(current: dict, baseline: dict) -> list[str]:
    """Gate the rank-decomposed scaling block of a bench document.

    Everything here is a deterministic model output, so drift at counter
    tolerance is a behaviour change: per-rank DTLB misses and modelled
    times per (mode, rank count, regime), the contention outcome (which
    ranks degraded to base pages), the n_ranks=1 identity booleans, and
    — when the quick flags match — the rendered table's hash.
    """
    cur = current.get("scaling")
    if cur is None:
        return []
    name = current.get("name", "?")
    failures: list[str] = []
    identity = cur.get("identity", {})
    for flag in ("digest_identical", "counters_identical"):
        if identity.get(flag) is False:
            failures.append(
                f"{name}: one-rank fabric {flag.replace('_', ' ')} is False "
                f"(must equal the serial spine bit-for-bit)")
    base = baseline.get("scaling")
    if base is None:
        return failures
    for mode in ("strong", "weak"):
        cur_mode = cur.get(mode, {})
        base_mode = base.get(mode, {})
        for ranks in sorted(set(cur_mode) & set(base_mode), key=int):
            cpt, bpt = cur_mode[ranks], base_mode[ranks]
            label = f"{name} {mode} {ranks} ranks"
            for regime in ("with", "without"):
                ct = cpt.get("time_s", {}).get(regime)
                bt = bpt.get("time_s", {}).get(regime)
                if ct is not None and bt is not None and _drifted(ct, bt):
                    failures.append(
                        f"{label}: {regime}-HP time drifted {bt!r} -> {ct!r}")
                cd = cpt.get("per_rank_dtlb", {}).get(regime)
                bd = bpt.get("per_rank_dtlb", {}).get(regime)
                if (cd is not None and bd is not None
                        and (len(cd) != len(bd)
                             or any(_drifted(c, b)
                                    for c, b in zip(cd, bd)))):
                    failures.append(
                        f"{label}: {regime}-HP per-rank dtlb drifted "
                        f"{bd!r} -> {cd!r}")
            if cpt.get("halo_bytes") != bpt.get("halo_bytes"):
                failures.append(
                    f"{label}: halo bytes changed {bpt.get('halo_bytes')} "
                    f"-> {cpt.get('halo_bytes')}")
    cur_deg = (cur.get("contention") or {}).get("degraded")
    base_deg = (base.get("contention") or {}).get("degraded")
    if cur_deg != base_deg:
        failures.append(
            f"{name}: contention degraded ranks changed "
            f"{base_deg!r} -> {cur_deg!r}")
    if (current.get("quick") == baseline.get("quick")
            and base.get("text_sha256") is not None
            and cur.get("text_sha256") != base.get("text_sha256")):
        failures.append(
            f"{name}: scaling table text drifted from the baseline — "
            f"regenerate the baseline if the change is intended")
    return failures


def _compare_geometry(current: dict, baseline: dict, *,
                      threshold: float) -> list[str]:
    """Gate the batched-geometry block of a report bench document.

    The identity boolean is the contract and always gates; the batch
    speedup is an in-process algorithmic ratio (shared stack-distance
    pass vs one pass per sweep point), so it transfers across hosts and
    gates against the baseline like the fast-path speedup does.
    """
    cur = current.get("geometry")
    if cur is None:
        return []
    name = current.get("name", "?")
    failures: list[str] = []
    if cur.get("batch_identical") is False:
        failures.append(
            f"{name}: batched geometry sweep diverged from the serial "
            f"per-geometry sweep (must be bit-identical)")
    base = (baseline.get("geometry") or {})
    cur_speed, base_speed = cur.get("speedup_batch"), base.get("speedup_batch")
    if (cur_speed is not None and base_speed is not None
            and cur_speed < base_speed * (1 - threshold)):
        failures.append(
            f"{name}: geometry batch speedup regressed "
            f"{base_speed:.2f}x -> {cur_speed:.2f}x (> -{threshold:.0%})")
    return failures


def _compare_trace_tier(name: str, session: dict) -> list[str]:
    """Gate the trace-tier legs of a report bench document.

    Everything here is deterministic, so the gates are absolute rather
    than baseline-relative: a warm trace store must skip synthesis
    entirely, the pool path must ship traces by reference (mapped bytes,
    never pickled bytes), the report text must not change, and neither
    leg may replay more than the serial cold leg — the trace tier sits
    *above* the replay cache and must not alter the replay budget.
    """
    trace = session.get("trace") or {}
    failures: list[str] = []
    if trace.get("text_identical_trace") is False:
        failures.append(
            f"{name}: report text under the trace tier differs from the "
            f"serial text")
    synth_warm = trace.get("synthesis_warm")
    if synth_warm not in (None, 0):
        failures.append(
            f"{name}: warm trace store still synthesized {synth_warm} "
            f"bundle(s) (must map every bundle: synthesis_warm == 0)")
    mapped = trace.get("traces_mapped_bytes_warm")
    if mapped is not None and mapped <= 0:
        failures.append(
            f"{name}: warm trace leg mapped {mapped} trace bytes "
            f"(zero-copy handoff did not engage)")
    for leg in ("cold", "warm"):
        pickled = trace.get(f"traces_pickled_bytes_{leg}")
        if pickled:
            failures.append(
                f"{name}: {leg} trace leg pickled {pickled} trace bytes "
                f"over the pool pipe (must ship by reference)")
        replays = trace.get(f"replays_{leg}_trace")
        if (replays is not None and session.get("replays_cold") is not None
                and replays != session["replays_cold"]):
            failures.append(
                f"{name}: {leg} trace leg performed {replays} replays vs "
                f"{session['replays_cold']} serial (the trace tier must "
                f"not change the replay budget)")
    return failures


def _compare_session(current: dict, baseline: dict, *, threshold: float,
                     strict_wall: bool, env_diffs: list[str] | None = None,
                     notes: list[str] | None = None) -> list[str]:
    """Gate the replay-session block of a whole-report bench document.

    Replay counts are deterministic model outputs — any increase over
    the baseline means a deduplication or cache path was lost and fails
    regardless of the threshold; the executor leg's replay count must be
    bit-equal to the serial cold leg's (the as-if-sequential accounting
    contract).  Walls only gate through the in-process warm speedup
    ratio (and, under ``--strict-wall`` with a matching environment,
    absolutely); the executor speedup floor only applies on hosts with
    at least ``_MIN_JOBS_CORES`` cores — a single-core container cannot
    exhibit multicore speedup and must not be failed for it.
    """
    cur = current.get("session")
    if cur is None:
        return []
    env_diffs = env_diffs or []
    name = current.get("name", "?")
    failures: list[str] = []
    if cur.get("text_identical") is False:
        failures.append(
            f"{name}: report text differs across cache states "
            f"(unshared/cold/warm must be byte-identical)")
    if cur.get("text_identical_jobs") is False:
        failures.append(
            f"{name}: report text under the process-pool executor differs "
            f"from the serial text (jobs={cur.get('jobs')})")
    replays_jobs = cur.get("replays_cold_jobs")
    if (replays_jobs is not None and cur.get("replays_cold") is not None
            and replays_jobs != cur["replays_cold"]):
        failures.append(
            f"{name}: executor leg performed {replays_jobs} replays vs "
            f"{cur['replays_cold']} serial (as-if-sequential accounting "
            f"broken)")
    warm_speed = cur.get("speedup_warm")
    if warm_speed is not None and warm_speed < _MIN_WARM_SPEEDUP:
        failures.append(
            f"{name}: warm-session speedup {warm_speed:.2f}x fell below "
            f"the {_MIN_WARM_SPEEDUP}x floor")
    failures.extend(_compare_trace_tier(name, cur))
    jobs_speed = cur.get("speedup_jobs")
    if jobs_speed is not None:
        env = current.get("environment", {}) or {}
        cores = env.get("cpu_count") or 0
        if cores >= _MIN_JOBS_CORES and (cur.get("jobs") or 0) >= 2:
            if jobs_speed < _MIN_JOBS_SPEEDUP:
                failures.append(
                    f"{name}: executor speedup {jobs_speed:.2f}x fell "
                    f"below the {_MIN_JOBS_SPEEDUP}x floor "
                    f"(jobs={cur.get('jobs')}, {cores} cores)")
        elif notes is not None:
            notes.append(
                f"{name}: executor speedup {jobs_speed:.2f}x recorded but "
                f"not gated ({cores} cores < {_MIN_JOBS_CORES})")

    base = baseline.get("session")
    if base is None:
        return failures
    for field in ("replays_cold", "replays_warm"):
        cur_n, base_n = cur.get(field), base.get(field)
        if cur_n is not None and base_n is not None and cur_n > base_n:
            failures.append(
                f"{name}: {field} regressed {base_n} -> {cur_n} "
                f"(replay deduplication lost)")
    if (current.get("quick") == baseline.get("quick")
            and base.get("text_sha256") is not None
            and cur.get("text_sha256") != base.get("text_sha256")):
        failures.append(
            f"{name}: report text drifted from the baseline — "
            f"regenerate the baseline if the change is intended")
    if strict_wall and not env_diffs:
        for field in ("wall_unshared_s", "wall_cold_s", "wall_warm_s",
                      "wall_cold_jobs_s"):
            cur_w, base_w = cur.get(field), base.get(field)
            if (cur_w is not None and base_w is not None
                    and cur_w > base_w * (1 + threshold)):
                failures.append(
                    f"{name}: {field} {cur_w:.3f}s vs baseline "
                    f"{base_w:.3f}s (> +{threshold:.0%})")
    return failures


__all__ = ["compare_bench", "load_baseline"]
