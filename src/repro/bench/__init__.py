"""Reproducible replay benchmarks for the performance pipeline.

``python -m repro.bench`` replays the paper's two workloads — the EOS
problem and the 3-d Hydro problem — through
:class:`~repro.perfmodel.pipeline.PerformancePipeline` at several mesh
replication scales, with and without huge pages, under both replay
engines (the vectorized ``fast`` path and the ``scalar`` reference
oracle).  For each problem it writes one ``BENCH_<problem>.json``
document recording wall time, replay rate, counter totals, DTLB misses,
the exact fast-vs-scalar equivalence verdict, and the fast-path speedup,
plus enough environment metadata to interpret the numbers later.

``--compare`` turns the run into a regression gate against a previously
committed baseline document (see :mod:`repro.bench.compare`).
"""

from repro.bench.cli import SCHEMA, main, run_problem_bench
from repro.bench.compare import compare_bench, load_baseline

__all__ = ["SCHEMA", "main", "run_problem_bench", "compare_bench",
           "load_baseline"]
