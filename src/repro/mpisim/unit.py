"""The MPI-simulation unit's declarations (FLASH's ``Grid/GridMain``
parallel-decomposition parameters).

The mpisim unit owns the rank-decomposition parameters: how many
simulated ranks a run is split across and how densely those ranks pack
onto nodes (which sets the shared node-injection bandwidth in the
:class:`~repro.mpisim.comm.CommCostModel`).  Like the driver, it has no
step hook — the decomposed evolution loop is the
:class:`~repro.mpisim.fabric.Fabric`, which reads these parameters
through :class:`~repro.driver.config.RuntimeParameters`.
"""

from __future__ import annotations

from repro.core import ParameterSpec, UnitSpec, unit_registry

MPISIM_UNIT = unit_registry.register(UnitSpec(
    name="mpisim",
    description="simulated rank decomposition: shard count, node packing",
    phase=0,
    parameters=(
        ParameterSpec("n_ranks", 1,
                      doc="simulated MPI ranks the domain is decomposed "
                          "across (1: the serial spine, bit-identical to "
                          "a plain Simulation run)",
                      validator=lambda v: v >= 1),
        ParameterSpec("ranks_per_node", 1,
                      doc="ranks resident per node: sets the shared "
                          "node-injection bandwidth and how many ranks "
                          "contend for one node's hugetlb pool",
                      validator=lambda v: v >= 1),
        ParameterSpec("fab_barrier_timeout_s", 0.0,
                      doc="wall-clock deadline (seconds) a rank may keep "
                          "the others waiting at the lockstep barrier "
                          "before the fabric raises FabricTimeout naming "
                          "the stragglers (0: wait forever)",
                      validator=lambda v: v >= 0.0),
        ParameterSpec("fab_max_rank_restarts", 2,
                      doc="coordinated recoveries (rollback + rank "
                          "respawn) the supervised fabric run attempts "
                          "before re-raising the rank failure",
                      validator=lambda v: v >= 0),
        ParameterSpec("fab_checkpoint_interval", 1,
                      doc="steps between coordinated fabric checkpoints "
                          "(the rollback grain: larger intervals cost "
                          "less overhead but replay more steps per "
                          "recovery)",
                      validator=lambda v: v >= 1),
    ),
))

__all__ = ["MPISIM_UNIT"]
