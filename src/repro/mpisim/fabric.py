"""Rank-decomposed execution of a Simulation (PARAMESH across ranks).

FLASH distributes Morton-ordered blocks across MPI ranks; every rank
steps only its own blocks, refreshes off-rank *surrogate* copies before
each guard-cell pass, and joins the timestep reduction.  The
:class:`Fabric` reproduces that execution model inside one process:

* every rank owns a full :class:`~repro.driver.simulation.Simulation`
  (its own ``unk`` storage — a private address space, like a real MPI
  process) restricted to its :class:`~repro.mpisim.comm.\
DomainDecomposition` shard via ``Grid.owned``;
* ranks advance in lockstep on threads; the per-axis ``Grid.halo_hook``
  of every rank meets at a barrier whose action copies each off-rank
  source block from its owner's live grid — real data movement, with the
  bytes charged to :class:`~repro.mpisim.comm.SimComm`;
* the timestep is negotiated with ``allreduce_min`` over the per-rank
  CFL minima, exactly as ``Driver_computeDt`` does.

Bit-identity with the serial spine is by construction, not luck: within
one guard-fill axis pass the writes (guard strips along the fill axis)
never intersect the reads (source interiors plus transverse guards
filled by *earlier* passes), so refreshing surrogates once per axis
while every rank is paused at the same phase reproduces the serial
``fill_guardcells`` bit-for-bit — and therefore the whole run.
``n_ranks=1`` installs no hook and no filter at all: it *is* the serial
spine.

**Fault tolerance** (see ``docs/resilience.md``): the fabric takes
globally consistent snapshots at step boundaries (every rank thread
joined — a barrier point), both in memory (:meth:`Fabric.snapshot`) and
on disk through the artifact store (:meth:`Fabric.write_checkpoint`,
one per-rank checkpoint plus a manifest); :meth:`Fabric.restart`
resumes a multi-rank run bit-identically.  :meth:`Fabric.run_supervised`
is the distributed analogue of the serial
:class:`~repro.driver.supervisor.RunSupervisor`: per-step guards with
bounded dt-retry, plus *coordinated recovery* — on a rank kill, a
barrier deadlock (:class:`~repro.util.errors.FabricTimeout`, with
per-rank stack dumps), or an exhausted retry budget, every rank is
rolled back to the last coordinated snapshot and the failed rank's
thread is respawned from its checkpoint (with hugetlb-pool-aware
re-admission on an attached kernel), bounded by ``max_rank_restarts``.
Because rank-targeted chaos faults fire once, the replay is clean and
the recovered run finishes bit-identical to an unfaulted one.
"""

from __future__ import annotations

import copy
import json
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.driver.io import restore_into, write_checkpoint
from repro.driver.simulation import Simulation, StepInfo
from repro.driver.supervisor import (
    GuardViolation,
    RetryRecord,
    RunReport,
    StepAttempt,
    StepFailure,
    step_guards,
)
from repro.mpisim.comm import CommCostModel, DomainDecomposition, SimComm
from repro.perfmodel.workrecord import WorkLog
from repro.util import MiB, artifacts
from repro.util.errors import (
    ConfigurationError,
    FabricTimeout,
    PhysicsError,
    RankKilled,
)

#: schema tag of the on-disk fabric checkpoint manifest
MANIFEST_SCHEMA = "repro.fabric-checkpoint/1"
#: manifest file name inside a fabric checkpoint directory
MANIFEST_NAME = "fabric_manifest.json"


@dataclass
class RankContext:
    """One simulated rank: its simulation, shard, and traffic counters."""

    rank: int
    sim: Simulation
    owned: frozenset
    bytes_sent: int = 0
    bytes_received: int = 0
    #: attached per-rank work log (``Fabric.attach_worklogs``)
    log: WorkLog | None = None

    @property
    def grid(self):
        return self.sim.grid

    @property
    def n_blocks(self) -> int:
        return len(self.owned)


@dataclass(frozen=True)
class _Copy:
    """One surrogate-block refresh: ``bid`` from ``src`` rank to ``dst``."""

    src: int
    bid: object
    dst: int


@dataclass
class _RankSnapshot:
    """One rank's share of a coordinated snapshot (cf. the serial
    supervisor's ``_Snapshot``, plus the fabric-only state: traffic
    counters, the driver RNG, and the work log's resume point)."""

    unk: np.ndarray
    tree: object
    blocks: dict
    free_slots: list[int]
    t: float
    n_step: int
    history_len: int
    bank_totals: dict
    bank_time: float
    unit_state: dict[str, dict[str, float]]
    rng_state: dict | None
    bytes_sent: int
    bytes_received: int
    log_len: int
    log_state: dict


@dataclass
class FabricSnapshot:
    """A globally consistent cut: every rank at the same step boundary,
    plus the communicator totals the cut must agree with."""

    step: int
    comm_elapsed_s: float
    comm_bytes_moved: int
    ranks: list[_RankSnapshot] = field(default_factory=list)


class Fabric:
    """Lockstep rank-decomposed evolution over one shared-memory process.

    ``builder`` must return a *fresh, deterministic* Simulation each
    call (same initial state every time) — it is invoked once per rank,
    giving each rank its own storage.  Refinement must be disabled
    (``nrefs=0``): remeshing mid-run would move blocks between shards,
    which the decomposition is static over.
    """

    def __init__(self, builder, n_ranks: int, *,
                 ranks_per_node: int = 1,
                 cost: CommCostModel | None = None,
                 barrier_timeout_s: float | None = None,
                 rank_chaos=None) -> None:
        if n_ranks < 1:
            raise ConfigurationError("need at least one rank")
        if barrier_timeout_s is not None and barrier_timeout_s <= 0.0:
            raise ConfigurationError(
                "barrier_timeout_s must be positive (or None)")
        self._builder = builder
        sims = [builder() for _ in range(n_ranks)]
        for sim in sims:
            if sim.refinement is not None and sim.nrefs > 0:
                raise ConfigurationError(
                    "the fabric needs a static decomposition: build the "
                    "simulation with nrefs=0 (refinement would move blocks "
                    "between shards mid-run)")
        self.n_ranks = n_ranks
        self.decomposition = DomainDecomposition.split(sims[0].grid, n_ranks)
        self.comm = SimComm(n_ranks, cost or CommCostModel(),
                            ranks_per_node=min(ranks_per_node, n_ranks))
        self.ranks: list[RankContext] = [
            RankContext(rank=r, sim=sims[r],
                        owned=frozenset(self.decomposition.assignment[r]))
            for r in range(n_ranks)]
        self._validate_no_cross_rank_jumps(sims[0].grid)
        self._plan = self._build_exchange_plan(sims[0].grid)
        self._axis_requests = [None] * n_ranks
        self._barrier: threading.Barrier | None = None
        #: barrier deadline in wall seconds (None: wait forever); a
        #: straggler that misses it raises :class:`FabricTimeout`
        #: naming the missing ranks, with per-rank stack dumps
        self.barrier_timeout_s = barrier_timeout_s
        #: optional :class:`~repro.chaos.rankfaults.RankChaos` schedule
        self.rank_chaos = rank_chaos
        self._last_dt: float | None = None
        self._stop_requested = False
        self._arrived: set[int] = set()
        self._arrive_lock = threading.Lock()
        self._timeout_error: FabricTimeout | None = None
        self._aborted = False
        if n_ranks > 1:
            self._barrier = threading.Barrier(n_ranks, action=self._exchange)
            for ctx in self.ranks:
                ctx.grid.owned = ctx.owned
                ctx.grid.halo_hook = (
                    lambda axis, rank=ctx.rank: self._hook(rank, axis))
        # n_ranks == 1: leave owned/halo_hook untouched — the serial spine

    # --- construction helpers ------------------------------------------------
    def _validate_no_cross_rank_jumps(self, grid) -> None:
        """Flux matching at refinement jumps needs both sides on one rank
        (``_match_fluxes`` resolves children among the swept blocks), so a
        jump crossing shards is a configuration error, not a crash."""
        dd = self.decomposition
        for rank, blocks in dd.assignment.items():
            for bid in blocks:
                for axis in range(grid.tree.ndim):
                    for direction in (-1, 1):
                        kind, info = grid.tree.face_neighbor(bid, axis,
                                                             direction)
                        if kind not in ("finer", "coarser"):
                            continue
                        others = info if isinstance(info, list) else [info]
                        if any(dd.rank_of(nid) != rank for nid in others):
                            raise ConfigurationError(
                                f"refinement jump at {bid} crosses a rank "
                                f"boundary; choose a rank count whose "
                                f"Morton split keeps jumps on one shard")

    def _build_exchange_plan(self, grid) -> list[list[_Copy]]:
        """Per axis: every off-rank source block each rank reads during
        that axis pass, deduplicated, in deterministic (rank, Morton)
        order.  Sources are refreshed as whole padded blocks —
        PARAMESH's surrogate-block strategy — so the transverse guard
        slabs the corner trick reads arrive along with the interior."""
        dd = self.decomposition
        plan: list[list[_Copy]] = []
        for axis in range(grid.tree.ndim):
            copies: list[_Copy] = []
            seen: set[tuple[int, object, int]] = set()
            for rank in range(self.n_ranks):
                for bid in dd.assignment[rank]:
                    for direction in (-1, 1):
                        kind, info = grid.tree.face_neighbor(bid, axis,
                                                             direction)
                        if kind == "boundary":
                            continue
                        others = info if isinstance(info, list) else [info]
                        for nid in others:
                            src = dd.rank_of(nid)
                            if src == rank:
                                continue
                            key = (src, nid, rank)
                            if key not in seen:
                                seen.add(key)
                                copies.append(_Copy(src, nid, rank))
            plan.append(copies)
        return plan

    # --- the halo exchange ---------------------------------------------------
    def _hook(self, rank: int, axis: int) -> None:
        self._axis_requests[rank] = axis
        self._wait_barrier(rank)

    def _wait_barrier(self, rank: int) -> None:
        """One rank arriving at the lockstep barrier, under the deadline.

        ``Barrier.wait(timeout)`` breaks the barrier for everyone; the
        first waiter to observe the break (with no rank error recorded)
        identifies the ranks that never arrived and captures their live
        stacks — the deadlock/straggler forensics the ``RunReport``
        carries.
        """
        with self._arrive_lock:
            self._arrived.add(rank)
        try:
            self._barrier.wait(self.barrier_timeout_s)
        except threading.BrokenBarrierError:
            self._note_timeout()
            raise

    def _note_timeout(self) -> None:
        if self.barrier_timeout_s is None:
            return
        with self._arrive_lock:
            if self._timeout_error is not None or self._aborted:
                return
            missing = sorted(set(range(self.n_ranks)) - self._arrived)
            if not missing:
                return
            self._timeout_error = FabricTimeout(
                f"lockstep barrier timed out after "
                f"{self.barrier_timeout_s:.3f} s: rank(s) "
                f"{', '.join(str(r) for r in missing)} never arrived "
                f"({len(self._arrived)}/{self.n_ranks} present)",
                missing_ranks=tuple(missing),
                rank_stacks=self._rank_stacks())

    def _rank_stacks(self) -> dict[int, str]:
        """Formatted stack of every live rank thread (deadlock dumps)."""
        idents = {t.name: t.ident for t in threading.enumerate()
                  if t.name.startswith("fabric-rank")}
        frames = sys._current_frames()
        stacks: dict[int, str] = {}
        for rank in range(self.n_ranks):
            ident = idents.get(f"fabric-rank{rank}")
            if ident is not None and ident in frames:
                stacks[rank] = "".join(
                    traceback.format_stack(frames[ident]))
        return stacks

    def _exchange(self) -> None:
        """Barrier action: runs in exactly one thread while every rank is
        paused at the same guard-fill phase — cross-grid copies are
        race-free and their order is deterministic."""
        axes = set(self._axis_requests)
        if len(axes) != 1:
            raise ConfigurationError(
                f"ranks diverged: guard fills requested axes "
                f"{sorted(self._axis_requests)} at one barrier (the "
                f"fabric needs identical unit schedules on every rank)")
        axis = axes.pop()
        with self._arrive_lock:
            self._arrived.clear()  # next barrier cycle tracks fresh arrivals
        received = [0] * self.n_ranks
        for copy in self._plan[axis]:
            src = self.ranks[copy.src].grid.block_data(copy.bid)
            dst = self.ranks[copy.dst].grid.block_data(copy.bid)
            dst[...] = src
            nbytes = src.nbytes
            received[copy.dst] += nbytes
            self.ranks[copy.src].bytes_sent += nbytes
            self.ranks[copy.dst].bytes_received += nbytes
        self.comm.halo_exchange(received)

    # --- evolution -----------------------------------------------------------
    def negotiate_dt(self) -> float:
        """``Driver_computeDt``: per-rank CFL minima joined by an
        allreduce.  Exact: min over ranks of per-shard minima is the
        serial minimum, bit-for-bit."""
        dts = np.array([ctx.sim.compute_dt() for ctx in self.ranks])
        return self.comm.allreduce_min(dts)

    def step(self, dt: float | None = None) -> list[StepInfo]:
        """Advance every rank by one (negotiated) step in lockstep."""
        if dt is None:
            dt = self.negotiate_dt()
        if self.n_ranks == 1:
            ctx = self.ranks[0]
            if self.rank_chaos is not None:
                self.rank_chaos.deliver_rank(self, ctx, ctx.sim.n_step + 1)
            return [ctx.sim.step(dt)]

        self._barrier.reset()
        with self._arrive_lock:
            self._arrived.clear()
            self._timeout_error = None
            self._aborted = False
        errors: list[BaseException] = []
        infos: list[StepInfo | None] = [None] * self.n_ranks

        def run(ctx: RankContext) -> None:
            try:
                if self.rank_chaos is not None:
                    self.rank_chaos.deliver_rank(self, ctx,
                                                 ctx.sim.n_step + 1)
                infos[ctx.rank] = ctx.sim.step(dt)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors.append(exc)
                if not isinstance(exc, threading.BrokenBarrierError):
                    with self._arrive_lock:
                        self._aborted = True
                self._barrier.abort()

        threads = [threading.Thread(target=run, args=(ctx,),
                                    name=f"fabric-rank{ctx.rank}")
                   for ctx in self.ranks]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        real = [e for e in errors
                if not isinstance(e, threading.BrokenBarrierError)]
        if real:
            raise real[0]
        if self._timeout_error is not None:
            raise self._timeout_error
        if errors:
            raise errors[0]
        return infos  # type: ignore[return-value]

    def evolve(self, *, nend: int) -> list[list[StepInfo]]:
        """Run ``nend`` lockstep steps; returns per-step rank summaries."""
        return [self.step() for _ in range(nend)]

    # --- reductions and instrumentation --------------------------------------
    def total(self, name: str, weight: str | None = "dens") -> float:
        """Domain integral across all shards (an ``allreduce_sum``)."""
        partials = np.array([ctx.grid.total(name, weight)
                             for ctx in self.ranks])
        return self.comm.allreduce_sum(partials)

    def attach_worklogs(self, *,
                        helmholtz_eos: bool = True) -> tuple[WorkLog, ...]:
        """Attach one WorkLog per rank (call before evolving).

        Each log records only its rank's shard — slots, levels, and zone
        counts are per-rank — so the perfmodel replays every rank's own
        memory behaviour, the way per-process PAPI counters would read.
        """
        for ctx in self.ranks:
            ctx.log = WorkLog.attach(ctx.sim, helmholtz_eos=helmholtz_eos)
        return tuple(ctx.log for ctx in self.ranks)

    # --- coordinated snapshots ------------------------------------------------
    @property
    def step_count(self) -> int:
        """Steps completed (identical on every rank — lockstep)."""
        return self.ranks[0].sim.n_step

    def request_stop(self) -> None:
        """Ask the supervised run to stop cleanly at the next step
        boundary (the lockstep barrier point).  Thread-safe: this is
        where the chaos ``signal`` fault lands when delivered from a
        rank thread, where ``signal.signal`` would be illegal."""
        self._stop_requested = True

    def snapshot(self) -> FabricSnapshot:
        """A globally consistent in-memory snapshot.

        Only valid at a step boundary (every rank thread joined), which
        is the only place the supervised loop calls it — the cut is
        consistent by construction, no marker messages needed.
        """
        return FabricSnapshot(
            step=self.step_count,
            comm_elapsed_s=self.comm.elapsed_s,
            comm_bytes_moved=self.comm.bytes_moved,
            ranks=[self._rank_snapshot(ctx) for ctx in self.ranks])

    def _rank_snapshot(self, ctx: RankContext) -> _RankSnapshot:
        sim = ctx.sim
        unit_state = {spec.name: dict(spec.save_state(sim, unit))
                      for spec, unit in sim.scheduled_units()
                      if spec.save_state is not None}
        return _RankSnapshot(
            unk=sim.grid.unk.copy(),
            tree=copy.deepcopy(sim.grid.tree),
            blocks=copy.deepcopy(sim.grid.blocks),
            free_slots=list(sim.grid._free_slots),
            t=sim.t,
            n_step=sim.n_step,
            history_len=len(sim.history),
            bank_totals=dict(sim.bank.totals),
            bank_time=sim.bank.time_s,
            unit_state=unit_state,
            rng_state=(copy.deepcopy(sim.rng.bit_generator.state)
                       if sim.rng is not None else None),
            bytes_sent=ctx.bytes_sent,
            bytes_received=ctx.bytes_received,
            log_len=(len(ctx.log.steps) if ctx.log is not None else 0),
            log_state=(dict(ctx.log._delta_state)
                       if ctx.log is not None else {}))

    def restore(self, snap: FabricSnapshot) -> None:
        """Roll every rank back to a coordinated snapshot.

        A snapshot may be restored more than once (repeated faults
        between checkpoints), so mutable pieces are copied out of it,
        never aliased into the live simulations.
        """
        for ctx, rsnap in zip(self.ranks, snap.ranks):
            self._rank_restore(ctx, rsnap)
        self.comm.elapsed_s = snap.comm_elapsed_s
        self.comm.bytes_moved = snap.comm_bytes_moved

    def _rank_restore(self, ctx: RankContext, snap: _RankSnapshot) -> None:
        sim = ctx.sim
        sim.grid.unk[...] = snap.unk
        sim.grid.tree = copy.deepcopy(snap.tree)
        sim.grid.blocks = copy.deepcopy(snap.blocks)
        sim.grid._free_slots = list(snap.free_slots)
        sim.t = snap.t
        sim.n_step = snap.n_step
        del sim.history[snap.history_len:]
        sim.bank.totals = dict(snap.bank_totals)
        sim.bank.time_s = snap.bank_time
        for spec, unit in sim.scheduled_units():
            if spec.restore_state is not None and spec.name in snap.unit_state:
                spec.restore_state(sim, unit, snap.unit_state[spec.name])
        if sim.rng is not None and snap.rng_state is not None:
            sim.rng.bit_generator.state = copy.deepcopy(snap.rng_state)
        ctx.bytes_sent = snap.bytes_sent
        ctx.bytes_received = snap.bytes_received
        if ctx.log is not None:
            # truncate the recorded steps AND rewind the attach hook's
            # delta baselines — the restored unit counters are the ones
            # the truncated log last saw, and the next recorded step's
            # deltas must be computed against them
            del ctx.log.steps[snap.log_len:]
            ctx.log._delta_state.update(snap.log_state)

    # --- on-disk checkpoints --------------------------------------------------
    def write_checkpoint(self, directory: str | Path) -> Path:
        """Write a coordinated checkpoint: one per-rank checkpoint file
        (through the corruption-safe artifact store, like the serial
        supervisor's) plus a fabric manifest tying them to one step and
        to the communicator totals.  Returns the manifest path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        rank_files = []
        for ctx in self.ranks:
            path = directory / f"rank{ctx.rank:03d}.npz"
            write_checkpoint(ctx.grid, path, sim=ctx.sim)
            rank_files.append(path.name)
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "n_ranks": self.n_ranks,
            "ranks_per_node": self.comm.ranks_per_node,
            "step": self.step_count,
            "t": self.ranks[0].sim.t,
            "comm": {"elapsed_s": self.comm.elapsed_s,
                     "bytes_moved": self.comm.bytes_moved},
            "traffic": [{"rank": ctx.rank,
                         "bytes_sent": ctx.bytes_sent,
                         "bytes_received": ctx.bytes_received}
                        for ctx in self.ranks],
            "ranks": rank_files,
        }
        manifest_path = directory / MANIFEST_NAME
        with artifacts.atomic_write(manifest_path) as tmp:
            tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True)
                           + "\n")
        return manifest_path

    @classmethod
    def restart(cls, directory: str | Path, builder, **kwargs) -> "Fabric":
        """Rebuild a fabric from a coordinated checkpoint directory,
        resuming the multi-rank run bit-identically: every rank's block
        data, step/time, unit state (sweep parity, work counters), PAPI
        bank, and traffic counters, plus the communicator totals."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise ConfigurationError(
                f"{manifest_path} is not a fabric checkpoint manifest "
                f"(schema {manifest.get('schema')!r}, "
                f"expected {MANIFEST_SCHEMA!r})")
        fabric = cls(builder, int(manifest["n_ranks"]),
                     ranks_per_node=int(manifest.get("ranks_per_node", 1)),
                     **kwargs)
        for ctx, name in zip(fabric.ranks, manifest["ranks"]):
            restore_into(ctx.sim, directory / name)
        for entry in manifest["traffic"]:
            ctx = fabric.ranks[int(entry["rank"])]
            ctx.bytes_sent = int(entry["bytes_sent"])
            ctx.bytes_received = int(entry["bytes_received"])
        fabric.comm.elapsed_s = float(manifest["comm"]["elapsed_s"])
        fabric.comm.bytes_moved = int(manifest["comm"]["bytes_moved"])
        return fabric

    # --- rank respawn ---------------------------------------------------------
    def _respawn_rank(self, rank: int, snap: FabricSnapshot,
                      checkpoint_dir: Path | None, kernel) -> None:
        """Replace a failed rank's simulation with a fresh one restored
        from its last coordinated checkpoint.

        The survivors have already been rolled back (they were holding
        at the recovery barrier — the joined step boundary); the failed
        rank's new simulation restores from its on-disk checkpoint when
        one exists, else from the in-memory snapshot.  With a kernel
        attached, re-admission maps the rank's ``unk`` arena
        ``MAP_HUGETLB`` with fallback: a drained pool degrades the
        respawn to base pages on the :class:`~repro.kernel.vmm.\
DegradationLog` instead of failing it.
        """
        ctx = self.ranks[rank]
        sim = self._builder()
        if self.n_ranks > 1:
            sim.grid.owned = ctx.owned
            sim.grid.halo_hook = (
                lambda axis, r=rank: self._hook(r, axis))
        old_log = ctx.log
        ctx.log = None  # the fresh sim has no hook yet; restore below
        ctx.sim = sim
        chk = (checkpoint_dir / f"rank{rank:03d}.npz"
               if checkpoint_dir is not None else None)
        if chk is not None and chk.exists():
            restore_into(sim, chk)
            ctx.bytes_sent = snap.ranks[rank].bytes_sent
            ctx.bytes_received = snap.ranks[rank].bytes_received
        else:
            ctx.log = old_log  # _rank_restore truncates it consistently
            self._rank_restore(ctx, snap.ranks[rank])
            ctx.log = None
        if old_log is not None:
            del old_log.steps[snap.ranks[rank].log_len:]
            old_log.rebind(sim)
            ctx.log = old_log
        if kernel is not None:
            hugetlb = 2 * MiB
            nbytes = -(-sim.grid.unk.nbytes // hugetlb) * hugetlb
            space = kernel.new_address_space(f"rank{rank}-respawn")
            space.mmap(nbytes, hugetlb_size=hugetlb,
                       hugetlb_fallback=True, name=f"rank{rank}-unk")
        chaos_unit = sim.unit("chaos")
        if chaos_unit is not None:
            chaos_unit.stop_flag = self.request_stop

    # --- the supervised run ---------------------------------------------------
    def _guarded_step(self, report: RunReport, *, dtmin: float,
                      retry_factor: float, max_retries: int) -> None:
        """One lockstep step under per-rank guards with bounded dt-retry.

        Mirrors the serial supervisor's ``guarded_step``: each attempt
        snapshots the whole fabric first, so a rollback can never tear
        partially exchanged guard cells — either every rank's step
        (including every surrogate refresh) happened, or none did.  A
        poisoned dt reduction (the ``bad_dt`` fault returns a negative
        contribution through ``allreduce_min``) is *renegotiated* on
        retry rather than backed off: the fault fires once, so the
        clean renegotiation reproduces the unfaulted run's dt exactly.
        """
        rejected: list[StepAttempt] = []
        dt: float | None = None
        for _attempt in range(max_retries + 1):
            snap = self.snapshot()
            try:
                if dt is None:
                    dt = self.negotiate_dt()
                if not np.isfinite(dt) or dt <= 0.0:
                    raise GuardViolation(
                        [f"bad negotiated timestep {dt}"])
                if dt < dtmin:
                    raise GuardViolation(
                        [f"timestep {dt:.6e} below floor {dtmin:.3e}"])
                self.step(dt)
                violations: list[str] = []
                for ctx in self.ranks:
                    violations.extend(f"rank {ctx.rank}: {v}"
                                      for v in step_guards(ctx.grid))
                if violations:
                    raise GuardViolation(violations)
                if rejected:
                    report.retries.append(RetryRecord(
                        step=self.step_count, rejected=rejected,
                        final_dt=dt))
                self._last_dt = dt
                return
            except (GuardViolation, PhysicsError) as exc:
                self.restore(snap)
                reasons = (list(exc.violations)
                           if isinstance(exc, GuardViolation)
                           else [f"{type(exc).__name__}: {exc}"])
                attempted = float(dt) if dt is not None else float("nan")
                rejected.append(StepAttempt(dt=attempted,
                                            reasons=tuple(reasons)))
                report.guard_trips += 1
                if dt is None or not np.isfinite(dt) or dt <= 0.0:
                    dt = None  # poisoned reduction: renegotiate clean
                else:
                    dt = dt * retry_factor
                    if dt < dtmin:
                        break
        raise StepFailure(step=self.step_count + 1, t=self.ranks[0].sim.t,
                          attempts=tuple(rejected), dtmin=dtmin)

    def run_supervised(self, *, nend: int,
                       checkpoint_interval: int = 1,
                       checkpoint_dir: str | Path | None = None,
                       max_rank_restarts: int = 2,
                       rank_chaos=None,
                       kernel=None,
                       dtmin: float = 1.0e-12,
                       retry_factor: float = 0.5,
                       max_retries: int = 4) -> RunReport:
        """Evolve to ``nend`` steps through rank faults.

        The distributed recovery state machine (``docs/resilience.md``):

        1. **Checkpoint** — every ``checkpoint_interval`` steps, at the
           joined step boundary, take a coordinated snapshot (and write
           it to ``checkpoint_dir`` when given).
        2. **Detect** — a step that raises :class:`RankKilled` (a rank
           thread died), :class:`FabricTimeout` (barrier deadline
           missed; the report gets the per-rank stacks), or
           ``StepFailure`` (dt-retry budget exhausted) enters recovery.
        3. **Recover** — survivors hold at the recovery barrier (the
           joined boundary), every rank rolls back to the last
           coordinated snapshot, and a killed rank's thread is
           respawned from its checkpoint with hugetlb-aware
           re-admission.  Bounded by ``max_rank_restarts``; beyond it
           the error re-raises with the report attached.
        4. **Replay** — faults fire once, so the replayed steps are
           clean and the run finishes bit-identical to an unfaulted
           one.

        The chaos ``signal`` fault (and anything else calling
        :meth:`request_stop`) stops the run cleanly at the next step
        boundary with a final checkpoint, ``report.interrupted`` set.
        """
        if rank_chaos is not None:
            self.rank_chaos = rank_chaos
        if kernel is None and self.rank_chaos is not None:
            kernel = self.rank_chaos.kernel
        chk_dir = (Path(checkpoint_dir)
                   if checkpoint_dir is not None else None)
        for ctx in self.ranks:
            chaos_unit = ctx.sim.unit("chaos")
            if chaos_unit is not None:
                chaos_unit.stop_flag = self.request_stop
        report = RunReport()
        start_wall = time.monotonic()
        snap = self.snapshot()
        if chk_dir is not None:
            report.checkpoints.append(str(self.write_checkpoint(chk_dir)))
        restarts = 0
        while self.step_count < nend:
            if self._stop_requested:
                report.interrupted = "stop_flag"
                if chk_dir is not None:
                    report.final_checkpoint = str(
                        self.write_checkpoint(chk_dir))
                break
            if self.rank_chaos is not None:
                self.rank_chaos.deliver_main(self, self.step_count + 1)
            try:
                self._guarded_step(report, dtmin=dtmin,
                                   retry_factor=retry_factor,
                                   max_retries=max_retries)
            except (FabricTimeout, RankKilled, StepFailure) as exc:
                if isinstance(exc, FabricTimeout):
                    report.timeouts += 1
                    report.rank_stacks = {
                        str(r): s for r, s in exc.rank_stacks.items()}
                if restarts >= max_rank_restarts:
                    report.failure = str(exc)
                    if chk_dir is not None:
                        report.final_checkpoint = str(
                            self.write_checkpoint(chk_dir))
                    self._finalise(report, start_wall, kernel)
                    exc.report = report
                    raise
                t0 = time.monotonic()
                restarts += 1
                report.rank_restarts += 1
                failed = getattr(exc, "rank", None)
                self.restore(snap)
                if failed is not None:
                    self._respawn_rank(failed, snap, chk_dir, kernel)
                report.recovery_wall_s += time.monotonic() - t0
                continue
            if (checkpoint_interval > 0
                    and self.step_count % checkpoint_interval == 0):
                snap = self.snapshot()
                if chk_dir is not None:
                    report.checkpoints.append(
                        str(self.write_checkpoint(chk_dir)))
        if self.rank_chaos is not None:
            report.rank_faults = [inj.to_json()
                                  for inj in self.rank_chaos.injections]
        self._finalise(report, start_wall, kernel)
        return report

    def _finalise(self, report: RunReport, start_wall: float,
                  kernel) -> None:
        report.steps_completed = self.step_count
        report.t_final = self.ranks[0].sim.t
        report.wall_seconds = time.monotonic() - start_wall
        if kernel is not None:
            for kind, count in kernel.degradations.counts.items():
                report.degradations[kind] = (
                    report.degradations.get(kind, 0) + count)


__all__ = ["Fabric", "FabricSnapshot", "RankContext", "MANIFEST_SCHEMA"]
