"""Rank-decomposed execution of a Simulation (PARAMESH across ranks).

FLASH distributes Morton-ordered blocks across MPI ranks; every rank
steps only its own blocks, refreshes off-rank *surrogate* copies before
each guard-cell pass, and joins the timestep reduction.  The
:class:`Fabric` reproduces that execution model inside one process:

* every rank owns a full :class:`~repro.driver.simulation.Simulation`
  (its own ``unk`` storage — a private address space, like a real MPI
  process) restricted to its :class:`~repro.mpisim.comm.\
DomainDecomposition` shard via ``Grid.owned``;
* ranks advance in lockstep on threads; the per-axis ``Grid.halo_hook``
  of every rank meets at a barrier whose action copies each off-rank
  source block from its owner's live grid — real data movement, with the
  bytes charged to :class:`~repro.mpisim.comm.SimComm`;
* the timestep is negotiated with ``allreduce_min`` over the per-rank
  CFL minima, exactly as ``Driver_computeDt`` does.

Bit-identity with the serial spine is by construction, not luck: within
one guard-fill axis pass the writes (guard strips along the fill axis)
never intersect the reads (source interiors plus transverse guards
filled by *earlier* passes), so refreshing surrogates once per axis
while every rank is paused at the same phase reproduces the serial
``fill_guardcells`` bit-for-bit — and therefore the whole run.
``n_ranks=1`` installs no hook and no filter at all: it *is* the serial
spine.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.driver.simulation import Simulation, StepInfo
from repro.mpisim.comm import CommCostModel, DomainDecomposition, SimComm
from repro.perfmodel.workrecord import WorkLog
from repro.util.errors import ConfigurationError


@dataclass
class RankContext:
    """One simulated rank: its simulation, shard, and traffic counters."""

    rank: int
    sim: Simulation
    owned: frozenset
    bytes_sent: int = 0
    bytes_received: int = 0
    #: attached per-rank work log (``Fabric.attach_worklogs``)
    log: WorkLog | None = None

    @property
    def grid(self):
        return self.sim.grid

    @property
    def n_blocks(self) -> int:
        return len(self.owned)


@dataclass(frozen=True)
class _Copy:
    """One surrogate-block refresh: ``bid`` from ``src`` rank to ``dst``."""

    src: int
    bid: object
    dst: int


class Fabric:
    """Lockstep rank-decomposed evolution over one shared-memory process.

    ``builder`` must return a *fresh, deterministic* Simulation each
    call (same initial state every time) — it is invoked once per rank,
    giving each rank its own storage.  Refinement must be disabled
    (``nrefs=0``): remeshing mid-run would move blocks between shards,
    which the decomposition is static over.
    """

    def __init__(self, builder, n_ranks: int, *,
                 ranks_per_node: int = 1,
                 cost: CommCostModel | None = None) -> None:
        if n_ranks < 1:
            raise ConfigurationError("need at least one rank")
        sims = [builder() for _ in range(n_ranks)]
        for sim in sims:
            if sim.refinement is not None and sim.nrefs > 0:
                raise ConfigurationError(
                    "the fabric needs a static decomposition: build the "
                    "simulation with nrefs=0 (refinement would move blocks "
                    "between shards mid-run)")
        self.n_ranks = n_ranks
        self.decomposition = DomainDecomposition.split(sims[0].grid, n_ranks)
        self.comm = SimComm(n_ranks, cost or CommCostModel(),
                            ranks_per_node=min(ranks_per_node, n_ranks))
        self.ranks: list[RankContext] = [
            RankContext(rank=r, sim=sims[r],
                        owned=frozenset(self.decomposition.assignment[r]))
            for r in range(n_ranks)]
        self._validate_no_cross_rank_jumps(sims[0].grid)
        self._plan = self._build_exchange_plan(sims[0].grid)
        self._axis_requests = [None] * n_ranks
        self._barrier: threading.Barrier | None = None
        if n_ranks > 1:
            self._barrier = threading.Barrier(n_ranks, action=self._exchange)
            for ctx in self.ranks:
                ctx.grid.owned = ctx.owned
                ctx.grid.halo_hook = (
                    lambda axis, rank=ctx.rank: self._hook(rank, axis))
        # n_ranks == 1: leave owned/halo_hook untouched — the serial spine

    # --- construction helpers ------------------------------------------------
    def _validate_no_cross_rank_jumps(self, grid) -> None:
        """Flux matching at refinement jumps needs both sides on one rank
        (``_match_fluxes`` resolves children among the swept blocks), so a
        jump crossing shards is a configuration error, not a crash."""
        dd = self.decomposition
        for rank, blocks in dd.assignment.items():
            for bid in blocks:
                for axis in range(grid.tree.ndim):
                    for direction in (-1, 1):
                        kind, info = grid.tree.face_neighbor(bid, axis,
                                                             direction)
                        if kind not in ("finer", "coarser"):
                            continue
                        others = info if isinstance(info, list) else [info]
                        if any(dd.rank_of(nid) != rank for nid in others):
                            raise ConfigurationError(
                                f"refinement jump at {bid} crosses a rank "
                                f"boundary; choose a rank count whose "
                                f"Morton split keeps jumps on one shard")

    def _build_exchange_plan(self, grid) -> list[list[_Copy]]:
        """Per axis: every off-rank source block each rank reads during
        that axis pass, deduplicated, in deterministic (rank, Morton)
        order.  Sources are refreshed as whole padded blocks —
        PARAMESH's surrogate-block strategy — so the transverse guard
        slabs the corner trick reads arrive along with the interior."""
        dd = self.decomposition
        plan: list[list[_Copy]] = []
        for axis in range(grid.tree.ndim):
            copies: list[_Copy] = []
            seen: set[tuple[int, object, int]] = set()
            for rank in range(self.n_ranks):
                for bid in dd.assignment[rank]:
                    for direction in (-1, 1):
                        kind, info = grid.tree.face_neighbor(bid, axis,
                                                             direction)
                        if kind == "boundary":
                            continue
                        others = info if isinstance(info, list) else [info]
                        for nid in others:
                            src = dd.rank_of(nid)
                            if src == rank:
                                continue
                            key = (src, nid, rank)
                            if key not in seen:
                                seen.add(key)
                                copies.append(_Copy(src, nid, rank))
            plan.append(copies)
        return plan

    # --- the halo exchange ---------------------------------------------------
    def _hook(self, rank: int, axis: int) -> None:
        self._axis_requests[rank] = axis
        self._barrier.wait()

    def _exchange(self) -> None:
        """Barrier action: runs in exactly one thread while every rank is
        paused at the same guard-fill phase — cross-grid copies are
        race-free and their order is deterministic."""
        axes = set(self._axis_requests)
        if len(axes) != 1:
            raise ConfigurationError(
                f"ranks diverged: guard fills requested axes "
                f"{sorted(self._axis_requests)} at one barrier (the "
                f"fabric needs identical unit schedules on every rank)")
        axis = axes.pop()
        received = [0] * self.n_ranks
        for copy in self._plan[axis]:
            src = self.ranks[copy.src].grid.block_data(copy.bid)
            dst = self.ranks[copy.dst].grid.block_data(copy.bid)
            dst[...] = src
            nbytes = src.nbytes
            received[copy.dst] += nbytes
            self.ranks[copy.src].bytes_sent += nbytes
            self.ranks[copy.dst].bytes_received += nbytes
        self.comm.halo_exchange(received)

    # --- evolution -----------------------------------------------------------
    def negotiate_dt(self) -> float:
        """``Driver_computeDt``: per-rank CFL minima joined by an
        allreduce.  Exact: min over ranks of per-shard minima is the
        serial minimum, bit-for-bit."""
        dts = np.array([ctx.sim.compute_dt() for ctx in self.ranks])
        return self.comm.allreduce_min(dts)

    def step(self, dt: float | None = None) -> list[StepInfo]:
        """Advance every rank by one (negotiated) step in lockstep."""
        if dt is None:
            dt = self.negotiate_dt()
        if self.n_ranks == 1:
            return [self.ranks[0].sim.step(dt)]

        self._barrier.reset()
        errors: list[BaseException] = []
        infos: list[StepInfo | None] = [None] * self.n_ranks

        def run(ctx: RankContext) -> None:
            try:
                infos[ctx.rank] = ctx.sim.step(dt)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors.append(exc)
                self._barrier.abort()

        threads = [threading.Thread(target=run, args=(ctx,),
                                    name=f"fabric-rank{ctx.rank}")
                   for ctx in self.ranks]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        real = [e for e in errors
                if not isinstance(e, threading.BrokenBarrierError)]
        if real:
            raise real[0]
        if errors:
            raise errors[0]
        return infos  # type: ignore[return-value]

    def evolve(self, *, nend: int) -> list[list[StepInfo]]:
        """Run ``nend`` lockstep steps; returns per-step rank summaries."""
        return [self.step() for _ in range(nend)]

    # --- reductions and instrumentation --------------------------------------
    def total(self, name: str, weight: str | None = "dens") -> float:
        """Domain integral across all shards (an ``allreduce_sum``)."""
        partials = np.array([ctx.grid.total(name, weight)
                             for ctx in self.ranks])
        return self.comm.allreduce_sum(partials)

    def attach_worklogs(self, *,
                        helmholtz_eos: bool = True) -> tuple[WorkLog, ...]:
        """Attach one WorkLog per rank (call before evolving).

        Each log records only its rank's shard — slots, levels, and zone
        counts are per-rank — so the perfmodel replays every rank's own
        memory behaviour, the way per-process PAPI counters would read.
        """
        for ctx in self.ranks:
            ctx.log = WorkLog.attach(ctx.sim, helmholtz_eos=helmholtz_eos)
        return tuple(ctx.log for ctx in self.ranks)


__all__ = ["Fabric", "RankContext"]
