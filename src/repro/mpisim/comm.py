"""Simulated MPI for scaling studies.

FLASH parallelises by distributing Morton-ordered blocks across ranks;
guard-cell fills become halo exchanges and the timestep reduction an
allreduce.  This module provides:

* :class:`DomainDecomposition` — Morton-contiguous block partitioning
  with its surface/volume communication statistics;
* :class:`CommCostModel` — a latency/bandwidth (alpha-beta) cost model
  parameterised for Ookami's InfiniBand HDR100 fat tree;
* :class:`SimComm` — a deterministic single-process "communicator" whose
  collective operations compute real results over per-rank values while
  charging the modelled communication time.

This supports the porting-section narrative ("scaled reasonably well")
without real message passing — the paper's tables are single-node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.grid import Grid
from repro.util.errors import ConfigurationError, FabricTimeout


@dataclass(frozen=True)
class CommCostModel:
    """alpha-beta model for Ookami's HDR100 InfiniBand fat tree.

    The node's injection bandwidth (``node_bandwidth_Bps``, one HDR100
    HCA per A64FX node) is *shared* by every rank resident on the node:
    with R ranks per node the per-rank beta term degrades to
    ``min(bandwidth_Bps, node_bandwidth_Bps / R)``.  Ookami runs up to
    48 ranks per node, so multicore scaling curves that ignored this
    overstated bandwidth by up to 48x.
    """

    latency_s: float = 1.3e-6
    bandwidth_Bps: float = 12.5e9  # HDR100 ~ 100 Gb/s
    #: per-node injection limit shared by resident ranks
    node_bandwidth_Bps: float = 12.5e9
    #: cores (max resident ranks) per node — Ookami's A64FX has 48
    cores_per_node: int = 48

    def effective_bandwidth_Bps(self, ranks_per_node: int = 1) -> float:
        """Per-rank bandwidth once residents share the node's injection."""
        if ranks_per_node < 1:
            raise ConfigurationError("need at least one resident rank")
        return min(self.bandwidth_Bps,
                   self.node_bandwidth_Bps / ranks_per_node)

    def p2p_time(self, nbytes: int, ranks_per_node: int = 1) -> float:
        return (self.latency_s
                + nbytes / self.effective_bandwidth_Bps(ranks_per_node))

    def allreduce_time(self, nbytes: int, n_ranks: int,
                       ranks_per_node: int = 1) -> float:
        """Recursive-doubling estimate: log2(P) rounds."""
        if n_ranks <= 1:
            return 0.0
        rounds = int(np.ceil(np.log2(n_ranks)))
        return rounds * self.p2p_time(nbytes, ranks_per_node)

    def resident_ranks(self, n_ranks: int) -> int:
        """Ranks sharing one node's injection when packing nodes densely."""
        return max(1, min(n_ranks, self.cores_per_node))


@dataclass
class DomainDecomposition:
    """Morton-contiguous partitioning of leaf blocks across ranks."""

    n_ranks: int
    #: rank -> list of BlockIds
    assignment: dict[int, list] = field(default_factory=dict)
    #: BlockId -> rank reverse map (lazily rebuilt if assignment is
    #: constructed by hand); makes rank_of O(1) instead of an
    #: O(ranks * blocks) scan per lookup
    _owner: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def split(cls, grid: Grid, n_ranks: int, *,
              allow_empty: bool = False) -> "DomainDecomposition":
        """Split the grid's Morton-ordered leaves into ``n_ranks`` shards.

        With more ranks than leaves, trailing ranks would get *empty*
        shards — a real FLASH run refuses such a launch, and every
        consumer here (``halo_bytes``, ``scaling_model``) would silently
        iterate idle ranks.  That is therefore an error unless the
        caller opts in with ``allow_empty=True``, in which case the
        empty-shard contract holds: every rank key exists in
        ``assignment``, empty ranks exchange zero halo bytes, and
        ``load_imbalance`` counts them in the mean.
        """
        if n_ranks < 1:
            raise ConfigurationError("need at least one rank")
        leaves = grid.tree.leaves()
        if n_ranks > len(leaves) and not allow_empty:
            raise ConfigurationError(
                f"cannot split {len(leaves)} leaf blocks across {n_ranks} "
                f"ranks without empty shards (pass allow_empty=True to "
                f"accept idle ranks)")
        out = cls(n_ranks=n_ranks)
        per = len(leaves) / n_ranks
        for rank in range(n_ranks):
            lo = int(round(rank * per))
            hi = int(round((rank + 1) * per))
            out.assignment[rank] = leaves[lo:hi]
        out._rebuild_owner()
        return out

    def _rebuild_owner(self) -> None:
        self._owner = {bid: rank
                       for rank, blocks in self.assignment.items()
                       for bid in blocks}

    def rank_of(self, bid) -> int:
        if len(self._owner) != sum(len(b) for b in self.assignment.values()):
            self._rebuild_owner()
        return self._owner[bid]

    def load_imbalance(self) -> float:
        """max/mean block count across ranks (1.0 = perfect)."""
        counts = np.array([len(b) for b in self.assignment.values()], float)
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 1.0

    def halo_bytes(self, grid: Grid, rank: int, bytes_per_face: int) -> int:
        """Bytes rank must receive per guard-cell fill (off-rank faces)."""
        received, _ = self.halo_traffic(grid, bytes_per_face)
        return received[rank]

    def halo_traffic(self, grid: Grid,
                     bytes_per_face: int) -> tuple[list[int], list[int]]:
        """Per-rank (received, sent) bytes for one guard-cell fill.

        Every off-rank source face a rank reads is a receive for that
        rank and a send for the source's owner, so the two lists always
        sum to the same total — the symmetry the fabric's accounting
        tests pin down on refined trees.
        """
        if len(self._owner) != sum(len(b) for b in self.assignment.values()):
            self._rebuild_owner()
        received = [0] * self.n_ranks
        sent = [0] * self.n_ranks
        for rank in range(self.n_ranks):
            for bid in self.assignment[rank]:
                for axis in range(grid.tree.ndim):
                    for direction in (-1, 1):
                        kind, info = grid.tree.face_neighbor(bid, axis,
                                                             direction)
                        if kind == "boundary":
                            continue
                        neighbors = info if isinstance(info, list) else [info]
                        for nid in neighbors:
                            owner = self._owner.get(nid)
                            if owner != rank:
                                received[rank] += bytes_per_face
                                if owner is not None:
                                    sent[owner] += bytes_per_face
        return received, sent


class SimComm:
    """A deterministic simulated communicator.

    Per-rank values live in arrays indexed by rank; collectives combine
    them exactly and charge modelled time to ``elapsed_s``.

    ``timeout_s`` is an optional per-operation deadline in *modelled*
    time: when a collective or p2p operation's charged time would exceed
    it, the operation raises :class:`~repro.util.errors.FabricTimeout`
    instead of completing — the simulated analogue of a hung partner
    that never answers.  Off (``None``) by default so every existing
    bench stays bit-identical; each operation also accepts a per-call
    override.
    """

    def __init__(self, n_ranks: int,
                 cost: CommCostModel | None = None,
                 ranks_per_node: int = 1,
                 timeout_s: float | None = None) -> None:
        if n_ranks < 1:
            raise ConfigurationError("need at least one rank")
        if ranks_per_node < 1:
            raise ConfigurationError("need at least one resident rank")
        if timeout_s is not None and timeout_s <= 0.0:
            raise ConfigurationError("timeout_s must be positive (or None)")
        self.n_ranks = n_ranks
        self.cost = cost or CommCostModel()
        self.ranks_per_node = ranks_per_node
        self.timeout_s = timeout_s
        self.elapsed_s = 0.0
        self.bytes_moved = 0

    def _charge(self, op: str, seconds: float,
                timeout_s: float | None) -> None:
        """Charge one operation's modelled time, enforcing the deadline.

        A timed-out operation charges nothing: the caller recovers from
        the snapshot taken before the step, so partial charges would
        only desynchronise the accounting from the retried step's."""
        deadline = timeout_s if timeout_s is not None else self.timeout_s
        if deadline is not None and seconds > deadline:
            raise FabricTimeout(
                f"{op} would take {seconds:.3e} s of modelled time, over "
                f"the {deadline:.3e} s deadline (hung partner?)")
        self.elapsed_s += seconds

    def allreduce_min(self, values, *, timeout_s: float | None = None) -> float:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n_ranks,):
            raise ConfigurationError("one value per rank expected")
        self._charge("allreduce_min",
                     self.cost.allreduce_time(8, self.n_ranks,
                                              self.ranks_per_node),
                     timeout_s)
        return float(values.min())

    def allreduce_sum(self, values, *, timeout_s: float | None = None) -> float:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n_ranks,):
            raise ConfigurationError("one value per rank expected")
        self._charge("allreduce_sum",
                     self.cost.allreduce_time(8, self.n_ranks,
                                              self.ranks_per_node),
                     timeout_s)
        return float(values.sum())

    def p2p(self, nbytes: int, *, timeout_s: float | None = None) -> float:
        """Charge one point-to-point message; returns the modelled time."""
        if nbytes < 0:
            raise ConfigurationError("message size cannot be negative")
        seconds = self.cost.p2p_time(int(nbytes), self.ranks_per_node)
        self._charge("p2p", seconds, timeout_s)
        self.bytes_moved += int(nbytes)
        return seconds

    def halo_exchange(self, per_rank_bytes, *,
                      timeout_s: float | None = None) -> None:
        """Charge a guard-cell fill's communication time (bulk model)."""
        per_rank_bytes = np.asarray(per_rank_bytes)
        worst = int(per_rank_bytes.max()) if per_rank_bytes.size else 0
        self._charge("halo_exchange",
                     self.cost.p2p_time(worst, self.ranks_per_node),
                     timeout_s)
        self.bytes_moved += int(per_rank_bytes.sum())


def scaling_model(grid: Grid, rank_counts: list[int], *,
                  seconds_per_block_step: float,
                  bytes_per_face: int,
                  steps: int = 1,
                  cost: CommCostModel | None = None,
                  ranks_per_node: int | None = None) -> dict[int, float]:
    """Predicted time per run vs rank count (compute + halo + allreduce).

    Returns {n_ranks: seconds}; the shape gives the porting study's
    "scaled reasonably well" curve with the usual surface/volume tail.

    ``ranks_per_node`` controls node-injection sharing: an explicit int
    pins residency for every rank count; ``"packed"`` semantics are had
    by passing ``None`` with a ``cost`` whose ``cores_per_node`` reflects
    the machine — ``None`` keeps the historical one-rank-per-node curve.
    """
    cost = cost or CommCostModel()
    out = {}
    for p in rank_counts:
        rpn = 1 if ranks_per_node is None else min(ranks_per_node, p)
        dd = DomainDecomposition.split(grid, p)
        per_rank_blocks = max(len(b) for b in dd.assignment.values())
        compute = per_rank_blocks * seconds_per_block_step
        halo = max(
            cost.p2p_time(dd.halo_bytes(grid, r, bytes_per_face), rpn)
            for r in range(p)
        )
        reduce_t = cost.allreduce_time(8, p, rpn)
        out[p] = steps * (compute + halo + reduce_t)
    return out


__all__ = ["SimComm", "DomainDecomposition", "CommCostModel", "scaling_model"]
