"""Simulated MPI: rank decomposition and communication cost modelling."""

from repro.mpisim.comm import SimComm, DomainDecomposition, CommCostModel

__all__ = ["SimComm", "DomainDecomposition", "CommCostModel"]
