"""Simulated MPI: rank decomposition, halo-exchange runs, cost modelling."""

from repro.mpisim.comm import SimComm, DomainDecomposition, CommCostModel
from repro.mpisim.fabric import Fabric, FabricSnapshot, RankContext

__all__ = ["SimComm", "DomainDecomposition", "CommCostModel",
           "Fabric", "FabricSnapshot", "RankContext"]
