"""Page-granular memory access traces.

A :class:`PageTrace` is the interface between the application side (which
knows *which bytes* it touches, via :mod:`repro.perfmodel.patterns` and the
VMM's ``translate``) and the TLB simulator (which only cares about the
sequence of page identities).

Traces are stored as parallel NumPy arrays of page base addresses and page
sizes, in access order.  Because a TLB hit/miss stream is invariant under
removal of *consecutive duplicate* pages (the repeat is always a hit), the
canonical form is consecutive-deduplicated, with a ``weight`` recording how
many raw accesses each kept entry stands for.

Traces may be backed by read-only ``np.memmap`` views of a persistent
:class:`~repro.perfmodel.tracestore.TraceStore` artifact; construction
must therefore never copy an array that is already int64 — a defensive
copy would silently turn a zero-copy mapped load back into a private
resident one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _as_int64(array) -> np.ndarray:
    """Coerce to int64 without copying when already int64.

    Preserves the object identity of int64 ndarrays (including read-only
    ``np.memmap`` views) so mmap-backed traces stay mapped; anything else
    is converted (a copy, exactly as ``np.asarray(..., dtype=int64)``
    would make one).
    """
    if isinstance(array, np.ndarray) and array.dtype == np.int64:
        return array
    return np.asarray(array, dtype=np.int64)


@dataclass
class PageTrace:
    """An ordered sequence of page accesses.

    Attributes
    ----------
    page:
        Page base virtual addresses (int64), one per access (after
        consecutive deduplication).
    size:
        Page size in bytes for each access (int64).
    weight:
        Raw accesses represented by each entry (>= 1).
    """

    page: np.ndarray
    size: np.ndarray
    weight: np.ndarray

    def __post_init__(self) -> None:
        self.page = _as_int64(self.page)
        self.size = _as_int64(self.size)
        self.weight = _as_int64(self.weight)
        if not (self.page.shape == self.size.shape == self.weight.shape):
            raise ValueError("trace arrays must have identical shapes")

    @classmethod
    def empty(cls) -> "PageTrace":
        z = np.empty(0, dtype=np.int64)
        return cls(z, z.copy(), z.copy())

    @classmethod
    def from_accesses(cls, page: np.ndarray, size: np.ndarray) -> "PageTrace":
        """Build a canonical trace from raw per-access page arrays."""
        page = np.asarray(page, dtype=np.int64)
        size = np.asarray(size, dtype=np.int64)
        if page.size == 0:
            return cls.empty()
        keep = np.empty(page.shape, dtype=bool)
        keep[0] = True
        np.not_equal(page[1:], page[:-1], out=keep[1:])
        idx = np.flatnonzero(keep)
        weights = np.diff(np.append(idx, page.size))
        return cls(page[idx], size[idx], weights)

    @property
    def n_events(self) -> int:
        """Deduplicated trace length (what the TLB simulator iterates)."""
        return int(self.page.size)

    @property
    def n_accesses(self) -> int:
        """Raw access count, including consecutive repeats."""
        return int(self.weight.sum()) if self.weight.size else 0

    @property
    def nbytes(self) -> int:
        """Payload bytes across the three arrays (IPC/mmap accounting)."""
        return int(self.page.nbytes + self.size.nbytes + self.weight.nbytes)

    def concat(self, *others: "PageTrace") -> "PageTrace":
        """Concatenate traces in order, re-deduplicating at the seams."""
        parts = [self, *others]
        page = np.concatenate([p.page for p in parts])
        size = np.concatenate([p.size for p in parts])
        weight = np.concatenate([p.weight for p in parts])
        if page.size == 0:
            return PageTrace.empty()
        keep = np.empty(page.shape, dtype=bool)
        keep[0] = True
        np.not_equal(page[1:], page[:-1], out=keep[1:])
        idx = np.flatnonzero(keep)
        # sum the weights of merged runs
        grp = np.cumsum(keep) - 1
        merged_w = np.bincount(grp, weights=weight).astype(np.int64)
        return PageTrace(page[idx], size[idx], merged_w)

    def unique_pages(self) -> int:
        """Number of distinct pages the trace touches (its footprint)."""
        return int(np.unique(self.page).size)

    def footprint_bytes(self) -> int:
        """Bytes of address space covered by the touched pages."""
        if self.page.size == 0:
            return 0
        _, first = np.unique(self.page, return_index=True)
        return int(self.size[first].sum())

    def repeated(self, times: int) -> "PageTrace":
        """The trace repeated back-to-back ``times`` times (steady state)."""
        if times < 1:
            raise ValueError("times must be >= 1")
        if times == 1:
            return self
        return self.concat(*([self] * (times - 1)))


def interleave(traces: list[PageTrace], chunk: int = 1) -> PageTrace:
    """Round-robin interleave several traces, ``chunk`` events at a time.

    Models concurrent streams (e.g. reading `unk` while gathering from an
    EOS table): the TLB sees their accesses interleaved, which is what
    creates capacity pressure.
    """
    live = [t for t in traces if t.n_events]
    if not live:
        return PageTrace.empty()
    pages, sizes, weights = [], [], []
    cursors = [0] * len(live)
    remaining = sum(t.n_events for t in live)
    while remaining > 0:
        for i, t in enumerate(live):
            lo = cursors[i]
            if lo >= t.n_events:
                continue
            hi = min(lo + chunk, t.n_events)
            pages.append(t.page[lo:hi])
            sizes.append(t.size[lo:hi])
            weights.append(t.weight[lo:hi])
            cursors[i] = hi
            remaining -= hi - lo
    return PageTrace(
        np.concatenate(pages), np.concatenate(sizes), np.concatenate(weights)
    ).concat()  # canonicalise seams


__all__ = ["PageTrace", "interleave"]
