"""Machine descriptions: the A64FX node of Ookami, and a Xeon for contrast.

Numbers follow the paper's section I-A and the published A64FX
microarchitecture manual:

* 4 core-memory groups (CMGs) x 12 cores at 1.8 GHz;
* 64 KiB L1D per core, 8 MiB L2 shared per CMG;
* SVE-512 (8 doubles per vector);
* 32 GB HBM2 (256 GB/s per CMG, ~1 TB/s per node);
* L1 DTLB: 16 entries, fully associative, any page size;
* L2 TLB: 1024 entries, 4-way set associative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util import GiB, KiB, MiB


@dataclass(frozen=True)
class TLBLevelSpec:
    """Geometry of one TLB level."""

    entries: int
    assoc: int  # entries per set; assoc == entries -> fully associative
    #: extra latency (cycles) an access pays when it misses this level but
    #: hits the next one
    miss_penalty: float

    @property
    def n_sets(self) -> int:
        return self.entries // self.assoc

    def __post_init__(self) -> None:
        if self.entries % self.assoc != 0:
            raise ValueError("entries must be a multiple of associativity")


@dataclass(frozen=True)
class TLBGeometry:
    """A two-level data TLB plus the page-walk cost after a full miss."""

    l1: TLBLevelSpec
    l2: TLBLevelSpec
    #: cycles for a full hardware page-table walk (all levels miss)
    walk_cycles: float
    #: fraction of miss/walk latency NOT hidden by out-of-order overlap.
    #: The paper's own deltas imply only ~5-10 cycles of *exposed* cost per
    #: reported miss (see DESIGN.md section 6).
    exposed_fraction: float = 0.35


@dataclass(frozen=True)
class MachineSpec:
    """A compute node as seen by the performance model."""

    name: str
    freq_hz: float
    cores_per_cmg: int
    n_cmgs: int
    l1d_bytes: int
    l2_bytes: int
    #: SIMD width in double-precision lanes (SVE-512 -> 8)
    simd_lanes: int
    #: sustained per-core DRAM/HBM bandwidth [bytes/s]
    stream_bw_per_core: float
    tlb: TLBGeometry
    #: scalar double-precision ops retired per cycle per core (issue model)
    scalar_ipc: float = 1.0
    #: SIMD vector instructions retired per cycle per core
    simd_ipc: float = 2.0
    #: fraction of raw memory-stall time the core cannot hide behind
    #: execution (out-of-order depth + prefetchers); the A64FX's in-order-
    #: leaning core exposes far more than a Haswell
    mem_exposed: float = 0.55

    @property
    def n_cores(self) -> int:
        return self.cores_per_cmg * self.n_cmgs


#: Ookami's A64FX 700-series processor.
A64FX = MachineSpec(
    name="A64FX",
    freq_hz=1.8e9,
    cores_per_cmg=12,
    n_cmgs=4,
    l1d_bytes=64 * KiB,
    l2_bytes=8 * MiB,
    simd_lanes=8,
    # 256 GB/s per CMG shared by 12 cores -> ~21 GB/s/core sustained
    stream_bw_per_core=21e9,
    tlb=TLBGeometry(
        l1=TLBLevelSpec(entries=16, assoc=16, miss_penalty=7.0),
        l2=TLBLevelSpec(entries=1024, assoc=4, miss_penalty=0.0),
        walk_cycles=90.0,
    ),
    scalar_ipc=1.1,
    simd_ipc=2.0,
)

#: The Intel Xeon E5-2683v3 node the paper compares against in section II.
XEON_E5_2683V3 = MachineSpec(
    name="Xeon E5-2683v3",
    freq_hz=2.0e9,  # base clock; turbo folded into scalar_ipc
    cores_per_cmg=14,
    n_cmgs=2,
    l1d_bytes=32 * KiB,
    l2_bytes=256 * KiB,
    simd_lanes=4,  # AVX2
    stream_bw_per_core=8e9,
    tlb=TLBGeometry(
        l1=TLBLevelSpec(entries=64, assoc=4, miss_penalty=7.0),
        l2=TLBLevelSpec(entries=1024, assoc=8, miss_penalty=0.0),
        walk_cycles=40.0,
    ),
    # Haswell's wide OoO core retires branchy scalar Fortran far faster per
    # cycle than the A64FX core — the main term in the paper's observed 3x —
    # and hides most memory latency behind execution.
    scalar_ipc=3.1,
    simd_ipc=2.0,
    mem_exposed=0.12,
)

__all__ = ["MachineSpec", "TLBGeometry", "TLBLevelSpec", "A64FX", "XEON_E5_2683V3"]
