"""A64FX hardware model.

Provides the machine description for an Ookami node
(:mod:`repro.hw.a64fx`), an exact set-associative LRU TLB simulator
(:mod:`repro.hw.tlb`) fed by page-granular access traces
(:mod:`repro.hw.trace`), a cache/bandwidth accounting model
(:mod:`repro.hw.cache`), and the cycle-accounting CPU model
(:mod:`repro.hw.cpu`) calibrated against the paper's reported scales
(:mod:`repro.hw.calibration`).
"""

from repro.hw.a64fx import A64FX, MachineSpec, TLBGeometry, XEON_E5_2683V3
from repro.hw.trace import PageTrace
from repro.hw.tlb import TLBSimulator, TLBStats
from repro.hw.cache import CacheModel
from repro.hw.cpu import CycleModel, CycleBreakdown, WorkCounts

__all__ = [
    "A64FX",
    "XEON_E5_2683V3",
    "MachineSpec",
    "TLBGeometry",
    "PageTrace",
    "TLBSimulator",
    "TLBStats",
    "CacheModel",
    "CycleModel",
    "CycleBreakdown",
    "WorkCounts",
]
