"""Cache-aware DRAM traffic accounting.

The cycle model needs *DRAM bytes moved*, not loads issued.  Rather than
simulate the caches line-by-line (the TLB is the paper's subject, not the
caches), this module provides an analytic model good enough for bandwidth
accounting: data streams with working sets that fit in cache pay cold
traffic once; larger working sets pay full traffic every pass.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheModel:
    """A single effective cache level (we use the A64FX per-CMG L2)."""

    cache_bytes: int
    line_bytes: int = 256  # A64FX cache line

    def dram_traffic(
        self,
        bytes_touched: int,
        working_set: int,
        passes: int = 1,
    ) -> int:
        """DRAM bytes for ``passes`` sweeps over ``working_set`` bytes,
        touching ``bytes_touched`` per pass.

        * working set fits in cache -> cold traffic only (first pass);
        * working set >> cache -> every pass pays full traffic;
        * in between -> the cached fraction is spared on repeat passes.
        """
        if bytes_touched < 0 or working_set < 0 or passes < 1:
            raise ValueError("negative traffic makes no sense")
        if working_set == 0 or bytes_touched == 0:
            return 0
        hit_fraction = min(self.cache_bytes / working_set, 1.0)
        cold = bytes_touched
        repeat = int(bytes_touched * (1.0 - hit_fraction)) * (passes - 1)
        return cold + repeat

    def gather_traffic(self, n_gathers: int, element_bytes: int,
                       table_bytes: int) -> int:
        """DRAM bytes for data-dependent gathers into a table.

        Each gather drags a whole cache line; once the hot part of the table
        is resident, repeat traffic falls with the cache/table ratio.
        """
        if n_gathers == 0:
            return 0
        hit_fraction = min(self.cache_bytes / max(table_bytes, 1), 1.0)
        line_pulls = n_gathers * (1.0 - hit_fraction) + min(
            table_bytes / self.line_bytes, n_gathers
        ) * hit_fraction
        return int(line_pulls * self.line_bytes)


__all__ = ["CacheModel"]
