"""Cycle accounting: work counts + TLB misses -> cycles and derived measures.

The model (DESIGN.md section 6) is deliberately simple and fully inspectable:

``cycles = issue + exposed_mem * mem_stall + exposed_tlb_walks``

* *issue* cycles come from scalar and SIMD instruction counts divided by
  the machine's sustainable IPC for each class;
* *memory* stall cycles come from DRAM bytes over the per-core stream
  bandwidth, partially overlapped with execution;
* *TLB* cycles come from the simulated miss counts times the exposed
  walk/refill penalties.

The paper's own data fixes the interesting constant: between the
with/without huge-page runs of Table I, 1.56e9 fewer DTLB misses bought
8e9 cycles, i.e. ~5 exposed cycles per miss; Table II implies ~9.  The
defaults in :mod:`repro.hw.a64fx` land in that range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.a64fx import MachineSpec
from repro.hw.tlb import TLBStats


@dataclass
class WorkCounts:
    """Instruction/traffic totals for a region of execution."""

    scalar_ops: float = 0.0
    #: SIMD (SVE) *instructions* — already divided by vector lanes
    simd_ops: float = 0.0
    dram_bytes: float = 0.0

    def __add__(self, other: "WorkCounts") -> "WorkCounts":
        return WorkCounts(
            self.scalar_ops + other.scalar_ops,
            self.simd_ops + other.simd_ops,
            self.dram_bytes + other.dram_bytes,
        )

    def scaled(self, factor: float) -> "WorkCounts":
        return WorkCounts(
            self.scalar_ops * factor,
            self.simd_ops * factor,
            self.dram_bytes * factor,
        )


@dataclass
class CycleBreakdown:
    """Where the cycles of a region went."""

    issue_cycles: float
    mem_cycles: float
    tlb_cycles: float

    @property
    def total(self) -> float:
        return self.issue_cycles + self.mem_cycles + self.tlb_cycles

    def __add__(self, other: "CycleBreakdown") -> "CycleBreakdown":
        return CycleBreakdown(
            self.issue_cycles + other.issue_cycles,
            self.mem_cycles + other.mem_cycles,
            self.tlb_cycles + other.tlb_cycles,
        )


@dataclass
class CycleModel:
    """Turns work counts and TLB stats into cycles and PAPI-style measures."""

    machine: MachineSpec
    #: fraction of raw memory stall not hidden behind execution
    #: (None: use the machine's own figure)
    mem_exposed: float | None = None

    def cycles(self, work: WorkCounts, tlb: TLBStats | None = None) -> CycleBreakdown:
        m = self.machine
        exposed = self.mem_exposed if self.mem_exposed is not None else m.mem_exposed
        issue = work.scalar_ops / m.scalar_ipc + work.simd_ops / m.simd_ipc
        mem_raw = work.dram_bytes / m.stream_bw_per_core * m.freq_hz
        tlb_cycles = tlb.exposed_walk_cycles(m.tlb) if tlb is not None else 0.0
        return CycleBreakdown(
            issue_cycles=issue,
            mem_cycles=exposed * mem_raw,
            tlb_cycles=tlb_cycles,
        )

    def seconds(self, breakdown: CycleBreakdown) -> float:
        return breakdown.total / self.machine.freq_hz

    def measures(self, work: WorkCounts, tlb: TLBStats) -> dict[str, float]:
        """The paper's five PAPI measures for an instrumented region."""
        breakdown = self.cycles(work, tlb)
        seconds = self.seconds(breakdown)
        return {
            "hardware_cycles": breakdown.total,
            "time_s": seconds,
            "sve_per_cycle": work.simd_ops / breakdown.total if breakdown.total else 0.0,
            "mem_gbytes_per_s": work.dram_bytes / seconds / 1e9 if seconds else 0.0,
            "dtlb_misses_per_s": tlb.l1_misses / seconds if seconds else 0.0,
        }


__all__ = ["WorkCounts", "CycleBreakdown", "CycleModel"]
