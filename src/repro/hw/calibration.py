"""Calibration constants anchoring the performance model to FLASH's scale.

Two kinds of constants live here:

* **footprints** of the real code's data structures that our compact
  Python implementations deliberately shrink — chiefly the Helmholtz EOS
  table: FLASH's ``helm_table.dat`` expands to ~30 MiB of interpolation
  coefficient arrays in memory, while our bicubic-spline table is ~0.6 MiB.
  The *performance* model uses the FLASH footprint, because the paper
  measured FLASH (DESIGN.md section 6);
* **work densities** (flops/zone, bytes/zone, gathers/zone) for each unit,
  set from operation counts of the implemented kernels and tuned within
  plausible ranges so the without-huge-pages "EOS" run lands near the
  paper's reported scale (~2000 cycles/zone/call, ~4 GB/s, ~2e7 DTLB
  miss/s).

Everything here is data, not mechanism: the mechanisms live in
:mod:`repro.hw` and :mod:`repro.perfmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import KiB, MiB


@dataclass(frozen=True)
class UnitWorkModel:
    """Per-zone work densities of one unit (per invocation)."""

    #: double-precision operations per zone (scalar-equivalent)
    flops_per_zone: float
    #: unk bytes read+written per zone
    unk_bytes_per_zone: float
    #: scratch-array bytes touched per zone
    scratch_bytes_per_zone: float
    #: data-dependent table gathers per zone (0 for non-table units)
    gathers_per_zone: float = 0.0


#: the hydro solver, per sweep.  FLASH runs PPM with characteristic
#: tracing and contact steepening — far heavier than our MUSCL kernels —
#: so the flop density models PPM (~700 ops/zone/sweep).  The byte count
#: is *effective DRAM traffic* including the working-set spills a 24^3
#: padded panel suffers in an 8 MiB L2 (calibrated to the paper's
#: ~10 GB/s at ~1000 cycles/zone/sweep).
HYDRO_SWEEP = UnitWorkModel(
    flops_per_zone=700.0,
    unk_bytes_per_zone=5600.0,
    scratch_bytes_per_zone=26 * 8 * 2.0,
)

#: one mesh-wide Helmholtz EOS call (dens_ei): per *Newton iteration* costs
#: are folded in via the recorded iteration counts; this is the per-zone
#: base cost (the Eos_wrapped data marshalling and conversions)
EOS_CALL = UnitWorkModel(
    flops_per_zone=500.0,
    unk_bytes_per_zone=1200.0,
    scratch_bytes_per_zone=6 * 8 * 2.0,
    gathers_per_zone=2.0,
)
#: per-zone per-Newton-iteration flops: one biquintic Helmholtz
#: interpolation of the 9 tabulated quantities with derivatives
EOS_FLOPS_PER_ITERATION = 350.0
#: per-zone per-iteration effective DRAM bytes (coefficient line pulls)
EOS_BYTES_PER_ITERATION = 800.0
#: per-zone per-iteration *page-level* table touches: the biquintic stencil
#: reads rows of ~9 separate coefficient arrays — each its own page region
EOS_GATHERS_PER_ITERATION = 8.0

#: the gamma-law EOS call is pure arithmetic
EOS_GAMMA_CALL = UnitWorkModel(
    flops_per_zone=12.0,
    unk_bytes_per_zone=6 * 8 * 2.0,
    scratch_bytes_per_zone=0.0,
)

#: guard-cell fill, per *guard* zone moved
GUARDCELL = UnitWorkModel(
    flops_per_zone=6.0,
    unk_bytes_per_zone=2 * 8.0,  # copy in + out, per variable handled upstream
    scratch_bytes_per_zone=0.0,
)

#: ADR flame step: Laplacian + reaction + speed lookup
FLAME_STEP = UnitWorkModel(
    flops_per_zone=60.0,
    unk_bytes_per_zone=5 * 8 * 2.0,
    scratch_bytes_per_zone=2 * 8.0,
    gathers_per_zone=1.0,
)

#: monopole gravity kick
GRAVITY_STEP = UnitWorkModel(
    flops_per_zone=30.0,
    unk_bytes_per_zone=4 * 8 * 2.0,
    scratch_bytes_per_zone=8.0,
)

#: FLASH's Helmholtz table in memory (coefficients + derivatives);
#: our spline table is far smaller, but the paper profiled FLASH
FLASH_HELM_TABLE_BYTES = 30 * MiB
#: fraction of the table hot per block (states within a block cluster),
#: used for cache-traffic accounting of the gathers
TABLE_HOT_FRACTION = 0.1
#: the tabulated flame speed data
FLASH_FLAME_TABLE_BYTES = 2 * MiB
#: per-sweep scratch: FLASH's hy_ppm keeps ~two dozen 1-d work arrays;
#: they are distinct allocations, hence distinct (base) pages
N_SCRATCH_ARRAYS = 24
SCRATCH_ARRAY_BYTES = 192 * KiB

#: fraction of whole-run time outside the modelled units (I/O, MPI waits,
#: driver overhead) — folded into the FLASH timer only
DRIVER_OVERHEAD_FRACTION = 0.12

__all__ = [
    "UnitWorkModel",
    "HYDRO_SWEEP",
    "EOS_CALL",
    "EOS_FLOPS_PER_ITERATION",
    "EOS_BYTES_PER_ITERATION",
    "EOS_GATHERS_PER_ITERATION",
    "TABLE_HOT_FRACTION",
    "EOS_GAMMA_CALL",
    "GUARDCELL",
    "FLAME_STEP",
    "GRAVITY_STEP",
    "FLASH_HELM_TABLE_BYTES",
    "FLASH_FLAME_TABLE_BYTES",
    "N_SCRATCH_ARRAYS",
    "SCRATCH_ARRAY_BYTES",
    "DRIVER_OVERHEAD_FRACTION",
]
