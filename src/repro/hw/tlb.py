"""Exact set-associative LRU TLB simulation.

The simulator replays a :class:`~repro.hw.trace.PageTrace` through a
two-level TLB (geometry from :class:`~repro.hw.a64fx.TLBGeometry`) and
counts per-level misses.  Entries are keyed by page base address, so 64 KiB
base pages, 2 MiB hugetlbfs pages, and 512 MiB THP pages share capacity the
way they do in the A64FX's unified DTLB: one entry per page regardless of
size — which is precisely why huge pages slash miss counts.

Replacement is true LRU per set.  Consecutive duplicate accesses are
pre-collapsed by :class:`PageTrace` (always hits under LRU), so the Python
event loop only pays for accesses that can change TLB state.

``PAPI_TLB_DM`` on the A64FX (and in the paper's tables) counts **L1 DTLB
misses**; the full page-walk cost applies only when the L2 TLB also misses.

Two engines implement the same model:

* :class:`TLBSimulator` — the scalar reference oracle: an explicit
  per-access event loop over ``OrderedDict`` LRU sets.  Trivially
  auditable against the hardware description, and the ground truth every
  fast-path result is property-tested against.
* :func:`simulate_two_level` / :func:`lru_miss_mask` — the vectorized
  batch kernel.  LRU is a stack algorithm, so an access hits an
  ``assoc``-way set iff fewer than ``assoc`` distinct pages of that set
  were touched since the previous access to the same page (its *stack
  distance*).  The kernel computes every stack distance offline from the
  previous-occurrence array alone::

      distance[i] = (i - prev[i] - 1) - #{r <= i : prev[r] > prev[i]}

  (each position in ``(prev[i], i)`` whose page recurs by time ``i``
  pairs off with exactly one later position ``r`` whose ``prev[r]``
  lands inside the interval, so subtracting those pairs from the
  interval length leaves the distinct-page count).  The second term is a
  per-element *inversion count* of ``prev``, which
  :func:`_inversion_counts` evaluates with one global argsort plus a
  top-down radix descent of cumulative sums — no per-access Python, no
  per-level sorting.  Multi-set levels with enough parallelism instead
  replay all sets simultaneously, one vectorized LRU round per column
  (:func:`_lru_rounds`).  The L2 level replays only the L1-miss
  substream, exactly as the scalar loop does.  Both engines produce
  bit-identical miss counts (see ``tests/perfmodel/test_fast_path.py``).

Because a stack distance depends only on the access stream and the set
mapping — never on the way count — :func:`run_steady_segments_multi`
replays one trace bundle against *many* geometries in a single pass:
geometries whose L1s share a set count share one distance computation
and differ only in the ``distance >= assoc`` threshold.  Geometry
sweeps (the DTLB sensitivity study) pay for one replay, not one per
point.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.hw.a64fx import TLBGeometry
from repro.hw.trace import PageTrace


@dataclass
class TLBStats:
    """Miss statistics from one or more simulated traces."""

    accesses: int = 0
    l1_misses: int = 0
    l2_misses: int = 0

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.accesses if self.accesses else 0.0

    def __add__(self, other: "TLBStats") -> "TLBStats":
        return TLBStats(
            self.accesses + other.accesses,
            self.l1_misses + other.l1_misses,
            self.l2_misses + other.l2_misses,
        )

    def scaled(self, factor: float) -> "TLBStats":
        """Extrapolate steady-state counts (e.g. sampled steps -> full run)."""
        return TLBStats(
            int(round(self.accesses * factor)),
            int(round(self.l1_misses * factor)),
            int(round(self.l2_misses * factor)),
        )

    def exposed_walk_cycles(self, geometry: TLBGeometry) -> float:
        """Exposed (non-overlapped) cycles attributable to TLB misses."""
        raw = (
            self.l1_misses * geometry.l1.miss_penalty
            + self.l2_misses * geometry.walk_cycles
        )
        return raw * geometry.exposed_fraction


class _LRUSetArray:
    """One TLB level: ``n_sets`` LRU sets of ``assoc`` entries each."""

    __slots__ = ("assoc", "n_sets", "sets")

    def __init__(self, entries: int, assoc: int) -> None:
        self.assoc = assoc
        self.n_sets = entries // assoc
        self.sets: list[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]

    def reset(self) -> None:
        for s in self.sets:
            s.clear()


class TLBSimulator:
    """Replays page traces; retains TLB state between calls (warm TLB)."""

    def __init__(self, geometry: TLBGeometry) -> None:
        self.geometry = geometry
        self._l1 = _LRUSetArray(geometry.l1.entries, geometry.l1.assoc)
        self._l2 = _LRUSetArray(geometry.l2.entries, geometry.l2.assoc)
        self.stats = TLBStats()

    def reset(self) -> None:
        """Flush the TLB and zero the statistics (context switch / new run)."""
        self._l1.reset()
        self._l2.reset()
        self.stats = TLBStats()

    def run(self, trace: PageTrace) -> TLBStats:
        """Replay ``trace``; returns stats for *this call* (also accumulated
        on ``self.stats``)."""
        local = TLBStats()
        n = trace.n_events
        if n == 0:
            return local
        pages = trace.page
        # set index uses VPN low bits, as hardware does
        vpn = pages // trace.size
        l1_sets, l1_assoc = self._l1.sets, self._l1.assoc
        l2_sets, l2_assoc = self._l2.sets, self._l2.assoc
        l1_idx = (
            np.zeros(n, dtype=np.intp)
            if self._l1.n_sets == 1
            else (vpn % self._l1.n_sets).astype(np.intp)
        )
        l2_idx = (
            np.zeros(n, dtype=np.intp)
            if self._l2.n_sets == 1
            else (vpn % self._l2.n_sets).astype(np.intp)
        )
        l1_misses = 0
        l2_misses = 0
        page_list = pages.tolist()
        l1_idx_list = l1_idx.tolist()
        l2_idx_list = l2_idx.tolist()
        for page, i1, i2 in zip(page_list, l1_idx_list, l2_idx_list):
            s1 = l1_sets[i1]
            if page in s1:
                s1.move_to_end(page)
                continue
            l1_misses += 1
            s2 = l2_sets[i2]
            if page in s2:
                s2.move_to_end(page)
            else:
                l2_misses += 1
                if len(s2) >= l2_assoc:
                    s2.popitem(last=False)
                s2[page] = True
            if len(s1) >= l1_assoc:
                s1.popitem(last=False)
            s1[page] = True
        local.accesses = trace.n_accesses
        local.l1_misses = l1_misses
        local.l2_misses = l2_misses
        self.stats = self.stats + local
        return local

    def run_steady_state(self, step_trace: PageTrace, warmup: int = 1) -> TLBStats:
        """Replay ``step_trace`` ``warmup + 1`` times and return stats for the
        final (steady-state) repetition only.

        Simulation time steps repeat essentially the same access pattern, so
        per-step miss counts converge after one warmup pass; callers
        extrapolate with :meth:`TLBStats.scaled`.
        """
        for _ in range(warmup):
            self.run(step_trace)
        return self.run(step_trace)


# --- vectorized batch engine ---------------------------------------------------------


#: segments whose distinct-page working set fits this many matrix rows go
#: through the per-page occurrence-count strategy
_MATRIX_MAX_PAGES = 64
#: chunk matrix segments so positions fit int16 counters (mod-2^16 counts
#: detect any in-interval change exactly when intervals are shorter)
_MATRIX_CHUNK = 65535
#: use the set-parallel rounds replay when the longest per-set substream
#: is at least this many times shorter than the whole stream
_ROUNDS_PARALLELISM = 24


def _inversion_counts(a: np.ndarray) -> np.ndarray:
    """Per-element inversion counts: ``out[i] = #{r < i : a[r] > a[i]}``.

    Vectorized top-down mergesort.  One global stable argsort orders the
    (padded) array; a radix descent then re-splits each sorted parent
    block into its two child halves using only cumulative sums, gathers,
    and scatters.  While an element moves back into its right half it
    simultaneously learns how many left-half elements exceed it, and
    summing that over all levels counts every inverted pair exactly once
    (at the level where the pair's positions part ways).  No per-level
    sort, no searchsorted: O(log n) passes of O(n) cheap vector ops.
    """
    n = int(a.size)
    out = np.zeros(n, dtype=np.int64)
    if n <= 1:
        return out
    levels = (n - 1).bit_length()
    size = 1 << levels
    dtype = np.int32 if size < 2**31 else np.int64
    padded = np.empty(size, dtype=dtype)
    padded[:n] = a
    # pads occupy the top index suffix: they can never sit in the *left*
    # half of a block whose right half holds a real element, so the
    # sentinel value is never counted against a real query
    padded[n:] = np.iinfo(dtype).max
    order = np.argsort(padded, kind="stable").astype(dtype)
    slots = np.arange(size, dtype=dtype)
    # pad contributions land in out_full[n:] and are simply discarded
    out_full = np.zeros(size, dtype=np.int64)
    spare = np.empty(size, dtype=dtype)
    # stop the descent at small blocks and count their remaining (intra-
    # block) inversions with one direct broadcast pass: fewer sequential
    # levels, and the tail blocks fit comfortably in cache
    tail = min(levels, 5)
    for level in range(levels, tail, -1):
        half = dtype(1 << (level - 1))
        mask = dtype((1 << level) - 1)
        right = (order & half) != 0
        ex = np.cumsum(right, dtype=dtype)
        ex -= right  # exclusive prefix of right-half membership
        block_start = slots & ~mask
        pref_right = ex - ex[block_start]
        sel = np.flatnonzero(right)
        # count of left-half elements greater than a right-half element ==
        # half minus its tie-stable rank among left elements, where that
        # rank is (position within block) - (right elements before it)
        out_full[order[sel]] += half - (sel & np.int64(mask)) + pref_right[sel]
        new_slot = np.where(right, block_start + half + pref_right,
                            slots - pref_right)
        spare[new_slot] = order
        order, spare = spare, order
    # intra-block finish: order is value-sorted within blocks of 2^tail;
    # an inversion (earlier index, larger value) inside a block is a pair
    # with larger value AND smaller original index.  Pads (value sentinel,
    # index >= n) never have a smaller index than a real element.
    blk = 1 << tail
    vals = padded[order].reshape(-1, blk)
    idxs = order.reshape(-1, blk)
    pair = (vals[:, :, None] > vals[:, None, :]) \
        & (idxs[:, :, None] < idxs[:, None, :])
    out_full[order] += pair.sum(axis=1).ravel()
    out[:] = out_full[:n]
    return out


def _matrix_miss(row: np.ndarray, prev: np.ndarray, need: np.ndarray,
                 seg_lens: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Stack distances for segments with small page working sets.

    ``row`` maps each access to a dense per-segment page id (< matrix row
    budget), ``prev`` to its previous same-entry position (bucket-local,
    ``-1`` when cold), and ``need`` marks the accesses whose distance must
    actually be evaluated.  Per matrix row the cumulative occurrence
    count ``C[q, t]`` makes "page q touched inside ``(prev[i], i)``" a
    single inequality ``C[q, i-1] != C[q, prev[i]]``, so each query's
    distinct-page count is one small column reduction.  Segments are
    chunked so positions fit int16 counters: counts wrap mod 2^16, but a
    within-interval change is still detected exactly because no page can
    recur 65536 times inside an interval shorter than that.

    Returns ``(query_positions, query_distance)`` in bucket-local
    positions — verdicts are thresholds (``distance >= assoc``) at the
    call site, so one evaluation serves any number of associativities.
    """
    bounds = np.concatenate(([0], np.cumsum(seg_lens)))
    chunks = []
    lo_seg = 0
    acc = 0
    for k, ln in enumerate(seg_lens.tolist()):
        if acc and acc + ln > _MATRIX_CHUNK:
            chunks.append((int(bounds[lo_seg]), int(bounds[k])))
            lo_seg, acc = k, 0
        acc += ln
    chunks.append((int(bounds[lo_seg]), int(bounds[-1])))
    qpos_all: list[np.ndarray] = []
    qdist_all: list[np.ndarray] = []
    for lo, hi in chunks:
        q = np.flatnonzero(need[lo:hi])
        if q.size == 0:
            continue
        length = hi - lo
        rows = int(row[lo:hi].max()) + 1
        dtype = np.int16 if length <= _MATRIX_CHUNK else np.int32
        counts = np.zeros((rows, length), dtype=dtype)
        counts[row[lo:hi], np.arange(length)] = 1
        np.cumsum(counts, axis=1, out=counts)
        cols_i = counts[:, q - 1]
        cols_j = counts[:, prev[lo + q] - lo]
        distance = (cols_i != cols_j).sum(axis=0)
        qpos_all.append(lo + q)
        qdist_all.append(distance.astype(np.int64))
    if not qpos_all:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    return np.concatenate(qpos_all), np.concatenate(qdist_all)


def _lru_rounds(keys: np.ndarray, group: np.ndarray, n_groups: int,
                occ: np.ndarray, assoc: int) -> np.ndarray:
    """Exact LRU miss mask via set-parallel replay.

    ``group`` assigns each access a dense LRU-set id and ``occ`` its
    occurrence index within that set.  All sets advance together, one
    access per set per round, so the Python loop runs ``max(occ) + 1``
    times over small (n_live_sets, assoc) state matrices instead of once
    per access.  ``keys`` must be non-negative entry ids (−1 is the
    empty-way sentinel).
    """
    n = int(keys.size)
    col_order = np.argsort(occ, kind="stable")
    col_starts = np.concatenate((
        [0], np.cumsum(np.bincount(occ, minlength=int(occ.max()) + 1))))
    pg_cols = keys[col_order]
    row_cols = group[col_order]
    ways = np.full((n_groups, assoc), -1, dtype=np.int64)
    lane = np.arange(assoc)
    miss = np.empty(n, dtype=bool)
    for col in range(col_starts.size - 1):
        lo, hi = col_starts[col], col_starts[col + 1]
        rows = row_cols[lo:hi]
        pg = pg_cols[lo:hi]
        w = ways[rows]
        hit = w == pg[:, None]
        is_hit = hit.any(axis=1)
        pos = np.where(is_hit, hit.argmax(axis=1), assoc - 1)
        shifted = np.empty_like(w)
        shifted[:, 1:] = w[:, :-1]
        shifted[:, 0] = pg
        ways[rows] = np.where(lane[None, :] <= pos[:, None], shifted, w)
        miss[col_order[lo:hi]] = ~is_hit
    return miss


def lru_miss_mask(pages: np.ndarray, vpn: np.ndarray, n_sets: int,
                  assoc: int, streams: np.ndarray | None = None) -> np.ndarray:
    """Exact per-access miss mask for one set-associative LRU level.

    ``pages`` are the entry keys (page base addresses), ``vpn`` the
    virtual page numbers whose low bits select the set.  ``streams``
    optionally tags each access with an independent-simulator id: accesses
    from different streams never share TLB state (the batch form of
    running several fresh :class:`TLBSimulator` instances in one call).
    Returns a boolean array (``True`` = miss) bit-identical to replaying
    the stream(s) through an ``OrderedDict``-per-set LRU of ``assoc``
    entries.
    """
    return _lru_core(pages, vpn, n_sets, assoc, streams, steady=False)


def _lru_core(pages: np.ndarray, vpn: np.ndarray, n_sets: int,
              assoc: int | tuple[int, ...],
              streams: np.ndarray | None, steady: bool):
    """Kernel behind :func:`lru_miss_mask`.

    With ``steady=True`` the input is treated as *one period* of a stream
    replayed twice back to back (cold warm-up pass + measure pass), and
    the return value is the pair ``(first_pass_miss, second_pass_miss)``
    — both over single-period positions.  An access whose previous
    occurrence falls inside the same pass spans the identical access
    subsequence in either pass, so its stack distance — and verdict — is
    simply reused; only each entry's *first* measure-pass access (whose
    interval wraps around the period seam) is evaluated anew, via a tiny
    per-segment 2-D dominance count: the entries *not* touched inside the
    wrapped interval ``(last_e, first_e + period)`` are exactly those
    with ``last < last_e`` and ``first > first_e``.

    ``assoc`` may be a *tuple* of associativities (multi-geometry batch
    mode): stack distances do not depend on the associativity, only the
    hit/miss threshold does, so one distance pass serves every
    associativity sharing this set count.  Pruning then uses
    ``min(assoc)`` (conservative for every larger way count) and the
    set-parallel rounds strategy — which computes verdicts, not
    distances — is bypassed in favour of the general inversion-count
    path.  The return value becomes a list, one entry (mask, or
    steady-state mask pair) per requested associativity, each
    bit-identical to a dedicated single-assoc call.
    """
    multi = isinstance(assoc, tuple)
    assocs = assoc if multi else (assoc,)
    amin = min(assocs)
    n = int(pages.size)
    if n == 0:
        empty = np.zeros(0, dtype=bool)

        def _empty():
            return (np.zeros(0, dtype=bool), np.zeros(0, dtype=bool)) \
                if steady else np.zeros(0, dtype=bool)
        if multi:
            return [_empty() for _ in assocs]
        return (empty, empty.copy()) if steady else empty
    if n_sets > 1 or streams is not None:
        # group accesses by (stream, set); stable keeps time order within
        # each set, so the (prev, i) intervals below stay inside one
        # contiguous same-set segment
        sets = (vpn % n_sets) if n_sets > 1 else np.zeros(n, dtype=np.int64)
        if streams is not None:
            sets = sets + streams.astype(np.int64) * n_sets
        if bool((sets[1:] >= sets[:-1]).all()):
            # already grouped (the common batched-call layout: one stream
            # after another) — no permutation needed
            order = None
            p = pages
            s = sets
        else:
            order = np.argsort(sets, kind="stable")
            p = pages[order]
            s = sets[order]
        # sort by (set, page, time) — one combined-key argsort when the
        # keys pack into 62 bits, which they always do for page base
        # addresses; lexsort costs two full sorts
        shift = int(p.max()).bit_length()
        if (int(s[-1]) + 1) << shift <= 2**62:
            o2 = np.argsort((s << shift) | p, kind="stable")
        else:  # pragma: no cover - pathological key widths
            o2 = np.lexsort((p, s))
        same_set = s[o2][1:] == s[o2][:-1]
        new_seg = np.empty(n, dtype=bool)
        new_seg[0] = True
        new_seg[1:] = s[1:] != s[:-1]
        seg_id = np.cumsum(new_seg) - 1
        nseg = int(seg_id[-1]) + 1
    else:
        order = None
        p = pages
        o2 = np.argsort(p, kind="stable")
        same_set = True
        seg_id = np.zeros(n, dtype=np.int64)
        nseg = 1
    # previous occurrence and dense entry id of each (set, page) pair —
    # the same page base can land in different sets when accessed with
    # different page sizes, and the scalar LRU keeps those independent
    ps = p[o2]
    same = np.empty(n, dtype=bool)
    same[0] = False
    same[1:] = (ps[1:] == ps[:-1]) & same_set
    prev = np.empty(n, dtype=np.int64)
    prev[o2] = np.where(same, np.concatenate(([0], o2[:-1])), -1)
    ent = np.empty(n, dtype=np.int64)
    ent[o2] = np.cumsum(~same) - 1
    idx = np.arange(n, dtype=np.int64)

    # Verdict state: single mode keeps a boolean mask (so the rounds
    # strategy can write misses directly); multi mode keeps the raw
    # stack distance, thresholded per associativity at the end.  Cold
    # accesses (prev < 0) miss at any way count: distance sentinel n.
    miss = np.ones(n, dtype=bool)
    dist = np.full(n, n, dtype=np.int64) if multi else None
    warm = prev >= 0
    # fewer than `amin` accesses since the previous occurrence cannot
    # have evicted the entry: guaranteed hit, no evaluation needed (and
    # a fortiori a hit at any larger associativity in the batch)
    need = warm & (idx - prev - 1 >= amin)
    # segment bookkeeping: lengths and per-segment working-set size
    # (entries are numbered in (set, page) order, which visits segments
    # in grouped order)
    seg_lens = np.bincount(seg_id, minlength=nseg)
    u_seg = np.bincount(seg_id[~warm], minlength=nseg)
    if need.any():
        # a working set no larger than the associativity can never evict:
        # every warm access in such a segment is a guaranteed hit (this
        # disposes of most L2 sets outright)
        need &= (u_seg > amin)[seg_id]
    miss[warm & ~need] = False
    if multi:
        dist[warm & ~need] = 0  # true distance < amin <= every assoc
    if need.any():
        row = ent - np.concatenate(([0], np.cumsum(u_seg)[:-1]))[seg_id]

        active = u_seg > amin
        is_matrix = active & (u_seg <= _MATRIX_MAX_PAGES)
        is_rest = active & ~is_matrix
        rest = np.flatnonzero(is_rest)
        # the rounds replay produces verdicts for one way count only, so
        # batch mode always takes the distance-producing general path
        use_rounds = (not multi and rest.size > 1
                      and int(seg_lens[rest].max()) * _ROUNDS_PARALLELISM
                      <= int(seg_lens[rest].sum()))

        for strategy, seg_sel in (("matrix", is_matrix),
                                  ("rest", is_rest)):
            bucket = seg_sel[seg_id]
            if strategy == "rest" and rest.size == 0:
                continue
            if not (need & bucket).any():
                continue
            sel = np.flatnonzero(bucket)
            loc = np.empty(n, dtype=np.int64)
            loc[sel] = np.arange(sel.size)
            prev_b = prev[sel]
            prev_loc = np.where(prev_b >= 0, loc[prev_b], -1)
            if strategy == "matrix":
                qpos, qdist = _matrix_miss(row[sel], prev_loc, need[sel],
                                           seg_lens[seg_sel])
                if multi:
                    dist[sel[qpos]] = qdist
                else:
                    miss[sel[qpos]] = qdist >= amin
            elif use_rounds:
                lens = seg_lens[seg_sel]
                starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
                group = np.repeat(np.arange(lens.size), lens)
                occ = np.arange(sel.size) - np.repeat(starts, lens)
                miss[sel] = _lru_rounds(ent[sel], group, lens.size, occ,
                                        amin)
            else:
                # general case: stack distance from the prev array alone.
                # Of the i - prev[i] - 1 positions between an access and
                # its previous occurrence, those whose page recurs by
                # time i pair off 1:1 with the positions r <= i whose own
                # prev[r] lands inside the interval; the remainder are
                # distinct pages ahead in the LRU stack.  Cold accesses
                # neither query nor ever satisfy prev[r] > prev[i], so
                # the inversion count runs on the warm subsequence only.
                warm_b = np.flatnonzero(prev_loc >= 0)
                inv = _inversion_counts(prev_loc[warm_b])
                distance = warm_b - prev_loc[warm_b] - 1 - inv
                if multi:
                    dist[sel[warm_b]] = distance
                else:
                    miss[sel[warm_b]] = distance >= amin

    def _scatter(m):
        if order is None:
            return m
        out = np.empty(n, dtype=bool)
        out[order] = m
        return out

    if not steady:
        if multi:
            return [_scatter(dist >= a) for a in assocs]
        return _scatter(miss)
    # second-pass mask: reuse every in-pass verdict; re-evaluate each
    # entry's seam-wrapping first access from per-entry (first, last)
    # occurrence positions.  Entry groups are contiguous in o2 with time
    # order preserved, so group boundaries give first/last directly.
    starts = np.flatnonzero(~same)
    first_e = o2[starts]
    last_e = o2[np.concatenate((starts[1:], [n])) - 1]
    seg_e = seg_id[first_e]
    # order entries by (segment, last); with a per-segment ascending
    # offset on the values, cross-segment pairs are never inverted and
    # one inversion count yields the dominance count per entry
    eorder = np.argsort(seg_e * n + last_e)
    dom = _inversion_counts(seg_e[eorder] * np.int64(n) + first_e[eorder])
    # distinct other entries touched inside the wrapped interval — a
    # stack distance too, so it also thresholds per associativity
    wrapped_dist = u_seg[seg_e[eorder]] - 1 - dom
    if multi:
        results = []
        for a in assocs:
            m1 = dist >= a
            m2 = m1.copy()
            m2[first_e[eorder]] = wrapped_dist >= a
            results.append((_scatter(m1), _scatter(m2)))
        return results
    miss2 = miss.copy()
    miss2[first_e[eorder]] = wrapped_dist >= amin
    return _scatter(miss), _scatter(miss2)


def simulate_two_level(
        pages: np.ndarray, sizes: np.ndarray, geometry: TLBGeometry,
        streams: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Batch-simulate the two-level TLB over one access stream.

    Returns ``(l1_miss, l2_miss)`` boolean masks over the stream.  The L2
    level sees only the L1-miss substream — probed (and updated) exactly
    when the scalar loop would, so the masks match :class:`TLBSimulator`
    access for access.
    """
    pages = np.asarray(pages, dtype=np.int64)
    vpn = pages // np.asarray(sizes, dtype=np.int64)
    l1_miss = lru_miss_mask(pages, vpn, geometry.l1.n_sets, geometry.l1.assoc,
                            streams)
    l2_miss = np.zeros(pages.size, dtype=bool)
    pos = np.flatnonzero(l1_miss)
    if pos.size:
        l2_miss[pos] = lru_miss_mask(
            pages[pos], vpn[pos], geometry.l2.n_sets, geometry.l2.assoc,
            None if streams is None else streams[pos])
    return l1_miss, l2_miss


def run_segments(geometry: TLBGeometry, traces: list[PageTrace],
                 streams: list[int] | None = None) -> list[TLBStats]:
    """Replay ``traces`` back to back through one (initially cold) TLB and
    return per-trace stats — the batch equivalent of consecutive
    :meth:`TLBSimulator.run` calls on a shared simulator.

    Warm-up passes are expressed by listing a trace more than once and
    reading only the later segment's stats.  ``streams`` optionally gives
    each trace a simulator id; traces with different ids replay through
    independent (fresh) TLBs, still in one batch call.
    """
    if not traces:
        return []
    lengths = np.array([t.n_events for t in traces], dtype=np.int64)
    if int(lengths.sum()) == 0:
        return [TLBStats() for _ in traces]
    pages = np.concatenate([t.page for t in traces])
    sizes = np.concatenate([t.size for t in traces])
    seg = np.repeat(np.arange(lengths.size), lengths)
    stream_arr = None
    if streams is not None:
        stream_arr = np.repeat(np.asarray(streams, dtype=np.int64), lengths)
    # NOTE: no seam re-deduplication — a repeat across a segment boundary
    # is a real (always-hitting) access in the scalar replay too
    l1_miss, l2_miss = simulate_two_level(pages, sizes, geometry, stream_arr)
    l1_counts = np.bincount(seg[l1_miss], minlength=lengths.size)
    l2_counts = np.bincount(seg[l2_miss], minlength=lengths.size)
    return [TLBStats(accesses=t.n_accesses,
                     l1_misses=int(l1_counts[i]),
                     l2_misses=int(l2_counts[i]))
            for i, t in enumerate(traces)]


def run_steady_segments(geometry: TLBGeometry, traces: list[PageTrace],
                        streams: list[int] | None = None) -> list[TLBStats]:
    """Steady-state per-trace stats, processing each period only once.

    Equivalent to replaying every stream's whole trace sequence *twice*
    through an initially cold TLB — one warm-up pass, one measure pass,
    exactly :meth:`TLBSimulator.run_steady_state` with ``warmup=1`` —
    and reporting the measure pass, but the L1 kernel runs on a single
    copy of the events (see :func:`_lru_core`).  The L2 level replays the
    L1-miss substreams of both passes back to back, since the warm-up
    pass's misses warm the L2 just as they do in the scalar replay.
    """
    if not traces:
        return []
    lengths = np.array([t.n_events for t in traces], dtype=np.int64)
    if int(lengths.sum()) == 0:
        return [TLBStats(accesses=t.n_accesses) for t in traces]
    pages = np.concatenate([t.page for t in traces])
    sizes = np.concatenate([t.size for t in traces])
    seg = np.repeat(np.arange(lengths.size), lengths)
    stream_arr = None
    if streams is not None:
        stream_arr = np.repeat(np.asarray(streams, dtype=np.int64), lengths)
    vpn = pages // np.asarray(sizes, dtype=np.int64)
    g1, g2 = geometry.l1, geometry.l2
    m1, m2 = _lru_core(pages, vpn, g1.n_sets, g1.assoc, stream_arr,
                       steady=True)
    p1 = np.flatnonzero(m1)
    p2 = np.flatnonzero(m2)
    pos = np.concatenate((p1, p2))
    l2_miss = lru_miss_mask(pages[pos], vpn[pos], g2.n_sets, g2.assoc,
                            None if stream_arr is None else stream_arr[pos])
    l2_second = l2_miss[p1.size:]
    l1_counts = np.bincount(seg[p2], minlength=lengths.size)
    l2_counts = np.bincount(seg[p2[l2_second]], minlength=lengths.size)
    return [TLBStats(accesses=t.n_accesses,
                     l1_misses=int(l1_counts[i]),
                     l2_misses=int(l2_counts[i]))
            for i, t in enumerate(traces)]


def run_steady_segments_multi(
        geometries: list[TLBGeometry], traces: list[PageTrace],
        streams: list[int] | None = None) -> list[list[TLBStats]]:
    """Steady-state per-trace stats for *many* TLB geometries in one pass.

    Bit-identical to ``[run_steady_segments(g, traces, streams) for g in
    geometries]`` but far cheaper: the trace concatenation and VPN math
    happen once, and the expensive L1 stack-distance pass is shared by
    every geometry whose L1 has the same set count — distances are
    associativity-independent, so each geometry's verdict is just a
    threshold (see :func:`_lru_core`).  The A64FX L1 DTLB is fully
    associative (one set), so entry-count sweeps all collapse into a
    single pass.  Each distinct L1 then replays its own (much smaller)
    L1-miss substream through each distinct L2; geometries that share
    both levels share the whole result.

    Returns one per-trace stats list per geometry, in geometry order.
    """
    geometries = list(geometries)
    if not geometries:
        return []
    if not traces:
        return [[] for _ in geometries]
    lengths = np.array([t.n_events for t in traces], dtype=np.int64)
    if int(lengths.sum()) == 0:
        return [[TLBStats(accesses=t.n_accesses) for t in traces]
                for _ in geometries]
    pages = np.concatenate([t.page for t in traces])
    sizes = np.concatenate([t.size for t in traces])
    seg = np.repeat(np.arange(lengths.size), lengths)
    stream_arr = None
    if streams is not None:
        stream_arr = np.repeat(np.asarray(streams, dtype=np.int64), lengths)
    vpn = pages // np.asarray(sizes, dtype=np.int64)

    # one shared L1 pass per distinct set count; the distinct
    # associativities within a group are thresholds over its distances
    by_sets: dict[int, set[int]] = {}
    for g in geometries:
        by_sets.setdefault(g.l1.n_sets, set()).add(g.l1.assoc)
    l1_masks: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    for n_sets, assoc_set in by_sets.items():
        assocs = tuple(sorted(assoc_set))
        pairs = _lru_core(pages, vpn, n_sets, assocs, stream_arr,
                          steady=True)
        for a, pair in zip(assocs, pairs):
            l1_masks[(n_sets, a)] = pair

    out: list[list[TLBStats]] = []
    shared: dict[tuple, list[TLBStats]] = {}
    for g in geometries:
        l1key = (g.l1.n_sets, g.l1.assoc)
        key = (l1key, (g.l2.n_sets, g.l2.assoc))
        cached = shared.get(key)
        if cached is not None:
            out.append([TLBStats(s.accesses, s.l1_misses, s.l2_misses)
                        for s in cached])
            continue
        m1, m2 = l1_masks[l1key]
        p1 = np.flatnonzero(m1)
        p2 = np.flatnonzero(m2)
        pos = np.concatenate((p1, p2))
        l2_miss = lru_miss_mask(
            pages[pos], vpn[pos], g.l2.n_sets, g.l2.assoc,
            None if stream_arr is None else stream_arr[pos])
        l2_second = l2_miss[p1.size:]
        l1_counts = np.bincount(seg[p2], minlength=lengths.size)
        l2_counts = np.bincount(seg[p2[l2_second]], minlength=lengths.size)
        stats = [TLBStats(accesses=t.n_accesses,
                          l1_misses=int(l1_counts[i]),
                          l2_misses=int(l2_counts[i]))
                 for i, t in enumerate(traces)]
        shared[key] = stats
        out.append(stats)
    return out


__all__ = ["TLBSimulator", "TLBStats", "lru_miss_mask", "simulate_two_level",
           "run_segments", "run_steady_segments", "run_steady_segments_multi"]
