"""Exact set-associative LRU TLB simulation.

The simulator replays a :class:`~repro.hw.trace.PageTrace` through a
two-level TLB (geometry from :class:`~repro.hw.a64fx.TLBGeometry`) and
counts per-level misses.  Entries are keyed by page base address, so 64 KiB
base pages, 2 MiB hugetlbfs pages, and 512 MiB THP pages share capacity the
way they do in the A64FX's unified DTLB: one entry per page regardless of
size — which is precisely why huge pages slash miss counts.

Replacement is true LRU per set.  Consecutive duplicate accesses are
pre-collapsed by :class:`PageTrace` (always hits under LRU), so the Python
event loop only pays for accesses that can change TLB state.

``PAPI_TLB_DM`` on the A64FX (and in the paper's tables) counts **L1 DTLB
misses**; the full page-walk cost applies only when the L2 TLB also misses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.hw.a64fx import TLBGeometry
from repro.hw.trace import PageTrace


@dataclass
class TLBStats:
    """Miss statistics from one or more simulated traces."""

    accesses: int = 0
    l1_misses: int = 0
    l2_misses: int = 0

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.accesses if self.accesses else 0.0

    def __add__(self, other: "TLBStats") -> "TLBStats":
        return TLBStats(
            self.accesses + other.accesses,
            self.l1_misses + other.l1_misses,
            self.l2_misses + other.l2_misses,
        )

    def scaled(self, factor: float) -> "TLBStats":
        """Extrapolate steady-state counts (e.g. sampled steps -> full run)."""
        return TLBStats(
            int(round(self.accesses * factor)),
            int(round(self.l1_misses * factor)),
            int(round(self.l2_misses * factor)),
        )

    def exposed_walk_cycles(self, geometry: TLBGeometry) -> float:
        """Exposed (non-overlapped) cycles attributable to TLB misses."""
        raw = (
            self.l1_misses * geometry.l1.miss_penalty
            + self.l2_misses * geometry.walk_cycles
        )
        return raw * geometry.exposed_fraction


class _LRUSetArray:
    """One TLB level: ``n_sets`` LRU sets of ``assoc`` entries each."""

    __slots__ = ("assoc", "n_sets", "sets")

    def __init__(self, entries: int, assoc: int) -> None:
        self.assoc = assoc
        self.n_sets = entries // assoc
        self.sets: list[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]

    def reset(self) -> None:
        for s in self.sets:
            s.clear()


class TLBSimulator:
    """Replays page traces; retains TLB state between calls (warm TLB)."""

    def __init__(self, geometry: TLBGeometry) -> None:
        self.geometry = geometry
        self._l1 = _LRUSetArray(geometry.l1.entries, geometry.l1.assoc)
        self._l2 = _LRUSetArray(geometry.l2.entries, geometry.l2.assoc)
        self.stats = TLBStats()

    def reset(self) -> None:
        """Flush the TLB and zero the statistics (context switch / new run)."""
        self._l1.reset()
        self._l2.reset()
        self.stats = TLBStats()

    def run(self, trace: PageTrace) -> TLBStats:
        """Replay ``trace``; returns stats for *this call* (also accumulated
        on ``self.stats``)."""
        local = TLBStats()
        n = trace.n_events
        if n == 0:
            return local
        pages = trace.page
        # set index uses VPN low bits, as hardware does
        vpn = pages // trace.size
        l1_sets, l1_assoc = self._l1.sets, self._l1.assoc
        l2_sets, l2_assoc = self._l2.sets, self._l2.assoc
        l1_idx = (
            np.zeros(n, dtype=np.intp)
            if self._l1.n_sets == 1
            else (vpn % self._l1.n_sets).astype(np.intp)
        )
        l2_idx = (
            np.zeros(n, dtype=np.intp)
            if self._l2.n_sets == 1
            else (vpn % self._l2.n_sets).astype(np.intp)
        )
        l1_misses = 0
        l2_misses = 0
        page_list = pages.tolist()
        l1_idx_list = l1_idx.tolist()
        l2_idx_list = l2_idx.tolist()
        for page, i1, i2 in zip(page_list, l1_idx_list, l2_idx_list):
            s1 = l1_sets[i1]
            if page in s1:
                s1.move_to_end(page)
                continue
            l1_misses += 1
            s2 = l2_sets[i2]
            if page in s2:
                s2.move_to_end(page)
            else:
                l2_misses += 1
                if len(s2) >= l2_assoc:
                    s2.popitem(last=False)
                s2[page] = True
            if len(s1) >= l1_assoc:
                s1.popitem(last=False)
            s1[page] = True
        local.accesses = trace.n_accesses
        local.l1_misses = l1_misses
        local.l2_misses = l2_misses
        self.stats = self.stats + local
        return local

    def run_steady_state(self, step_trace: PageTrace, warmup: int = 1) -> TLBStats:
        """Replay ``step_trace`` ``warmup + 1`` times and return stats for the
        final (steady-state) repetition only.

        Simulation time steps repeat essentially the same access pattern, so
        per-step miss counts converge after one warmup pass; callers
        extrapolate with :meth:`TLBStats.scaled`.
        """
        for _ in range(warmup):
            self.run(step_trace)
        return self.run(step_trace)


__all__ = ["TLBSimulator", "TLBStats"]
