"""Vendored fallback implementation of the ``pytest-timeout`` plugin.

``pyproject.toml`` sets ``timeout = 300`` as the suite's hang ceiling and
``required_plugins = pytest-timeout`` so a run without the plugin fails
loudly instead of silently running unprotected (the historical failure
mode: pytest emitted ``PytestConfigWarning: Unknown config option:
timeout`` and kept going with no ceiling at all).

Offline environments cannot ``pip install pytest-timeout``, so this
module — importable whenever ``src/`` is on ``sys.path``, i.e. under the
tier-1 invocation ``PYTHONPATH=src python -m pytest`` — provides the
subset the suite relies on:

* the ``timeout`` ini option and ``--timeout`` command-line option
  (seconds per test; 0 disables);
* a ``@pytest.mark.timeout(N)`` per-test override;
* SIGALRM-based enforcement: a test (setup + call + teardown) that
  exceeds its ceiling fails with ``Timeout >Ns`` instead of hanging the
  run forever.

The sibling ``pytest_timeout-*.dist-info`` directory carries the entry
point and distribution metadata that make pytest discover this module
exactly like the PyPI plugin, and that satisfy the ``required_plugins``
check.  When the real plugin is installed *and* ``src/`` precedes
``site-packages`` on ``sys.path``, this module shadows it — acceptable,
because the enforcement semantics the suite depends on are identical.
Install the real thing with ``pip install -e .[test]``.

Enforcement is skipped (never errored) where SIGALRM cannot work:
non-POSIX platforms or test sessions driven off the main thread.
"""

from __future__ import annotations

import signal
import threading

import pytest

__version__ = "2.3.1+repro.vendored"


def pytest_addoption(parser) -> None:
    parser.addini(
        "timeout",
        "per-test hang ceiling in seconds (0 or empty disables)",
        default=None,
    )
    group = parser.getgroup("timeout")
    group.addoption(
        "--timeout",
        type=float,
        default=None,
        help="per-test hang ceiling in seconds, overriding the ini value "
             "(0 disables)",
    )


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "timeout(seconds): override the per-test hang ceiling",
    )


def _timeout_for(item) -> float | None:
    """Resolve the ceiling: marker > --timeout > ini; None/0 = disabled."""
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    opt = item.config.getoption("--timeout")
    if opt is not None:
        return float(opt)
    ini = item.config.getini("timeout")
    if ini in (None, ""):
        return None
    return float(ini)


def _can_arm() -> bool:
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


@pytest.hookimpl(wrapper=True)
def pytest_runtest_protocol(item, nextitem):
    seconds = _timeout_for(item)
    if not seconds or seconds <= 0 or not _can_arm():
        return (yield)

    def on_alarm(signum, frame):
        pytest.fail(f"Timeout >{seconds:g}s", pytrace=True)

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
