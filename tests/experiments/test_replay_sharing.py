"""Replay sharing across the experiment harness.

The replication probe used to run a full pipeline and throw its replay
away; through the session it must be a cache hit for the measurement
runs, and the whole quick report must fit a fixed distinct-replay budget
(22 configurations priced, at most 15 replays executed).
"""

import pytest

from repro.experiments.report import (
    QUICK_REPORT_CONFIGS,
    QUICK_REPORT_REPLAY_BUDGET,
    full_report,
)
from repro.experiments.tables import run_table
from repro.experiments.workloads import eos_problem_worklog
from repro.perfmodel.session import ReplaySession, default_session


@pytest.fixture(scope="module")
def eos_log():
    return eos_problem_worklog(quick=True)


def test_quick_probe_replay_is_shared(eos_log):
    """In quick mode the probe runs at the replication cap, so whenever
    the cap wins (both paper problems hit it) the probe's replay IS the
    without-HP cell's replay — one distinct replay, not two."""
    session = ReplaySession(persist=False)
    result = run_table("eos", eos_log, quick=True, session=session)
    assert result.replication == 4  # the cap won, as at the seed
    # three pipelines priced: probe, with-HP, without-HP ...
    assert session.stats.configs == 3
    # ... but the without-HP cell reused the probe's replay
    assert session.stats.memory_hits == 1
    assert session.stats.replays == 2


def test_repeated_table_is_free(eos_log):
    session = ReplaySession(persist=False)
    first = run_table("eos", eos_log, quick=True, session=session)
    replays = session.stats.replays
    second = run_table("eos", eos_log, quick=True, session=session)
    assert session.stats.replays == replays  # zero new replays
    assert second.measured == first.measured
    assert second.replication == first.replication


def test_full_quick_report_replay_budget():
    """The whole report prices 22 configurations; the session must cover
    them with at most 15 distinct replays (the seed ran one per config).
    The geometry sweep's 8 configurations are distinct TLB geometries, so
    they cannot dedupe at the replay level — their sharing happens below
    this counter, in the batched stack-distance pass."""
    session = ReplaySession(persist=False)
    full_report(quick=True, session=session)
    assert session.stats.configs == QUICK_REPORT_CONFIGS
    assert session.stats.replays <= QUICK_REPORT_REPLAY_BUDGET

    # standalone registry runners use the same quick parameters as the
    # report (the serving layer depends on this: any quick request mix
    # stays within the report's replay budget), so re-running one through
    # the same session replays nothing new
    from repro.experiments.registry import experiment
    from repro.perfmodel.session import session_scope

    replays = session.stats.replays
    with session_scope(session):
        experiment("compilers").run(quick=True)
    assert session.stats.replays == replays


def test_default_session_is_shared():
    assert default_session() is default_session()
