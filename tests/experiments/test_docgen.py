"""The registry-derived documentation generator and link checker."""

from pathlib import Path

import pytest

from repro.experiments import docgen


class TestGeneratedBlock:
    def test_block_carries_every_experiment(self):
        from repro.experiments.registry import experiments
        block = docgen.generated_block()
        for spec in experiments():
            assert f"\n  {spec.name}" in block
        assert block.startswith(docgen.BEGIN_MARK)
        assert block.endswith(docgen.END_MARK)

    def test_render_doc_replaces_only_the_block(self):
        stale = (f"# Title\n\nintro text\n\n{docgen.BEGIN_MARK}\n"
                 f"OUT OF DATE\n{docgen.END_MARK}\n\ntrailing text\n")
        rendered = docgen.render_doc(stale)
        assert "OUT OF DATE" not in rendered
        assert rendered.startswith("# Title\n\nintro text\n\n")
        assert rendered.endswith("\n\ntrailing text\n")
        assert docgen.generated_block() in rendered

    def test_render_doc_without_markers_fails_loudly(self):
        with pytest.raises(SystemExit):
            docgen.render_doc("# no markers here\n")

    def test_committed_doc_is_current(self):
        """The tier-1 equivalent of CI's `docgen --check`: the committed
        architecture doc must match the live registries."""
        doc = docgen.repo_root() / "docs" / "architecture.md"
        assert docgen.render_doc(doc.read_text()) == doc.read_text()

    def test_check_mode_detects_staleness(self, tmp_path, monkeypatch):
        doc = tmp_path / "stale.md"
        doc.write_text(f"{docgen.BEGIN_MARK}\nstale\n{docgen.END_MARK}\n")
        assert docgen.main(["--check", "--doc", str(doc)]) == 1
        assert docgen.main(["--write", "--doc", str(doc)]) == 0
        assert docgen.main(["--check", "--doc", str(doc)]) == 0


class TestLinkChecker:
    def test_repo_docs_have_no_broken_links(self):
        assert docgen.check_links(docgen.repo_root()) == []

    def test_detects_broken_relative_link(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "a.md").write_text(
            "see [missing](no-such-file.md) and [ok](b.md)\n")
        (tmp_path / "docs" / "b.md").write_text("fine\n")
        problems = docgen.check_links(tmp_path)
        assert len(problems) == 1
        assert "no-such-file.md" in problems[0]

    def test_ignores_external_urls_and_anchors(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "a.md").write_text(
            "[web](https://example.org) [mail](mailto:x@y) [frag](#section) "
            "[anchored](b.md#part)\n")
        (tmp_path / "docs" / "b.md").write_text("fine\n")
        assert docgen.check_links(tmp_path) == []

    def test_repo_root_is_the_repo(self):
        root = docgen.repo_root()
        assert (root / "src" / "repro").is_dir()
        assert (root / "docs").is_dir()
