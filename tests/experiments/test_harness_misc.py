"""Tests for harness plumbing: workload caching, CLI, measures module."""

import pytest

from repro.experiments.measures import (
    MEASURE_LABELS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    paper_ratios,
)
from repro.experiments.workloads import eos_problem_worklog


class TestMeasures:
    def test_labels_cover_tables(self):
        assert set(MEASURE_LABELS) == set(PAPER_TABLE1["with"])
        assert set(MEASURE_LABELS) == set(PAPER_TABLE2["without"])

    def test_paper_values_sane(self):
        """Transcription check against the paper's tables."""
        assert PAPER_TABLE1["without"]["flash_timer_s"] == pytest.approx(339.032)
        assert PAPER_TABLE2["with"]["flash_timer_s"] == pytest.approx(1176.312)

    def test_ratio_helper(self):
        r = paper_ratios(PAPER_TABLE1)
        assert r["time_s"] == pytest.approx(65.2 / 69.7)


class TestWorkloadCaching:
    def test_quick_log_cached_and_stable(self):
        a = eos_problem_worklog(quick=True)
        b = eos_problem_worklog(quick=True)
        assert a.n_steps == b.n_steps
        assert [r.slots for r in a.steps] == [r.slots for r in b.steps]

    def test_no_cache_builds_fresh(self):
        log = eos_problem_worklog(quick=True, use_cache=False, steps=2)
        assert log.n_steps == 2

    def test_log_structure(self):
        log = eos_problem_worklog(quick=True)
        rec = log.steps[0]
        units = {inv.unit for inv in rec.invocations}
        # the supernova workload exercises all units
        assert {"guardcell", "hydro_sweep", "eos", "gravity", "flame"} <= units
        eos_invs = [i for i in rec.invocations if i.unit == "eos"]
        assert all(i.newton_iterations > 0 for i in eos_invs)


class TestCLI:
    def test_toys_command(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["toys"]) == 0
        out = capsys.readouterr().out
        assert "HUGE PAGES" in out and "no huge pages" in out

    def test_matrix_command(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["matrix"]) == 0
        out = capsys.readouterr().out
        assert "FLASH/fujitsu (default)" in out

    def test_bad_command_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_list_command(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        # experiments, workloads, and units all enumerate with descriptions
        for name in ("table1", "figure1", "porting"):
            assert name in out
        for name in ("eos", "hydro", "sod"):
            assert name in out
        assert "[baseline-gated]" in out
        assert "hydrodynamics" in out
        assert "TLB" in out

    def test_experiment_registry_dispatch(self):
        from repro.experiments.registry import experiment, experiments
        from repro.util.errors import ConfigurationError

        names = [spec.name for spec in experiments()]
        assert names[0] == "all"
        assert {"table1", "table2", "figure1", "compilers", "toys",
                "matrix", "porting"} <= set(names)
        assert all(spec.description for spec in experiments())
        with pytest.raises(ConfigurationError, match="did you mean 'table"):
            experiment("table")
