"""Shape tests for the paper-experiment harness (E1-E7 of DESIGN.md).

These run the *quick* variants (few steps, small replication): absolute
values shrink accordingly, but every qualitative claim of the paper must
hold — who wins, in which direction, and roughly by what factor.
"""

import pytest

from repro.experiments.compilers import compiler_comparison
from repro.experiments.figure1 import FIGURE1_MEASURES, figure1_data, render_figure1
from repro.experiments.measures import PAPER_TABLE1, PAPER_TABLE2, paper_ratios
from repro.experiments.tables import render_table, run_table
from repro.experiments.testprograms import (
    hugepage_usage_matrix,
    render_outcomes,
    static_vs_dynamic,
)
from repro.experiments.workloads import eos_problem_worklog, hydro_problem_worklog


@pytest.fixture(scope="module")
def eos_log():
    return eos_problem_worklog(quick=True)


@pytest.fixture(scope="module")
def hydro_log():
    return hydro_problem_worklog(quick=True)


@pytest.fixture(scope="module")
def table1(eos_log):
    return run_table("eos", eos_log, quick=True)


@pytest.fixture(scope="module")
def table2(hydro_log):
    return run_table("hydro", hydro_log, quick=True)


class TestTable1:
    """E1: the EOS problem (paper Table I)."""

    def test_huge_pages_actually_in_use(self, table1):
        assert table1.reports["with"].uses_huge_pages
        assert not table1.reports["without"].uses_huge_pages

    def test_dtlb_rate_scale_without_hp(self, table1):
        """Intensive rate: must land near the paper's 2.34e7/s."""
        got = table1.measured["without"]["dtlb_misses_per_s"]
        assert got == pytest.approx(2.34e7, rel=0.6)

    def test_dtlb_collapse_factor(self, table1):
        """The paper's 21x reduction, within a factor."""
        r = table1.ratio("dtlb_misses_per_s")
        assert 0.01 < r < 0.12  # paper: 0.047

    def test_time_barely_improves(self, table1):
        r = table1.ratio("time_s")
        assert 0.85 < r < 1.0  # paper: 0.935

    def test_sve_rate_near_paper(self, table1):
        got = table1.measured["without"]["sve_per_cycle"]
        assert got == pytest.approx(0.47, rel=0.25)

    def test_bandwidth_near_paper(self, table1):
        got = table1.measured["without"]["mem_gbytes_per_s"]
        assert got == pytest.approx(4.19, rel=0.5)

    def test_render(self, table1):
        text = render_table(table1)
        assert "TABLE I" in text and "DTLB" in text


class TestTable2:
    """E2: the 3-d Hydro problem (paper Table II)."""

    def test_dtlb_rate_scale_without_hp(self, table2):
        got = table2.measured["without"]["dtlb_misses_per_s"]
        assert got == pytest.approx(2.42e6, rel=0.6)

    def test_dtlb_reduction_modest(self, table2):
        """Hydro's reduction is ~3x, far milder than the EOS's 21x."""
        r = table2.ratio("dtlb_misses_per_s")
        assert 0.15 < r < 0.6  # paper: 0.324

    def test_time_unchanged(self, table2):
        r = table2.ratio("time_s")
        assert 0.95 < r < 1.02  # paper: 0.998

    def test_sve_rate_near_paper(self, table2):
        got = table2.measured["without"]["sve_per_cycle"]
        assert got == pytest.approx(0.11, rel=0.35)

    def test_bandwidth_near_paper(self, table2):
        got = table2.measured["without"]["mem_gbytes_per_s"]
        assert got == pytest.approx(10.1, rel=0.5)

    def test_render(self, table2):
        assert "TABLE II" in render_table(table2)


class TestFigure1:
    """E3: the ratio bar chart."""

    def test_asymmetry_between_problems(self, table1, table2):
        data = figure1_data(table1, table2)
        # the EOS DTLB ratio is far lower than the hydro one
        assert data.eos["dtlb_misses_per_s"] < 0.5 * data.hydro["dtlb_misses_per_s"]

    def test_everything_else_near_one(self, table1, table2):
        data = figure1_data(table1, table2)
        for problem in (data.eos, data.hydro):
            for key in FIGURE1_MEASURES:
                if key == "dtlb_misses_per_s":
                    continue
                assert 0.8 < problem[key] < 1.2, key

    def test_paper_reference_ratios(self):
        assert paper_ratios(PAPER_TABLE1)["dtlb_misses_per_s"] == pytest.approx(
            0.047, abs=0.001)
        assert paper_ratios(PAPER_TABLE2)["dtlb_misses_per_s"] == pytest.approx(
            0.324, abs=0.001)

    def test_render(self, table1, table2):
        text = render_figure1(figure1_data(table1, table2))
        assert "FIGURE 1" in text
        assert "#" in text and "=" in text


class TestCompilerComparison:
    """E4: section II narrative."""

    @pytest.fixture(scope="class")
    def comparison(self, eos_log):
        return compiler_comparison(eos_log, replication=2)

    def test_arm_about_2_5x_slower(self, comparison):
        assert comparison.arm_vs_gcc == pytest.approx(2.5, rel=0.25)

    def test_cray_negligible_difference(self, comparison):
        assert comparison.cray_vs_gcc == pytest.approx(1.0, abs=0.1)

    def test_xeon_about_3x_faster(self, comparison):
        assert comparison.ookami_vs_xeon == pytest.approx(3.0, rel=0.4)

    def test_render(self, comparison):
        assert "Arm vs GCC" in comparison.render()


class TestToyPrograms:
    """E6: static vs dynamic test programs."""

    def test_gnu_dynamic_yes_static_no(self):
        outcomes = static_vs_dynamic("gnu")
        dynamic, static = outcomes
        assert dynamic.uses_huge_pages
        assert not static.uses_huge_pages
        assert dynamic.anon_huge_kb > 0
        assert static.anon_huge_kb == 0

    def test_cray_same_behaviour(self):
        dynamic, static = static_vs_dynamic("cray")
        assert dynamic.uses_huge_pages and not static.uses_huge_pages

    def test_render(self):
        text = render_outcomes(static_vs_dynamic("gnu"), "TOYS")
        assert "HUGE PAGES" in text and "no huge pages" in text


class TestHugePageMatrix:
    """E5: the full usage matrix."""

    @pytest.fixture(scope="class")
    def matrix(self):
        return {o.label: o for o in hugepage_usage_matrix()}

    def test_gnu_cray_never(self, matrix):
        for label, outcome in matrix.items():
            if label.startswith(("FLASH/gnu", "FLASH/cray")):
                assert not outcome.uses_huge_pages, label

    def test_fujitsu_default_yes(self, matrix):
        assert matrix["FLASH/fujitsu (default)"].uses_huge_pages

    def test_fujitsu_knolargepage_no(self, matrix):
        assert not matrix["FLASH/fujitsu (-Knolargepage)"].uses_huge_pages

    def test_fujitsu_xos_none_no(self, matrix):
        assert not matrix["FLASH/fujitsu (XOS_MMM_L_HPAGE_TYPE=none)"].uses_huge_pages

    def test_unmodified_node_yes(self, matrix):
        assert matrix["FLASH/fujitsu (unmodified node)"].uses_huge_pages


class TestPortingStudy:
    """Section II porting narrative: out of the box + scaling."""

    @pytest.fixture(scope="class")
    def porting(self, eos_log):
        from repro.experiments.porting import porting_study

        return porting_study(eos_log)

    def test_every_compiler_runs(self, porting):
        assert set(porting.compiler_times_s) == {"gnu", "cray", "arm",
                                                 "fujitsu"}
        assert all(t > 0 for t in porting.compiler_times_s.values())

    def test_scaled_reasonably_well(self, porting):
        """Monotone speedup with decent (but imperfect) 48-rank efficiency."""
        times = porting.scaling_times_s
        ranks = sorted(times)
        assert all(times[a] > times[b] for a, b in zip(ranks, ranks[1:]))
        assert 0.5 < porting.efficiency(48) <= 1.02

    def test_render(self, porting):
        text = porting.render()
        assert "out of the box" in text and "48 ranks" in text
