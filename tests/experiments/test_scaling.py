"""Tests for the rank-decomposed scaling sweep."""

import pytest

from repro.experiments.porting import PortingResult
from repro.experiments.scaling import (node_contention, scaling_study,
                                       sedov_fabric_builder, serial_identity)
from repro.perfmodel.session import ReplaySession
from repro.toolchain.compiler import FUJITSU


@pytest.fixture(scope="module")
def study():
    session = ReplaySession(persist=False)
    return scaling_study(quick=True, rank_counts=(1, 2), steps=1,
                         session=session)


class TestScalingStudy:
    def test_points_cover_both_modes_and_regimes(self, study):
        for points in (study.strong, study.weak):
            assert sorted(points) == [1, 2]
            for p, point in points.items():
                assert set(point["time_s"]) == {"with", "without"}
                assert len(point["per_rank_dtlb"]["with"]) == p
                assert len(point["per_rank_dtlb"]["without"]) == p

    def test_page_regimes_follow_flags(self, study):
        """The Fujitsu default launches on huge pages; -Knolargepage
        keeps every rank on base pages."""
        for point in list(study.strong.values()) + list(study.weak.values()):
            assert all(point["huge_pages"]["with"])
            assert not any(point["huge_pages"]["without"])

    def test_single_rank_has_no_halo_traffic(self, study):
        assert study.strong[1]["halo_bytes"] == 0
        assert study.strong[2]["halo_bytes"] > 0

    def test_render_has_tables_and_contention(self, study):
        text = study.render()
        assert "strong scaling" in text
        assert "weak scaling" in text
        assert "node hugetlb pool contention" in text
        assert "exhaustion degrades only the ranks" in text

    def test_efficiency_anchored_at_smallest_rank_count(self, study):
        assert study.speedup("strong", "with", 1) == 1.0
        assert study.efficiency("strong", "with", 1) == 1.0


class TestNodeContention:
    def test_exhaustion_degrades_only_late_ranks(self):
        """48 static 2 MiB pages serve two 40 MiB arenas (20 pages
        each); ranks 2 and 3 hit the dry pool and fall back per
        process — earlier residents keep their huge pages."""
        c = node_contention(ranks_per_node=4, pool_pages=48, arena_mib=40)
        assert c["degraded"] == [2, 3]
        assert [r["hugetlb"] for r in c["ranks"]] == [True, True,
                                                      False, False]
        assert c["fallback_total"] == 2

    def test_ample_pool_degrades_nobody(self):
        c = node_contention(ranks_per_node=2, pool_pages=64, arena_mib=16)
        assert c["degraded"] == []
        assert c["fallback_total"] == 0


class TestSerialIdentity:
    def test_one_rank_fabric_is_bit_identical(self):
        out = serial_identity(steps=1, session=ReplaySession(persist=False))
        assert out["digest_identical"]
        assert out["counters_identical"]
        assert out["fabric"] == out["serial"]


class TestRankSignatureCacheKeys:
    def test_same_signature_hits_the_cache(self):
        session = ReplaySession(persist=False)
        builder = sedov_fabric_builder(2, 2)
        from repro.mpisim.fabric import Fabric
        fabric = Fabric(builder, 1)
        log = fabric.attach_worklogs(helmholtz_eos=False)[0]
        fabric.evolve(nend=1)
        for _ in range(2):
            session.pipeline(log, FUJITSU, replication=1,
                             rank_signature="rank0/1@rpn1").run()
        assert session.stats.replays == 1
        assert session.stats.memory_hits == 1

    def test_distinct_signatures_never_share_a_config(self):
        """Identical shard content on different decompositions must not
        serve each other's cached config result.  (The trace layer below
        it is content-addressed and may still share — identical traces
        under identical geometry give identical counters by
        construction, whatever rank produced them.)"""
        session = ReplaySession(persist=False)
        builder = sedov_fabric_builder(2, 2)
        from repro.mpisim.fabric import Fabric
        fabric = Fabric(builder, 1)
        log = fabric.attach_worklogs(helmholtz_eos=False)[0]
        fabric.evolve(nend=1)
        for sig in ("rank0/1@rpn1", "rank0/2@rpn2"):
            session.pipeline(log, FUJITSU, replication=1,
                             rank_signature=sig).run()
        assert session.stats.configs == 2
        assert session.stats.memory_hits == 0  # distinct config keys


class TestPortingScalingAnchor:
    def test_sweep_not_starting_at_one_rank(self):
        result = PortingResult(
            compiler_times_s={},
            scaling_times_s={2: 10.0, 4: 5.5, 8: 3.0})
        assert result.speedup(2) == 1.0
        assert result.efficiency(2) == 1.0
        assert result.speedup(4) == pytest.approx(10.0 / 5.5)
        assert result.efficiency(4) == pytest.approx((10.0 / 5.5) / 2)

    def test_backward_compatible_at_rank_one(self):
        result = PortingResult(
            compiler_times_s={},
            scaling_times_s={1: 8.0, 2: 4.0})
        assert result.speedup(1) == 1.0
        assert result.speedup(2) == 2.0
        assert result.efficiency(2) == 1.0
