"""Tests for the fabric resilience study (checkpoint cadence sweep)."""

import pytest

from repro.experiments import resilience
from repro.experiments.registry import experiment


@pytest.fixture(scope="module")
def study():
    return resilience.resilience_study(quick=True, rank_counts=(2,),
                                       intervals=(1, 3), steps=4)


class TestResilienceStudy:
    def test_every_point_recovers_bit_identically(self, study):
        for p in study.points.values():
            assert p["faultfree_identical"] is True
            assert p["recovered_identical"] is True
            assert p["rank_restarts"] == 1

    def test_replayed_steps_follow_the_cadence(self, study):
        """A sparser cadence replays more: the kill lands at step 3,
        so interval 1 restores the step-2 checkpoint (0 replayed) and
        interval 3 restores step 0 (``(kill-1) - last_ckpt`` = 2)."""
        assert study.kill_step == 3
        assert study.points[(2, 1)]["replayed_steps"] == 0
        assert study.points[(2, 3)]["replayed_steps"] == 2

    def test_render_and_stats_mirror(self, study):
        text = study.render()
        assert "FABRIC RESILIENCE STUDY" in text
        assert "rec-ident" in text
        assert resilience.LAST_RUN_STATS["rank_restarts"] == \
            sum(p["rank_restarts"] for p in study.points.values())
        assert resilience.LAST_RUN_STATS["recovery_wall_s"] >= 0.0

    def test_registered_in_the_experiment_registry(self):
        spec = experiment("resilience")
        assert "fault tolerance" in spec.description
