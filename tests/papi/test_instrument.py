"""Tests for PapiInstrumentation — the paper's OOP-then-fallback story."""

import pytest

from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.papi.counters import CounterBank
from repro.papi.events import Event
from repro.papi.instrument import PapiInstrumentation
from repro.papi.region import PapiFinalizerError
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sod import SodProblem
from repro.toolchain.compiler import CRAY, FUJITSU, GNU
from repro.util.errors import ConfigurationError


def advance(inst, region, seconds, cycles):
    with inst.scope(region):
        inst.bank.advance(seconds, {Event.TOT_CYC: cycles})


class TestStyles:
    def test_oop_works_under_gnu(self):
        inst = PapiInstrumentation(GNU, style="oop")
        advance(inst, "eos", 1.0, 1.8e9)
        assert inst.event_set("eos").elapsed_s == pytest.approx(1.0)
        assert not inst.fell_back

    def test_oop_fails_under_fujitsu(self):
        inst = PapiInstrumentation(FUJITSU, style="oop")
        with pytest.raises(PapiFinalizerError):
            advance(inst, "eos", 1.0, 1.8e9)

    def test_hardcoded_works_everywhere(self):
        for compiler in (GNU, CRAY, FUJITSU):
            inst = PapiInstrumentation(compiler, style="hardcoded")
            advance(inst, "eos", 0.5, 9e8)
            assert inst.event_set("eos").elapsed_s == pytest.approx(0.5)

    def test_auto_falls_back_under_fujitsu(self):
        """The paper's experience: the first OOP interval is lost, the
        rest are captured through the hard-coded calls."""
        inst = PapiInstrumentation(FUJITSU, style="auto")
        advance(inst, "eos", 1.0, 1.8e9)  # lost to the finalizer bug
        assert inst.fell_back
        assert inst.lost_measurements == 1
        advance(inst, "eos", 2.0, 3.6e9)
        advance(inst, "eos", 3.0, 5.4e9)
        assert inst.event_set("eos").elapsed_s == pytest.approx(5.0)

    def test_auto_never_falls_back_under_gnu(self):
        inst = PapiInstrumentation(GNU, style="auto")
        for _ in range(3):
            advance(inst, "eos", 1.0, 1.8e9)
        assert not inst.fell_back
        assert inst.event_set("eos").n_intervals == 3

    def test_unknown_style_rejected(self):
        with pytest.raises(ConfigurationError):
            PapiInstrumentation(GNU, style="magic")

    def test_measures_exposed(self):
        inst = PapiInstrumentation(GNU)
        advance(inst, "hydro", 2.0, 3.6e9)
        m = inst.measures("hydro")
        assert m["hardware_cycles"] == pytest.approx(3.6e9)
        assert m["time_s"] == pytest.approx(2.0)


class TestHydroIntegration:
    def _sim_grid(self):
        tree = AMRTree(ndim=1, nblockx=2, max_level=0,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=1, nxb=16, nyb=1, nzb=1, nguard=4, maxblocks=8)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        SodProblem().initialize(grid, eos)
        return grid, eos

    def test_unit_brackets_regions(self):
        grid, eos = self._sim_grid()
        inst = PapiInstrumentation(GNU)
        hydro = HydroUnit(eos, instrumentation=inst)
        hydro.step(grid, 1e-4)
        assert inst.event_set("hydro").n_intervals == 1  # one sweep in 1-d
        assert inst.event_set("eos").n_intervals == 1

    def test_unit_with_fujitsu_auto_fallback(self):
        grid, eos = self._sim_grid()
        inst = PapiInstrumentation(FUJITSU, style="auto")
        hydro = HydroUnit(eos, instrumentation=inst)
        for _ in range(3):
            hydro.step(grid, 1e-5)
        assert inst.fell_back
        assert inst.lost_measurements == 1
        # regions after the fallback are captured
        assert inst.event_set("eos").n_intervals >= 2
