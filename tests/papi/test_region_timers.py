"""Tests for instrumented regions (incl. the Fujitsu finalizer bug) and
FLASH-style timers."""

import pytest

from repro.papi.counters import CounterBank
from repro.papi.events import Event
from repro.papi.region import (
    FortranPerfObject,
    PapiFinalizerError,
    RegionStore,
    hardcoded_begin,
    hardcoded_end,
)
from repro.papi.timers import Timers
from repro.toolchain.compiler import CRAY, FUJITSU, GNU
from repro.util.errors import ReproError


class TestFortranPerfObject:
    def test_works_under_gnu(self):
        bank = CounterBank()
        store = RegionStore(bank)
        with FortranPerfObject(store, "eos", GNU):
            bank.advance(1.0, {Event.TOT_CYC: 1.8e9})
        assert store.event_set("eos").read()[Event.TOT_CYC] == pytest.approx(1.8e9)

    def test_works_under_cray(self):
        bank = CounterBank()
        store = RegionStore(bank)
        with FortranPerfObject(store, "hydro", CRAY):
            bank.advance(0.5)
        assert store.event_set("hydro").elapsed_s == pytest.approx(0.5)

    def test_fujitsu_finalizer_bug(self):
        """Section II: 'this module did not work with the Fujitsu compiler
        ... the issue was with calling the finalizer.'"""
        bank = CounterBank()
        store = RegionStore(bank)
        with pytest.raises(PapiFinalizerError):
            with FortranPerfObject(store, "eos", FUJITSU):
                bank.advance(1.0, {Event.TOT_CYC: 1.8e9})
        # the measurement is lost, not half-recorded
        assert store.event_set("eos").read().get(Event.TOT_CYC, 0.0) == 0.0

    def test_hardcoded_fallback_works_everywhere(self):
        """'So we fell back to just hard coding the PAPI calls ... to work
        with all compilers we tested.'"""
        for compiler in (GNU, CRAY, FUJITSU):
            bank = CounterBank()
            store = RegionStore(bank)
            hardcoded_begin(store, "eos")
            bank.advance(2.0, {Event.TLB_DM: 50})
            hardcoded_end(store, "eos")
            assert store.event_set("eos").read()[Event.TLB_DM] == 50, compiler.name


class TestTimers:
    def test_simple_interval(self):
        bank = CounterBank()
        timers = Timers(bank)
        timers.start("evolution")
        bank.advance(5.0)
        timers.stop("evolution")
        assert timers.get("evolution") == pytest.approx(5.0)

    def test_nesting(self):
        bank = CounterBank()
        timers = Timers(bank)
        with timers.scope("evolution"):
            with timers.scope("hydro"):
                bank.advance(2.0)
            with timers.scope("eos"):
                bank.advance(1.0)
        assert timers.get("evolution") == pytest.approx(3.0)
        assert timers.get("evolution/hydro") == pytest.approx(2.0)
        assert timers.get("evolution/eos") == pytest.approx(1.0)

    def test_mismatched_stop_rejected(self):
        timers = Timers(CounterBank())
        timers.start("a")
        with pytest.raises(ReproError):
            timers.stop("b")

    def test_recursive_same_name_nests(self):
        """Starting a running timer's name again nests (FLASH semantics)."""
        bank = CounterBank()
        timers = Timers(bank)
        timers.start("a")
        timers.start("a")  # nested child, not a restart
        bank.advance(1.0)
        timers.stop("a")
        timers.stop("a")
        assert timers.get("a") == pytest.approx(1.0)
        assert timers.get("a/a") == pytest.approx(1.0)

    def test_accumulates_over_calls(self):
        bank = CounterBank()
        timers = Timers(bank)
        for _ in range(4):
            with timers.scope("step"):
                bank.advance(0.25)
        assert timers.get("step") == pytest.approx(1.0)

    def test_unknown_path(self):
        timers = Timers(CounterBank())
        with pytest.raises(KeyError):
            timers.get("nope")

    def test_summary_format(self):
        bank = CounterBank()
        timers = Timers(bank)
        with timers.scope("evolution"):
            with timers.scope("hydro"):
                bank.advance(1.0)
        text = timers.summary()
        assert "evolution" in text and "hydro" in text
        assert "calls" in text

    def test_papi_timer_consistency(self):
        """The paper used FLASH timers as a consistency check on PAPI."""
        bank = CounterBank()
        timers = Timers(bank)
        store = RegionStore(bank)
        with timers.scope("evolution"):
            hardcoded_begin(store, "eos")
            bank.advance(3.0, {Event.TOT_CYC: 3 * 1.8e9})
            hardcoded_end(store, "eos")
            bank.advance(7.0)  # other units
        papi_time = store.event_set("eos").elapsed_s
        flash_time = timers.get("evolution")
        assert papi_time == pytest.approx(3.0)
        assert flash_time == pytest.approx(10.0)
        assert papi_time < flash_time
