"""Tests for the simulated PMU, event sets, and derived measures."""

import pytest

from repro.kernel.params import Sysctl
from repro.papi.counters import CounterBank, EventSet, PmuPermissionError
from repro.papi.events import Event, derive_measures
from repro.util.errors import ReproError


class TestCounterBank:
    def test_advance_accumulates(self):
        bank = CounterBank()
        bank.advance(1.0, {Event.TOT_CYC: 1e9})
        bank.advance(0.5, {Event.TOT_CYC: 5e8, Event.TLB_DM: 100})
        assert bank.time_s == pytest.approx(1.5)
        assert bank.totals[Event.TOT_CYC] == pytest.approx(1.5e9)
        assert bank.totals[Event.TLB_DM] == 100

    def test_time_monotonic(self):
        bank = CounterBank()
        with pytest.raises(ValueError):
            bank.advance(-1.0)

    def test_counters_monotonic(self):
        bank = CounterBank()
        with pytest.raises(ValueError):
            bank.advance(1.0, {Event.TLB_DM: -5})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_nonfinite_time_rejected(self, bad):
        bank = CounterBank()
        with pytest.raises(ValueError, match="finite"):
            bank.advance(bad)
        assert bank.time_s == 0.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_nonfinite_increment_rejected(self, bad):
        bank = CounterBank()
        with pytest.raises(ValueError, match="finite"):
            bank.advance(1.0, {Event.TLB_DM: bad})
        # a rejected advance must not half-apply
        assert bank.time_s == 0.0
        assert bank.totals[Event.TLB_DM] == 0.0

    def test_bad_increment_leaves_bank_untouched(self):
        bank = CounterBank()
        with pytest.raises(ValueError):
            bank.advance(1.0, {Event.TOT_CYC: 10.0, Event.TLB_DM: -5})
        assert bank.time_s == 0.0
        assert bank.totals[Event.TOT_CYC] == 0.0

    def test_permission_check(self):
        bank = CounterBank(sysctl=Sysctl(perf_event_paranoid=3))
        es = EventSet(bank=bank)
        with pytest.raises(PmuPermissionError):
            es.start()

    def test_fujitsu_sysctl_allows(self):
        bank = CounterBank(sysctl=Sysctl(perf_event_paranoid=1))
        EventSet(bank=bank).start()  # no raise


class TestEventSet:
    def test_delta_semantics(self):
        bank = CounterBank()
        bank.advance(10.0, {Event.TOT_CYC: 1e10})  # before the region
        es = EventSet(bank=bank)
        es.start()
        bank.advance(2.0, {Event.TOT_CYC: 3.6e9, Event.SVE_INST: 1e9})
        es.stop()
        counts = es.read()
        assert counts[Event.TOT_CYC] == pytest.approx(3.6e9)
        assert es.elapsed_s == pytest.approx(2.0)

    def test_accumulation_across_intervals(self):
        bank = CounterBank()
        es = EventSet(bank=bank)
        for _ in range(3):
            es.start()
            bank.advance(1.0, {Event.TLB_DM: 10})
            es.stop()
            bank.advance(1.0, {Event.TLB_DM: 999})  # outside the region
        assert es.read()[Event.TLB_DM] == 30
        assert es.elapsed_s == pytest.approx(3.0)
        assert es.n_intervals == 3

    def test_double_start_rejected(self):
        es = EventSet(bank=CounterBank())
        es.start()
        with pytest.raises(ReproError):
            es.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(ReproError):
            EventSet(bank=CounterBank()).stop()

    def test_reset(self):
        bank = CounterBank()
        es = EventSet(bank=bank)
        es.start()
        bank.advance(1.0, {Event.TOT_CYC: 1e9})
        es.stop()
        es.reset()
        assert es.read() == {}
        assert es.elapsed_s == 0.0


class TestDerivedMeasures:
    def test_paper_measures(self):
        counts = {
            Event.TOT_CYC: 1.25e11,
            Event.SVE_INST: 0.47 * 1.25e11,
            Event.MEM_BYTES: 4.19e9 * 69.7,
            Event.TLB_DM: 2.34e7 * 69.7,
        }
        m = derive_measures(counts, elapsed_s=69.7)
        assert m["hardware_cycles"] == pytest.approx(1.25e11)
        assert m["sve_per_cycle"] == pytest.approx(0.47)
        assert m["mem_gbytes_per_s"] == pytest.approx(4.19)
        assert m["dtlb_misses_per_s"] == pytest.approx(2.34e7)

    def test_zero_time_degrades_gracefully(self):
        m = derive_measures({}, elapsed_s=0.0)
        assert m["mem_gbytes_per_s"] == 0.0
        assert m["sve_per_cycle"] == 0.0
