"""Tests for the simulated MPI layer."""

import numpy as np
import pytest

from repro.mesh.block import BlockId
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.refine import refine_block
from repro.mesh.tree import AMRTree
from repro.mpisim.comm import (
    CommCostModel,
    DomainDecomposition,
    SimComm,
    scaling_model,
)
from repro.util.errors import ConfigurationError


def make_grid(nblock=4, max_level=2):
    tree = AMRTree(ndim=2, nblockx=nblock, nblocky=nblock,
                   max_level=max_level, domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=2, maxblocks=256)
    return Grid(tree, spec)


class TestCostModel:
    def test_p2p_latency_floor(self):
        cost = CommCostModel()
        assert cost.p2p_time(0) == pytest.approx(cost.latency_s)

    def test_p2p_bandwidth_limit(self):
        cost = CommCostModel()
        t = cost.p2p_time(12_500_000_000)
        assert t == pytest.approx(1.0 + cost.latency_s)

    def test_allreduce_log_rounds(self):
        cost = CommCostModel()
        t2 = cost.allreduce_time(8, 2)
        t16 = cost.allreduce_time(8, 16)
        assert t16 == pytest.approx(4 * t2)

    def test_allreduce_single_rank_free(self):
        assert CommCostModel().allreduce_time(8, 1) == 0.0

    def test_node_bandwidth_shared_by_residents(self):
        """Two resident ranks halve the effective per-rank bandwidth."""
        cost = CommCostModel()
        assert cost.effective_bandwidth_Bps(1) == cost.bandwidth_Bps
        assert cost.effective_bandwidth_Bps(2) == pytest.approx(
            cost.node_bandwidth_Bps / 2)
        t1 = cost.p2p_time(12_500_000_000, ranks_per_node=1)
        t2 = cost.p2p_time(12_500_000_000, ranks_per_node=2)
        assert t2 == pytest.approx(2.0 + cost.latency_s)
        assert t2 > t1

    def test_link_bandwidth_still_caps(self):
        """A fat node pipe cannot exceed the per-rank link rate."""
        cost = CommCostModel(node_bandwidth_Bps=100e9)
        assert cost.effective_bandwidth_Bps(2) == cost.bandwidth_Bps

    def test_allreduce_respects_residency(self):
        cost = CommCostModel()
        assert cost.allreduce_time(8 << 20, 4, ranks_per_node=4) > \
            cost.allreduce_time(8 << 20, 4, ranks_per_node=1)

    def test_residency_validated(self):
        with pytest.raises(ConfigurationError):
            CommCostModel().effective_bandwidth_Bps(0)

    def test_resident_ranks_packing(self):
        cost = CommCostModel(cores_per_node=48)
        assert cost.resident_ranks(1) == 1
        assert cost.resident_ranks(32) == 32
        assert cost.resident_ranks(96) == 48


class TestDecomposition:
    def test_all_blocks_assigned_once(self):
        grid = make_grid()
        dd = DomainDecomposition.split(grid, 4)
        assigned = [b for blocks in dd.assignment.values() for b in blocks]
        assert sorted(assigned) == sorted(grid.tree.leaves())

    def test_balanced(self):
        grid = make_grid()
        dd = DomainDecomposition.split(grid, 4)
        assert dd.load_imbalance() == pytest.approx(1.0)

    def test_imbalance_with_refinement(self):
        grid = make_grid()
        refine_block(grid, BlockId(0, 0, 0))
        dd = DomainDecomposition.split(grid, 4)
        assert dd.load_imbalance() >= 1.0

    def test_morton_contiguity_limits_halo(self):
        """Morton-contiguous ranks talk to few others: off-rank faces are
        a minority of all faces."""
        grid = make_grid(nblock=8, max_level=0)
        dd = DomainDecomposition.split(grid, 4)
        face_bytes = 100
        total_halo = sum(dd.halo_bytes(grid, r, face_bytes) for r in range(4))
        all_faces = grid.tree.n_leaves * 4 * face_bytes
        assert total_halo < 0.5 * all_faces

    def test_rank_of(self):
        grid = make_grid()
        dd = DomainDecomposition.split(grid, 2)
        bid = grid.tree.leaves()[0]
        assert dd.rank_of(bid) == 0

    def test_rank_of_consistent_for_every_block(self):
        """The reverse map agrees with the assignment for all blocks."""
        grid = make_grid()
        dd = DomainDecomposition.split(grid, 4)
        for rank, blocks in dd.assignment.items():
            for bid in blocks:
                assert dd.rank_of(bid) == rank

    def test_rank_of_unknown_block_raises(self):
        grid = make_grid()
        dd = DomainDecomposition.split(grid, 2)
        with pytest.raises(KeyError):
            dd.rank_of(BlockId(99, 99, 99))

    def test_rank_of_handmade_assignment(self):
        """Manually constructed decompositions lazily build the map."""
        grid = make_grid()
        leaves = grid.tree.leaves()
        dd = DomainDecomposition(n_ranks=2)
        dd.assignment[0] = leaves[: len(leaves) // 2]
        dd.assignment[1] = leaves[len(leaves) // 2:]
        assert dd.rank_of(leaves[-1]) == 1
        # growing the assignment invalidates the cached map via its size
        extra = BlockId(7, 7, 7)
        dd.assignment[0].append(extra)
        assert dd.rank_of(extra) == 0

    def test_needs_positive_ranks(self):
        with pytest.raises(ConfigurationError):
            DomainDecomposition.split(make_grid(), 0)


class TestSimComm:
    def test_allreduce_min_exact(self):
        comm = SimComm(4)
        assert comm.allreduce_min([4.0, 2.0, 8.0, 3.0]) == 2.0
        assert comm.elapsed_s > 0

    def test_allreduce_sum_exact(self):
        comm = SimComm(3)
        assert comm.allreduce_sum([1.0, 2.0, 3.0]) == 6.0

    def test_shape_checked(self):
        comm = SimComm(4)
        with pytest.raises(ConfigurationError):
            comm.allreduce_min([1.0, 2.0])

    def test_halo_exchange_accounts_bytes(self):
        comm = SimComm(2)
        comm.halo_exchange([1000, 2000])
        assert comm.bytes_moved == 3000
        assert comm.elapsed_s >= comm.cost.p2p_time(2000)


class TestSimCommResidency:
    def test_simcomm_threads_ranks_per_node(self):
        dense = SimComm(4, ranks_per_node=4)
        sparse = SimComm(4, ranks_per_node=1)
        for comm in (dense, sparse):
            comm.halo_exchange([10_000_000] * 4)
        assert dense.elapsed_s > sparse.elapsed_s

    def test_simcomm_residency_validated(self):
        with pytest.raises(ConfigurationError):
            SimComm(4, ranks_per_node=0)


class TestScalingModel:
    def test_scales_reasonably_well(self):
        """The porting narrative: time falls with rank count, with the
        usual surface/volume efficiency tail."""
        grid = make_grid(nblock=8, max_level=0)
        times = scaling_model(grid, [1, 2, 4, 8, 16],
                              seconds_per_block_step=1e-2,
                              bytes_per_face=8 * 10 * 8 * 2)
        ts = [times[p] for p in (1, 2, 4, 8, 16)]
        assert all(a > b for a, b in zip(ts, ts[1:]))  # monotone speedup
        eff16 = times[1] / (16 * times[16])
        assert 0.5 < eff16 <= 1.02  # reasonable, not perfect

    def test_dense_packing_slower_than_sparse(self):
        """Node-injection sharing makes packed curves honestly slower."""
        grid = make_grid(nblock=8, max_level=0)
        kwargs = dict(seconds_per_block_step=1e-2,
                      bytes_per_face=8 * 10 * 8 * 2)
        sparse = scaling_model(grid, [16], **kwargs)
        dense = scaling_model(grid, [16], ranks_per_node=16, **kwargs)
        assert dense[16] > sparse[16]

    def test_residency_capped_at_rank_count(self):
        """ranks_per_node above p degrades no further than p residents."""
        grid = make_grid(nblock=8, max_level=0)
        kwargs = dict(seconds_per_block_step=1e-2,
                      bytes_per_face=8 * 10 * 8 * 2)
        a = scaling_model(grid, [4], ranks_per_node=4, **kwargs)
        b = scaling_model(grid, [4], ranks_per_node=48, **kwargs)
        assert a[4] == pytest.approx(b[4])


class TestEmptyShardContract:
    def test_more_ranks_than_leaves_rejected(self):
        grid = make_grid(nblock=2, max_level=0)  # 4 leaves
        with pytest.raises(ConfigurationError, match="empty shards"):
            DomainDecomposition.split(grid, 5)

    def test_allow_empty_opts_in(self):
        """The documented contract: every rank key exists, idle ranks
        exchange zero bytes, load_imbalance counts them."""
        grid = make_grid(nblock=2, max_level=0)
        dd = DomainDecomposition.split(grid, 6, allow_empty=True)
        assert sorted(dd.assignment) == list(range(6))
        empty = [r for r, blocks in dd.assignment.items() if not blocks]
        assert empty
        for rank in empty:
            assert dd.halo_bytes(grid, rank, 100) == 0
        assert dd.load_imbalance() > 1.0

    def test_exact_fit_needs_no_opt_in(self):
        grid = make_grid(nblock=2, max_level=0)
        dd = DomainDecomposition.split(grid, 4)
        assert all(len(b) == 1 for b in dd.assignment.values())


class TestHaloTraffic:
    def test_sent_equals_received_uniform(self):
        grid = make_grid(nblock=4, max_level=0)
        dd = DomainDecomposition.split(grid, 4)
        received, sent = dd.halo_traffic(grid, 100)
        assert sum(received) == sum(sent) > 0

    def test_sent_equals_received_refined(self):
        """Symmetry holds across refinement jumps, where one coarse face
        reads several fine neighbours (and vice versa)."""
        grid = make_grid(nblock=4, max_level=2)
        refine_block(grid, BlockId(0, 0, 0))
        refine_block(grid, BlockId(1, 2, 2))
        for n_ranks in (2, 3, 4, 7):
            dd = DomainDecomposition.split(grid, n_ranks)
            received, sent = dd.halo_traffic(grid, 64)
            assert sum(received) == sum(sent) > 0
            assert len(received) == len(sent) == n_ranks

    def test_halo_bytes_delegates_to_traffic(self):
        grid = make_grid(nblock=4, max_level=0)
        dd = DomainDecomposition.split(grid, 4)
        received, _ = dd.halo_traffic(grid, 100)
        for rank in range(4):
            assert dd.halo_bytes(grid, rank, 100) == received[rank]


class TestChargedTimeMonotonicity:
    def test_halo_time_monotone_in_ranks_per_node(self):
        """Denser node packing shares the injection pipe: the charged
        time for the same exchange never decreases with residency."""
        elapsed = []
        for rpn in (1, 2, 4, 8):
            comm = SimComm(8, ranks_per_node=rpn)
            comm.halo_exchange([5_000_000] * 8)
            elapsed.append(comm.elapsed_s)
        assert all(a <= b for a, b in zip(elapsed, elapsed[1:]))
        assert elapsed[0] < elapsed[-1]

    def test_allreduce_time_monotone_in_ranks_per_node(self):
        elapsed = []
        for rpn in (1, 2, 4):
            comm = SimComm(4, ranks_per_node=rpn)
            comm.allreduce_min(np.zeros(4))
            elapsed.append(comm.elapsed_s)
        assert all(a <= b for a, b in zip(elapsed, elapsed[1:]))


class TestCollectiveDeadlines:
    """Optional modelled-time deadlines on collectives (default: off)."""

    def test_timeout_must_be_positive(self):
        from repro.util.errors import FabricTimeout  # noqa: F401
        with pytest.raises(ConfigurationError):
            SimComm(2, timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            SimComm(2, timeout_s=-1.0)

    def test_default_off_is_bit_identical(self):
        """No deadline configured: charges and results are untouched
        (the scaling bench baselines depend on this)."""
        plain = SimComm(4)
        timed = SimComm(4, timeout_s=1e9)  # generous: never trips
        for comm in (plain, timed):
            comm.allreduce_min(np.arange(4.0))
            comm.p2p(1_000_000)
            comm.halo_exchange([100, 200, 300, 400])
        assert plain.elapsed_s == timed.elapsed_s
        assert plain.bytes_moved == timed.bytes_moved

    def test_tripped_deadline_charges_nothing(self):
        """A timed-out collective raises FabricTimeout and leaves the
        accounting untouched — the caller restores a snapshot, so a
        partial charge would desynchronise the replay."""
        from repro.util.errors import FabricTimeout
        comm = SimComm(4, timeout_s=1e-12)
        before = (comm.elapsed_s, comm.bytes_moved)
        with pytest.raises(FabricTimeout):
            comm.allreduce_min(np.zeros(4))
        with pytest.raises(FabricTimeout):
            comm.p2p(5_000_000)
        with pytest.raises(FabricTimeout):
            comm.halo_exchange([5_000_000] * 4)
        assert (comm.elapsed_s, comm.bytes_moved) == before

    def test_per_call_deadline_overrides_constructor(self):
        from repro.util.errors import FabricTimeout
        comm = SimComm(4, timeout_s=1e-12)
        # a generous per-call deadline admits the op
        comm.allreduce_min(np.zeros(4), timeout_s=10.0)
        assert comm.elapsed_s > 0.0
        # and a tight per-call deadline trips an otherwise-open comm
        open_comm = SimComm(4)
        with pytest.raises(FabricTimeout):
            open_comm.p2p(5_000_000, timeout_s=1e-12)

    def test_p2p_returns_modelled_seconds_and_counts_bytes(self):
        comm = SimComm(2)
        seconds = comm.p2p(12_500)
        assert seconds == pytest.approx(comm.cost.p2p_time(12_500, 1))
        assert comm.bytes_moved == 12_500
        assert comm.elapsed_s == pytest.approx(seconds)
        with pytest.raises(ConfigurationError):
            comm.p2p(-1)
