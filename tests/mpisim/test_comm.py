"""Tests for the simulated MPI layer."""

import numpy as np
import pytest

from repro.mesh.block import BlockId
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.refine import refine_block
from repro.mesh.tree import AMRTree
from repro.mpisim.comm import (
    CommCostModel,
    DomainDecomposition,
    SimComm,
    scaling_model,
)
from repro.util.errors import ConfigurationError


def make_grid(nblock=4, max_level=2):
    tree = AMRTree(ndim=2, nblockx=nblock, nblocky=nblock,
                   max_level=max_level, domain=((0, 1), (0, 1), (0, 1)))
    spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=2, maxblocks=256)
    return Grid(tree, spec)


class TestCostModel:
    def test_p2p_latency_floor(self):
        cost = CommCostModel()
        assert cost.p2p_time(0) == pytest.approx(cost.latency_s)

    def test_p2p_bandwidth_limit(self):
        cost = CommCostModel()
        t = cost.p2p_time(12_500_000_000)
        assert t == pytest.approx(1.0 + cost.latency_s)

    def test_allreduce_log_rounds(self):
        cost = CommCostModel()
        t2 = cost.allreduce_time(8, 2)
        t16 = cost.allreduce_time(8, 16)
        assert t16 == pytest.approx(4 * t2)

    def test_allreduce_single_rank_free(self):
        assert CommCostModel().allreduce_time(8, 1) == 0.0


class TestDecomposition:
    def test_all_blocks_assigned_once(self):
        grid = make_grid()
        dd = DomainDecomposition.split(grid, 4)
        assigned = [b for blocks in dd.assignment.values() for b in blocks]
        assert sorted(assigned) == sorted(grid.tree.leaves())

    def test_balanced(self):
        grid = make_grid()
        dd = DomainDecomposition.split(grid, 4)
        assert dd.load_imbalance() == pytest.approx(1.0)

    def test_imbalance_with_refinement(self):
        grid = make_grid()
        refine_block(grid, BlockId(0, 0, 0))
        dd = DomainDecomposition.split(grid, 4)
        assert dd.load_imbalance() >= 1.0

    def test_morton_contiguity_limits_halo(self):
        """Morton-contiguous ranks talk to few others: off-rank faces are
        a minority of all faces."""
        grid = make_grid(nblock=8, max_level=0)
        dd = DomainDecomposition.split(grid, 4)
        face_bytes = 100
        total_halo = sum(dd.halo_bytes(grid, r, face_bytes) for r in range(4))
        all_faces = grid.tree.n_leaves * 4 * face_bytes
        assert total_halo < 0.5 * all_faces

    def test_rank_of(self):
        grid = make_grid()
        dd = DomainDecomposition.split(grid, 2)
        bid = grid.tree.leaves()[0]
        assert dd.rank_of(bid) == 0

    def test_needs_positive_ranks(self):
        with pytest.raises(ConfigurationError):
            DomainDecomposition.split(make_grid(), 0)


class TestSimComm:
    def test_allreduce_min_exact(self):
        comm = SimComm(4)
        assert comm.allreduce_min([4.0, 2.0, 8.0, 3.0]) == 2.0
        assert comm.elapsed_s > 0

    def test_allreduce_sum_exact(self):
        comm = SimComm(3)
        assert comm.allreduce_sum([1.0, 2.0, 3.0]) == 6.0

    def test_shape_checked(self):
        comm = SimComm(4)
        with pytest.raises(ConfigurationError):
            comm.allreduce_min([1.0, 2.0])

    def test_halo_exchange_accounts_bytes(self):
        comm = SimComm(2)
        comm.halo_exchange([1000, 2000])
        assert comm.bytes_moved == 3000
        assert comm.elapsed_s >= comm.cost.p2p_time(2000)


class TestScalingModel:
    def test_scales_reasonably_well(self):
        """The porting narrative: time falls with rank count, with the
        usual surface/volume efficiency tail."""
        grid = make_grid(nblock=8, max_level=0)
        times = scaling_model(grid, [1, 2, 4, 8, 16],
                              seconds_per_block_step=1e-2,
                              bytes_per_face=8 * 10 * 8 * 2)
        ts = [times[p] for p in (1, 2, 4, 8, 16)]
        assert all(a > b for a, b in zip(ts, ts[1:]))  # monotone speedup
        eff16 = times[1] / (16 * times[16])
        assert 0.5 < eff16 <= 1.02  # reasonable, not perfect
