"""Tests for the mpisim unit's registry declarations."""

import pytest

from repro.core import parameter_registry, unit_registry
from repro.driver.config import RuntimeParameters
from repro.util.errors import ConfigurationError


class TestMpisimUnit:
    def test_registered(self):
        spec = unit_registry.unit("mpisim")
        assert spec.phase == 0  # decomposition precedes every step hook
        names = {p.name for p in spec.parameters}
        assert names == {"n_ranks", "ranks_per_node",
                         "fab_barrier_timeout_s", "fab_max_rank_restarts",
                         "fab_checkpoint_interval"}

    def test_parameters_owned_by_mpisim(self):
        assert parameter_registry.owner("n_ranks") == "mpisim"
        assert parameter_registry.owner("ranks_per_node") == "mpisim"

    def test_serial_defaults(self):
        """Both default to 1: a par file that never mentions ranks gets
        the serial spine."""
        assert parameter_registry.spec("n_ranks").default == 1
        assert parameter_registry.spec("ranks_per_node").default == 1

    def test_validators_reject_nonpositive(self):
        for name in ("n_ranks", "ranks_per_node"):
            spec = parameter_registry.spec(name)
            spec.validate(1)
            spec.validate(64)
            with pytest.raises(ConfigurationError):
                spec.validate(0)

    def test_par_file_roundtrip(self):
        params = RuntimeParameters.from_par("n_ranks = 4\nranks_per_node = 2")
        assert params.get("n_ranks") == 4
        assert params.get("ranks_per_node") == 2

    def test_par_file_validation(self):
        with pytest.raises(ConfigurationError):
            RuntimeParameters.from_par("n_ranks = 0")

    def test_fault_tolerance_parameters(self):
        """The fab_* knobs parse from a par file like any unit's and
        reject nonsense."""
        params = RuntimeParameters.from_par(
            "fab_barrier_timeout_s = 2.5\n"
            "fab_max_rank_restarts = 3\n"
            "fab_checkpoint_interval = 4")
        assert params.get("fab_barrier_timeout_s") == 2.5
        assert params.get("fab_max_rank_restarts") == 3
        assert params.get("fab_checkpoint_interval") == 4
        # defaults: no deadline, 2 restarts, checkpoint every step
        assert parameter_registry.spec("fab_barrier_timeout_s").default == 0.0
        assert parameter_registry.spec("fab_max_rank_restarts").default == 2
        assert parameter_registry.spec("fab_checkpoint_interval").default == 1
        with pytest.raises(ConfigurationError):
            RuntimeParameters.from_par("fab_barrier_timeout_s = -1.0")
        with pytest.raises(ConfigurationError):
            RuntimeParameters.from_par("fab_max_rank_restarts = -1")
        with pytest.raises(ConfigurationError):
            RuntimeParameters.from_par("fab_checkpoint_interval = 0")
