"""Fault-tolerance tests for the rank-decomposed fabric.

The load-bearing property mirrors the bit-identity tests next door:
a run that loses a rank mid-flight and recovers through the
coordinated checkpoint/restart machinery must finish *bit-identical*
to an unfaulted run — blocks, traffic counters, WorkLog digests, and
comm totals all exact.  Faults fire once (the injector's ``fired`` set
survives the rollback), so replayed steps are clean by construction.
"""

import json

import numpy as np
import pytest

from repro.chaos.injector import ChaosUnit
from repro.chaos.rankfaults import RankChaos
from repro.driver.simulation import Simulation
from repro.kernel.params import ookami_config
from repro.kernel.vmm import Kernel
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree
from repro.mpisim.fabric import MANIFEST_NAME, Fabric
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sedov import sedov_setup
from repro.util.errors import ConfigurationError, FabricTimeout, RankKilled


def sedov_builder(nblockx=4, nblocky=4, *, chaos_for_build=None):
    """A static-decomposition Sedov builder.

    ``chaos_for_build`` maps a build index to a ChaosUnit factory, so a
    single rank's simulation can carry an injector (the fabric builds
    rank sims in rank order).
    """
    count = {"n": 0}

    def build():
        idx = count["n"]
        count["n"] += 1
        tree = AMRTree(ndim=2, nblockx=nblockx, nblocky=nblocky,
                       max_level=0, domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=2,
                        maxblocks=nblockx * nblocky + 4)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        sedov_setup(grid, eos)
        units = [HydroUnit(eos, cfl=0.4)]
        if chaos_for_build and idx in chaos_for_build:
            units.append(chaos_for_build[idx]())
        return Simulation(grid, *units, nrefs=0, dtinit=1e-5)
    return build


def assert_fabrics_identical(fab, ref):
    """Blocks, traffic counters, bank totals, log digests: all exact."""
    assert fab.ranks[0].sim.t == ref.ranks[0].sim.t
    for ctx, rctx in zip(fab.ranks, ref.ranks):
        assert ctx.owned == rctx.owned
        for bid in ctx.owned:
            np.testing.assert_array_equal(
                ctx.grid.block_data(bid), rctx.grid.block_data(bid))
        assert ctx.bytes_sent == rctx.bytes_sent
        assert ctx.bytes_received == rctx.bytes_received
        if ctx.log is not None and rctx.log is not None:
            assert ctx.log.digest() == rctx.log.digest()
    assert fab.comm.bytes_moved == ref.comm.bytes_moved
    assert fab.comm.elapsed_s == ref.comm.elapsed_s


def reference_run(builder, n_ranks, nend):
    ref = Fabric(builder, n_ranks)
    ref.attach_worklogs(helmholtz_eos=False)
    ref.evolve(nend=nend)
    return ref


class TestCoordinatedRecovery:
    def test_faultfree_supervised_matches_evolve(self):
        """With no faults, the supervisor loop is a bit-identical
        wrapper around evolve() — checkpointing must not perturb."""
        ref = reference_run(sedov_builder(), 2, 4)
        fab = Fabric(sedov_builder(), 2)
        fab.attach_worklogs(helmholtz_eos=False)
        report = fab.run_supervised(nend=4, checkpoint_interval=1)
        assert report.steps_completed == 4
        assert report.rank_restarts == 0 and report.failure is None
        assert_fabrics_identical(fab, ref)

    def test_kill_recovery_bit_identical_four_ranks(self, tmp_path):
        """The acceptance run: a rank killed mid-step at 4 ranks is
        respawned from its checkpoint and the finished run is exact."""
        ref = reference_run(sedov_builder(), 4, 6)
        fab = Fabric(sedov_builder(), 4)
        fab.attach_worklogs(helmholtz_eos=False)
        chaos = RankChaos(faults=("kill_rank",), start=3, every=100,
                          target_rank=1)
        report = fab.run_supervised(nend=6, rank_chaos=chaos,
                                    checkpoint_dir=tmp_path / "ckpt")
        assert report.rank_restarts == 1
        assert report.steps_completed == 6
        assert report.recovery_wall_s > 0.0
        assert [f["kind"] for f in report.rank_faults] == ["kill_rank"]
        assert report.checkpoints  # cadence checkpoints were written
        assert_fabrics_identical(fab, ref)

    def test_stall_timeout_recovery_bit_identical(self):
        """A stalled rank trips the barrier deadline; the report names
        the missing rank with stacks, and recovery replays exactly."""
        ref = reference_run(sedov_builder(), 2, 5)
        fab = Fabric(sedov_builder(), 2, barrier_timeout_s=0.05)
        fab.attach_worklogs(helmholtz_eos=False)
        chaos = RankChaos(faults=("stall_rank",), start=2, every=100,
                          target_rank=1, stall_s=0.5)
        report = fab.run_supervised(nend=5, rank_chaos=chaos)
        assert report.timeouts >= 1
        assert report.rank_restarts >= 1
        assert set(report.rank_stacks) == {"0", "1"}
        assert all("File" in s for s in report.rank_stacks.values())
        assert report.steps_completed == 5
        assert_fabrics_identical(fab, ref)

    def test_stall_without_supervisor_raises_named_timeout(self):
        fab = Fabric(sedov_builder(), 2, barrier_timeout_s=0.05)
        chaos = RankChaos(faults=("stall_rank",), start=1, every=100,
                          target_rank=1, stall_s=0.5)
        fab.rank_chaos = chaos
        with pytest.raises(FabricTimeout) as exc_info:
            fab.step()
        assert exc_info.value.missing_ranks == (1,)
        assert set(exc_info.value.rank_stacks) == {0, 1}

    def test_corrupt_halo_recovers_via_dt_retry(self):
        """Halo corruption flows through the post-step guards and the
        dt-retry rollback; the run completes with clean final guards
        (the trajectory legitimately differs: dt was backed off)."""
        fab = Fabric(sedov_builder(), 2)
        chaos = RankChaos(faults=("corrupt_halo",), start=2, every=100,
                          target_rank=1)
        report = fab.run_supervised(nend=4, rank_chaos=chaos)
        assert report.guard_trips >= 1
        assert report.steps_completed == 4
        assert report.failure is None
        for ctx in fab.ranks:
            for bid in ctx.owned:
                assert np.all(np.isfinite(ctx.grid.block_data(bid)))

    def test_restart_budget_exhaustion_attaches_report(self):
        """Beyond max_rank_restarts the error re-raises, report
        attached — every-step kills exhaust a budget of 1."""
        fab = Fabric(sedov_builder(), 2)
        chaos = RankChaos(faults=("kill_rank",), start=2, every=1,
                          target_rank=0)
        with pytest.raises(RankKilled) as exc_info:
            fab.run_supervised(nend=6, rank_chaos=chaos,
                               max_rank_restarts=1)
        report = exc_info.value.report
        assert report.rank_restarts == 1
        assert report.failure is not None
        assert "rank 0" in report.failure

    def test_drain_pool_respawn_degrades_to_base_pages(self):
        """A drained hugetlb pool at the killed rank's node makes the
        respawn re-admission fall back to base pages — counted, never
        fatal."""
        kernel = Kernel(ookami_config())
        fab = Fabric(sedov_builder(), 2)
        chaos = RankChaos(
            faults=("drain_pool_at_rank", "kill_rank"), start=2, every=1,
            target_rank=1, kernel=kernel)
        report = fab.run_supervised(nend=5, rank_chaos=chaos,
                                    max_rank_restarts=4)
        assert report.rank_restarts >= 1
        assert report.steps_completed == 5
        assert report.degradations.get("hugetlb_base_page_fallback", 0) >= 1


class TestStopFlag:
    def test_chaos_signal_routes_to_stop_flag_under_fabric(self):
        """The chaos ``signal`` fault must not touch signal.signal off
        the main thread: under the fabric it trips the stop flag and
        the run stops cleanly at the next boundary."""
        def make_chaos():
            return ChaosUnit(faults=("signal",), start=2, every=100)

        builder = sedov_builder(
            chaos_for_build={0: make_chaos, 1: make_chaos})
        fab = Fabric(builder, 2)
        report = fab.run_supervised(nend=6)
        assert report.interrupted == "stop_flag"
        assert report.steps_completed == 2
        assert report.failure is None

    def test_request_stop_writes_final_checkpoint(self, tmp_path):
        fab = Fabric(sedov_builder(), 2)
        fab.request_stop()
        report = fab.run_supervised(nend=4,
                                    checkpoint_dir=tmp_path / "ckpt")
        assert report.interrupted == "stop_flag"
        assert report.steps_completed == 0
        assert report.final_checkpoint is not None


class TestCheckpointRestart:
    def test_write_then_restart_bit_identical(self, tmp_path):
        """restart() resumes from disk and the continuation equals an
        uninterrupted run, bit for bit."""
        ref = Fabric(sedov_builder(), 2)
        ref.evolve(nend=5)

        fab = Fabric(sedov_builder(), 2)
        fab.evolve(nend=3)
        ckpt = tmp_path / "ckpt"
        manifest = fab.write_checkpoint(ckpt)
        assert manifest == ckpt / MANIFEST_NAME and manifest.exists()

        fab2 = Fabric.restart(ckpt, sedov_builder())
        assert fab2.step_count == 3
        assert fab2.comm.bytes_moved == fab.comm.bytes_moved
        fab2.evolve(nend=2)  # evolve() is relative: 2 more steps
        assert fab2.ranks[0].sim.t == ref.ranks[0].sim.t
        for ctx, rctx in zip(fab2.ranks, ref.ranks):
            for bid in ctx.owned:
                np.testing.assert_array_equal(
                    ctx.grid.block_data(bid), rctx.grid.block_data(bid))

    def test_restart_rejects_wrong_schema(self, tmp_path):
        fab = Fabric(sedov_builder(), 2)
        fab.evolve(nend=1)
        ckpt = tmp_path / "ckpt"
        manifest_path = fab.write_checkpoint(ckpt)
        manifest = json.loads(manifest_path.read_text())
        manifest["schema"] = "repro.fabric-checkpoint/999"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError):
            Fabric.restart(ckpt, sedov_builder())

    def test_snapshot_restore_roundtrip_is_exact(self):
        fab = Fabric(sedov_builder(), 2)
        fab.attach_worklogs(helmholtz_eos=False)
        fab.evolve(nend=2)
        snap = fab.snapshot()
        before = {i: [ctx.grid.block_data(b).copy() for b in ctx.owned]
                  for i, ctx in enumerate(fab.ranks)}
        t_before = fab.ranks[0].sim.t
        digests = [ctx.log.digest() for ctx in fab.ranks]
        fab.evolve(nend=2)
        fab.restore(snap)
        assert fab.step_count == 2
        assert fab.ranks[0].sim.t == t_before
        for i, ctx in enumerate(fab.ranks):
            for blk, bid in zip(before[i], ctx.owned):
                np.testing.assert_array_equal(
                    blk, ctx.grid.block_data(bid))
            assert ctx.log.digest() == digests[i]


class TestBadDtOneRank:
    """Satellite: a poisoned dt reduction from a single rank inside a
    RankContext — the renegotiation path must stay bit-identical with
    no guardcell tearing, at 2 and at 4 ranks."""

    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_bad_dt_on_one_rank_bit_identical(self, n_ranks):
        ref = reference_run(sedov_builder(), n_ranks, 5)

        def make_chaos():
            return ChaosUnit(faults=("bad_dt",), start=3, every=100)

        builder = sedov_builder(chaos_for_build={1: make_chaos})
        fab = Fabric(builder, n_ranks)
        fab.attach_worklogs(helmholtz_eos=False)
        report = fab.run_supervised(nend=5)
        assert report.guard_trips >= 1  # the poisoned reduction tripped
        assert report.steps_completed == 5
        # block_data is the full padded view, so this bit-identity
        # check covers guard cells too: no tearing anywhere
        assert_fabrics_identical(fab, ref)
