"""Tests for the rank-decomposed simulation fabric.

The load-bearing property is bit-identity: a decomposed run must equal
the serial spine exactly (not approximately) — the same theorem real
PARAMESH relies on when it fills guard cells from surrogate blocks.
"""

import threading

import numpy as np
import pytest

from repro.driver.simulation import Simulation
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.refine import refine_block
from repro.mesh.tree import AMRTree
from repro.mpisim.fabric import Fabric
from repro.perfmodel.workrecord import WorkLog
from repro.physics.eos import GammaLawEOS
from repro.physics.hydro.unit import HydroUnit
from repro.setups.sedov import sedov_setup
from repro.util.errors import ConfigurationError


def sedov_builder(nblockx=4, nblocky=4, *, nrefs=0):
    def build():
        tree = AMRTree(ndim=2, nblockx=nblockx, nblocky=nblocky,
                       max_level=0, domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=2,
                        maxblocks=nblockx * nblocky + 4)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        sedov_setup(grid, eos)
        kwargs = {"refine_var": "pres"} if nrefs else {}
        return Simulation(grid, HydroUnit(eos, cfl=0.4), nrefs=nrefs,
                          dtinit=1e-5, **kwargs)
    return build


class TestBitIdentity:
    def test_two_ranks_match_serial_bit_for_bit(self):
        """Every owned block equals the serial run exactly after
        several lockstep steps — guards included (the surrogate
        refreshes reproduce serial fill_guardcells)."""
        builder = sedov_builder()
        serial = builder()
        fabric = Fabric(builder, 2)
        for _ in range(3):
            dt = serial.compute_dt()
            assert fabric.negotiate_dt() == dt  # exact, not approx
            serial.step(dt)
            fabric.step(dt)
        for ctx in fabric.ranks:
            assert ctx.owned
            for bid in ctx.owned:
                np.testing.assert_array_equal(
                    ctx.grid.block_data(bid), serial.grid.block_data(bid))

    def test_four_ranks_match_serial(self):
        builder = sedov_builder()
        serial = builder()
        fabric = Fabric(builder, 4)
        infos = fabric.evolve(nend=2)
        for _ in range(2):
            serial.step(serial.compute_dt())
        assert len(infos) == 2 and len(infos[0]) == 4
        for ctx in fabric.ranks:
            for bid in ctx.owned:
                np.testing.assert_array_equal(
                    ctx.grid.block_data(bid), serial.grid.block_data(bid))

    def test_one_rank_is_the_serial_spine(self):
        """n_ranks=1 installs no hook and no filter: identical WorkLog
        digests, untouched grid attributes."""
        builder = sedov_builder()
        fabric = Fabric(builder, 1)
        assert fabric.ranks[0].grid.owned is None
        assert fabric.ranks[0].grid.halo_hook is None
        flog = fabric.attach_worklogs(helmholtz_eos=False)[0]
        fabric.evolve(nend=2)
        sim = builder()
        slog = WorkLog.attach(sim, helmholtz_eos=False)
        sim.evolve(nend=2)
        assert flog.digest() == slog.digest()

    def test_deterministic_across_runs(self):
        builder = sedov_builder()
        digests = []
        for _ in range(2):
            fabric = Fabric(builder, 4)
            logs = fabric.attach_worklogs(helmholtz_eos=False)
            fabric.evolve(nend=2)
            digests.append(tuple(log.digest() for log in logs))
        assert digests[0] == digests[1]

    def test_per_rank_worklogs_record_only_the_shard(self):
        fabric = Fabric(sedov_builder(), 4)
        logs = fabric.attach_worklogs(helmholtz_eos=False)
        fabric.evolve(nend=1)
        for ctx, log in zip(fabric.ranks, logs):
            assert len(log.steps[0].slots) == len(ctx.owned) == 4


class TestConservation:
    def test_mass_and_energy_conserved_at_two_ranks(self):
        fabric = Fabric(sedov_builder(), 2)
        mass0 = fabric.total("dens", None)
        ener0 = fabric.total("ener")
        fabric.evolve(nend=3)
        assert fabric.total("dens", None) == pytest.approx(mass0, rel=1e-12)
        assert fabric.total("ener") == pytest.approx(ener0, rel=1e-9)

    def test_totals_match_serial(self):
        builder = sedov_builder()
        serial = builder()
        fabric = Fabric(builder, 4)
        fabric.evolve(nend=2)
        for _ in range(2):
            serial.step(serial.compute_dt())
        assert fabric.total("dens", None) == serial.grid.total("dens", None)


class TestTrafficAccounting:
    def test_bytes_sent_received_symmetric(self):
        fabric = Fabric(sedov_builder(), 4)
        fabric.evolve(nend=2)
        sent = sum(ctx.bytes_sent for ctx in fabric.ranks)
        received = sum(ctx.bytes_received for ctx in fabric.ranks)
        assert sent == received > 0
        assert fabric.comm.bytes_moved == received
        assert fabric.comm.elapsed_s > 0.0

    def test_two_rank_traffic_mirrors(self):
        """With two ranks, everything rank 0 sends rank 1 receives."""
        fabric = Fabric(sedov_builder(), 2)
        fabric.evolve(nend=1)
        a, b = fabric.ranks
        assert a.bytes_sent == b.bytes_received > 0
        assert b.bytes_sent == a.bytes_received > 0

    def test_single_rank_moves_no_bytes(self):
        fabric = Fabric(sedov_builder(), 1)
        fabric.evolve(nend=1)
        assert fabric.comm.bytes_moved == 0
        assert fabric.ranks[0].bytes_sent == 0


class TestConfigurationGuards:
    def test_refinement_must_be_disabled(self):
        with pytest.raises(ConfigurationError, match="nrefs=0"):
            Fabric(sedov_builder(nrefs=4), 2)

    def test_more_ranks_than_blocks_rejected(self):
        with pytest.raises(ConfigurationError, match="empty shards"):
            Fabric(sedov_builder(2, 2), 5)

    def test_cross_rank_refinement_jump_rejected(self):
        """One rank per leaf on a refined tree puts every jump across a
        boundary — flux matching could not resolve the fine children."""
        def build():
            tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=1,
                           domain=((0, 1), (0, 1), (0, 1)))
            spec = MeshSpec(ndim=2, nxb=8, nyb=8, nzb=1, nguard=2,
                            maxblocks=16)
            grid = Grid(tree, spec)
            refine_block(grid, grid.tree.leaves()[0])
            eos = GammaLawEOS(gamma=1.4)
            sedov_setup(grid, eos)
            return Simulation(grid, HydroUnit(eos, cfl=0.4), nrefs=0,
                              dtinit=1e-5)
        n_leaves = len(build().grid.tree.leaves())
        with pytest.raises(ConfigurationError, match="crosses a rank"):
            Fabric(build, n_leaves)

    def test_need_at_least_one_rank(self):
        with pytest.raises(ConfigurationError):
            Fabric(sedov_builder(), 0)


class TestFailurePropagation:
    def test_rank_exception_propagates_not_deadlocks(self):
        """A rank dying mid-step aborts the barrier instead of hanging
        the others, and the original error (not BrokenBarrierError)
        surfaces."""
        fabric = Fabric(sedov_builder(), 2)

        boom = RuntimeError("rank 1 exploded")
        original_hook = fabric.ranks[1].grid.halo_hook

        def failing_hook(axis):
            raise boom

        fabric.ranks[1].grid.halo_hook = failing_hook
        with pytest.raises(RuntimeError, match="rank 1 exploded"):
            fabric.step(1e-5)
        fabric.ranks[1].grid.halo_hook = original_hook
        assert not any(t.name.startswith("fabric-rank")
                       for t in threading.enumerate())
