"""Tests for problem setups and their analytic verification solutions."""

import numpy as np
import pytest

from repro.physics.eos import GammaLawEOS, HYBRID_CONE_WD, HelmholtzEOS
from repro.setups.sedov import SedovSolution, sedov_setup
from repro.setups.sod import SodProblem, sod_exact
from repro.setups.supernova import supernova_setup
from repro.setups.whitedwarf import build_white_dwarf
from repro.util.constants import M_SUN
from repro.util.errors import PhysicsError
from repro.mesh.grid import Grid, MeshSpec
from repro.mesh.tree import AMRTree


class TestSodExact:
    def test_star_region_values(self):
        """Known star-state values of the classic Sod problem."""
        prob = SodProblem()
        x = np.array([0.6])  # inside the star region at t=0.2
        d, u, p = sod_exact(prob, x, 0.2)
        assert p[0] == pytest.approx(0.30313, rel=1e-4)
        assert u[0] == pytest.approx(0.92745, rel=1e-4)
        assert d[0] == pytest.approx(0.42632, rel=1e-4)

    def test_untouched_states(self):
        prob = SodProblem()
        d, u, p = sod_exact(prob, np.array([0.05, 0.95]), 0.2)
        assert d[0] == prob.rho_l and p[0] == prob.p_l
        assert d[1] == prob.rho_r and p[1] == prob.p_r

    def test_shock_position(self):
        prob = SodProblem()
        x = np.linspace(0.8, 0.9, 1000)
        d, _, _ = sod_exact(prob, x, 0.2)
        jump = x[np.argmax(np.abs(np.diff(d)))]
        assert jump == pytest.approx(0.85, abs=0.005)

    def test_rarefaction_smooth(self):
        prob = SodProblem()
        x = np.linspace(0.3, 0.45, 100)
        d, _, _ = sod_exact(prob, x, 0.2)
        assert (np.diff(d) < 0).all()  # monotonically falling through the fan


class TestSedovSolution:
    def test_alpha_literature_spherical(self):
        """The classic alpha = 0.851 for gamma = 1.4, j = 3."""
        s = SedovSolution(gamma=1.4, j=3)
        assert s.alpha == pytest.approx(0.851, rel=1e-3)

    def test_alpha_literature_gamma53(self):
        s = SedovSolution(gamma=5.0 / 3.0, j=3)
        assert s.alpha == pytest.approx(0.4936, rel=1e-3)

    def test_xi0_taylor_value(self):
        s = SedovSolution(gamma=1.4, j=3)
        assert s.xi0 == pytest.approx(1.033, rel=1e-3)

    def test_shock_radius_scaling(self):
        s = SedovSolution(gamma=1.4, j=3, energy=1.0, rho0=1.0)
        r1, r4 = s.shock_radius(1.0), s.shock_radius(4.0)
        assert r4 / r1 == pytest.approx(4.0 ** 0.4, rel=1e-12)

    def test_profile_shock_jump(self):
        s = SedovSolution(gamma=1.4, j=3)
        r2 = float(s.shock_radius(1.0))
        d_in, _, _ = s.profile(np.array([r2 * 0.9999]), 1.0)
        d_out, _, _ = s.profile(np.array([r2 * 1.2]), 1.0)
        assert d_in[0] == pytest.approx(6.0, rel=0.01)  # (g+1)/(g-1)
        assert d_out[0] == 1.0

    def test_profile_center_evacuated(self):
        s = SedovSolution(gamma=1.4, j=3)
        d, _, _ = s.profile(np.array([1e-3]), 1.0)
        assert d[0] < 0.05

    def test_pressure_finite_at_center(self):
        s = SedovSolution(gamma=1.4, j=3)
        _, _, p0 = s.profile(np.array([1e-3]), 1.0)
        _, _, p2 = s.profile(np.array([float(s.shock_radius(1.0)) * 0.999]), 1.0)
        assert 0.0 < p0[0] < p2[0]

    def test_bad_geometry(self):
        with pytest.raises(PhysicsError):
            SedovSolution(j=4)

    def test_energy_integral_self_consistent(self):
        """Integrating the profile energy must return the input E."""
        s = SedovSolution(gamma=1.4, j=3, energy=7.0, rho0=2.0)
        t = 3.0
        r2 = float(s.shock_radius(t))
        r = np.linspace(1e-4 * r2, r2 * 0.99999, 20000)
        d, v, p = s.profile(r, t)
        integrand = (0.5 * d * v**2 + p / 0.4) * 4.0 * np.pi * r**2
        e = np.trapezoid(integrand, r)
        assert e == pytest.approx(7.0, rel=0.01)


class TestSedovSetup:
    def test_energy_deposited(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=1,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=2, nxb=16, nyb=16, nzb=1, nguard=4, maxblocks=64)
        grid = Grid(tree, spec)
        eos = GammaLawEOS(gamma=1.4)
        sedov_setup(grid, eos, energy=1.0, rho0=1.0, p_ambient=1e-9)
        total = grid.total("ener")
        assert total == pytest.approx(1.0, rel=0.35)  # zone-quantised deposit

    def test_ambient_state(self):
        tree = AMRTree(ndim=2, nblockx=2, nblocky=2, max_level=1,
                       domain=((0, 1), (0, 1), (0, 1)))
        spec = MeshSpec(ndim=2, nxb=16, nyb=16, nzb=1, nguard=4, maxblocks=64)
        grid = Grid(tree, spec)
        sedov_setup(grid, GammaLawEOS(1.4), center=(0.5, 0.5, 0.0))
        corner = grid.leaf_blocks()[0]
        assert grid.interior(corner, "dens")[0, 0, 0] == 1.0
        assert grid.interior(corner, "pres")[0, 0, 0] == pytest.approx(1e-5)


@pytest.fixture(scope="module")
def wd_model():
    return build_white_dwarf(central_density=1.2e9, temperature=5e7,
                             dens_floor=1e5, dr=4e6)


class TestWhiteDwarf:
    def test_mass_near_chandrasekhar(self, wd_model):
        """rho_c = 1.2e9 C/O/Ne WD: M ~ 1.3-1.4 Msun."""
        assert 1.25 < wd_model.total_mass / M_SUN < 1.42

    def test_radius_thousands_of_km(self, wd_model):
        assert 1.0e8 < wd_model.surface_radius < 4.0e8

    def test_density_monotone(self, wd_model):
        # the very first step sits at r=0 where dP/dr = 0 exactly
        assert (np.diff(wd_model.dens) <= 0).all()
        assert (np.diff(wd_model.dens[1:]) < 0).all()

    def test_hydrostatic_residual_small(self, wd_model):
        assert wd_model.hydrostatic_residual() < 0.2

    def test_mass_grows_monotonically(self, wd_model):
        assert (np.diff(wd_model.mass) > 0).all()

    def test_higher_central_density_more_massive(self, wd_model):
        heavier = build_white_dwarf(central_density=3e9, temperature=5e7,
                                    dens_floor=1e5, dr=4e6)
        assert heavier.total_mass > wd_model.total_mass

    def test_floor_validation(self):
        with pytest.raises(PhysicsError):
            build_white_dwarf(central_density=1e3, dens_floor=1e4)


class TestSupernovaSetup:
    @pytest.fixture(scope="class")
    def problem(self):
        return supernova_setup(nblock=2, nxb=16, max_level=1, maxblocks=256,
                               initial_refinement=False)

    def test_central_density_mapped(self, problem):
        grid = problem.grid
        best = 0.0
        for b in grid.leaf_blocks():
            best = max(best, float(grid.interior(b, "dens").max()))
        assert best == pytest.approx(1.2e9, rel=0.3)

    def test_ignition_bubble_burned_and_hot(self, problem):
        grid = problem.grid
        hot = 0.0
        burned = 0.0
        for b in grid.leaf_blocks():
            hot = max(hot, float(grid.interior(b, "temp").max()))
            burned = max(burned, float(grid.interior(b, "fl01").max()))
        assert hot >= 3.0e9
        assert burned == pytest.approx(1.0)

    def test_pressure_positive_everywhere(self, problem):
        for b in problem.grid.leaf_blocks():
            assert (problem.grid.interior(b, "pres") > 0).all()

    def test_uses_helmholtz_eos(self, problem):
        assert isinstance(problem.eos, HelmholtzEOS)

    def test_3d_variant_builds_and_steps(self):
        """The paper's stated next step: 'full 3-d simulations of
        supernovae'.  The setup must build and advance in 3-d."""
        from repro.driver.simulation import Simulation

        prob = supernova_setup(ndim=3, nblock=2, nxb=8, max_level=1,
                               maxblocks=64, initial_refinement=False)
        assert prob.grid.spec.ndim == 3
        sim = Simulation(prob.grid, prob.hydro, prob.flame, prob.gravity,
                         nrefs=0)
        info = sim.step()
        assert info.dt > 0
        for b in prob.grid.leaf_blocks():
            assert (prob.grid.interior(b, "dens") > 0).all()

    def test_invalid_ndim_rejected(self):
        with pytest.raises(ValueError):
            supernova_setup(ndim=1)

    def test_composition_callable(self, problem):
        from repro.setups.supernova import _composition

        stacked = {"fl01": np.array([0.0, 1.0, 1.0]),
                   "fl02": np.array([0.0, 0.0, 1.0])}
        abar, zbar = _composition(problem.grid, stacked)
        assert abar[0] == pytest.approx(HYBRID_CONE_WD.abar)
        assert abar[1] == pytest.approx(28.0)  # silicon ash
        assert abar[2] == pytest.approx(56.0)  # NSE ash
        assert (zbar / abar == pytest.approx(0.5, rel=1e-6))
