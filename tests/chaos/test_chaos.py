"""Tests for the chaos unit: schedule, registry wiring, and the soak."""

import numpy as np
import pytest

from repro.chaos import FAULT_KINDS, ChaosUnit
from repro.chaos.soak import build_sim, run_soak
from repro.core import unit_registry
from repro.driver.config import RuntimeParameters
from repro.driver.supervisor import RunSupervisor
from repro.util.errors import ConfigurationError


class TestSchedule:
    def test_fault_for_is_deterministic_and_cycles(self):
        chaos = ChaosUnit(start=2, every=3)
        expected = {2 + 3 * i: FAULT_KINDS[i % len(FAULT_KINDS)]
                    for i in range(10)}
        for n in range(1, 32):
            assert chaos.fault_for(n) == expected.get(n)

    def test_disabled_unit_schedules_nothing(self):
        chaos = ChaosUnit(enabled=False)
        assert all(chaos.fault_for(n) is None for n in range(1, 50))

    def test_unknown_fault_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos fault"):
            ChaosUnit(faults=("nan", "gremlins"))

    def test_bad_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosUnit(start=0)
        with pytest.raises(ConfigurationError):
            ChaosUnit(every=0)

    def test_same_seed_same_targets(self):
        a = ChaosUnit(seed=9)
        b = ChaosUnit(seed=9)
        assert a.rng.integers(1000) == b.rng.integers(1000)


class TestRegistryWiring:
    def test_chaos_unit_is_registered(self):
        spec = unit_registry.unit("chaos")
        assert spec.implements == (ChaosUnit,)
        assert spec.timestep is not None and spec.step is not None
        # chaos deliberately has no save_state: `fired` must survive the
        # supervisor's rollback so a retried step is not re-poisoned
        assert spec.save_state is None

    def test_from_params_reads_the_registered_parameters(self):
        params = RuntimeParameters()
        params.set("chaos_enable", True)
        params.set("chaos_seed", 5)
        params.set("chaos_start", 4)
        params.set("chaos_every", 2)
        params.set("chaos_faults", "nan,raise")
        chaos = ChaosUnit.from_params(params)
        assert chaos.enabled and chaos.start == 4 and chaos.every == 2
        assert chaos.faults == ("nan", "raise")
        assert chaos.fault_for(4) == "nan"
        assert chaos.fault_for(6) == "raise"

    def test_chaos_parameters_validated(self):
        params = RuntimeParameters()
        with pytest.raises(ConfigurationError):
            params.set("chaos_start", 0)
        with pytest.raises(ConfigurationError):
            params.set("chaos_every", -1)

    def test_scheduler_delivers_the_fault(self):
        """Composed into a Simulation, the registry routes step/timestep
        hooks to the chaos unit without any driver special-casing."""
        chaos = ChaosUnit(faults=("bad_dt",), start=1, every=1000)
        sim = build_sim(chaos)
        assert sim.compute_dt() == -1.0
        assert [i.kind for i in chaos.injections] == ["bad_dt"]


class TestSoak:
    def test_soak_survives_every_fault_kind(self):
        """The acceptance run: every fault class is either recovered
        in-run or leaves a resumable checkpoint the soak restarts from."""
        payload = run_soak(steps=24, seed=42)
        assert payload["steps_completed"] == 24
        assert payload["faults_exercised"] == sorted(FAULT_KINDS)
        assert not any(r["failure"] for r in payload["runs"])
        # the signal fault forced exactly one resume-from-checkpoint
        assert payload["resumes"] == 1
        assert len(payload["runs"]) == 2
        # pool_drain forced the post-run probe onto base pages
        assert payload["degradations"]["counts"][
            "hugetlb_base_page_fallback"] >= 1
        # recoverable faults were retried, not fatal
        assert sum(r["guard_trips"] for r in payload["runs"]) >= 3

    def test_soak_without_chaos_is_clean(self):
        payload = run_soak(steps=8, faults=())
        assert payload["injections"] == []
        assert payload["resumes"] == 0
        assert payload["steps_completed"] == 8
        assert sum(r["guard_trips"] for r in payload["runs"]) == 0
        # with the pool untouched, the probe gets real huge pages
        assert payload["degradations"]["counts"] == {}

    def test_chaos_off_run_matches_unsupervised_run(self):
        """The chaos-disabled soak workload is bit-identical to the same
        simulation evolved without a supervisor: supervision and a
        disabled injector change nothing."""
        ref = build_sim(None)
        ref.evolve(nend=8)
        sim = build_sim(ChaosUnit(enabled=False))
        RunSupervisor(sim, handle_signals=False).run(nend=8)
        assert sim.t == ref.t
        np.testing.assert_array_equal(sim.grid.unk, ref.grid.unk)

    def test_report_written_to_out_dir(self, tmp_path):
        payload = run_soak(steps=6, faults=("nan",), out_dir=tmp_path)
        assert (tmp_path / "RUN_REPORT.json").exists()
        assert payload["report_path"] == str(tmp_path / "RUN_REPORT.json")
        assert list(tmp_path.glob("soak_chk_*.npz"))
