"""Accuracy tests for the relativistic Fermi-Dirac integrals."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.special import gamma as gamma_fn

from repro.physics.eos.fermi import fermi_dirac, fermi_dirac_all, fermi_dirac_deta


class TestLimits:
    @pytest.mark.parametrize("k", [0.5, 1.5, 2.5])
    def test_nondegenerate_limit(self, k):
        """eta << 0, beta -> 0:  F_k -> e^eta Gamma(k+1)."""
        eta = -25.0
        got = float(fermi_dirac(k, eta, 1e-8))
        want = np.exp(eta) * gamma_fn(k + 1)
        assert got == pytest.approx(want, rel=1e-6)

    @pytest.mark.parametrize("k", [0.5, 1.5, 2.5])
    def test_degenerate_limit(self, k):
        """eta >> 1, beta -> 0:  F_k -> eta^{k+1}/(k+1) (+ Sommerfeld)."""
        eta = 2000.0
        got = float(fermi_dirac(k, eta, 1e-12))
        leading = eta ** (k + 1) / (k + 1)
        sommerfeld = (np.pi**2 / 6.0) * k * eta ** (k - 1)
        assert got == pytest.approx(leading + sommerfeld, rel=1e-6)

    def test_relativistic_factor_monotone(self):
        """F_k grows with beta (the sqrt factor only adds)."""
        vals = [float(fermi_dirac(1.5, 5.0, b)) for b in (0.0, 0.5, 2.0, 20.0)]
        assert vals == sorted(vals)

    def test_beta_zero_exact(self):
        got = float(fermi_dirac(0.5, 0.0, 0.0))
        # F_{1/2}(0) = eta(3/2)*(1-2^{-1/2})*Gamma(3/2)*zeta(3/2) known value
        assert got == pytest.approx(0.6780938951, rel=1e-8)


class TestImplementation:
    def test_all_consistent_with_single(self):
        eta = np.array([-5.0, 0.0, 30.0, 500.0])
        beta = np.array([1e-4, 0.1, 1.0, 5.0])
        f12, f32, f52 = fermi_dirac_all(eta, beta)
        np.testing.assert_allclose(f12, fermi_dirac(0.5, eta, beta), rtol=1e-14)
        np.testing.assert_allclose(f52, fermi_dirac(2.5, eta, beta), rtol=1e-14)

    def test_broadcasting(self):
        f = fermi_dirac(1.5, np.zeros((3, 1)), np.array([0.1, 1.0]))
        assert f.shape == (3, 2)

    def test_scalar_input(self):
        assert np.isscalar(float(fermi_dirac(1.5, 1.0, 1.0)))

    def test_unsupported_k(self):
        with pytest.raises(ValueError):
            fermi_dirac(1.0, 0.0, 0.0)

    @settings(max_examples=30, deadline=None)
    @given(eta=st.floats(-30, 1e4), beta=st.floats(1e-8, 50))
    def test_positive_and_monotone_in_eta(self, eta, beta):
        lo, hi = fermi_dirac(1.5, np.array([eta, eta + 1.0]), beta)
        assert 0.0 < lo < hi

    def test_deta_matches_finite_difference_of_values(self):
        eta, beta = 12.0, 0.3
        d = float(fermi_dirac_deta(1.5, eta, beta))
        h = 1e-4
        fd = (float(fermi_dirac(1.5, eta + h, beta))
              - float(fermi_dirac(1.5, eta - h, beta))) / (2 * h)
        assert d == pytest.approx(fd, rel=1e-5)
